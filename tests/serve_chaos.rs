//! Chaos suite for the concurrent serving core.
//!
//! The contract under test: whatever faults are injected and however
//! appends interleave with queries, every *completed* request is
//! bit-identical to a sequential oracle re-mine of the exact snapshot
//! epoch it was served from; shed and timed-out requests fail with typed
//! errors; and nothing deadlocks or tears a read. No test relies on a
//! sleep-based race — every fault and every overload condition is armed
//! deterministically before the code path runs.
//!
//! The stress test runs in two modes: clean (`cargo test`), where every
//! request must succeed, and under an `ARCS_FAILPOINTS` schedule (the CI
//! chaos matrix runs `cargo test --features failpoints --test serve_chaos
//! stress_` with several schedules), where typed injected failures are
//! tolerated but completed results must still match the oracle exactly.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use arcs::core::engine::mine_rules;
use arcs::prelude::*;

/// Failpoint state is process-global; serialise every test in this binary.
static LOCK: Mutex<()> = Mutex::new(());

/// Lock + reset failpoints: for tests that arm their own schedules.
#[cfg(feature = "failpoints")]
fn guard() -> std::sync::MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    arcs::core::faults::clear();
    g
}

const NX: usize = 8;
const NY: usize = 8;
const NSEG: usize = 3;

/// A deterministically scattered base array (splitmix-style walk).
fn base_array() -> BinArray {
    let mut ba = BinArray::new(NX, NY, NSEG).unwrap();
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..2_000 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let x = ((state >> 33) as usize) % NX;
        let y = ((state >> 17) as usize) % NY;
        let g = ((state >> 7) % NSEG as u64) as u32;
        ba.add(x, y, g);
    }
    ba
}

/// The delta every append merges. All writers append the *same* delta, so
/// the array at epoch `k` is `base + k * delta` regardless of how writer
/// threads interleave — which is what makes a sequential per-epoch oracle
/// possible under true concurrency.
fn delta_array() -> BinArray {
    let mut ba = BinArray::new(NX, NY, NSEG).unwrap();
    let mut state = 0xD1B54A32D192ED03u64;
    for _ in 0..400 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let x = ((state >> 29) as usize) % NX;
        let y = ((state >> 13) as usize) % NY;
        let g = ((state >> 5) % NSEG as u64) as u32;
        ba.add(x, y, g);
    }
    ba
}

/// Oracle arrays for epochs `0..=max_epoch`.
fn oracles(max_epoch: usize) -> Vec<BinArray> {
    let mut arrays = vec![base_array()];
    let delta = delta_array();
    for _ in 0..max_epoch {
        let mut next = arrays.last().unwrap().clone();
        next.merge(&delta).unwrap();
        arrays.push(next);
    }
    arrays
}

fn chaos_config() -> ServeConfig {
    ServeConfig {
        max_inflight: 4,
        max_queued: 64,
        max_retries: 2,
        retry_backoff: Duration::ZERO,
        cache_capacity: 64,
        default_deadline: None,
    }
}

/// The deterministic threshold sweep the readers walk. Repeats across
/// readers on purpose: cache hits must be as oracle-exact as misses.
fn sweep() -> Vec<Thresholds> {
    let mut points = Vec::new();
    for s in [0.0, 0.002, 0.005, 0.01, 0.05] {
        for c in [0.0, 0.4] {
            points.push(Thresholds::new(s, c).unwrap());
        }
    }
    points
}

/// Is `err` a failure mode an armed failpoint schedule may legitimately
/// produce (directly or via the recovery envelope)?
fn is_injected_class(err: &ArcsError) -> bool {
    matches!(
        err,
        ArcsError::FaultInjected { .. }
            | ArcsError::AllocationFailed { .. }
            | ArcsError::WorkerPanicked { .. }
            | ArcsError::DeadlineExceeded { .. }
            | ArcsError::Overloaded { .. }
    )
}

/// N writers swapping snapshots against M readers querying, verified
/// bit-identically against the per-epoch sequential oracle.
///
/// Clean mode: every append and every query must succeed, and the final
/// epoch must equal the append count. Under `ARCS_FAILPOINTS` (the CI
/// chaos matrix): typed injected errors are tolerated anywhere, but every
/// request that *does* complete must still match the oracle exactly, and
/// the store must never publish a torn epoch.
#[test]
fn stress_writers_vs_readers_bit_identical_to_sequential_oracle() {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let env_faulted = std::env::var("ARCS_FAILPOINTS").is_ok();

    const WRITERS: usize = 2;
    const APPENDS_EACH: usize = 3;
    const READERS: usize = 4;
    const QUERIES_EACH: usize = 30;
    let max_epoch = WRITERS * APPENDS_EACH;

    let oracle = oracles(max_epoch);
    let server = Arc::new(Server::new(base_array(), chaos_config()).unwrap());
    let sweep = sweep();

    let barrier = Arc::new(std::sync::Barrier::new(WRITERS + READERS));
    let mut readers = Vec::new();
    for reader in 0..READERS {
        let server = Arc::clone(&server);
        let sweep = sweep.clone();
        let barrier = Arc::clone(&barrier);
        readers.push(std::thread::spawn(move || {
            barrier.wait();
            let mut completed = Vec::new();
            let mut failures = Vec::new();
            for i in 0..QUERIES_EACH {
                let t = sweep[(i + reader) % sweep.len()];
                let gk = ((i + reader) % NSEG) as u32;
                match server.query(&QueryRequest::new(gk, t)) {
                    Ok(resp) => completed.push((resp.result.epoch, gk, t, resp)),
                    Err(err) => failures.push(err),
                }
                // Torn-read audit: any snapshot handed out must hash to
                // exactly what it hashed to at publish time.
                let snap = server.snapshot();
                assert_eq!(snap.array().checksum(), snap.checksum(), "torn snapshot");
            }
            (completed, failures)
        }));
    }
    let mut writers = Vec::new();
    for _ in 0..WRITERS {
        let server = Arc::clone(&server);
        let barrier = Arc::clone(&barrier);
        writers.push(std::thread::spawn(move || {
            barrier.wait();
            let delta = delta_array();
            let mut appended = 0usize;
            let mut failures = Vec::new();
            for _ in 0..APPENDS_EACH {
                match server.append(&delta) {
                    Ok(_) => appended += 1,
                    Err(err) => failures.push(err),
                }
            }
            (appended, failures)
        }));
    }

    let mut total_completed = 0usize;
    let mut total_query_failures = 0usize;
    for handle in readers {
        let (completed, failures) = handle.join().expect("reader deadlocked or aborted");
        for (epoch, gk, t, resp) in completed {
            let expect = mine_rules(&oracle[epoch as usize], gk, t);
            assert_eq!(
                resp.result.rules, expect,
                "epoch {epoch} gk {gk} diverged from the sequential oracle"
            );
            total_completed += 1;
        }
        for err in failures {
            assert!(env_faulted, "query failed in a clean run: {err}");
            assert!(is_injected_class(&err), "unexpected failure class: {err}");
            total_query_failures += 1;
        }
    }
    let mut total_appended = 0usize;
    for handle in writers {
        let (appended, failures) = handle.join().expect("writer deadlocked or aborted");
        total_appended += appended;
        for err in failures {
            assert!(env_faulted, "append failed in a clean run: {err}");
            assert!(is_injected_class(&err), "unexpected failure class: {err}");
        }
    }

    // Epoch accounting is exact even under faults: one epoch per
    // successful append, nothing else.
    let stats = server.stats();
    assert_eq!(stats.snapshot_swaps, total_appended as u64);
    assert_eq!(stats.epoch, total_appended as u64);
    assert_eq!(stats.inflight, 0, "permits must all be released");
    if !env_faulted {
        assert_eq!(total_appended, max_epoch);
        assert_eq!(total_completed, READERS * QUERIES_EACH);
        assert_eq!(total_query_failures, 0);
    }
    // The server must still be serviceable after the storm, on the final
    // epoch, bit-identically.
    let t = Thresholds::new(0.0, 0.0).unwrap();
    match server.query(&QueryRequest::new(0, t)) {
        Ok(resp) => {
            assert_eq!(resp.result.rules, mine_rules(&oracle[total_appended], 0, t));
        }
        Err(err) => assert!(env_faulted && is_injected_class(&err), "{err}"),
    }
}

/// Deadline and overload failures are typed and immediate: an expired
/// deadline fails at admission without sleeping, and a full gate sheds
/// instead of queueing forever. Neither needs a timing race to trigger.
#[test]
fn expired_deadlines_and_overload_shed_are_typed_and_immediate() {
    let _g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    if std::env::var("ARCS_FAILPOINTS").is_ok() {
        return; // admission-path schedules would change the error types
    }
    let server = Server::new(
        base_array(),
        ServeConfig { max_inflight: 1, max_queued: 0, ..chaos_config() },
    )
    .unwrap();
    let t = Thresholds::new(0.0, 0.0).unwrap();

    let err = server
        .query(&QueryRequest::new(0, t).deadline(Duration::ZERO))
        .unwrap_err();
    assert!(matches!(err, ArcsError::DeadlineExceeded { .. }), "{err}");

    // Deterministic overload: hold the only permit from this thread.
    let permit = server.gate().admit(None).unwrap();
    let err = server.query(&QueryRequest::new(0, t)).unwrap_err();
    assert!(matches!(err, ArcsError::Overloaded { .. }), "{err}");
    drop(permit);

    let stats = server.stats();
    assert_eq!(stats.timed_out, 1);
    assert_eq!(stats.shed, 1);
    assert!(server.query(&QueryRequest::new(0, t)).is_ok(), "must recover");
}

/// A fault before the swap body: the append fails typed, readers stay on
/// the old epoch, and the store recovers on the next append.
#[cfg(feature = "failpoints")]
#[test]
fn swap_fault_leaves_readers_on_the_old_epoch() {
    let _g = guard();
    use arcs::core::faults;

    let server = Server::new(base_array(), chaos_config()).unwrap();
    let t = Thresholds::new(0.0, 0.0).unwrap();
    let before = server.query(&QueryRequest::new(0, t)).unwrap();

    faults::configure_from_spec("serve.swap=error@1").unwrap();
    let err = server.append(&delta_array()).unwrap_err();
    assert!(matches!(err, ArcsError::FaultInjected { point: "serve.swap" }), "{err}");
    assert_eq!(server.snapshot().epoch(), 0);
    assert_eq!(server.stats().snapshot_swaps, 0);
    let still = server.query(&QueryRequest::new(0, t)).unwrap();
    assert_eq!(still.result.rules, before.result.rules);

    // The schedule is exhausted: the retried append goes through.
    assert_eq!(server.append(&delta_array()).unwrap(), 1);
    faults::clear();
}

/// A fault *after* the merge but before publication: the half-built
/// snapshot is discarded atomically — no torn epoch, no double-merge when
/// the append is retried.
#[cfg(feature = "failpoints")]
#[test]
fn swap_publish_fault_discards_the_merge_atomically() {
    let _g = guard();
    use arcs::core::faults;

    let server = Server::new(base_array(), chaos_config()).unwrap();
    let base_tuples = server.snapshot().array().n_tuples();
    let delta = delta_array();

    faults::configure_from_spec("serve.swap-publish=error@1").unwrap();
    let err = server.append(&delta).unwrap_err();
    assert!(
        matches!(err, ArcsError::FaultInjected { point: "serve.swap-publish" }),
        "{err}"
    );
    // The merged copy must have been dropped with the error: current
    // snapshot unchanged, bit-for-bit.
    let snap = server.snapshot();
    assert_eq!(snap.epoch(), 0);
    assert_eq!(snap.array().n_tuples(), base_tuples);
    assert_eq!(snap.array().checksum(), base_array().checksum());

    // Retrying applies the delta exactly once.
    assert_eq!(server.append(&delta).unwrap(), 1);
    assert_eq!(
        server.snapshot().array().n_tuples(),
        base_tuples + delta.n_tuples()
    );
    faults::clear();
}

/// The failpoint-tested invalidation contract: even when post-swap cache
/// invalidation is suppressed by a fault, the swap succeeds and no stale
/// result can ever be served — the epoch in the cache key makes
/// superseded entries unreachable; invalidation only reclaims memory.
#[cfg(feature = "failpoints")]
#[test]
fn cache_invalidation_fault_cannot_serve_stale_results() {
    let _g = guard();
    use arcs::core::faults;

    let server = Server::new(base_array(), chaos_config()).unwrap();
    let t = Thresholds::new(0.0, 0.0).unwrap();
    let request = QueryRequest::new(0, t);
    let before = server.query(&request).unwrap();
    assert_eq!(server.stats().cache_len, 1);

    faults::configure_from_spec("serve.cache-invalidate=error@1+").unwrap();
    assert_eq!(server.append(&delta_array()).unwrap(), 1, "append must survive");
    assert_eq!(faults::hits("serve.cache-invalidate"), 1);
    // The stale epoch-0 entry is still resident (reclamation faulted) ...
    assert_eq!(server.stats().cache_len, 1);

    // ... but unreachable: the same request now keys to epoch 1 and is
    // recomputed bit-identically against the merged oracle.
    let after = server.query(&request).unwrap();
    assert!(!after.cache_hit);
    assert_eq!(after.result.epoch, 1);
    assert_eq!(after.result.rules, mine_rules(&oracles(1)[1], 0, t));
    assert_ne!(before.result.rules, after.result.rules);
    faults::clear();
}

/// Worker panics inside the query body are caught and retried with
/// backoff; a transient panic is invisible to the caller (bit-identical
/// result, `retries = 1`), a persistent one surfaces as the typed
/// `WorkerPanicked` after the bounded retries — and the server keeps
/// serving either way.
#[cfg(feature = "failpoints")]
#[test]
fn worker_panics_are_retried_to_bit_identical_results() {
    let _g = guard();
    use arcs::core::faults;

    let server = Server::new(base_array(), chaos_config()).unwrap();
    let t = Thresholds::new(0.0, 0.0).unwrap();

    faults::configure_from_spec("serve.worker=panic@1").unwrap();
    let resp = server.query(&QueryRequest::new(0, t)).unwrap();
    assert_eq!(resp.retries, 1);
    assert!(!resp.cache_hit);
    assert_eq!(resp.result.rules, mine_rules(&base_array(), 0, t));
    let stats = server.stats();
    assert_eq!(stats.worker_panics, 1);
    assert_eq!(stats.retries, 1);
    faults::clear();

    // Persistent panics exhaust the bounded retries into the typed error.
    faults::configure_from_spec("serve.worker=panic@1+").unwrap();
    let err = server
        .query(&QueryRequest::new(1, t))
        .unwrap_err();
    assert!(matches!(err, ArcsError::WorkerPanicked { .. }), "{err}");
    faults::clear();

    // No wedged state: the next query serves normally.
    let resp = server.query(&QueryRequest::new(1, t)).unwrap();
    assert_eq!(resp.result.rules, mine_rules(&base_array(), 1, t));
    assert_eq!(server.stats().inflight, 0);
}

/// Full chaos: concurrent readers and writers with a programmatic
/// schedule that panics a worker mid-run and kills one swap at the
/// publish point. Completed requests must be oracle-exact, the failed
/// swap must not leave a torn epoch, and everything must drain (join)
/// without a deadlock.
#[cfg(feature = "failpoints")]
#[test]
fn concurrent_chaos_with_mid_swap_faults_stays_oracle_exact() {
    let _g = guard();
    use arcs::core::faults;

    const APPENDS: usize = 4;
    let oracle = oracles(APPENDS);
    let server = Arc::new(Server::new(base_array(), chaos_config()).unwrap());
    let t_all = sweep();

    // The 2nd swap attempt dies at publish; the 5th worker execution
    // panics once (absorbed by a retry).
    faults::configure_from_spec("serve.swap-publish=error@2;serve.worker=panic@5").unwrap();

    let barrier = Arc::new(std::sync::Barrier::new(3));
    let writer = {
        let server = Arc::clone(&server);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            let delta = delta_array();
            let mut ok = 0usize;
            let mut injected = 0usize;
            for _ in 0..APPENDS {
                match server.append(&delta) {
                    Ok(_) => ok += 1,
                    Err(ArcsError::FaultInjected { .. }) => injected += 1,
                    Err(err) => panic!("unexpected append failure: {err}"),
                }
            }
            (ok, injected)
        })
    };
    let mut readers = Vec::new();
    for reader in 0..2 {
        let server = Arc::clone(&server);
        let sweep = t_all.clone();
        let barrier = Arc::clone(&barrier);
        readers.push(std::thread::spawn(move || {
            barrier.wait();
            let mut completed = Vec::new();
            for i in 0..20 {
                let t = sweep[(i + reader) % sweep.len()];
                match server.query(&QueryRequest::new(0, t)) {
                    Ok(resp) => completed.push((resp.result.epoch, t, resp.result.rules.clone())),
                    Err(ArcsError::WorkerPanicked { .. }) => {}
                    Err(err) => panic!("unexpected query failure: {err}"),
                }
            }
            completed
        }));
    }

    let (ok_appends, injected_appends) = writer.join().expect("writer deadlocked");
    assert_eq!(injected_appends, 1, "exactly the @2 publish fault");
    assert_eq!(ok_appends, APPENDS - 1);
    for handle in readers {
        for (epoch, t, rules) in handle.join().expect("reader deadlocked") {
            assert_eq!(
                rules,
                mine_rules(&oracle[epoch as usize], 0, t),
                "epoch {epoch} diverged under chaos"
            );
        }
    }
    let stats = server.stats();
    assert_eq!(stats.epoch, (APPENDS - 1) as u64);
    assert_eq!(stats.snapshot_swaps, (APPENDS - 1) as u64);
    assert_eq!(stats.inflight, 0);
    faults::clear();
}
