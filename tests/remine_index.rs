//! PR 5 acceptance test: `Session::remine` is output-sensitive. On a
//! sparse dataset the re-mining cost — observed through the
//! `cells_visited` pipeline counter — is bounded by the number of
//! *occupied* bin-array cells, never the full `nx × ny` grid.

use arcs::core::engine::mine_rules_reference;
use arcs::prelude::*;

/// A dataset whose tuples pile into a handful of (x, y) spots, so the
/// 50×50 default grid is almost entirely empty.
fn sparse_dataset() -> Dataset {
    let schema = Schema::new(vec![
        Attribute::quantitative("x", 0.0, 100.0),
        Attribute::quantitative("y", 0.0, 100.0),
        Attribute::categorical("g", ["a", "b"]),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    // Six tight spots; each lands in (at most a 2×2 patch of) bins.
    let spots = [
        (10.0, 10.0, 0u32),
        (10.0, 12.0, 0),
        (30.0, 70.0, 0),
        (55.0, 20.0, 1),
        (80.0, 80.0, 0),
        (95.0, 5.0, 1),
    ];
    for (i, &(x, y, g)) in spots.iter().cycle().take(600).enumerate() {
        let jitter = (i % 5) as f64 * 0.1;
        ds.push(vec![Value::Quant(x + jitter), Value::Quant(y + jitter), Value::Cat(g)])
            .unwrap();
    }
    ds
}

#[test]
fn remine_visits_only_occupied_cells() {
    let ds = sparse_dataset();
    let request = SegmentRequest::new("x", "y", "g").group("a");
    let mut session = Arcs::with_defaults().open(&ds, request).unwrap();

    let ba = session.bin_array();
    let occupied = ba.occupied_cells().count() as u64;
    let full_grid = (ba.nx() * ba.ny()) as u64;
    assert!(
        occupied <= 24 && full_grid == 2_500,
        "fixture drifted: {occupied} occupied of {full_grid}"
    );

    let before = session.report().counters.cells_visited;
    let thresholds = Thresholds::new(0.05, 0.3).unwrap();
    let rules = session.remine(thresholds).unwrap();
    let visited = session.report().counters.cells_visited - before;

    assert!(visited > 0, "counter never moved");
    assert!(
        visited <= occupied,
        "remine visited {visited} cells but only {occupied} are occupied"
    );
    // And nowhere near a full scan.
    assert!(visited * 100 < full_grid);

    // Output-sensitivity must not change the answer: the indexed path
    // agrees with the naive full-scan reference.
    assert_eq!(rules, mine_rules_reference(session.bin_array(), 0, thresholds));

    // Every further re-mine pays the same occupied-cell bound (the index
    // is built once and reused).
    let before = session.report().counters.cells_visited;
    for s in [0.01, 0.1, 0.4] {
        session.remine(Thresholds::new(s, 0.2).unwrap()).unwrap();
    }
    let visited = session.report().counters.cells_visited - before;
    assert!(visited <= 3 * occupied, "three re-mines visited {visited}");
}
