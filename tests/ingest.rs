//! Robust-ingest properties: randomly corrupted CSV bytes must make the
//! Strict policy error, must never panic (or mis-count) the lenient
//! policies, and an interrupted checkpointed binning pass must resume to
//! a bit-identical `BinArray`.

use proptest::collection::vec;
use proptest::prelude::*;

use arcs::data::csv::{read_csv, read_csv_with_policy};
use arcs::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        Attribute::quantitative("age", 0.0, 100.0),
        Attribute::categorical("group", ["A", "B"]),
    ])
    .unwrap()
}

/// One injectable corruption: the raw line and the issue kind the report
/// must attribute it to.
fn bad_line(kind: u8) -> (&'static str, IssueKind) {
    match kind % 5 {
        0 => ("42.0", IssueKind::FieldCount),      // truncated row
        1 => ("abc,A", IssueKind::NonNumeric),     // garbage number
        2 => ("NaN,A", IssueKind::NonFinite),      // parses, not finite
        3 => ("inf,B", IssueKind::NonFinite),
        _ => ("42.0,Z", IssueKind::UnknownLabel),  // out-of-range category
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Corruptions injected at random positions: Strict errors on the
    /// first bad line; Skip and Quarantine never panic, keep exactly the
    /// clean rows, and the report counts match the injections exactly —
    /// per kind, per line, and in the quarantine sink.
    #[test]
    fn corrupted_csv_counts_match_injections(
        n_clean in 1usize..80,
        injections in vec((0usize..200, 0u8..5), 0..25),
    ) {
        // Clean rows interleaved with tagged corruptions.
        let mut lines: Vec<(String, Option<IssueKind>)> = (0..n_clean)
            .map(|i| {
                let label = if i % 2 == 0 { "A" } else { "B" };
                (format!("{}.5,{label}", i % 99), None)
            })
            .collect();
        for &(pos, kind) in &injections {
            let (line, k) = bad_line(kind);
            let idx = pos % (lines.len() + 1);
            lines.insert(idx, (line.to_string(), Some(k)));
        }
        let mut csv = String::from("age,group\n");
        for (l, _) in &lines {
            csv.push_str(l);
            csv.push('\n');
        }
        let n_bad = lines.iter().filter(|(_, k)| k.is_some()).count();

        // Strict: the first corruption aborts with its 1-based file line
        // (data starts on line 2, after the header).
        let strict = read_csv(schema(), csv.as_bytes());
        if n_bad == 0 {
            prop_assert!(strict.is_ok());
        } else {
            let first_bad =
                lines.iter().position(|(_, k)| k.is_some()).unwrap() + 2;
            match strict {
                Err(DataError::Parse { line, .. }) => prop_assert_eq!(line, first_bad),
                other => prop_assert!(false, "expected Parse error, got ok={}", other.is_ok()),
            }
        }

        // Skip: completes, keeps exactly the clean rows, exact counts.
        let (ds, report) =
            read_csv_with_policy(schema(), csv.as_bytes(), IngestPolicy::skip(), None)
                .unwrap();
        prop_assert_eq!(ds.len(), n_clean);
        prop_assert_eq!(report.rows_read, n_clean + n_bad);
        prop_assert_eq!(report.rows_kept, n_clean);
        prop_assert_eq!(report.rows_skipped, n_bad);
        prop_assert_eq!(report.rows_quarantined, 0);
        for kind in IssueKind::ALL {
            let expected = lines.iter().filter(|(_, k)| *k == Some(kind)).count();
            prop_assert_eq!(report.count_of(kind), expected, "kind {}", kind);
        }
        // Every recorded issue points at the right file line.
        for issue in report.issues() {
            let (_, k) = &lines[issue.line - 2];
            prop_assert_eq!(Some(issue.kind), *k);
        }

        // Quarantine: the sink holds exactly the raw bad lines, in order.
        let mut sink = Vec::new();
        let (ds2, report2) = read_csv_with_policy(
            schema(),
            csv.as_bytes(),
            IngestPolicy::quarantine(),
            Some(&mut sink),
        )
        .unwrap();
        prop_assert_eq!(ds2.len(), n_clean);
        prop_assert_eq!(report2.rows_quarantined, n_bad);
        prop_assert_eq!(report2.rows_skipped, n_bad);
        let expected: String = lines
            .iter()
            .filter(|(_, k)| k.is_some())
            .map(|(l, _)| format!("{l}\n"))
            .collect();
        prop_assert_eq!(String::from_utf8(sink).unwrap(), expected);
    }

    /// The bad-row ceiling is exact: loading succeeds iff the bad fraction
    /// does not exceed `max_bad_fraction`.
    #[test]
    fn max_bad_fraction_threshold_is_exact(
        n_clean in 1usize..40,
        n_bad in 0usize..40,
        ceiling in 0.0f64..1.0,
    ) {
        let mut csv = String::from("age,group\n");
        for i in 0..n_clean {
            csv.push_str(&format!("{}.5,A\n", i % 99));
        }
        for _ in 0..n_bad {
            csv.push_str("abc,A\n");
        }
        let policy = IngestPolicy::Skip { max_bad_fraction: ceiling };
        let result = read_csv_with_policy(schema(), csv.as_bytes(), policy, None);
        let fraction = n_bad as f64 / (n_clean + n_bad) as f64;
        if fraction > ceiling {
            let is_too_many = matches!(result, Err(DataError::TooManyBadRows { .. }));
            prop_assert!(is_too_many);
        } else {
            prop_assert!(result.is_ok());
        }
    }
}

/// The kill-and-resume guarantee on real workload data: a binning pass
/// killed mid-stream, then resumed from its last checkpoint over the same
/// stream, produces a `BinArray` bit-identical to an uninterrupted run.
#[test]
fn interrupted_bin_stream_resumes_bit_identical() {
    let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(7)).unwrap();
    let ds = gen.generate(5_000);
    let binner = Binner::equi_width(ds.schema(), "age", "salary", "group", 30, 30).unwrap();
    let reference = binner.bin_stream(ds.iter().cloned()).unwrap();

    let dir = std::env::temp_dir().join("arcs-resume-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e.ckpt");
    std::fs::remove_file(&path).ok();
    let spec = CheckpointSpec { path: &path, every: 1_000 };

    // The process "dies" after 2_500 tuples — past the checkpoint at
    // 2_000 — and its in-memory result is lost.
    let _ = binner
        .bin_stream_checkpointed(ds.iter().take(2_500).cloned(), BadTuplePolicy::Fail, &spec)
        .unwrap();

    // Restart over the same stream: the checkpoint (written at 2_500 on
    // stream end) is honoured and the tail replayed.
    let (resumed, report) = binner
        .bin_stream_checkpointed(ds.iter().cloned(), BadTuplePolicy::Fail, &spec)
        .unwrap();
    assert_eq!(report.resumed_from, 2_500);
    assert_eq!(report.seen, 5_000);
    assert_eq!(resumed, reference);

    // Bit-identical serialized form, not just structural equality.
    let (mut a, mut b) = (Vec::new(), Vec::new());
    reference.write_to(&mut a).unwrap();
    resumed.write_to(&mut b).unwrap();
    assert_eq!(a, b);

    // The resumed array drives the pipeline to the same segmentation as
    // an in-memory run over the full dataset.
    let config = ArcsConfig { n_x_bins: 30, n_y_bins: 30, ..ArcsConfig::default() };
    let arcs = Arcs::new(config).unwrap();
    let request = || SegmentRequest::new("age", "salary", "group").group("A");
    let from_resumed = arcs
        .open_binned(resumed.clone(), binner.clone(), &ds, request())
        .unwrap()
        .segment()
        .unwrap();
    let from_reference = arcs
        .open_binned(reference.clone(), binner.clone(), &ds, request())
        .unwrap()
        .segment()
        .unwrap();
    assert_eq!(from_resumed, from_reference);

    std::fs::remove_file(&path).ok();
}

/// Acceptance scenario: a dataset whose qualifying cells are always
/// pruned away yields a *degraded* segmentation (with its relaxation
/// steps recorded) instead of `NoSegmentation`.
#[test]
fn too_tight_thresholds_degrade_instead_of_failing() {
    let schema = Schema::new(vec![
        Attribute::quantitative("x", 0.0, 10.0),
        Attribute::quantitative("y", 0.0, 10.0),
        Attribute::categorical("g", ["A", "other"]),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    for _ in 0..30 {
        ds.push(vec![Value::Quant(5.5), Value::Quant(5.5), Value::Cat(0)]).unwrap();
    }
    for i in 0..300 {
        ds.push(vec![
            Value::Quant((i % 10) as f64 + 0.5),
            Value::Quant(((i / 10) % 10) as f64 + 0.5),
            Value::Cat(1),
        ])
        .unwrap();
    }
    let mut config = ArcsConfig { n_x_bins: 10, n_y_bins: 10, ..ArcsConfig::default() };
    config.optimizer.bitop = BitOpConfig {
        min_area_fraction: 0.0,
        min_area_cells: 4, // group A only ever fills one cell
        max_clusters: 100,
        threads: 1,
    };
    let arcs = Arcs::new(config.clone()).unwrap();
    let seg = arcs.open(&ds, SegmentRequest::new("x", "y", "g").group("A")).unwrap().segment().unwrap();
    assert!(seg.degraded);
    assert!(!seg.relaxation_steps.is_empty());
    assert!(!seg.clusters.is_empty());

    // With degradation off the same dataset is a hard NoSegmentation.
    config.degrade_on_no_segmentation = false;
    let strict = Arcs::new(config).unwrap();
    assert!(matches!(
        strict
            .open(&ds, SegmentRequest::new("x", "y", "g").group("A"))
            .and_then(|mut s| s.segment()),
        Err(ArcsError::NoSegmentation)
    ));
}
