//! End-to-end integration tests: the full ARCS pipeline against the
//! paper's synthetic workload, spanning `arcs-data` and `arcs-core`.

use arcs::core::categorical::{segment_categorical, CategoricalConfig};
use arcs::core::optimizer::OptimizerConfig;
use arcs::core::verify::region_error;
use arcs::prelude::*;
use arcs_data::agrawal::{attr, f2_regions, GROUP_A};

/// The paper's headline result (§4.2): three clustered rules matching the
/// generating disjuncts, with small region error.
#[test]
fn arcs_recovers_f2_disjuncts_with_low_region_error() {
    let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(1)).unwrap();
    let ds = gen.generate(30_000);
    let arcs = Arcs::with_defaults();
    let seg = arcs.open(&ds, SegmentRequest::new("age", "salary", "group").group("A")).unwrap().segment().unwrap();
    assert_eq!(seg.rules.len(), 3);

    let binner = Binner::equi_width(ds.schema(), "age", "salary", "group", 50, 50).unwrap();
    let exact = region_error(
        &seg.clusters,
        &binner,
        &f2_regions(),
        (20.0, 80.0),
        (20_000.0, 150_000.0),
        200,
    )
    .unwrap();
    let err = exact.total() as f64 / exact.n_examined as f64;
    assert!(err < 0.08, "region error {err} too high");
}

/// With 10% outliers ARCS still produces exactly three rules (paper §4.2:
/// "in every experimental run ARCS always produced three clustered
/// association rules ... and effectively removed all noise and outliers").
#[test]
fn arcs_withstands_ten_percent_outliers() {
    let mut gen =
        AgrawalGenerator::new(GeneratorConfig::paper_defaults_with_outliers(2)).unwrap();
    let ds = gen.generate(30_000);
    let arcs = Arcs::with_defaults();
    let seg = arcs.open(&ds, SegmentRequest::new("age", "salary", "group").group("A")).unwrap().segment().unwrap();
    assert_eq!(
        seg.rules.len(),
        3,
        "rules: {:#?}",
        seg.rules.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    // Every rule keeps decent confidence despite the injected outliers.
    for rule in &seg.rules {
        assert!(rule.confidence > 0.7, "{rule} confidence {}", rule.confidence);
    }
}

/// Streaming over the generator must match the in-memory path given the
/// same data (constant-memory one-pass claim, §4.3).
#[test]
fn stream_and_dataset_paths_agree() {
    let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(3)).unwrap();
    let ds = gen.generate(15_000);
    let arcs = Arcs::with_defaults();
    let by_dataset = arcs.open(&ds, SegmentRequest::new("age", "salary", "group").group("A")).unwrap().segment().unwrap();
    let by_stream = arcs
        .open_stream(
            ds.schema(),
            ds.iter().cloned(),
            SegmentRequest::new("age", "salary", "group").group("A"),
            &ds,
        )
        .unwrap()
        .segment()
        .unwrap();
    assert_eq!(by_dataset.clusters, by_stream.clusters);
    assert_eq!(by_dataset.thresholds, by_stream.thresholds);
}

/// Segmenting the *other* group works off the same bin array semantics and
/// produces complementary coverage.
#[test]
fn other_group_segmentation_is_complementary() {
    let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(4)).unwrap();
    let ds = gen.generate(20_000);
    let arcs = Arcs::with_defaults();
    let a = arcs.open(&ds, SegmentRequest::new("age", "salary", "group").group("A")).unwrap().segment().unwrap();
    let other = arcs.open(&ds, SegmentRequest::new("age", "salary", "group").group("other")).unwrap().segment().unwrap();
    assert!(!a.rules.is_empty());
    assert!(!other.rules.is_empty());
    // The "other" clusters should avoid the A disjunct cores.
    let a_core = (30.0, 75_000.0); // centre of the first disjunct
    assert!(a.rules.iter().any(|r| r.covers(a_core.0, a_core.1)));
    assert!(!other.rules.iter().any(|r| r.covers(a_core.0, a_core.1)));
}

/// Categorical × quantitative segmentation (§5 extension) on Agrawal data:
/// Group A by Function 10 depends on elevel, so (elevel, salary) space has
/// signal; the run must simply succeed and produce sane rules.
#[test]
fn categorical_segmentation_on_agrawal_data() {
    let config = GeneratorConfig {
        function: AgrawalFunction::F8,
        ..GeneratorConfig::paper_defaults(5)
    };
    let mut gen = AgrawalGenerator::new(config).unwrap();
    let ds = gen.generate(20_000);
    let seg = segment_categorical(
        &ds,
        "elevel",
        "salary",
        "group",
        "A",
        &CategoricalConfig {
            n_quant_bins: 20,
            optimizer: OptimizerConfig::default(),
        },
    )
    .unwrap();
    assert!(!seg.rules.is_empty());
    for rule in &seg.rules {
        assert!(!rule.category_codes.is_empty());
        assert!(rule.quant_range.0 < rule.quant_range.1);
        assert!(rule.confidence > 0.5, "{rule}");
    }
}

/// The paper's §1 motivating scenario end to end: a three-way
/// profitability rating segmented per group off ONE shared binning
/// (§3.1's no-re-binning claim), with each rating's regions recovered.
#[test]
fn three_way_profitability_segmentation() {
    let ds = arcs::data::generator::generate_three_way(40_000, 0.05, 13).unwrap();
    let arcs = Arcs::with_defaults();
    let all = arcs
        .open(&ds, SegmentRequest::new("age", "salary", "rating"))
        .unwrap()
        .segment_all()
        .unwrap();
    assert_eq!(all.len(), 3);

    let excellent = all
        .iter()
        .find(|(label, _)| label == "excellent")
        .and_then(|(_, seg)| seg.as_ref().ok())
        .expect("excellent segments");
    // The "excellent" rating is exactly Function 2: three disjuncts.
    assert_eq!(
        excellent.rules.len(),
        3,
        "excellent rules: {:#?}",
        excellent.rules.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
    assert!(excellent.errors.recall() > 0.8);

    let above = all
        .iter()
        .find(|(label, _)| label == "above_average")
        .and_then(|(_, seg)| seg.as_ref().ok())
        .expect("above_average segments");
    assert!(!above.rules.is_empty());
    // The above-average bands sit directly above the excellent bands:
    // no overlap between the two segmentations' rules in value space.
    for a in &excellent.rules {
        for b in &above.rules {
            let x_overlap = a.x_range.0 < b.x_range.1 && b.x_range.0 < a.x_range.1;
            let y_overlap = a.y_range.0 < b.y_range.1 && b.y_range.0 < a.y_range.1;
            assert!(
                !(x_overlap && y_overlap),
                "excellent rule {a} overlaps above_average rule {b}"
            );
        }
    }
}

/// The Figure 2 loop exposes its diagnostics: evaluations counted, score
/// consistent with rules and errors.
#[test]
fn segmentation_diagnostics_are_consistent() {
    let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(6)).unwrap();
    let ds = gen.generate(10_000);
    let arcs = Arcs::with_defaults();
    let seg = arcs.open(&ds, SegmentRequest::new("age", "salary", "group").group("A")).unwrap().segment().unwrap();
    assert_eq!(seg.score.n_clusters, seg.clusters.len());
    assert_eq!(seg.rules.len(), seg.clusters.len());
    assert_eq!(seg.score.errors, seg.errors.total());
    assert!(seg.evaluations >= 1);
    assert_eq!(seg.n_tuples, 10_000);
    // Support of each rule is bounded by the group's share of tuples.
    let frac_a = ds
        .iter()
        .filter(|t| t.cat(attr::GROUP) == GROUP_A)
        .count() as f64
        / ds.len() as f64;
    for rule in &seg.rules {
        assert!(rule.support <= frac_a + 1e-9);
        assert!((0.0..=1.0).contains(&rule.confidence));
    }
}
