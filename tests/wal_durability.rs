//! Property suite for the write-ahead log codec and the checkpoint ⇄
//! replay contract (`arcs::core::wal`).
//!
//! The durability layer's whole safety argument rests on two claims:
//!
//! 1. **Scanning never panics and always yields a valid prefix.** No
//!    matter how the tail of a log was mangled — truncated mid-record by
//!    a crash, bit-flipped by rot, or overwritten with garbage —
//!    [`replay`] returns the longest whole-record prefix and classifies
//!    the rest; it never invents records and never panics.
//! 2. **Checkpoint + WAL replay is bit-identical to the direct state.**
//!    Folding a checkpointed array plus its surviving log records
//!    produces exactly the array you would get by binning every batch
//!    in order — same checksum, same epoch arithmetic.
//!
//! Each property here attacks one of those claims with generated
//! inputs. Temp files carry the process id plus a per-test counter so
//! concurrent test binaries never collide.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::collection::vec;
use proptest::prelude::*;

use arcs::core::wal::{
    self, load_checkpoint, replay, save_checkpoint, CheckpointMeta, WalTail, WalWriter,
    WAL_HEADER_LEN,
};
use arcs::core::{BinArray, Binner};
use arcs::data::{Attribute, Schema};

/// A scratch file that deletes itself, so failed cases don't litter.
struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str) -> TempFile {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let name = format!("arcs-waldur-{tag}-{}-{n}", std::process::id());
        TempFile(std::env::temp_dir().join(name))
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Generated append: payload bytes plus an optional feeder offset.
type GenRecord = (Vec<u8>, u64, bool);

fn record_strategy() -> impl Strategy<Value = Vec<GenRecord>> {
    vec((vec(0u8..=255, 0..48), 0u64..1_000_000, any::<bool>()), 0..8)
}

fn feeder_offset(raw: u64, present: bool) -> Option<u64> {
    present.then_some(raw)
}

/// Writes `records` into a fresh log at `path`, returning the byte
/// length after each append (i.e. every record boundary).
fn write_log(path: &Path, start_seq: u64, records: &[GenRecord]) -> Vec<u64> {
    let mut writer = WalWriter::create(path, start_seq).expect("create WAL");
    let mut boundaries = vec![writer.len()];
    for (payload, raw, present) in records {
        writer.append(payload, feeder_offset(*raw, *present)).expect("append");
        boundaries.push(writer.len());
    }
    boundaries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Write → scan round-trip: every record comes back verbatim, in
    /// order, with contiguous sequence numbers from `start_seq`, and
    /// the tail is clean.
    #[test]
    fn codec_round_trips(records in record_strategy(), start_seq in 1u64..1000) {
        let file = TempFile::new("roundtrip");
        write_log(file.path(), start_seq, &records);

        let scan = replay(file.path()).expect("replay");
        prop_assert!(scan.tail.is_clean());
        prop_assert_eq!(scan.start_seq, start_seq);
        prop_assert_eq!(scan.records.len(), records.len());
        prop_assert_eq!(scan.next_seq, start_seq + records.len() as u64);
        for (i, rec) in scan.records.iter().enumerate() {
            let (payload, raw, present) = &records[i];
            prop_assert_eq!(rec.seq, start_seq + i as u64);
            prop_assert_eq!(&rec.payload, payload);
            prop_assert_eq!(rec.feeder_offset, feeder_offset(*raw, *present));
        }
    }

    /// Truncating the file at ANY byte — the torn-write crash model —
    /// recovers exactly the records whose encodings fit in the cut, and
    /// classifies the tail Clean at record boundaries, Torn otherwise.
    #[test]
    fn truncation_recovers_whole_record_prefix(
        records in record_strategy(),
        cut_frac in 0.0f64..=1.0,
    ) {
        let file = TempFile::new("trunc");
        let boundaries = write_log(file.path(), 1, &records);
        let full_len = *boundaries.last().unwrap();

        let cut = WAL_HEADER_LEN + ((full_len - WAL_HEADER_LEN) as f64 * cut_frac) as u64;
        let handle = std::fs::OpenOptions::new().write(true).open(file.path()).unwrap();
        handle.set_len(cut).unwrap();
        drop(handle);

        let scan = replay(file.path()).expect("replay after truncation");
        let expect_records = boundaries.iter().filter(|&&b| b > WAL_HEADER_LEN && b <= cut).count();
        prop_assert_eq!(scan.records.len(), expect_records);
        prop_assert_eq!(scan.valid_len, boundaries[expect_records]);
        if boundaries.contains(&cut) {
            prop_assert!(scan.tail.is_clean(), "cut at boundary {} not clean: {:?}", cut, scan.tail);
        } else {
            match &scan.tail {
                WalTail::Torn { valid_len, dropped_bytes } => {
                    prop_assert_eq!(*valid_len, boundaries[expect_records]);
                    prop_assert_eq!(*valid_len + *dropped_bytes, cut);
                }
                other => prop_assert!(false, "cut at {} classified {:?}", cut, other),
            }
        }
        // The healed prefix is a literal prefix of the original batches.
        for (i, rec) in scan.records.iter().enumerate() {
            prop_assert_eq!(&rec.payload, &records[i].0);
        }
    }

    /// Flipping any single byte of the log never panics, and the scan
    /// still returns a prefix of the original records: corruption can
    /// lose data, never fabricate it.
    #[test]
    fn bit_flips_never_panic_and_yield_a_prefix(
        records in record_strategy(),
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let file = TempFile::new("flip");
        write_log(file.path(), 1, &records);

        let mut bytes = std::fs::read(file.path()).unwrap();
        let pos = (bytes.len() as f64 * pos_frac) as usize;
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        std::fs::write(file.path(), &bytes).unwrap();

        // Flips inside the 16-byte file header may make the log
        // unattributable — a typed error, never a panic.
        let Ok(scan) = replay(file.path()) else { return Ok(()); };
        prop_assert!(scan.records.len() <= records.len());
        for (i, rec) in scan.records.iter().enumerate() {
            let (payload, raw, present) = &records[i];
            prop_assert_eq!(rec.seq, 1 + i as u64);
            prop_assert_eq!(&rec.payload, payload);
            prop_assert_eq!(rec.feeder_offset, feeder_offset(*raw, *present));
        }
        // A flip outside the header that survives is in a payload the
        // CRC must catch: the altered record cannot appear verbatim.
        if (pos as u64) >= WAL_HEADER_LEN && scan.tail.is_clean() {
            prop_assert_eq!(scan.records.len(), records.len());
        }
    }

    /// Overwriting the tail with pure garbage (not a truncation — extra
    /// bytes that were never a record) is classified, not trusted.
    #[test]
    fn garbage_tails_never_become_records(
        records in record_strategy(),
        garbage in vec(0u8..=255, 1..64),
    ) {
        let file = TempFile::new("garbage");
        write_log(file.path(), 1, &records);

        let mut bytes = std::fs::read(file.path()).unwrap();
        let clean_len = bytes.len() as u64;
        bytes.extend_from_slice(&garbage);
        std::fs::write(file.path(), &bytes).unwrap();

        let scan = replay(file.path()).expect("replay over garbage tail");
        prop_assert_eq!(scan.records.len(), records.len());
        prop_assert_eq!(scan.valid_len, clean_len);
        prop_assert!(!scan.tail.is_clean());
        prop_assert_eq!(scan.tail.valid_len(clean_len + garbage.len() as u64), clean_len);
    }
}

// ---------------------------------------------------------------------------
// Checkpoint + replay == direct state
// ---------------------------------------------------------------------------

fn demo_schema() -> Schema {
    Schema::new(vec![
        Attribute::quantitative("x", 0.0, 10.0),
        Attribute::quantitative("y", 0.0, 10.0),
        Attribute::categorical("g", ["A", "B"]),
    ])
    .unwrap()
}

/// Bins one header-less CSV batch the way the daemon's store does: the
/// shared parse path that live appends, WAL replay, and fsck all use.
fn bin_batch(schema: &Schema, binner: &Binner, rows: &str) -> BinArray {
    let text = format!("x,y,g\n{rows}");
    let ds = arcs::data::csv::read_csv(schema.clone(), text.as_bytes()).unwrap();
    binner.bin_rows(ds.iter()).unwrap()
}

/// Renders generated row tuples as a header-less CSV batch.
fn batch_csv(rows: &[(u32, u32, bool)]) -> String {
    rows.iter()
        .map(|(x, y, g)| format!("{x},{y},{}", if *g { "A" } else { "B" }))
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The recovery equation: checkpoint at batch `k`, log the rest,
    /// then (load checkpoint → replay → merge) must equal binning every
    /// batch directly — identical checksum, identical epoch count.
    #[test]
    fn checkpoint_plus_replay_equals_direct_state(
        batches in vec(vec((0u32..10, 0u32..10, any::<bool>()), 1..5), 1..6),
        split_frac in 0.0f64..=1.0,
    ) {
        let schema = demo_schema();
        let binner = Binner::equi_width(&schema, "x", "y", "g", 4, 4).unwrap();
        let k = (batches.len() as f64 * split_frac) as usize;
        let k = k.min(batches.len());

        // Direct state: every batch binned and merged in order.
        let mut direct = binner.new_bin_array().unwrap();
        for rows in &batches {
            direct.merge(&bin_batch(&schema, &binner, &batch_csv(rows))).unwrap();
        }

        // Durable state: checkpoint after the first k batches…
        let mut checkpointed = binner.new_bin_array().unwrap();
        for rows in &batches[..k] {
            checkpointed.merge(&bin_batch(&schema, &binner, &batch_csv(rows))).unwrap();
        }
        let bin = TempFile::new("ckpt-bin");
        let meta_file = TempFile::new("ckpt-meta");
        let meta = CheckpointMeta {
            epoch: k as u64,
            last_seq: k as u64,
            feeder_offset: None,
            array_checksum: checkpointed.checksum(),
        };
        save_checkpoint(bin.path(), meta_file.path(), &checkpointed, &meta).unwrap();

        // …and the remaining batches appended to the WAL.
        let log = TempFile::new("ckpt-wal");
        let mut writer = WalWriter::create(log.path(), meta.last_seq + 1).unwrap();
        for rows in &batches[k..] {
            writer.append(batch_csv(rows).as_bytes(), None).unwrap();
        }

        // Recover: load the pair, replay the log, fold records in.
        let (loaded_meta, mut recovered) =
            load_checkpoint(bin.path(), meta_file.path()).unwrap().expect("checkpoint exists");
        prop_assert_eq!(loaded_meta, meta);
        let scan = replay(log.path()).unwrap();
        prop_assert!(scan.tail.is_clean());
        let mut epoch = loaded_meta.epoch;
        for rec in &scan.records {
            prop_assert!(rec.seq > loaded_meta.last_seq);
            let rows = std::str::from_utf8(&rec.payload).unwrap();
            recovered.merge(&bin_batch(&schema, &binner, rows)).unwrap();
            epoch += 1;
        }

        prop_assert_eq!(epoch, batches.len() as u64);
        prop_assert_eq!(recovered.checksum(), direct.checksum());
        prop_assert_eq!(recovered.n_tuples(), direct.n_tuples());
    }
}

/// `write_atomic` on top of an existing file leaves either old or new —
/// spot-check the commit-point primitive the checkpoint relies on.
#[test]
fn write_atomic_replaces_whole_file() {
    let file = TempFile::new("atomic");
    wal::write_atomic(file.path(), b"first version, longer").unwrap();
    wal::write_atomic(file.path(), b"v2").unwrap();
    assert_eq!(std::fs::read(file.path()).unwrap(), b"v2");
}
