//! Integration of the C4.5 baseline with the ARCS pipeline — the paper's
//! §4.2 comparison claims, at test-suite scale.

use arcs::core::verify::verify_tuples;
use arcs::prelude::*;

fn workload(n: usize, u: f64, seed: u64) -> (Dataset, Dataset) {
    let config = GeneratorConfig {
        outlier_fraction: u,
        ..GeneratorConfig::paper_defaults(seed)
    };
    let mut gen = AgrawalGenerator::new(config).unwrap();
    (gen.generate(n), gen.generate(4_000))
}

#[test]
fn both_systems_learn_f2_without_noise() {
    let (train, test) = workload(15_000, 0.0, 1);

    let arcs = Arcs::with_defaults();
    let seg = arcs.open(&train, SegmentRequest::new("age", "salary", "group").group("A")).unwrap().segment().unwrap();
    let binner =
        Binner::equi_width(train.schema(), "age", "salary", "group", 50, 50).unwrap();
    let arcs_err = verify_tuples(&seg.clusters, &binner, test.iter(), 0).rate();

    let tree = DecisionTree::train(&train, "group", TreeConfig::default()).unwrap();
    let tree_err = tree.error_rate(&test);

    assert!(arcs_err < 0.12, "ARCS error {arcs_err}");
    assert!(tree_err < 0.12, "C4.5 error {tree_err}");
}

/// Figure 13/14 shape: C4.5 produces significantly more rules than ARCS.
#[test]
fn c45_produces_many_more_rules_than_arcs() {
    let (train, _test) = workload(15_000, 0.10, 2);

    let arcs = Arcs::with_defaults();
    let seg = arcs.open(&train, SegmentRequest::new("age", "salary", "group").group("A")).unwrap().segment().unwrap();

    let tree = DecisionTree::train(&train, "group", TreeConfig::default()).unwrap();
    let rules = RuleSet::from_tree(&tree, &train, RulesConfig::default()).unwrap();

    assert!(seg.rules.len() <= 4, "ARCS rules: {}", seg.rules.len());
    assert!(
        rules.len() > 3 * seg.rules.len(),
        "C4.5 {} rules vs ARCS {}",
        rules.len(),
        seg.rules.len()
    );
}

/// Figure 12 shape: with 10% outliers ARCS stays competitive with C4.5.
#[test]
fn with_outliers_arcs_is_competitive() {
    let (train, test) = workload(20_000, 0.10, 3);

    let arcs = Arcs::with_defaults();
    let seg = arcs.open(&train, SegmentRequest::new("age", "salary", "group").group("A")).unwrap().segment().unwrap();
    let binner =
        Binner::equi_width(train.schema(), "age", "salary", "group", 50, 50).unwrap();
    let arcs_err = verify_tuples(&seg.clusters, &binner, test.iter(), 0).rate();

    let tree = DecisionTree::train(&train, "group", TreeConfig::default()).unwrap();
    let rules = RuleSet::from_tree(&tree, &train, RulesConfig::default()).unwrap();
    let rules_err = rules.error_rate(&test);

    // Both sit near the 10% outlier noise floor; ARCS within 1.6x of C4.5.
    assert!(arcs_err < 0.25, "ARCS error {arcs_err}");
    assert!(rules_err < 0.25, "C4.5RULES error {rules_err}");
    assert!(
        arcs_err < rules_err * 1.6 + 0.02,
        "ARCS {arcs_err} not competitive with C4.5RULES {rules_err}"
    );
}

/// The SLIQ-style learner (paper reference [13]) reaches C4.5-grade
/// accuracy on the paper's workload and its rule count also dwarfs ARCS'.
#[test]
fn sliq_baseline_matches_c45_accuracy() {
    let (train, test) = workload(15_000, 0.0, 5);
    let sliq = SliqTree::train(&train, "group", SliqConfig::default()).unwrap();
    let c45 = DecisionTree::train(&train, "group", TreeConfig::default()).unwrap();
    let sliq_err = sliq.error_rate(&test);
    let c45_err = c45.error_rate(&test);
    assert!(sliq_err < 0.12, "SLIQ error {sliq_err}");
    assert!(
        (sliq_err - c45_err).abs() < 0.05,
        "SLIQ {sliq_err} vs C4.5 {c45_err}"
    );

    let arcs = Arcs::with_defaults();
    let seg = arcs.open(&train, SegmentRequest::new("age", "salary", "group").group("A")).unwrap().segment().unwrap();
    assert!(
        sliq.n_leaves() > 3 * seg.rules.len(),
        "SLIQ {} leaves vs ARCS {} rules",
        sliq.n_leaves(),
        seg.rules.len()
    );
}

/// The rule set's predictions agree with the tree on a large majority of
/// tuples (C4.5RULES is a generalization of the tree, not a new model).
#[test]
fn rules_approximate_their_tree() {
    let (train, test) = workload(8_000, 0.0, 4);
    let tree = DecisionTree::train(&train, "group", TreeConfig::default()).unwrap();
    let rules = RuleSet::from_tree(&tree, &train, RulesConfig::default()).unwrap();
    let agree = test
        .iter()
        .filter(|t| tree.predict(t) == rules.predict(t))
        .count() as f64
        / test.len() as f64;
    assert!(agree > 0.85, "tree/rules agreement {agree}");
}
