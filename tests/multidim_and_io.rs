//! Integration tests for the §5 multi-attribute extension and the CSV
//! ingest path.

use std::io::Cursor;

use arcs::core::multidim::{box_errors, combine_rule_sets};
use arcs::data::csv::{read_csv, write_csv};
use arcs::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema_abc() -> Schema {
    Schema::new(vec![
        Attribute::quantitative("a", 0.0, 10.0),
        Attribute::quantitative("b", 0.0, 10.0),
        Attribute::quantitative("c", 0.0, 10.0),
        Attribute::categorical("g", ["X", "other"]),
    ])
    .unwrap()
}

/// Group X concentrates in the 3-D box a,b,c ∈ [2, 5).
fn boxy_dataset(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(schema_abc());
    for _ in 0..n {
        let a = rng.gen_range(0.0..10.0);
        let b = rng.gen_range(0.0..10.0);
        let c = rng.gen_range(0.0..10.0);
        let in_box =
            (2.0..5.0).contains(&a) && (2.0..5.0).contains(&b) && (2.0..5.0).contains(&c);
        // The box is dense in X; the rest is sparse background.
        let p_x = if in_box { 0.95 } else { 0.02 };
        let g = if rng.gen_bool(p_x) { 0 } else { 1 };
        ds.push(vec![Value::Quant(a), Value::Quant(b), Value::Quant(c), Value::Cat(g)])
            .unwrap();
    }
    ds
}

#[test]
fn combining_two_2d_segmentations_recovers_a_3d_box() {
    let ds = boxy_dataset(40_000, 9);
    let config = ArcsConfig { n_x_bins: 10, n_y_bins: 10, ..ArcsConfig::default() };
    let arcs = Arcs::new(config).unwrap();

    let seg_ab = arcs.open(&ds, SegmentRequest::new("a", "b", "g").group("X")).unwrap().segment().unwrap();
    let seg_bc = arcs.open(&ds, SegmentRequest::new("b", "c", "g").group("X")).unwrap().segment().unwrap();
    assert!(!seg_ab.rules.is_empty());
    assert!(!seg_bc.rules.is_empty());

    let boxes = combine_rule_sets(&seg_ab.rules, &seg_bc.rules);
    assert!(!boxes.is_empty(), "expected at least one joined 3-D box");
    assert!(boxes.iter().all(|b| b.dimensions() == 3));

    // Some joined box must approximate [2,5)^3 (the join can also produce
    // spurious combinations of unrelated clusters; those carry high error
    // and are filtered by the caller in practice).
    let approximates_cube = |b: &arcs::core::multidim::ClusterBox| {
        ["a", "b", "c"].iter().all(|attrname| {
            let (lo, hi) = b.ranges[*attrname];
            (lo - 2.0).abs() < 1.2 && (hi - 5.0).abs() < 1.2
        })
    };
    let cube = boxes
        .iter()
        .find(|b| approximates_cube(b))
        .unwrap_or_else(|| panic!("no box approximates the cube; boxes: {boxes:#?}"));

    // The cube's error against the labels should beat the 2-D projection
    // (a 2-D cluster must over-cover: it cannot constrain the third
    // attribute).
    let err_3d = box_errors(std::slice::from_ref(cube), &ds, "g", "X").unwrap();
    let ab_boxes: Vec<_> = seg_ab
        .rules
        .iter()
        .map(arcs::core::multidim::ClusterBox::from_rule)
        .collect();
    let err_2d = box_errors(&ab_boxes, &ds, "g", "X").unwrap();
    assert!(
        err_3d.false_positives < err_2d.false_positives,
        "3-D FP {} should beat 2-D FP {}",
        err_3d.false_positives,
        err_2d.false_positives
    );
}

#[test]
fn csv_roundtrip_preserves_segmentation() {
    let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(11)).unwrap();
    let ds = gen.generate(8_000);

    let mut buf = Vec::new();
    write_csv(&ds, &mut buf).unwrap();
    let reloaded = read_csv(ds.schema().clone(), Cursor::new(&buf)).unwrap();
    assert_eq!(reloaded.len(), ds.len());

    let arcs = Arcs::with_defaults();
    let original = arcs.open(&ds, SegmentRequest::new("age", "salary", "group").group("A")).unwrap().segment().unwrap();
    let roundtrip = arcs.open(&reloaded, SegmentRequest::new("age", "salary", "group").group("A")).unwrap().segment().unwrap();
    // CSV stores full f64 precision (`{}` formatting), so clusters must be
    // identical.
    assert_eq!(original.clusters, roundtrip.clusters);
}
