//! Robustness: the pipeline never panics on arbitrary (valid) inputs — it
//! either produces a segmentation or returns a typed error.

use proptest::collection::vec;
use proptest::prelude::*;

use arcs::core::optimizer::OptimizerConfig;
use arcs::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random small datasets with mixed structure: the session pipeline
    /// always returns `Ok` or a typed `Err` and upholds its output
    /// invariants when it succeeds.
    #[test]
    fn pipeline_never_panics(
        rows in vec((0.0f64..10.0, 0.0f64..10.0, 0u32..2), 1..200),
        bins in 2usize..12,
        sample_size in 1usize..100,
    ) {
        let schema = Schema::new(vec![
            Attribute::quantitative("x", 0.0, 10.0),
            Attribute::quantitative("y", 0.0, 10.0),
            Attribute::categorical("g", ["A", "other"]),
        ]).unwrap();
        let mut ds = Dataset::new(schema);
        for &(x, y, g) in &rows {
            ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(g)]).unwrap();
        }
        let arcs = Arcs::new(ArcsConfig {
            n_x_bins: bins,
            n_y_bins: bins,
            sample_size,
            ..ArcsConfig::default()
        }).unwrap();
        match arcs.open(&ds, SegmentRequest::new("x", "y", "g").group("A"))
            .and_then(|mut s| s.segment())
        {
            Ok(seg) => {
                prop_assert_eq!(seg.rules.len(), seg.clusters.len());
                prop_assert_eq!(seg.n_tuples, rows.len() as u64);
                for rect in &seg.clusters {
                    prop_assert!(rect.x1 < bins && rect.y1 < bins);
                }
                for rule in &seg.rules {
                    prop_assert!(rule.x_range.0 < rule.x_range.1);
                    prop_assert!(rule.y_range.0 < rule.y_range.1);
                    prop_assert!((0.0..=1.0).contains(&rule.support));
                    prop_assert!((0.0..=1.0).contains(&rule.confidence));
                }
            }
            // Acceptable: no group-A tuple ever forms a cluster.
            Err(ArcsError::NoSegmentation) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }

    /// The equi-depth strategy handles arbitrary (including heavily
    /// duplicated) value distributions.
    #[test]
    fn equi_depth_pipeline_never_panics(
        rows in vec((0u8..5, 0u8..5, 0u32..2), 20..120),
    ) {
        let schema = Schema::new(vec![
            Attribute::quantitative("x", 0.0, 10.0),
            Attribute::quantitative("y", 0.0, 10.0),
            Attribute::categorical("g", ["A", "other"]),
        ]).unwrap();
        let mut ds = Dataset::new(schema);
        // Heavily quantised values: equi-depth edges collapse.
        for &(x, y, g) in &rows {
            ds.push(vec![
                Value::Quant(x as f64 * 2.0),
                Value::Quant(y as f64 * 2.0),
                Value::Cat(g),
            ]).unwrap();
        }
        let arcs = Arcs::new(ArcsConfig {
            n_x_bins: 8,
            n_y_bins: 8,
            strategy: BinningStrategy::EquiDepth,
            optimizer: OptimizerConfig {
                smoothing: SmoothConfig::disabled(),
                ..OptimizerConfig::default()
            },
            ..ArcsConfig::default()
        }).unwrap();
        match arcs.open(&ds, SegmentRequest::new("x", "y", "g").group("A"))
            .and_then(|mut s| s.segment())
        {
            Ok(_) | Err(ArcsError::NoSegmentation) => {}
            Err(other) => prop_assert!(false, "unexpected error {other}"),
        }
    }

    /// Both classifiers train on arbitrary small datasets without
    /// panicking, and their error rates stay in [0, 1].
    #[test]
    fn classifiers_never_panic(
        rows in vec((0.0f64..10.0, 0u32..3, 0u32..2), 2..150),
    ) {
        let schema = Schema::new(vec![
            Attribute::quantitative("x", 0.0, 10.0),
            Attribute::categorical("c", ["p", "q", "r"]),
            Attribute::categorical("class", ["a", "b"]),
        ]).unwrap();
        let mut ds = Dataset::new(schema);
        for &(x, c, class) in &rows {
            ds.push(vec![Value::Quant(x), Value::Cat(c), Value::Cat(class)]).unwrap();
        }
        let tree = DecisionTree::train(&ds, "class", TreeConfig::default()).unwrap();
        let err = tree.error_rate(&ds);
        prop_assert!((0.0..=1.0).contains(&err));

        let sliq = SliqTree::train(&ds, "class", SliqConfig::default()).unwrap();
        let err = sliq.error_rate(&ds);
        prop_assert!((0.0..=1.0).contains(&err));

        let rules = RuleSet::from_tree(&tree, &ds, RulesConfig::default()).unwrap();
        let err = rules.error_rate(&ds);
        prop_assert!((0.0..=1.0).contains(&err));
    }
}
