//! Determinism and robustness across seeds: every stochastic component
//! takes an explicit seed, so identical configurations reproduce
//! bit-for-bit, and the headline result holds across seeds.

use arcs::prelude::*;

#[test]
fn identical_seeds_reproduce_identical_segmentations() {
    let run = |seed| {
        let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(seed)).unwrap();
        let ds = gen.generate(10_000);
        let arcs = Arcs::with_defaults();
        arcs.open(&ds, SegmentRequest::new("age", "salary", "group").group("A")).unwrap().segment().unwrap()
    };
    let a = run(123);
    let b = run(123);
    assert_eq!(a, b);
}

#[test]
fn different_data_seeds_still_recover_three_rules() {
    for seed in [10, 20, 30] {
        let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(seed)).unwrap();
        let ds = gen.generate(25_000);
        let arcs = Arcs::with_defaults();
        let seg = arcs.open(&ds, SegmentRequest::new("age", "salary", "group").group("A")).unwrap().segment().unwrap();
        assert_eq!(
            seg.rules.len(),
            3,
            "seed {seed}: {:#?}",
            seg.rules.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }
}

#[test]
fn sampling_seed_changes_only_the_sample() {
    let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(7)).unwrap();
    let ds = gen.generate(15_000);
    let seg_a = Arcs::new(ArcsConfig { seed: 1, ..ArcsConfig::default() })
        .unwrap()
        .open(&ds, SegmentRequest::new("age", "salary", "group").group("A"))
        .unwrap()
        .segment()
        .unwrap();
    let seg_b = Arcs::new(ArcsConfig { seed: 2, ..ArcsConfig::default() })
        .unwrap()
        .open(&ds, SegmentRequest::new("age", "salary", "group").group("A"))
        .unwrap()
        .segment()
        .unwrap();
    // The data and therefore the candidate grids are identical; different
    // verification samples may pick slightly different thresholds but the
    // recovered structure (three disjuncts) must be stable.
    assert_eq!(seg_a.rules.len(), 3);
    assert_eq!(seg_b.rules.len(), 3);
}

#[test]
fn generator_streams_are_reproducible_across_iterator_and_generate() {
    let config = GeneratorConfig::paper_defaults(55);
    let mut by_generate = AgrawalGenerator::new(config.clone()).unwrap();
    let ds = by_generate.generate(500);
    let by_iter: Vec<Tuple> =
        AgrawalGenerator::new(config).unwrap().take(500).collect();
    assert_eq!(ds.rows(), &by_iter[..]);
}

/// Builds an `Arcs` with every thread knob pinned to `threads`.
fn arcs_with_threads(threads: usize) -> Arcs {
    let config = ArcsConfig {
        threads,
        optimizer: OptimizerConfig { threads, ..OptimizerConfig::default() },
        ..ArcsConfig::default()
    };
    Arcs::new(config).unwrap()
}

/// PR 2 tentpole guarantee, re-asserted over the persistent worker pool
/// (PR 10): the parallel execution layer is bit-identical to the
/// sequential one — same `BinArray` checksum after sharded binning and
/// the same rules in the same order after the parallel threshold search —
/// on the paper's Agrawal F2 workload at every pooled thread count.
#[test]
fn parallel_execution_is_bit_identical_on_agrawal_f2() {
    let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(99)).unwrap();
    let ds = gen.generate(30_000);
    let request = SegmentRequest::new("age", "salary", "group").group("A");

    let mut baseline = arcs_with_threads(1).open(&ds, request.clone()).unwrap();
    let base_checksum = baseline.bin_array().checksum();
    let base_seg = baseline.segment().unwrap();

    for threads in [2, 4, 8] {
        let mut session = arcs_with_threads(threads).open(&ds, request.clone()).unwrap();
        assert_eq!(
            session.bin_array().checksum(),
            base_checksum,
            "bin array diverged at {threads} threads"
        );
        let seg = session.segment().unwrap();
        assert_eq!(seg.rules, base_seg.rules, "rules diverged at {threads} threads");
        assert_eq!(seg, base_seg, "segmentation diverged at {threads} threads");
    }
}

/// PR 3 acceptance criterion: determinism survives fault injection. With
/// a failpoint panicking every binning shard worker, recovery (bounded
/// retries, then per-shard sequential recompute) must reproduce the exact
/// fault-free result — same `BinArray` checksum, same segmentation — with
/// the absorbed panics visible in the report counters.
#[cfg(feature = "failpoints")]
#[test]
fn injected_shard_panics_do_not_change_results() {
    use arcs::core::faults;

    let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(99)).unwrap();
    let ds = gen.generate(30_000);
    let request = SegmentRequest::new("age", "salary", "group").group("A");

    let mut clean = arcs_with_threads(4).open(&ds, request.clone()).unwrap();
    let clean_checksum = clean.bin_array().checksum();
    let clean_seg = clean.segment().unwrap();

    // Recovery is bit-identical, so tests sharing the process while this
    // schedule is armed still pass — but serialise the arm/clear window
    // anyway to keep `worker_panics` attributable to this session.
    faults::configure_from_spec("binner.shard=panic@1+").unwrap();
    let mut faulted = arcs_with_threads(4).open(&ds, request).unwrap();
    faults::clear();

    assert_eq!(faulted.bin_array().checksum(), clean_checksum);
    assert!(faulted.report().counters.worker_panics > 0);
    assert_eq!(faulted.segment().unwrap(), clean_seg);
}

/// The same bit-identity on an adversarially clumped dataset (all mass in
/// a few cells, sizes not divisible by the chunk size) rather than the
/// smooth synthetic workload.
#[test]
fn parallel_binning_is_bit_identical_on_a_clumped_dataset() {
    let schema = Schema::new(vec![
        Attribute::quantitative("x", 0.0, 100.0),
        Attribute::quantitative("y", 0.0, 100.0),
        Attribute::categorical("g", ["A", "B", "C"]),
    ])
    .unwrap();
    let mut ds = Dataset::new(schema);
    // 10_007 rows (prime, so no chunking divides evenly), heavily skewed.
    for i in 0..10_007u64 {
        let cell = (i * i + 17) % 7;
        let x = (cell as f64) * 13.0 + 1.5;
        let y = ((i % 3) as f64) * 30.0 + 2.5;
        let g = (i % 5).min(2) as u32;
        ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(g)]).unwrap();
    }
    let request = SegmentRequest::new("x", "y", "g");
    let base = arcs_with_threads(1).open(&ds, request.clone()).unwrap();
    for threads in [2, 3, 4, 8] {
        let session = arcs_with_threads(threads).open(&ds, request.clone()).unwrap();
        assert_eq!(
            session.bin_array().checksum(),
            base.bin_array().checksum(),
            "checksum diverged at {threads} threads"
        );
    }
}
