//! Determinism and robustness across seeds: every stochastic component
//! takes an explicit seed, so identical configurations reproduce
//! bit-for-bit, and the headline result holds across seeds.

use arcs::prelude::*;

#[test]
fn identical_seeds_reproduce_identical_segmentations() {
    let run = |seed| {
        let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(seed)).unwrap();
        let ds = gen.generate(10_000);
        let arcs = Arcs::with_defaults();
        arcs.segment_dataset(&ds, "age", "salary", "group", "A").unwrap()
    };
    let a = run(123);
    let b = run(123);
    assert_eq!(a, b);
}

#[test]
fn different_data_seeds_still_recover_three_rules() {
    for seed in [10, 20, 30] {
        let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(seed)).unwrap();
        let ds = gen.generate(25_000);
        let arcs = Arcs::with_defaults();
        let seg = arcs.segment_dataset(&ds, "age", "salary", "group", "A").unwrap();
        assert_eq!(
            seg.rules.len(),
            3,
            "seed {seed}: {:#?}",
            seg.rules.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
    }
}

#[test]
fn sampling_seed_changes_only_the_sample() {
    let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(7)).unwrap();
    let ds = gen.generate(15_000);
    let seg_a = Arcs::new(ArcsConfig { seed: 1, ..ArcsConfig::default() })
        .unwrap()
        .segment_dataset(&ds, "age", "salary", "group", "A")
        .unwrap();
    let seg_b = Arcs::new(ArcsConfig { seed: 2, ..ArcsConfig::default() })
        .unwrap()
        .segment_dataset(&ds, "age", "salary", "group", "A")
        .unwrap();
    // The data and therefore the candidate grids are identical; different
    // verification samples may pick slightly different thresholds but the
    // recovered structure (three disjuncts) must be stable.
    assert_eq!(seg_a.rules.len(), 3);
    assert_eq!(seg_b.rules.len(), 3);
}

#[test]
fn generator_streams_are_reproducible_across_iterator_and_generate() {
    let config = GeneratorConfig::paper_defaults(55);
    let mut by_generate = AgrawalGenerator::new(config.clone()).unwrap();
    let ds = by_generate.generate(500);
    let by_iter: Vec<Tuple> =
        AgrawalGenerator::new(config).unwrap().take(500).collect();
    assert_eq!(ds.rows(), &by_iter[..]);
}
