//! Fault-injection replay through the public session API
//! (`cargo test --features failpoints`).
//!
//! Each test arms a deterministic failpoint schedule and drives the
//! pipeline end to end, asserting either full recovery (bit-identical to
//! the fault-free run, with the recovery tallies visible in the session
//! report) or a clean typed-error exit — never an abort, never silent
//! data corruption.
#![cfg(feature = "failpoints")]

use std::sync::Mutex;

use arcs::core::faults;
use arcs::prelude::*;

/// Failpoint state is process-global; serialise every test in this binary.
static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    faults::clear();
    g
}

fn f2_dataset(n: usize) -> Dataset {
    let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(41)).unwrap();
    gen.generate(n)
}

/// An `Arcs` with every thread knob pinned to `threads`.
fn arcs_with_threads(threads: usize) -> Arcs {
    Arcs::new(ArcsConfig {
        threads,
        optimizer: OptimizerConfig { threads, ..OptimizerConfig::default() },
        ..ArcsConfig::default()
    })
    .unwrap()
}

fn request() -> SegmentRequest {
    SegmentRequest::new("age", "salary", "group").group("A")
}

/// A panic in *every* binning shard worker, persistently: each shard
/// exhausts its retries, falls back to the sequential recompute, and the
/// merged array is still bit-identical to the fault-free run.
#[test]
fn persistent_shard_panics_recover_to_a_bit_identical_bin_array() {
    let _g = guard();
    let ds = f2_dataset(12_000);
    let clean = arcs_with_threads(4).open(&ds, request()).unwrap();
    assert_eq!(clean.report().counters.worker_panics, 0);

    faults::configure_from_spec("binner.shard=panic@1+").unwrap();
    let faulted = arcs_with_threads(4).open(&ds, request()).unwrap();
    faults::clear();

    assert_eq!(faulted.bin_array().checksum(), clean.bin_array().checksum());
    let c = &faulted.report().counters;
    assert!(c.worker_panics > 0, "no panic was recorded: {c:?}");
    assert!(
        c.sequential_fallbacks > 0,
        "persistent panics must exhaust retries into the fallback: {c:?}"
    );
}

/// A one-shot panic is absorbed by the first (bounded) retry; the
/// sequential fallback is never needed.
#[test]
fn a_transient_shard_panic_is_retried_without_fallback() {
    let _g = guard();
    let ds = f2_dataset(12_000);
    faults::configure_from_spec("binner.shard=panic@1").unwrap();
    let session = arcs_with_threads(2).open(&ds, request()).unwrap();
    faults::clear();
    let c = &session.report().counters;
    assert_eq!(c.worker_panics, 1, "{c:?}");
    assert_eq!(c.shard_retries, 1, "{c:?}");
    assert_eq!(c.sequential_fallbacks, 0, "{c:?}");
}

/// Typed faults (errors, simulated allocation failures) are deterministic,
/// so they propagate immediately as clean errors — no retry, no abort.
#[test]
fn typed_faults_surface_as_clean_errors() {
    let _g = guard();
    let ds = f2_dataset(12_000);

    faults::configure_from_spec("binner.shard=error@1").unwrap();
    let err = arcs_with_threads(2).open(&ds, request()).unwrap_err();
    assert!(
        matches!(err, ArcsError::FaultInjected { point: "binner.shard" }),
        "{err}"
    );
    faults::clear();

    faults::configure_from_spec("engine.mine=error@1").unwrap();
    let mut session = arcs_with_threads(1).open(&ds, request()).unwrap();
    let err = session.segment().unwrap_err();
    assert!(
        matches!(err, ArcsError::FaultInjected { point: "engine.mine" }),
        "{err}"
    );
    faults::clear();

    faults::configure_from_spec("smooth.pass=alloc@1").unwrap();
    let mut session = arcs_with_threads(1).open(&ds, request()).unwrap();
    let err = session.segment().unwrap_err();
    assert!(matches!(err, ArcsError::AllocationFailed { .. }), "{err}");
    faults::clear();

    faults::configure_from_spec("bitop.enumerate=alloc@1").unwrap();
    let mut session = arcs_with_threads(1).open(&ds, request()).unwrap();
    let err = session.segment().unwrap_err();
    assert!(matches!(err, ArcsError::AllocationFailed { .. }), "{err}");
    faults::clear();
}

/// A panicking evaluation worker in the parallel threshold search: the
/// point is retried after the batch joins, and the search result stays
/// bit-identical to the fault-free run.
#[test]
fn optimizer_worker_panics_recover_bit_identically() {
    let _g = guard();
    let ds = f2_dataset(12_000);
    let clean_seg = {
        let mut session = arcs_with_threads(4).open(&ds, request()).unwrap();
        session.segment().unwrap()
    };

    faults::configure_from_spec("optimizer.evaluate=panic@1").unwrap();
    let mut session = arcs_with_threads(4).open(&ds, request()).unwrap();
    let seg = session.segment().unwrap();
    assert!(faults::hits("optimizer.evaluate") > 0, "failpoint was never reached");
    faults::clear();

    assert_eq!(seg, clean_seg);
    let c = &session.report().counters;
    assert!(c.worker_panics >= 1, "{c:?}");
    assert!(c.shard_retries >= 1, "{c:?}");
}

/// Persistent panics at the stream-chunk failpoint: every chunk retries,
/// disarms, and completes; the streamed array matches the fault-free one.
#[test]
fn stream_chunk_panics_disarm_and_the_stream_completes() {
    let _g = guard();
    let ds = f2_dataset(20_000);
    let clean = arcs_with_threads(4)
        .open_stream(ds.schema(), ds.iter().cloned(), request(), &ds)
        .unwrap();

    faults::configure_from_spec("binner.stream-chunk=panic@1+").unwrap();
    let faulted = arcs_with_threads(4)
        .open_stream(ds.schema(), ds.iter().cloned(), request(), &ds)
        .unwrap();
    faults::clear();

    assert_eq!(faulted.bin_array().checksum(), clean.bin_array().checksum());
    let c = &faulted.report().counters;
    assert!(c.worker_panics > 0, "{c:?}");
    assert!(c.sequential_fallbacks > 0, "{c:?}");
}

/// The retry-accounting contract documented on `RecoveryStats`: the
/// binner and BitOp route recovery through the same
/// `exec::run_recovered` helper, so an identical persistent fault
/// schedule produces identical tallies in both stages — per failing
/// unit, `1 + MAX_SHARD_RETRIES` worker panics, `MAX_SHARD_RETRIES`
/// retries, and one sequential fallback.
#[test]
fn binner_and_bitop_tally_identical_fault_schedules_identically() {
    use arcs::core::binner::{Binner, MAX_SHARD_RETRIES};
    use arcs::core::bitop;
    use arcs::core::grid::Grid;

    let _g = guard();
    // 12_000 rows / MIN_ROWS_PER_WORKER (4_096) → exactly 2 binning
    // shards at 2 threads; the 4-row grid splits into exactly 2 stripes.
    let ds = f2_dataset(12_000);
    let schema = ds.schema().clone();
    let binner = Binner::equi_width(&schema, "age", "salary", "group", 8, 8).unwrap();
    let grid = Grid::parse("####\n####\n####\n####\n").unwrap();
    let units = 2u64; // shards and stripes alike

    faults::configure_from_spec("binner.shard=panic@1+").unwrap();
    let (_, binner_stats) = binner.bin_rows_parallel_with_stats(ds.rows(), 2).unwrap();
    faults::clear();

    faults::configure_from_spec("bitop.stripe=panic@1+").unwrap();
    let (_, bitop_stats) = bitop::enumerate_candidates_parallel_with_stats(&grid, 2);
    faults::clear();

    for (stage, stats) in [("binner", &binner_stats), ("bitop", &bitop_stats)] {
        assert_eq!(
            stats.worker_panics,
            units * (1 + MAX_SHARD_RETRIES as u64),
            "{stage}: {stats:?}"
        );
        assert_eq!(stats.shard_retries, units * MAX_SHARD_RETRIES as u64, "{stage}: {stats:?}");
        assert_eq!(stats.sequential_fallbacks, units, "{stage}: {stats:?}");
    }
    assert_eq!(
        binner_stats.faults_only(),
        bitop_stats.faults_only(),
        "the two stages diverged on an identical schedule"
    );
}

/// Satellite of the PR 10 pool port: a fault schedule hitting every
/// pooled stage (binning shards, BitOp stripes, optimizer evaluations)
/// must not wedge the shared worker pool — recovery reproduces the
/// fault-free segmentation bit-identically at every thread count, and
/// the pool keeps serving fresh sessions afterwards.
#[test]
fn pool_survives_fault_schedules_across_all_stages() {
    let _g = guard();
    let ds = f2_dataset(12_000);
    let clean_seg = {
        let mut session = arcs_with_threads(4).open(&ds, request()).unwrap();
        session.segment().unwrap()
    };

    for threads in [1, 2, 4, 8] {
        // Panic isolation is a parallel-path contract: at one thread the
        // stage failpoints sit behind the sequential early-returns (and a
        // sequential evaluation panic would rightly propagate), so the
        // optimizer clause is armed for pooled runs only.
        let spec = if threads == 1 {
            "binner.shard=panic@1+;bitop.stripe=panic@1+"
        } else {
            "binner.shard=panic@1+;bitop.stripe=panic@1+;optimizer.evaluate=panic@1"
        };
        faults::configure_from_spec(spec).unwrap();
        let mut session = arcs_with_threads(threads).open(&ds, request()).unwrap();
        let seg = session.segment().unwrap();
        faults::clear();
        assert_eq!(seg, clean_seg, "faulted run diverged at {threads} threads");
        if threads > 1 {
            let c = &session.report().counters;
            assert!(c.worker_panics > 0, "{threads} threads: {c:?}");
        }
    }

    // The pool absorbed every injected panic without losing a worker:
    // a fault-free pooled run still completes and matches.
    let mut session = arcs_with_threads(4).open(&ds, request()).unwrap();
    assert_eq!(session.segment().unwrap(), clean_seg);
    assert_eq!(session.report().counters.worker_panics, 0);
}

/// Snapshot I/O failpoints: a scheduled write or read fault surfaces as a
/// typed error, and the very next attempt round-trips the array intact.
#[test]
fn snapshot_failpoints_guard_checkpoint_io() {
    let _g = guard();
    let ds = f2_dataset(12_000);
    let session = arcs_with_threads(1).open(&ds, request()).unwrap();
    let dir = std::env::temp_dir().join("arcs-fault-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snapshot.bin");

    faults::configure_from_spec("binarray.snapshot-write=error@1").unwrap();
    let err = session.bin_array().save(&path).unwrap_err();
    assert!(
        matches!(err, ArcsError::FaultInjected { point: "binarray.snapshot-write" }),
        "{err}"
    );
    session.bin_array().save(&path).unwrap();

    faults::configure_from_spec("binarray.snapshot-read=error@1").unwrap();
    assert!(BinArray::load(&path).is_err());
    let restored = BinArray::load(&path).unwrap();
    assert_eq!(restored.checksum(), session.bin_array().checksum());
    faults::clear();
    std::fs::remove_file(&path).ok();
}
