//! Fault-injection replay through the public session API
//! (`cargo test --features failpoints`).
//!
//! Each test arms a deterministic failpoint schedule and drives the
//! pipeline end to end, asserting either full recovery (bit-identical to
//! the fault-free run, with the recovery tallies visible in the session
//! report) or a clean typed-error exit — never an abort, never silent
//! data corruption.
#![cfg(feature = "failpoints")]

use std::sync::Mutex;

use arcs::core::faults;
use arcs::prelude::*;

/// Failpoint state is process-global; serialise every test in this binary.
static LOCK: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    faults::clear();
    g
}

fn f2_dataset(n: usize) -> Dataset {
    let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(41)).unwrap();
    gen.generate(n)
}

/// An `Arcs` with every thread knob pinned to `threads`.
fn arcs_with_threads(threads: usize) -> Arcs {
    Arcs::new(ArcsConfig {
        threads,
        optimizer: OptimizerConfig { threads, ..OptimizerConfig::default() },
        ..ArcsConfig::default()
    })
    .unwrap()
}

fn request() -> SegmentRequest {
    SegmentRequest::new("age", "salary", "group").group("A")
}

/// A panic in *every* binning shard worker, persistently: each shard
/// exhausts its retries, falls back to the sequential recompute, and the
/// merged array is still bit-identical to the fault-free run.
#[test]
fn persistent_shard_panics_recover_to_a_bit_identical_bin_array() {
    let _g = guard();
    let ds = f2_dataset(12_000);
    let clean = arcs_with_threads(4).open(&ds, request()).unwrap();
    assert_eq!(clean.report().counters.worker_panics, 0);

    faults::configure_from_spec("binner.shard=panic@1+").unwrap();
    let faulted = arcs_with_threads(4).open(&ds, request()).unwrap();
    faults::clear();

    assert_eq!(faulted.bin_array().checksum(), clean.bin_array().checksum());
    let c = &faulted.report().counters;
    assert!(c.worker_panics > 0, "no panic was recorded: {c:?}");
    assert!(
        c.sequential_fallbacks > 0,
        "persistent panics must exhaust retries into the fallback: {c:?}"
    );
}

/// A one-shot panic is absorbed by the first (bounded) retry; the
/// sequential fallback is never needed.
#[test]
fn a_transient_shard_panic_is_retried_without_fallback() {
    let _g = guard();
    let ds = f2_dataset(12_000);
    faults::configure_from_spec("binner.shard=panic@1").unwrap();
    let session = arcs_with_threads(2).open(&ds, request()).unwrap();
    faults::clear();
    let c = &session.report().counters;
    assert_eq!(c.worker_panics, 1, "{c:?}");
    assert_eq!(c.shard_retries, 1, "{c:?}");
    assert_eq!(c.sequential_fallbacks, 0, "{c:?}");
}

/// Typed faults (errors, simulated allocation failures) are deterministic,
/// so they propagate immediately as clean errors — no retry, no abort.
#[test]
fn typed_faults_surface_as_clean_errors() {
    let _g = guard();
    let ds = f2_dataset(12_000);

    faults::configure_from_spec("binner.shard=error@1").unwrap();
    let err = arcs_with_threads(2).open(&ds, request()).unwrap_err();
    assert!(
        matches!(err, ArcsError::FaultInjected { point: "binner.shard" }),
        "{err}"
    );
    faults::clear();

    faults::configure_from_spec("engine.mine=error@1").unwrap();
    let mut session = arcs_with_threads(1).open(&ds, request()).unwrap();
    let err = session.segment().unwrap_err();
    assert!(
        matches!(err, ArcsError::FaultInjected { point: "engine.mine" }),
        "{err}"
    );
    faults::clear();

    faults::configure_from_spec("smooth.pass=alloc@1").unwrap();
    let mut session = arcs_with_threads(1).open(&ds, request()).unwrap();
    let err = session.segment().unwrap_err();
    assert!(matches!(err, ArcsError::AllocationFailed { .. }), "{err}");
    faults::clear();

    faults::configure_from_spec("bitop.enumerate=alloc@1").unwrap();
    let mut session = arcs_with_threads(1).open(&ds, request()).unwrap();
    let err = session.segment().unwrap_err();
    assert!(matches!(err, ArcsError::AllocationFailed { .. }), "{err}");
    faults::clear();
}

/// A panicking evaluation worker in the parallel threshold search: the
/// point is retried after the batch joins, and the search result stays
/// bit-identical to the fault-free run.
#[test]
fn optimizer_worker_panics_recover_bit_identically() {
    let _g = guard();
    let ds = f2_dataset(12_000);
    let clean_seg = {
        let mut session = arcs_with_threads(4).open(&ds, request()).unwrap();
        session.segment().unwrap()
    };

    faults::configure_from_spec("optimizer.evaluate=panic@1").unwrap();
    let mut session = arcs_with_threads(4).open(&ds, request()).unwrap();
    let seg = session.segment().unwrap();
    assert!(faults::hits("optimizer.evaluate") > 0, "failpoint was never reached");
    faults::clear();

    assert_eq!(seg, clean_seg);
    let c = &session.report().counters;
    assert!(c.worker_panics >= 1, "{c:?}");
    assert!(c.shard_retries >= 1, "{c:?}");
}

/// Persistent panics at the stream-chunk failpoint: every chunk retries,
/// disarms, and completes; the streamed array matches the fault-free one.
#[test]
fn stream_chunk_panics_disarm_and_the_stream_completes() {
    let _g = guard();
    let ds = f2_dataset(20_000);
    let clean = arcs_with_threads(4)
        .open_stream(ds.schema(), ds.iter().cloned(), request(), &ds)
        .unwrap();

    faults::configure_from_spec("binner.stream-chunk=panic@1+").unwrap();
    let faulted = arcs_with_threads(4)
        .open_stream(ds.schema(), ds.iter().cloned(), request(), &ds)
        .unwrap();
    faults::clear();

    assert_eq!(faulted.bin_array().checksum(), clean.bin_array().checksum());
    let c = &faulted.report().counters;
    assert!(c.worker_panics > 0, "{c:?}");
    assert!(c.sequential_fallbacks > 0, "{c:?}");
}

/// Snapshot I/O failpoints: a scheduled write or read fault surfaces as a
/// typed error, and the very next attempt round-trips the array intact.
#[test]
fn snapshot_failpoints_guard_checkpoint_io() {
    let _g = guard();
    let ds = f2_dataset(12_000);
    let session = arcs_with_threads(1).open(&ds, request()).unwrap();
    let dir = std::env::temp_dir().join("arcs-fault-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("snapshot.bin");

    faults::configure_from_spec("binarray.snapshot-write=error@1").unwrap();
    let err = session.bin_array().save(&path).unwrap_err();
    assert!(
        matches!(err, ArcsError::FaultInjected { point: "binarray.snapshot-write" }),
        "{err}"
    );
    session.bin_array().save(&path).unwrap();

    faults::configure_from_spec("binarray.snapshot-read=error@1").unwrap();
    assert!(BinArray::load(&path).is_err());
    let restored = BinArray::load(&path).unwrap();
    assert_eq!(restored.checksum(), session.bin_array().checksum());
    faults::clear();
    std::fs::remove_file(&path).ok();
}
