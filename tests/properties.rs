//! Property-based tests (proptest) for the core data structures and
//! invariants: the bitmap grid, BitOp cover properties, binning, the
//! BinArray/engine consistency, MDL monotonicity, and the verifier.

use proptest::collection::vec;
use proptest::prelude::*;

use arcs::core::bitop::{self, BitOpConfig};
use arcs::core::cover::{connected_components, optimal_cover};
use arcs::core::engine::{
    mine_rules, mine_rules_indexed, mine_rules_reference, rule_grid, support_grid,
};
use arcs::core::grid::{for_each_run, for_each_run_reference};
use arcs::core::index::{DeltaMiner, OccupancyIndex};
use arcs::core::mdl::{mdl_cost, MdlWeights};
use arcs::core::smooth::{smooth, smooth_reference, BorderMode, Kernel, SmoothConfig};
use arcs::prelude::*;

/// Strategy: a small random grid as (width, height, cell bits).
fn grid_strategy() -> impl Strategy<Value = Grid> {
    (1usize..80, 1usize..20).prop_flat_map(|(w, h)| {
        vec(any::<bool>(), w * h).prop_map(move |bits| {
            let mut grid = Grid::new(w, h).unwrap();
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    grid.set(i % w, i / w);
                }
            }
            grid
        })
    })
}

/// Strategy: grids whose widths straddle the 64-bit word boundary, plus
/// degenerate 1xN / Nx1 shapes — the cases a word-level kernel gets wrong
/// first (cross-word carries, tail masks, single-row neighbourhoods).
fn wide_grid_strategy() -> impl Strategy<Value = Grid> {
    (0usize..4, 50usize..140, 1usize..8)
        .prop_map(|(shape, big, small)| match shape {
            0 => (big, small),       // straddles the word boundary
            1 => (1, small + 1),     // single column
            2 => (big, 1),           // single row
            _ => (small, small),     // tiny square (1x1 included)
        })
        .prop_flat_map(|(w, h)| {
            vec(any::<bool>(), w * h).prop_map(move |bits| {
                let mut grid = Grid::new(w, h).unwrap();
                for (i, &b) in bits.iter().enumerate() {
                    if b {
                        grid.set(i % w, i / w);
                    }
                }
                grid
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BitOp without pruning is an exact cover: clusters are disjoint,
    /// every cluster cell is set, and the union equals the set cells.
    #[test]
    fn bitop_is_an_exact_disjoint_cover(grid in grid_strategy()) {
        let config = BitOpConfig {
            min_area_fraction: 0.0,
            min_area_cells: 1,
            max_clusters: 100_000,
            threads: 1,
        };
        let clusters = bitop::cluster(&grid, &config).unwrap();
        // Disjoint.
        for (i, a) in clusters.iter().enumerate() {
            for b in &clusters[i + 1..] {
                prop_assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
            }
        }
        // Exact cover.
        let covered: usize = clusters.iter().map(Rect::area).sum();
        prop_assert_eq!(covered, grid.count_ones());
        for rect in &clusters {
            prop_assert!(grid.rect_is_full(*rect));
        }
    }

    /// On small grids BitOp's greedy cover never uses fewer rectangles
    /// than the exact optimum, and stays within the greedy set-cover
    /// guarantee in practice (we assert a loose 3x bound; measured average
    /// is ~1.01x, see `exp_clusterer_quality`).
    #[test]
    fn bitop_respects_the_optimal_cover_oracle(
        bits in vec(any::<bool>(), 36..=36),
    ) {
        let mut grid = Grid::new(6, 6).unwrap();
        for (i, &b) in bits.iter().enumerate() {
            if b {
                grid.set(i % 6, i / 6);
            }
        }
        let optimal = optimal_cover(&grid).unwrap();
        let greedy = bitop::cluster(
            &grid,
            &BitOpConfig { min_area_fraction: 0.0, min_area_cells: 1, ..BitOpConfig::default() },
        )
        .unwrap();
        prop_assert!(greedy.len() >= optimal.len());
        if !optimal.is_empty() {
            prop_assert!(greedy.len() <= optimal.len() * 3);
        }
    }

    /// Connected components partition the set cells: every set cell lies
    /// in exactly one component's bounding box... (boxes may overlap on
    /// unset cells, so we check membership by flood identity instead:
    /// total boxes ≤ set cells, and every set cell is inside some box).
    #[test]
    fn connected_components_cover_every_set_cell(grid in grid_strategy()) {
        let comps = connected_components(&grid);
        prop_assert!(comps.len() <= grid.count_ones());
        for (x, y) in grid.iter_set() {
            prop_assert!(comps.iter().any(|r| r.contains(x, y)));
        }
    }

    /// Candidate enumeration only returns rectangles fully set in the grid.
    #[test]
    fn bitop_candidates_are_fully_set(grid in grid_strategy()) {
        for rect in bitop::enumerate_candidates(&grid) {
            prop_assert!(grid.rect_is_full(rect), "candidate {rect:?} not full");
        }
    }

    /// Run extraction reconstructs the exact bit pattern of a row mask.
    #[test]
    fn runs_reconstruct_the_mask(bits in vec(any::<bool>(), 1..200)) {
        let width = bits.len();
        let mut words = vec![0u64; width.div_ceil(64)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        let mut reconstructed = vec![false; width];
        for_each_run(&words, width, |x0, x1| {
            reconstructed[x0..=x1].fill(true);
        });
        prop_assert_eq!(reconstructed, bits);
    }

    /// The tz-skipping run extractor is bit-identical to the
    /// bit-at-a-time reference on arbitrary masks — same runs, in the
    /// same order, including runs that carry across 64-bit word
    /// boundaries and tail widths that are not word multiples.
    #[test]
    fn run_extraction_matches_the_reference(
        words in vec(any::<u64>(), 1..5),
        tail in 1usize..=64,
    ) {
        let width = (words.len() - 1) * 64 + tail;
        let mut fast = Vec::new();
        for_each_run(&words, width, |x0, x1| fast.push((x0, x1)));
        let mut slow = Vec::new();
        for_each_run_reference(&words, width, |x0, x1| slow.push((x0, x1)));
        prop_assert_eq!(fast, slow, "width {}, words {:?}", width, words);
    }

    /// The word-parallel candidate scan is bit-identical to the branchy
    /// scalar reference on arbitrary grids — same rectangles, in the
    /// same order — including word-straddling widths and degenerate
    /// single-row / single-column shapes.
    #[test]
    fn candidate_enumeration_matches_the_reference(grid in wide_grid_strategy()) {
        prop_assert_eq!(
            bitop::enumerate_candidates(&grid),
            bitop::enumerate_candidates_reference(&grid)
        );
    }

    /// Equi-width binning: every value maps into a bin whose range
    /// contains it (up to the closed last bin).
    #[test]
    fn equi_width_bin_contains_value(
        lo in -1e6f64..1e6,
        width in 1e-3f64..1e6,
        n_bins in 1usize..200,
        t in 0.0f64..1.0,
    ) {
        let hi = lo + width;
        let map = BinMap::equi_width(lo, hi, n_bins).unwrap();
        let v = lo + t * width;
        let b = map.bin_of_value(v);
        prop_assert!(b < n_bins);
        let (blo, bhi) = map.range(b).unwrap();
        prop_assert!(
            (blo <= v && v < bhi) || (b == n_bins - 1 && v >= bhi),
            "value {v} not in bin {b} = [{blo}, {bhi})"
        );
    }

    /// Equi-depth binning: bins are non-empty intervals in ascending order
    /// and every input value maps to a valid bin.
    #[test]
    fn equi_depth_bins_are_ordered(values in vec(-1e6f64..1e6, 1..300), n in 1usize..20) {
        let map = BinMap::equi_depth(&values, n).unwrap();
        prop_assert!(map.n_bins() >= 1 && map.n_bins() <= n);
        let mut prev_hi = f64::NEG_INFINITY;
        for b in 0..map.n_bins() {
            let (lo, hi) = map.range(b).unwrap();
            prop_assert!(lo < hi);
            prop_assert!(lo >= prev_hi);
            prev_hi = hi;
        }
        for &v in &values {
            prop_assert!(map.bin_of_value(v) < map.n_bins());
        }
    }

    /// BinArray bookkeeping: group counts sum to cell totals, totals sum
    /// to the tuple count, support/confidence stay in [0, 1].
    #[test]
    fn binarray_counts_are_consistent(
        adds in vec((0usize..6, 0usize..6, 0u32..3), 0..300),
    ) {
        let mut ba = BinArray::new(6, 6, 3).unwrap();
        for &(x, y, g) in &adds {
            ba.add(x, y, g);
        }
        prop_assert_eq!(ba.n_tuples(), adds.len() as u64);
        let mut total = 0u64;
        for y in 0..6 {
            for x in 0..6 {
                let cell: u32 = (0..3).map(|g| ba.group_count(x, y, g)).sum();
                prop_assert_eq!(cell, ba.cell_total(x, y));
                total += ba.cell_total(x, y) as u64;
                for g in 0..3 {
                    let s = ba.support(x, y, g);
                    let c = ba.confidence(x, y, g);
                    prop_assert!((0.0..=1.0).contains(&s));
                    prop_assert!((0.0..=1.0).contains(&c));
                }
            }
        }
        prop_assert_eq!(total, ba.n_tuples());
    }

    /// Engine consistency: `rule_grid` sets exactly the cells `mine_rules`
    /// returns, and tightening either threshold shrinks the rule set.
    #[test]
    fn engine_grid_matches_rules_and_is_monotone(
        adds in vec((0usize..6, 0usize..6, 0u32..2), 1..300),
        s1 in 0.0f64..0.3, s2 in 0.0f64..0.3,
        c1 in 0.0f64..1.0, c2 in 0.0f64..1.0,
    ) {
        let mut ba = BinArray::new(6, 6, 2).unwrap();
        for &(x, y, g) in &adds {
            ba.add(x, y, g);
        }
        let (s_lo, s_hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let (c_lo, c_hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };

        let t = Thresholds::new(s_lo, c_lo).unwrap();
        let rules = mine_rules(&ba, 0, t);
        let grid = rule_grid(&ba, 0, t).unwrap();
        let from_rules: std::collections::HashSet<_> =
            rules.iter().map(|r| (r.x, r.y)).collect();
        let from_grid: std::collections::HashSet<_> = grid.iter_set().collect();
        prop_assert_eq!(&from_rules, &from_grid);

        let tighter_s = mine_rules(&ba, 0, Thresholds::new(s_hi, c_lo).unwrap());
        let tighter_c = mine_rules(&ba, 0, Thresholds::new(s_lo, c_hi).unwrap());
        prop_assert!(tighter_s.len() <= rules.len());
        prop_assert!(tighter_c.len() <= rules.len());
        // Subset, not just smaller.
        let set_s: std::collections::HashSet<_> =
            tighter_s.iter().map(|r| (r.x, r.y)).collect();
        prop_assert!(set_s.is_subset(&from_rules));
    }

    /// Support grid entries are the per-cell supports and sum to the
    /// group's share of the data.
    #[test]
    fn support_grid_sums_to_group_share(
        adds in vec((0usize..5, 0usize..5, 0u32..2), 1..200),
    ) {
        let mut ba = BinArray::new(5, 5, 2).unwrap();
        for &(x, y, g) in &adds {
            ba.add(x, y, g);
        }
        let sg = support_grid(&ba, 0);
        let total: f64 = sg.iter().sum();
        let group0 = adds.iter().filter(|&&(_, _, g)| g == 0).count() as f64;
        prop_assert!((total - group0 / adds.len() as f64).abs() < 1e-9);
    }

    /// MDL cost is monotone in both arguments and respects the weights.
    #[test]
    fn mdl_is_monotone(c1 in 1usize..1000, c2 in 1usize..1000,
                       e1 in 1usize..100_000, e2 in 1usize..100_000) {
        let w = MdlWeights::default();
        let (c_lo, c_hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let (e_lo, e_hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        prop_assert!(mdl_cost(c_lo, e_lo, w) <= mdl_cost(c_hi, e_lo, w) + 1e-12);
        prop_assert!(mdl_cost(c_lo, e_lo, w) <= mdl_cost(c_lo, e_hi, w) + 1e-12);
    }

    /// Smoothing never panics and its output density change is bounded by
    /// the neighbourhood argument: a completely empty grid stays empty and
    /// a full grid keeps its interior.
    #[test]
    fn smoothing_boundary_behaviour(w in 3usize..40, h in 3usize..12) {
        let empty = Grid::new(w, h).unwrap();
        let smoothed = smooth(&empty, &SmoothConfig::default()).unwrap();
        prop_assert!(smoothed.is_empty());

        let mut full = Grid::new(w, h).unwrap();
        full.set_rect(Rect { x0: 0, y0: 0, x1: w - 1, y1: h - 1 });
        let smoothed = smooth(&full, &SmoothConfig::default()).unwrap();
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                prop_assert!(smoothed.get(x, y), "interior ({x},{y}) eroded");
            }
        }
    }

    /// The low-pass filter is monotone: adding set cells to the input can
    /// only add (never remove) set cells in the output — every
    /// neighbourhood sum is non-decreasing under insertion.
    #[test]
    fn smoothing_is_monotone(grid in grid_strategy(), extra in vec(any::<bool>(), 0..40)) {
        let mut bigger = grid.clone();
        let (w, h) = (grid.width(), grid.height());
        for (i, &b) in extra.iter().enumerate() {
            if b {
                bigger.set((i * 7) % w, (i * 3) % h);
            }
        }
        let small_smoothed = smooth(&grid, &SmoothConfig::default()).unwrap();
        let big_smoothed = smooth(&bigger, &SmoothConfig::default()).unwrap();
        for (x, y) in small_smoothed.iter_set() {
            prop_assert!(
                big_smoothed.get(x, y),
                "cell ({x},{y}) lost by adding input cells"
            );
        }
    }

    /// The classifier's exact-binomial pessimistic bound really is the
    /// inverse CDF: evaluating the binomial CDF at the returned rate gives
    /// back the confidence factor.
    #[test]
    fn pessimistic_bound_inverts_the_binomial_cdf(
        n in 1usize..60,
        e_frac in 0.0f64..1.0,
        cf in 0.05f64..0.95,
    ) {
        let errors = ((n as f64 * e_frac) as usize).min(n.saturating_sub(1));
        let bound = arcs::classifier::tree::pessimistic_errors(errors, n, cf);
        let p = bound / n as f64;
        prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
        if cf <= 0.5 {
            // At C4.5-style confidence factors the bound is pessimistic:
            // at least the observed rate.
            prop_assert!(p >= errors as f64 / n as f64 - 1e-9);
        }
        // Brute-force CDF at p.
        let mut cdf = 0.0;
        let mut term = (1.0 - p).powi(n as i32); // C(n,0) p^0 q^n
        for i in 0..=errors {
            cdf += term;
            term *= (n - i) as f64 / (i + 1) as f64 * p / (1.0 - p);
        }
        prop_assert!((cdf - cf).abs() < 1e-3, "CDF({p}) = {cdf}, cf = {cf}");
    }

    /// CSV write/read round-trips arbitrary valid datasets exactly
    /// (Rust's shortest-representation float formatting is lossless).
    #[test]
    fn csv_roundtrip_is_lossless(
        rows in vec((0.0f64..100.0, 0u32..3), 1..60),
    ) {
        let schema = Schema::new(vec![
            Attribute::quantitative("x", 0.0, 100.0),
            Attribute::categorical("g", ["a", "b", "c"]),
        ]).unwrap();
        let mut ds = Dataset::new(schema.clone());
        for &(x, g) in &rows {
            ds.push(vec![Value::Quant(x), Value::Cat(g)]).unwrap();
        }
        let mut buf = Vec::new();
        arcs::data::csv::write_csv(&ds, &mut buf).unwrap();
        let back = arcs::data::csv::read_csv(schema, &buf[..]).unwrap();
        prop_assert_eq!(back.rows(), ds.rows());
    }

    /// SQL predicates always quote the attribute names and bound both
    /// ranges, whatever characters the names contain.
    #[test]
    fn sql_predicates_quote_safely(name in "[a-z\"']{1,12}") {
        use arcs::core::sql::SqlPredicate;
        let rule = arcs::core::ClusteredRule {
            x_attr: name.clone(),
            x_range: (1.0, 2.0),
            y_attr: "y".into(),
            y_range: (3.0, 4.0),
            criterion_attr: "g".into(),
            group_label: "A".into(),
            rect: Rect { x0: 0, y0: 0, x1: 0, y1: 0 },
            support: 0.0,
            confidence: 0.0,
        };
        let sql = rule.to_sql_where();
        // The doubled-quote escape keeps the identifier intact.
        let quoted = format!("\"{}\"", name.replace('"', "\"\""));
        prop_assert!(sql.contains(&quoted), "{sql}");
        prop_assert!(sql.contains(">= 1"));
        prop_assert!(sql.contains("< 2"));
    }

    /// Sharded parallel binning merges to the exact same `BinArray` as the
    /// sequential pass — same counts, same checksum — for arbitrary
    /// datasets and thread counts, in both the slice and stream forms.
    #[test]
    fn parallel_binning_matches_sequential(
        rows in vec((0.0f64..50.0, 0.0f64..50.0, 0u32..3), 1..400),
        threads in 2usize..6,
    ) {
        let schema = Schema::new(vec![
            Attribute::quantitative("x", 0.0, 50.0),
            Attribute::quantitative("y", 0.0, 50.0),
            Attribute::categorical("g", ["a", "b", "c"]),
        ]).unwrap();
        let mut ds = Dataset::new(schema.clone());
        for &(x, y, g) in &rows {
            ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(g)]).unwrap();
        }
        let binner = Binner::equi_width(&schema, "x", "y", "g", 8, 8).unwrap();
        let sequential = binner.bin_rows(ds.iter()).unwrap();
        let parallel = binner.bin_rows_parallel(ds.rows(), threads).unwrap();
        prop_assert_eq!(&parallel, &sequential);
        prop_assert_eq!(parallel.checksum(), sequential.checksum());
        let streamed = binner.bin_stream_parallel(ds.iter().cloned(), threads).unwrap();
        prop_assert_eq!(&streamed, &sequential);
    }

    /// The output-sensitive miners agree bit-for-bit with the naive
    /// full-scan reference on arbitrary bin arrays, and the delta miner
    /// stays exact along an arbitrary threshold walk (the Figure-10
    /// optimizer access pattern: many small threshold moves on one array).
    #[test]
    fn indexed_and_delta_mining_match_the_reference(
        adds in vec((0usize..7, 0usize..5, 0u32..3), 0..250),
        walk in vec((0.0f64..0.2, 0.0f64..1.0), 1..8),
    ) {
        let mut ba = BinArray::new(7, 5, 3).unwrap();
        for &(x, y, g) in &adds {
            ba.add(x, y, g);
        }
        let index = OccupancyIndex::build(&ba);
        prop_assert!(index.matches(&ba));
        for gk in 0..3u32 {
            let mut delta = DeltaMiner::new(&index, gk).unwrap();
            for &(s, c) in &walk {
                let t = Thresholds::new(s, c).unwrap();
                let (visited, _) = delta.update(&index, t);
                // A cell can be touched through both the count range and
                // the confidence range of one move, so touches are bounded
                // by twice the group's occupied cells — never the full grid.
                prop_assert!(
                    visited <= 2 * index.group_cells(gk).len() as u64,
                    "delta visited {visited} cells, group has only {}",
                    index.group_cells(gk).len()
                );
                prop_assert_eq!(delta.grid(), &rule_grid(&ba, gk, t).unwrap());
                let (rules, full) = mine_rules_indexed(&index, gk, t);
                prop_assert_eq!(&rules, &mine_rules_reference(&ba, gk, t));
                prop_assert_eq!(full, index.group_cells(gk).len() as u64);
            }
        }
    }

    /// The word-parallel smoothing kernel is bit-identical to the scalar
    /// reference for every kernel, border mode, pass count, and threshold —
    /// including widths that are not multiples of 64 and degenerate
    /// single-row / single-column grids.
    #[test]
    fn word_smoothing_matches_the_scalar_reference(
        grid in wide_grid_strategy(),
        threshold in 0.0f64..1.0,
        passes in 0usize..4,
        kernel_box in any::<bool>(),
        in_bounds in any::<bool>(),
    ) {
        let config = SmoothConfig {
            kernel: if kernel_box { Kernel::Box3 } else { Kernel::Gaussian3 },
            threshold,
            passes,
            border: if in_bounds { BorderMode::InBounds } else { BorderMode::FullKernel },
        };
        let fast = smooth(&grid, &config).unwrap();
        let slow = smooth_reference(&grid, &config).unwrap();
        prop_assert_eq!(&fast, &slow, "config: {:?}", config);
    }

    /// Tuples generated by any Agrawal function always validate against
    /// the schema, and labels are within the group cardinality.
    #[test]
    fn generator_tuples_always_validate(seed in 0u64..1000, func_idx in 0usize..10) {
        let config = GeneratorConfig {
            function: AgrawalFunction::ALL[func_idx],
            ..GeneratorConfig::paper_defaults(seed)
        };
        let mut gen = AgrawalGenerator::new(config).unwrap();
        let schema = arcs::data::agrawal::schema();
        for t in gen.by_ref().take(50) {
            prop_assert!(Tuple::validated(t.values().to_vec(), &schema).is_ok());
        }
    }
}
