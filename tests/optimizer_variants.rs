//! Cross-crate integration of the three threshold-search strategies on the
//! paper's real workload: the §3.7 hill climb, §5 simulated annealing, and
//! §5 factorial design must all recover the Function 2 structure.

use arcs::core::anneal::{anneal, AnnealConfig};
use arcs::core::factorial::{factorial_search, FactorialConfig};
use arcs::core::optimizer::{optimize, OptimizerConfig};
use arcs::prelude::*;

fn setup() -> (Dataset, Binner) {
    let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(31)).unwrap();
    let ds = gen.generate(25_000);
    let binner =
        Binner::equi_width(ds.schema(), "age", "salary", "group", 50, 50).unwrap();
    (ds, binner)
}

#[test]
fn all_three_searches_recover_compact_segmentations_on_f2() {
    let (ds, binner) = setup();
    let array = binner.bin_rows(ds.iter()).unwrap();
    let sample: Vec<&Tuple> = ds.rows().iter().take(2_000).collect();

    // Depending on sample noise a search may legitimately prefer a
    // slightly coarser or finer MDL optimum than the three generating
    // disjuncts (exact-3 recovery is asserted at verified seeds in
    // end_to_end.rs); here we require every strategy to land on a compact,
    // high-recall segmentation.
    let compact = 2..=5;
    let hill = optimize(&array, 0, &binner, &sample, &OptimizerConfig::default()).unwrap();
    assert!(
        compact.contains(&hill.best.clusters.len()),
        "hill climb: {:?}",
        hill.best.clusters
    );

    let annealed = anneal(
        &array,
        0,
        &binner,
        &sample,
        &AnnealConfig { steps: 120, seed: 5, ..AnnealConfig::default() },
    )
    .unwrap();
    assert!(
        compact.contains(&annealed.best.clusters.len()),
        "annealing: {:?}",
        annealed.best.clusters
    );

    let factorial =
        factorial_search(&array, 0, &binner, &sample, &FactorialConfig::default()).unwrap();
    assert!(
        compact.contains(&factorial.best.clusters.len()),
        "factorial: {:?}",
        factorial.best.clusters
    );

    // All of them must reach high recall of the group sample.
    for (name, result) in [
        ("hill", &hill),
        ("anneal", &annealed),
        ("factorial", &factorial),
    ] {
        assert!(
            result.best.errors.recall() > 0.8,
            "{name} recall {}",
            result.best.errors.recall()
        );
    }
}

#[test]
fn factorial_needs_fewer_evaluations() {
    let (ds, binner) = setup();
    let array = binner.bin_rows(ds.iter()).unwrap();
    let sample: Vec<&Tuple> = ds.rows().iter().take(2_000).collect();

    let hill = optimize(&array, 0, &binner, &sample, &OptimizerConfig::default()).unwrap();
    let factorial =
        factorial_search(&array, 0, &binner, &sample, &FactorialConfig::default()).unwrap();
    assert!(
        factorial.trace.len() * 2 <= hill.trace.len(),
        "factorial {} evals vs hill {} — expected at least a 2x saving",
        factorial.trace.len(),
        hill.trace.len()
    );
    // And an MDL cost in the same ballpark (within 20%).
    assert!(
        factorial.best.score.cost <= hill.best.score.cost * 1.2,
        "factorial cost {} vs hill {}",
        factorial.best.score.cost,
        hill.best.score.cost
    );
}

#[test]
fn traces_expose_the_search_path() {
    let (ds, binner) = setup();
    let array = binner.bin_rows(ds.iter()).unwrap();
    let sample: Vec<&Tuple> = ds.rows().iter().take(1_000).collect();
    let result = optimize(&array, 0, &binner, &sample, &OptimizerConfig::default()).unwrap();
    assert!(!result.trace.is_empty());
    // The best evaluation appears in the trace.
    assert!(result.trace.contains(&result.best));
    // Support thresholds are non-decreasing along the trace (the paper's
    // low-to-high walk).
    let supports: Vec<f64> = result.trace.iter().map(|e| e.thresholds.min_support).collect();
    assert!(supports.windows(2).all(|w| w[0] <= w[1] + 1e-12));
}
