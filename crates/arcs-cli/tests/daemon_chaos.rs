//! Kill-and-recover chaos proofs for `arcs daemon --data-dir`: a child
//! daemon *process* is killed with SIGKILL mid-append-stream (and, with
//! the `failpoints` feature, while injected WAL faults fire), restarted
//! on the same data directory, and must answer every query bit-identical
//! to an in-process oracle that saw only the durable prefix.
//!
//! The durability contract under test:
//!
//! * every **acknowledged** append survives the kill (acked ≤ recovered
//!   epoch);
//! * at most the one **in-flight** append may additionally land
//!   (recovered epoch ≤ acked + 1) — never a half-applied batch, never
//!   a phantom;
//! * `arcs fsck` classifies whatever the kill left behind and
//!   `--repair` brings the directory back to exit-code 0.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use arcs_core::engine::Thresholds;
use arcs_core::request::Request;
use arcs_core::serve::{ClusterSpec, QueryResult, ServeConfig};
use arcs_core::smooth::SmoothConfig;
use arcs_core::BitOpConfig;
use arcs_daemon::registry::{Tenant, TenantConfig};
use arcs_daemon::{Client, RetryPolicy};

fn arcs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_arcs"))
}

/// A scratch directory that removes itself.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "arcs-chaos-{tag}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills the child on drop so a failing assertion never leaks a daemon.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// The base dataset: a 10×10 grid with a dense group-A block, written
/// as a real CSV file so the child daemon infers the same schema the
/// oracle loads.
fn write_base_csv(path: &Path) {
    let mut text = String::from("x,y,g\n");
    for ix in 0..10usize {
        for iy in 0..10usize {
            let inside = (2..5).contains(&ix) && (2..5).contains(&iy);
            for _ in 0..if inside { 6 } else { 1 } {
                text.push_str(&format!(
                    "{}.5,{}.5,{}\n",
                    ix,
                    iy,
                    if inside { "A" } else { "other" }
                ));
            }
        }
    }
    std::fs::write(path, text).unwrap();
}

/// Header-less append batch `k` — 5 rows, distinct per `k`, inside the
/// base data's value ranges so binning never rejects them.
fn batch(k: u64) -> String {
    let mut rows = String::new();
    for i in 0..5 {
        let x = ((k + i) % 10) as f64 + 0.5;
        let y = ((k * 3 + i) % 10) as f64 + 0.5;
        rows.push_str(&format!("{x},{y},{}\n", if i % 2 == 0 { "A" } else { "other" }));
    }
    rows
}

/// The query sweep both the recovered daemon and the oracle must agree
/// on — with and without clustering.
fn sweep() -> Vec<Request> {
    let thresholds = Thresholds::new(0.01, 0.5).unwrap();
    vec![
        Request::new().group("A").thresholds(thresholds),
        Request::new().group("A").thresholds(thresholds).cluster(ClusterSpec {
            smoothing: SmoothConfig::disabled(),
            bitop: BitOpConfig::no_pruning(),
        }),
    ]
}

/// Spawns `arcs daemon` on the given data dir, returning the child and
/// the address it bound (read from the port file: the readiness signal).
fn spawn_daemon(data_dir: &Path, base_csv: Option<&Path>, failpoints: Option<&str>) -> (Reaper, String) {
    static PORT_FILE: AtomicU64 = AtomicU64::new(0);
    let pf = std::env::temp_dir().join(format!(
        "arcs-chaos-port-{}-{}",
        std::process::id(),
        PORT_FILE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&pf);

    let mut cmd = arcs();
    cmd.args(["daemon", "--listen", "127.0.0.1:0"])
        .args(["--data-dir", data_dir.to_str().unwrap()])
        .args(["--checkpoint-every", "4", "--checkpoint-interval-ms", "10"])
        .args(["--port-file", pf.to_str().unwrap()])
        .args(["--max-seconds", "120"])
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(csv) = base_csv {
        // --max-categories 4: x and y (10 distinct values) overflow into
        // quantitative attributes; g (2 labels) stays categorical.
        cmd.args(["--datasets", &format!("t={}", csv.display())])
            .args(["--x", "x", "--y", "y", "--criterion", "g", "--bins", "10"])
            .args(["--max-categories", "4"]);
    }
    if let Some(schedule) = failpoints {
        cmd.env("ARCS_FAILPOINTS", schedule);
    }
    let child = Reaper(cmd.spawn().expect("daemon child spawns"));

    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&pf) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                break text;
            }
        }
        assert!(Instant::now() < deadline, "daemon never wrote its port file");
        std::thread::sleep(Duration::from_millis(10));
    };
    let _ = std::fs::remove_file(&pf);
    (child, addr)
}

fn connect(addr: &str) -> Client {
    // Exercises the client's bounded-backoff retry on the (racy)
    // just-restarted daemon.
    Client::connect_with_retry(addr, RetryPolicy::new(5)).expect("client connects")
}

/// In-process oracle: the base CSV loaded the way the daemon loads it,
/// plus exactly the durable batches, queried through the library.
fn oracle_results(base_csv: &Path, batches: &[u64]) -> (u64, Vec<QueryResult>) {
    let ds = arcs_data::csv::load_csv_inferred(base_csv, 4).unwrap();
    let config = TenantConfig {
        n_x_bins: 10,
        n_y_bins: 10,
        serve: ServeConfig { retry_backoff: Duration::ZERO, ..ServeConfig::default() },
        ..TenantConfig::new("x", "y", "g")
    };
    let tenant = Tenant::from_dataset("t", &ds, &config).unwrap();
    for &k in batches {
        tenant.append_csv(&batch(k)).unwrap();
    }
    let results = sweep()
        .iter()
        .map(|request| {
            (*tenant.server().query_unified(request, tenant.labels()).unwrap().result).clone()
        })
        .collect();
    (tenant.server().snapshot().array().n_tuples(), results)
}

/// Runs `arcs fsck` on the directory; returns (exit code, stdout JSON).
fn run_fsck(data_dir: &Path, repair: bool) -> (i32, String) {
    let mut cmd = arcs();
    cmd.args(["fsck", "--data-dir", data_dir.to_str().unwrap()]);
    if repair {
        cmd.arg("--repair");
    }
    let out = cmd.output().expect("fsck runs");
    (out.status.code().unwrap_or(-1), String::from_utf8_lossy(&out.stdout).into_owned())
}

/// Audits the kill site, repairs if needed, and asserts the repair took.
fn fsck_heals(data_dir: &Path) {
    let (code, report) = run_fsck(data_dir, false);
    assert!(report.contains("\"tenants\""), "fsck printed no report: {report}");
    if code != 0 {
        let (code, report) = run_fsck(data_dir, true);
        assert_eq!(code, 0, "fsck --repair did not heal: {report}");
        let (code, report) = run_fsck(data_dir, false);
        assert_eq!(code, 0, "directory still dirty after repair: {report}");
    }
}

/// Restarts on the data dir and checks the recovered daemon against the
/// oracle: epoch in [acked, acked + in-flight], every sweep query
/// bit-identical, tuple counts equal.
fn assert_recovery(
    data_dir: &Path,
    base_csv: &Path,
    acked: &[u64],
    in_flight: Option<u64>,
) {
    let (_child, addr) = spawn_daemon(data_dir, None, None);
    let mut client = connect(&addr);
    let info = client.open("t").expect("recovered tenant serves");

    let candidates: Vec<u64> =
        acked.iter().copied().chain(in_flight).collect();
    let floor = acked.len() as u64;
    assert!(
        info.epoch >= floor && info.epoch <= candidates.len() as u64,
        "recovered epoch {} outside [{floor}, {}]: an acked append was lost \
         or a phantom appeared",
        info.epoch,
        candidates.len(),
    );

    let durable = &candidates[..info.epoch as usize];
    let (expect_tuples, expected) = oracle_results(base_csv, durable);
    assert_eq!(info.n_tuples, expect_tuples, "tuple count diverged from oracle");
    for (i, request) in sweep().iter().enumerate() {
        let outcome = client.query(request).expect("recovered query");
        assert_eq!(outcome.result.epoch, info.epoch);
        assert_eq!(
            outcome.result, expected[i],
            "sweep request {i} differs from the durable-prefix oracle",
        );
    }
    let _ = client.close();
}

/// The headline proof: SIGKILL lands mid-append-stream (a racing killer
/// thread), fsck classifies and heals the wreckage, and the restarted
/// daemon serves exactly the durable prefix.
#[test]
fn sigkill_mid_append_stream_recovers_the_durable_prefix() {
    let data = TempDir::new("sigkill");
    let base_csv = data.path().join("base.csv");
    write_base_csv(&base_csv);

    let (child, addr) = spawn_daemon(data.path(), Some(&base_csv), None);
    let mut client = connect(&addr);
    client.open("t").unwrap();

    // The killer fires while the main thread streams appends as fast as
    // the wire allows: the SIGKILL lands between, or inside, an append.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(80));
        let mut child = child;
        let _ = child.0.kill();
        let _ = child.0.wait();
    });

    let mut acked: Vec<u64> = Vec::new();
    let mut in_flight = None;
    for k in 0..100_000u64 {
        match client.append(None, &batch(k)) {
            Ok((epoch, rows)) => {
                assert_eq!((epoch, rows), (acked.len() as u64 + 1, 5));
                acked.push(k);
            }
            Err(_) => {
                // Sent but unacknowledged: durable iff its WAL record hit
                // the disk before the kill.
                in_flight = Some(k);
                break;
            }
        }
    }
    killer.join().unwrap();
    assert!(in_flight.is_some(), "the kill never interrupted the stream");
    assert!(!acked.is_empty(), "no append was acknowledged before the kill");

    fsck_heals(data.path());
    assert_recovery(data.path(), &base_csv, &acked, in_flight);
}

/// A second kill cycle on the *same* directory: recovery must compose —
/// checkpoint + WAL from run 1, more appends, another SIGKILL, and the
/// third incarnation still matches the oracle.
#[test]
fn repeated_kill_cycles_compose() {
    let data = TempDir::new("cycles");
    let base_csv = data.path().join("base.csv");
    write_base_csv(&base_csv);

    let mut acked: Vec<u64> = Vec::new();
    let mut next_k = 0u64;
    for cycle in 0..2 {
        let (child, addr) =
            spawn_daemon(data.path(), (cycle == 0).then_some(base_csv.as_path()), None);
        let mut client = connect(&addr);
        let info = client.open("t").unwrap();
        // Earlier acked appends must all have survived the last cycle;
        // an unacknowledged in-flight batch may have landed too.
        assert!(info.epoch >= acked.len() as u64, "cycle {cycle} lost acked appends");
        while info.epoch > acked.len() as u64 {
            acked.push(next_k);
            next_k += 1;
        }
        for _ in 0..7 {
            let k = next_k;
            next_k += 1;
            if client.append(None, &batch(k)).is_ok() {
                acked.push(k);
            }
        }
        drop(client);
        drop(child); // Reaper: SIGKILL, no drain, no final checkpoint.
    }

    fsck_heals(data.path());
    // All batches were acked (appends above are unraced), so recovery
    // must land exactly on them.
    assert_recovery(data.path(), &base_csv, &acked, None);
}

/// Copies a tenant directory (one level deep — its layout is flat).
fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap().flatten() {
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// `arcs fsck` against a corruption corpus: every mangled WAL —
/// truncated mid-record, bit-flipped, garbage-extended, or deleted
/// outright — is *detected* (exit 3), *repaired* (`--repair` exits 0),
/// and the repaired directory restarts and serves a durable prefix
/// bit-identical to the oracle.
#[test]
fn fsck_detects_and_repairs_every_generated_corruption() {
    let pristine = TempDir::new("fsck-pristine");
    let base_csv = pristine.path().join("base.csv");
    write_base_csv(&base_csv);

    // Build a pristine durable directory: checkpoint + non-empty WAL.
    let acked: Vec<u64> = {
        let (child, addr) = spawn_daemon(pristine.path(), Some(&base_csv), None);
        let mut client = connect(&addr);
        client.open("t").unwrap();
        let acked = (0..6u64)
            .filter(|&k| client.append(None, &batch(k)).is_ok())
            .collect();
        drop(client);
        drop(child); // SIGKILL: no final checkpoint, the WAL stays hot.
        acked
    };
    assert_eq!(acked.len(), 6);
    let wal = |dir: &Path| dir.join("t").join("wal.log");
    let pristine_wal = std::fs::read(wal(pristine.path())).unwrap();
    assert!(pristine_wal.len() > 32, "WAL unexpectedly empty");

    // The corpus: one closure per corruption class, mirroring what the
    // WAL codec proptests generate.
    type Corruptor = fn(&Path, &[u8]);
    let corpus: &[(&str, Corruptor)] = &[
        ("truncate-mid-record", |path, bytes| {
            // Shaving 3 bytes always cuts inside the final record (a
            // record is never shorter than its 8-byte trailing CRC).
            std::fs::write(path, &bytes[..bytes.len() - 3]).unwrap();
        }),
        ("bit-flip-body", |path, bytes| {
            let mut bytes = bytes.to_vec();
            let mid = 16 + (bytes.len() - 16) / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(path, bytes).unwrap();
        }),
        ("garbage-tail", |path, bytes| {
            let mut bytes = bytes.to_vec();
            bytes.extend_from_slice(&[0xAB; 37]);
            std::fs::write(path, bytes).unwrap();
        }),
        ("wal-deleted", |path, _| {
            std::fs::remove_file(path).unwrap();
        }),
    ];

    for (tag, corrupt) in corpus {
        let work = TempDir::new(tag);
        copy_dir(&pristine.path().join("t"), &work.path().join("t"));
        corrupt(&wal(work.path()), &pristine_wal);

        let (code, report) = run_fsck(work.path(), false);
        assert_eq!(code, 3, "{tag}: corruption not detected: {report}");
        let (code, report) = run_fsck(work.path(), true);
        assert_eq!(code, 0, "{tag}: repair failed: {report}");
        let (code, report) = run_fsck(work.path(), false);
        assert_eq!(code, 0, "{tag}: still dirty after repair: {report}");

        // The repaired directory serves a (possibly shortened) durable
        // prefix that matches the oracle exactly.
        let (_child, addr) = spawn_daemon(work.path(), None, None);
        let mut client = connect(&addr);
        let info = client.open("t").expect("repaired tenant serves");
        assert!(info.epoch <= acked.len() as u64, "{tag}: phantom records appeared");
        let durable = &acked[..info.epoch as usize];
        let (expect_tuples, expected) = oracle_results(&base_csv, durable);
        assert_eq!(info.n_tuples, expect_tuples, "{tag}: tuples diverged");
        for (i, request) in sweep().iter().enumerate() {
            let outcome = client.query(request).unwrap();
            assert_eq!(outcome.result, expected[i], "{tag}: query {i} diverged");
        }
        let _ = client.close();
    }
}

/// `fsck --repair` is idempotent: repairing a damaged directory exits 0,
/// and repairing the already-repaired directory exits 0 again without
/// changing anything (a repair must never manufacture new problems for
/// the next repair to find).
#[test]
fn fsck_repair_twice_both_exit_zero() {
    let data = TempDir::new("fsck-idem");
    let base_csv = data.path().join("base.csv");
    write_base_csv(&base_csv);

    {
        let (child, addr) = spawn_daemon(data.path(), Some(&base_csv), None);
        let mut client = connect(&addr);
        client.open("t").unwrap();
        for k in 0..6u64 {
            client.append(None, &batch(k)).unwrap();
        }
        drop(client);
        drop(child); // SIGKILL: the WAL stays hot.
    }
    // Tear the WAL tail so the first repair has real work to do.
    let wal = data.path().join("t").join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();

    let (code, report) = run_fsck(data.path(), true);
    assert_eq!(code, 0, "first repair failed: {report}");
    let healed = std::fs::read(&wal).unwrap();

    let (code, report) = run_fsck(data.path(), true);
    assert_eq!(code, 0, "second repair failed: {report}");
    assert_eq!(std::fs::read(&wal).unwrap(), healed, "second repair modified the WAL");

    let (code, report) = run_fsck(data.path(), false);
    assert_eq!(code, 0, "directory dirty after repeated repair: {report}");
}

/// Injected-fault schedules: WAL writes, fsyncs, checkpoints, and
/// truncations fail mid-run, the process is SIGKILLed, and recovery
/// still serves exactly the acknowledged prefix. Failed appends roll
/// back completely — they never surface after restart.
#[cfg(feature = "failpoints")]
#[test]
fn fault_schedules_then_sigkill_recover_exactly_the_acked_prefix() {
    let schedules = [
        "wal.write=error@3",
        "wal.fsync=error@2",
        "wal.write=error@2;wal.fsync=error@4",
        // Visit 1 of wal.checkpoint is the epoch-0 checkpoint during
        // tenant creation; @2+ fails every *background* checkpoint.
        "wal.checkpoint=error@2+",
        "wal.truncate=error@1+",
    ];
    for schedule in schedules {
        let data = TempDir::new("faultkill");
        let base_csv = data.path().join("base.csv");
        write_base_csv(&base_csv);

        let (child, addr) = spawn_daemon(data.path(), Some(&base_csv), Some(schedule));
        let mut client = connect(&addr);
        client.open("t").unwrap();

        let mut acked: Vec<u64> = Vec::new();
        for k in 0..8u64 {
            if client.append(None, &batch(k)).is_ok() {
                acked.push(k);
            }
            // Give the (faulty) background checkpointer chances to fire
            // between appends.
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(client);
        drop(child); // SIGKILL with the schedule still armed.

        fsck_heals(data.path());
        // Every append was answered before the kill, so the durable set
        // is exactly the acked ones: no in-flight candidate.
        assert_recovery(data.path(), &base_csv, &acked, None);
    }
}
