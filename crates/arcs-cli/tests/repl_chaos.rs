//! Kill-the-primary failover chaos proofs for `arcs daemon
//! --replicate-from`: a primary and a standby run as real child
//! processes over TCP; the primary is SIGKILLed (mid-stream or after
//! quiescing), the standby is promoted, and it must serve exactly a
//! prefix of the acknowledged append stream, bit-identical to an
//! in-process oracle — never a phantom batch, never a diverged result.
//!
//! With the `failpoints` feature, `repl.*` fault schedules are armed on
//! the primary (and the apply failpoint on the standby) and replication
//! must still converge through the injected failures.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use arcs_core::engine::Thresholds;
use arcs_core::jsonio::Json;
use arcs_core::request::Request;
use arcs_core::serve::{ClusterSpec, QueryResult, ServeConfig};
use arcs_core::smooth::SmoothConfig;
use arcs_core::BitOpConfig;
use arcs_daemon::registry::{Tenant, TenantConfig};
use arcs_daemon::{Client, RetryPolicy};

fn arcs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_arcs"))
}

/// A scratch directory that removes itself.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "arcs-replchaos-{tag}-{}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills the child on drop so a failing assertion never leaks a daemon.
struct Reaper(Child);

impl Reaper {
    fn sigkill(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

impl Drop for Reaper {
    fn drop(&mut self) {
        self.sigkill();
    }
}

/// The base dataset: a 10×10 grid with a dense group-A block.
fn write_base_csv(path: &Path) {
    let mut text = String::from("x,y,g\n");
    for ix in 0..10usize {
        for iy in 0..10usize {
            let inside = (2..5).contains(&ix) && (2..5).contains(&iy);
            for _ in 0..if inside { 6 } else { 1 } {
                text.push_str(&format!(
                    "{}.5,{}.5,{}\n",
                    ix,
                    iy,
                    if inside { "A" } else { "other" }
                ));
            }
        }
    }
    std::fs::write(path, text).unwrap();
}

/// Header-less append batch `k` — 5 rows, distinct per `k`.
fn batch(k: u64) -> String {
    let mut rows = String::new();
    for i in 0..5 {
        let x = ((k + i) % 10) as f64 + 0.5;
        let y = ((k * 3 + i) % 10) as f64 + 0.5;
        rows.push_str(&format!("{x},{y},{}\n", if i % 2 == 0 { "A" } else { "other" }));
    }
    rows
}

/// The query sweep the promoted standby and the oracle must agree on.
fn sweep() -> Vec<Request> {
    let thresholds = Thresholds::new(0.01, 0.5).unwrap();
    vec![
        Request::new().group("A").thresholds(thresholds),
        Request::new().group("A").thresholds(thresholds).cluster(ClusterSpec {
            smoothing: SmoothConfig::disabled(),
            bitop: BitOpConfig::no_pruning(),
        }),
    ]
}

/// Spawns an `arcs daemon` child, returning it and the bound address
/// (read from the port file). `extra` carries the role-specific flags
/// (`--datasets ...` for a primary, `--replicate-from ...` for a
/// standby); `failpoints` arms an `ARCS_FAILPOINTS` schedule.
fn spawn_daemon(data_dir: &Path, extra: &[&str], failpoints: Option<&str>) -> (Reaper, String) {
    static PORT_FILE: AtomicU64 = AtomicU64::new(0);
    let pf = std::env::temp_dir().join(format!(
        "arcs-replchaos-port-{}-{}",
        std::process::id(),
        PORT_FILE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&pf);

    let mut cmd = arcs();
    cmd.args(["daemon", "--listen", "127.0.0.1:0"])
        .args(["--data-dir", data_dir.to_str().unwrap()])
        .args(["--checkpoint-every", "4", "--checkpoint-interval-ms", "10"])
        .args(["--port-file", pf.to_str().unwrap()])
        .args(["--max-seconds", "120"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(schedule) = failpoints {
        cmd.env("ARCS_FAILPOINTS", schedule);
    }
    let child = Reaper(cmd.spawn().expect("daemon child spawns"));

    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&pf) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                break text;
            }
        }
        assert!(Instant::now() < deadline, "daemon never wrote its port file");
        std::thread::sleep(Duration::from_millis(10));
    };
    let _ = std::fs::remove_file(&pf);
    (child, addr)
}

fn spawn_primary(data_dir: &Path, base_csv: &Path, failpoints: Option<&str>) -> (Reaper, String) {
    let datasets = format!("t={}", base_csv.display());
    spawn_daemon(
        data_dir,
        &[
            "--datasets",
            &datasets,
            "--x",
            "x",
            "--y",
            "y",
            "--criterion",
            "g",
            "--bins",
            "10",
            "--max-categories",
            "4",
        ],
        failpoints,
    )
}

fn spawn_standby(data_dir: &Path, primary: &str, failpoints: Option<&str>) -> (Reaper, String) {
    spawn_daemon(
        data_dir,
        &["--replicate-from", primary, "--repl-poll-ms", "10"],
        failpoints,
    )
}

fn connect(addr: &str) -> Client {
    Client::connect_with_retry(addr, RetryPolicy::new(5)).expect("client connects")
}

/// The standby's applied WAL position for `t`, via the extended `stats`
/// op; `None` until the tenant has bootstrapped there.
fn standby_seq(addr: &str) -> Option<u64> {
    let mut client = Client::connect(addr).ok()?;
    let stats = client.stats(Some("t")).ok()?;
    stats.get("durability")?.get("last_wal_seq")?.as_u64()
}

fn wait_standby_seq(addr: &str, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while standby_seq(addr) != Some(want) {
        assert!(
            Instant::now() < deadline,
            "standby never converged to seq {want} (at {:?})",
            standby_seq(addr)
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Waits until the standby's applied position stops moving (its primary
/// is dead, so "stable across a few polls" means it has drained whatever
/// it had already fetched).
fn settled_standby_seq(addr: &str) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut last = None;
    let mut stable = 0;
    loop {
        let seq = standby_seq(addr);
        if let Some(current) = seq.filter(|_| seq == last) {
            stable += 1;
            if stable >= 3 {
                return current;
            }
        } else {
            stable = 0;
            last = seq;
        }
        assert!(Instant::now() < deadline, "standby position never settled");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// In-process oracle: the base CSV plus exactly `batches`, queried
/// through the library.
fn oracle_results(base_csv: &Path, batches: &[u64]) -> (u64, Vec<QueryResult>) {
    let ds = arcs_data::csv::load_csv_inferred(base_csv, 4).unwrap();
    let config = TenantConfig {
        n_x_bins: 10,
        n_y_bins: 10,
        serve: ServeConfig { retry_backoff: Duration::ZERO, ..ServeConfig::default() },
        ..TenantConfig::new("x", "y", "g")
    };
    let tenant = Tenant::from_dataset("t", &ds, &config).unwrap();
    for &k in batches {
        tenant.append_csv(&batch(k)).unwrap();
    }
    let results = sweep()
        .iter()
        .map(|request| {
            (*tenant.server().query_unified(request, tenant.labels()).unwrap().result).clone()
        })
        .collect();
    (tenant.server().snapshot().array().n_tuples(), results)
}

/// Promotes the daemon at `addr` and asserts the sweep is bit-identical
/// to the oracle over the durable prefix its epoch names.
fn promote_and_verify(addr: &str, base_csv: &Path, acked: &[u64], in_flight: Option<u64>) -> u64 {
    let mut client = connect(addr);
    let promoted = client.promote().expect("promote");
    assert_eq!(promoted.get("was_standby"), Some(&Json::Bool(true)));

    let info = client.open("t").expect("promoted standby serves");
    let candidates: Vec<u64> = acked.iter().copied().chain(in_flight).collect();
    assert!(
        info.epoch <= candidates.len() as u64,
        "standby epoch {} exceeds every durable candidate: a phantom batch appeared",
        info.epoch,
    );
    let durable = &candidates[..info.epoch as usize];
    let (expect_tuples, expected) = oracle_results(base_csv, durable);
    assert_eq!(info.n_tuples, expect_tuples, "tuple count diverged from the oracle");
    for (i, request) in sweep().iter().enumerate() {
        let outcome = client.query(request).expect("promoted query");
        assert_eq!(outcome.result.epoch, info.epoch);
        assert_eq!(
            outcome.result, expected[i],
            "sweep request {i} differs from the durable-prefix oracle",
        );
    }

    // The promoted daemon is a writable primary now.
    let (epoch, rows) = client.append(None, &batch(1000)).expect("post-promotion write");
    assert_eq!((epoch, rows), (info.epoch + 1, 5));
    let _ = client.close();
    info.epoch
}

/// The headline failover proof: quiesce the standby at the acked prefix,
/// SIGKILL the primary, promote — the standby serves exactly the acked
/// stream, bit-identical, and accepts writes.
#[test]
fn sigkill_primary_then_promoted_standby_serves_the_acked_prefix() {
    let primary_data = TempDir::new("kill-primary");
    let standby_data = TempDir::new("kill-standby");
    let base_csv = primary_data.path().join("base.csv");
    write_base_csv(&base_csv);

    let (mut primary, primary_addr) = spawn_primary(primary_data.path(), &base_csv, None);
    let (_standby, standby_addr) = spawn_standby(standby_data.path(), &primary_addr, None);

    let mut writer = connect(&primary_addr);
    writer.open("t").unwrap();
    let acked: Vec<u64> =
        (0..6u64).filter(|&k| writer.append(None, &batch(k)).is_ok()).collect();
    assert_eq!(acked.len(), 6, "unraced appends must all ack");
    drop(writer);

    // Writes to the standby are refused with the typed redirect, and the
    // CLI maps it onto the data-error exit class (3).
    let refused = arcs()
        .args(["client", "--addr", &standby_addr, "append", "--dataset", "t"])
        .args(["--rows", &batch(50)])
        .output()
        .unwrap();
    assert_eq!(refused.status.code(), Some(3), "NOT_PRIMARY must exit 3");
    assert!(
        String::from_utf8_lossy(&refused.stderr).contains("NOT_PRIMARY"),
        "the refusal names its code"
    );

    wait_standby_seq(&standby_addr, acked.len() as u64);
    primary.sigkill();

    let epoch = promote_and_verify(&standby_addr, &base_csv, &acked, None);
    assert_eq!(epoch, acked.len() as u64, "quiesced standby serves every acked append");
}

/// The racing variant: the SIGKILL lands while appends stream. The
/// settled standby may trail the acked stream (records it never got to
/// fetch) and may carry the one in-flight batch — but whatever epoch it
/// settled on must be an exact, bit-identical prefix of the append
/// stream.
#[test]
fn sigkill_primary_mid_stream_standby_serves_an_exact_prefix() {
    let primary_data = TempDir::new("race-primary");
    let standby_data = TempDir::new("race-standby");
    let base_csv = primary_data.path().join("base.csv");
    write_base_csv(&base_csv);

    let (primary, primary_addr) = spawn_primary(primary_data.path(), &base_csv, None);
    let (_standby, standby_addr) = spawn_standby(standby_data.path(), &primary_addr, None);

    let mut writer = connect(&primary_addr);
    writer.open("t").unwrap();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(80));
        let mut primary = primary;
        primary.sigkill();
    });

    let mut acked: Vec<u64> = Vec::new();
    let mut in_flight = None;
    for k in 0..100_000u64 {
        match writer.append(None, &batch(k)) {
            Ok(_) => acked.push(k),
            Err(_) => {
                in_flight = Some(k);
                break;
            }
        }
    }
    killer.join().unwrap();
    assert!(in_flight.is_some(), "the kill never interrupted the stream");

    let settled = settled_standby_seq(&standby_addr);
    assert!(
        settled <= acked.len() as u64 + 1,
        "standby applied {settled} records but only {} were acked (+1 in flight)",
        acked.len(),
    );
    promote_and_verify(&standby_addr, &base_csv, &acked, in_flight);
}

/// Injected `repl.*` fault schedules: the subscribe handshake, the
/// record fetch, the per-record encoder, the heartbeat (primary side)
/// and the per-record apply (standby side) each fail mid-run — the
/// tailer must retry/re-sync through every schedule and still converge
/// to the full acked prefix, after which the kill-and-promote proof runs
/// unchanged.
#[cfg(feature = "failpoints")]
#[test]
fn repl_fault_schedules_still_converge_then_fail_over() {
    // (primary-side schedule, standby-side schedule)
    let schedules: &[(&str, Option<&str>)] = &[
        ("repl.subscribe=error@1", None),
        ("repl.records=error@2", None),
        ("repl.record=error@2", None),
        ("repl.heartbeat=error@2", None),
        ("repl.subscribe=error@2;repl.records=error@3", Some("repl.apply=error@2")),
    ];
    for (primary_faults, standby_faults) in schedules {
        let primary_data = TempDir::new("fault-primary");
        let standby_data = TempDir::new("fault-standby");
        let base_csv = primary_data.path().join("base.csv");
        write_base_csv(&base_csv);

        let (mut primary, primary_addr) =
            spawn_primary(primary_data.path(), &base_csv, Some(primary_faults));
        let (_standby, standby_addr) =
            spawn_standby(standby_data.path(), &primary_addr, *standby_faults);

        let mut writer = connect(&primary_addr);
        writer.open("t").unwrap();
        let acked: Vec<u64> =
            (0..5u64).filter(|&k| writer.append(None, &batch(k)).is_ok()).collect();
        assert_eq!(acked.len(), 5, "{primary_faults}: appends are not on the fault path");
        drop(writer);

        wait_standby_seq(&standby_addr, acked.len() as u64);
        primary.sigkill();
        let epoch = promote_and_verify(&standby_addr, &base_csv, &acked, None);
        assert_eq!(epoch, acked.len() as u64, "{primary_faults}: acked records lost");
    }
}
