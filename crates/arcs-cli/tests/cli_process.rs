//! Process-level tests of the `arcs` binary: exit codes, stdout/stderr
//! routing, and an end-to-end generate → segment run through the real
//! entry point.

use std::path::PathBuf;
use std::process::Command;

fn arcs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_arcs"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("arcs-cli-process-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = arcs().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("segment"));
}

#[test]
fn unknown_command_exits_nonzero_on_stderr() {
    let out = arcs().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command"));
    assert!(out.stdout.is_empty());
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = arcs().output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("USAGE"));
}

#[test]
fn generate_and_segment_end_to_end() {
    let csv = tmp("proc_f2.csv");
    let csv_str = csv.to_str().expect("utf-8 path");

    let out = arcs()
        .args(["generate", "--out", csv_str, "--n", "12000", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(csv.exists());

    let out = arcs()
        .args([
            "segment", csv_str, "--x", "age", "--y", "salary", "--criterion", "group",
            "--group", "A", "--bins", "40",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("=>  group = A"), "{stdout}");

    std::fs::remove_file(&csv).ok();
}

#[test]
fn bad_flag_value_reports_usage_error() {
    let out = arcs()
        .args(["generate", "--out", "/tmp/x.csv", "--n", "not-a-number"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("invalid value"), "{stderr}");
}

/// Writes a fixture whose data rows are >5% corrupted (truncated rows and
/// non-numeric garbage), returning (path, bad-row count).
fn corrupted_fixture(name: &str) -> (PathBuf, usize) {
    let csv = tmp(name);
    let mut text = String::from("age,salary,group\n");
    let mut bad = 0usize;
    for i in 0..600 {
        match i % 12 {
            4 => {
                text.push_str("banana,50000,A\n"); // non-numeric
                bad += 1;
            }
            9 => {
                text.push_str("41.0,62000\n"); // truncated row
                bad += 1;
            }
            _ => {
                let group = if i % 3 == 0 { "A" } else { "B" };
                let age = 20.0 + (i % 60) as f64;
                let salary = 20_000.0 + (i * 211 % 130_000) as f64;
                text.push_str(&format!("{age},{salary},{group}\n"));
            }
        }
    }
    std::fs::write(&csv, text).expect("fixture written");
    (csv, bad)
}

/// The ISSUE acceptance scenario: a corrupted CSV (≥5% bad rows) errors
/// cleanly with exit code 3 under the default fail policy, and completes
/// `segment` under --on-bad-row skip with an accurate ingest report.
#[test]
fn corrupted_csv_exit_codes_and_skip_recovery() {
    let (csv, bad) = corrupted_fixture("proc_corrupt.csv");
    let csv_str = csv.to_str().expect("utf-8 path");
    let base = [
        "segment", csv_str, "--x", "age", "--y", "salary", "--criterion", "group",
        "--group", "A", "--bins", "20",
    ];

    let out = arcs().args(base).output().expect("binary runs");
    assert_eq!(out.status.code(), Some(3), "expected data-error exit");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line"), "{stderr}");
    assert!(out.stdout.is_empty());

    let out = arcs()
        .args(base)
        .args(["--on-bad-row", "skip"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("ingest:"), "{stdout}");
    assert!(stdout.contains(&format!("skipped {bad}")), "{stdout}");
    assert!(stdout.contains("rows read 600"), "{stdout}");

    std::fs::remove_file(&csv).ok();
}

/// Internal errors (e.g. an unwritable output path) exit with code 4,
/// distinct from usage (2) and data (3) errors.
#[test]
fn unwritable_output_is_an_internal_error() {
    let out = arcs()
        .args(["generate", "--out", "/nonexistent-dir/x.csv", "--n", "100"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(4));
}
