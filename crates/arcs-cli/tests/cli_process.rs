//! Process-level tests of the `arcs` binary: exit codes, stdout/stderr
//! routing, and an end-to-end generate → segment run through the real
//! entry point.

use std::path::PathBuf;
use std::process::Command;

fn arcs() -> Command {
    Command::new(env!("CARGO_BIN_EXE_arcs"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("arcs-cli-process-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = arcs().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("segment"));
}

#[test]
fn unknown_command_exits_nonzero_on_stderr() {
    let out = arcs().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command"));
    assert!(out.stdout.is_empty());
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let out = arcs().output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("USAGE"));
}

#[test]
fn generate_and_segment_end_to_end() {
    let csv = tmp("proc_f2.csv");
    let csv_str = csv.to_str().expect("utf-8 path");

    let out = arcs()
        .args(["generate", "--out", csv_str, "--n", "12000", "--seed", "3"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(csv.exists());

    let out = arcs()
        .args([
            "segment", csv_str, "--x", "age", "--y", "salary", "--criterion", "group",
            "--group", "A", "--bins", "40",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("=>  group = A"), "{stdout}");

    std::fs::remove_file(&csv).ok();
}

#[test]
fn bad_flag_value_reports_usage_error() {
    let out = arcs()
        .args(["generate", "--out", "/tmp/x.csv", "--n", "not-a-number"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("invalid value"), "{stderr}");
}
