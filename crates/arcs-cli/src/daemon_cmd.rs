//! `arcs daemon` and `arcs client`: the `arcsd` network daemon over the
//! serving core, and a scriptable client for it.
//!
//! The daemon serves one or more CSV-backed datasets over the
//! length-prefixed JSON wire protocol; the client speaks the same
//! protocol and maps typed wire error codes onto the CLI's exit-code
//! classes, so shell scripts can branch on error class exactly as they
//! do for the in-process commands.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use arcs_core::jsonio::Json;
use arcs_core::request::{query_result_to_json, Request};
use arcs_core::serve::{ClusterSpec, ServeConfig};
use arcs_daemon::daemon::{Daemon, DaemonConfig};
use arcs_daemon::registry::{Registry, Tenant, TenantConfig};
use arcs_daemon::{Client, ClientError, Feeder};

use crate::args::Args;
use crate::commands::CliError;

pub const DAEMON_USAGE: &str = "\
arcs daemon --listen <ADDR> --datasets <NAME=FILE[,NAME=FILE...]>
            --x <ATTR> --y <ATTR> --criterion <ATTR>
            [--bins 50] [--max-categories 16]
            [--workers 4] [--max-pending 64]
            [--max-inflight <N>] [--max-queued 64] [--cache 256]
            [--deadline-ms <MS>]
            [--feed <NAME=FILE>] [--feed-interval-ms 200]
            [--port-file <FILE>] [--max-seconds <N>]

Serves the named CSV datasets over TCP (`--listen 127.0.0.1:0` picks an
ephemeral port). Each dataset is an independent tenant with its own
snapshot store, admission gate, and result cache; all share the same
(x, y, criterion) binning configuration. The daemon runs until
--max-seconds elapses (default: forever).

Readiness and scripting:
  --port-file FILE    write the bound address to FILE once the daemon is
                      accepting connections — scripts wait on the file,
                      then read the address from it
  --feed NAME=FILE    tail FILE for appended CSV rows and merge complete
                      batches into tenant NAME every --feed-interval-ms";

pub const CLIENT_USAGE: &str = "\
arcs client --addr <HOST:PORT> <OP> [OPTIONS]

OPS:
  open    --dataset <NAME>
          Print the dataset's epoch, labels, and tuple count.
  query   --dataset <NAME> --group <LABEL> --support <S> --confidence <C>
          [--cluster] [--deadline-ms <MS>]
          Re-mine the dataset at the thresholds; --cluster also returns
          the clustered rectangles. Prints the result as JSON.
  append  --dataset <NAME> (--rows <CSV> | --rows-file <FILE>)
          Merge header-less CSV rows as one atomic delta batch.
  stats   --dataset <NAME>
          Print the tenant's serving counters as JSON.

Wire error codes map onto the CLI exit classes: data-shaped failures
(unknown dataset/group, malformed rows) exit 3, expired deadlines and
overload shedding exit 6, protocol or internal failures exit 4.";

/// Classifies a client-side failure into the CLI's exit-code classes.
/// Mirrors `pipeline_err` for codes that have in-process equivalents.
fn client_err(err: ClientError) -> CliError {
    let code = err.code().map(str::to_string);
    match code.as_deref() {
        Some("DEADLINE_EXCEEDED" | "OVERLOADED") => CliError::Timeout(err.to_string()),
        Some(
            "DATA" | "UNKNOWN_GROUP" | "NO_SEGMENTATION" | "INVALID_TUPLE" | "ATTRIBUTE_KIND"
            | "UNKNOWN_DATASET" | "NO_DATASET",
        ) => CliError::Data(err.to_string()),
        _ => CliError::Run(err.to_string()),
    }
}

fn run_err(err: impl std::fmt::Display) -> CliError {
    CliError::Run(err.to_string())
}

/// Parses a `name=value` pair, as used by `--datasets` and `--feed`.
fn name_value(spec: &str, flag: &str) -> Result<(String, String), CliError> {
    match spec.split_once('=') {
        Some((name, value)) if !name.is_empty() && !value.is_empty() => {
            Ok((name.to_string(), value.to_string()))
        }
        _ => Err(CliError::Usage(format!(
            "--{flag} expects NAME=FILE, got `{spec}`"
        ))),
    }
}

/// `arcs daemon`: stand up `arcsd` over one or more CSV datasets.
pub fn daemon(argv: &[String]) -> Result<String, CliError> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(DAEMON_USAGE.to_string());
    }
    let args = Args::parse(
        argv.iter().cloned(),
        &[
            "listen",
            "datasets",
            "x",
            "y",
            "criterion",
            "bins",
            "max-categories",
            "workers",
            "max-pending",
            "max-inflight",
            "max-queued",
            "cache",
            "deadline-ms",
            "feed",
            "feed-interval-ms",
            "port-file",
            "max-seconds",
        ],
        &[],
    )?;
    let listen = args.require("listen")?;
    let datasets = args.require("datasets")?;
    let x = args.require("x")?;
    let y = args.require("y")?;
    let criterion = args.require("criterion")?;
    let bins: usize = args.get_or("bins", 50)?;
    let max_categories: usize = args.get_or("max-categories", 16)?;

    let mut serve = ServeConfig {
        max_queued: args.get_or("max-queued", 64)?,
        cache_capacity: args.get_or("cache", 256)?,
        ..ServeConfig::default()
    };
    if args.get("max-inflight").is_some() {
        serve.max_inflight = args.get_or("max-inflight", 0)?;
        if serve.max_inflight == 0 {
            return Err(CliError::Usage("--max-inflight must be > 0".into()));
        }
    }
    if args.get("deadline-ms").is_some() {
        serve.default_deadline = Some(Duration::from_millis(args.get_or("deadline-ms", 0u64)?));
    }
    let tenant_config = TenantConfig {
        n_x_bins: bins,
        n_y_bins: bins,
        serve,
        ..TenantConfig::new(x, y, criterion)
    };

    let mut out = String::new();
    let registry = Arc::new(Registry::new());
    for spec in datasets.split(',') {
        let (name, file) = name_value(spec, "datasets")?;
        let ds = arcs_data::csv::load_csv_inferred(&file, max_categories)
            .map_err(|err| CliError::Data(format!("{file}: {err}")))?;
        let tenant = Tenant::from_dataset(&name, &ds, &tenant_config)
            .map_err(|err| CliError::Data(format!("{name}: {err}")))?;
        let _ = writeln!(
            out,
            "tenant `{name}`: {} tuples from {file}, {bins}x{bins} grid",
            tenant.server().snapshot().array().n_tuples(),
        );
        registry.insert(tenant);
    }

    let config = DaemonConfig {
        workers: args.get_or("workers", DaemonConfig::default().workers)?,
        max_pending: args.get_or("max-pending", DaemonConfig::default().max_pending)?,
    };
    let handle = Daemon::bind(listen, Arc::clone(&registry), config)
        .and_then(Daemon::spawn)
        .map_err(run_err)?;
    let addr = handle.addr();
    let _ = writeln!(out, "arcsd listening on {addr}");

    let _feeder = match args.get("feed") {
        None => None,
        Some(spec) => {
            let (name, file) = name_value(spec, "feed")?;
            let tenant = registry
                .get(&name)
                .map_err(|err| CliError::Run(err.to_string()))?
                .ok_or_else(|| CliError::Usage(format!("--feed names unknown tenant `{name}`")))?;
            let interval = Duration::from_millis(args.get_or("feed-interval-ms", 200u64)?);
            let feeder = Feeder::spawn(tenant, file.clone().into(), interval).map_err(run_err)?;
            let _ = writeln!(out, "feeding `{name}` from {file}");
            Some(feeder)
        }
    };

    // The port file is the readiness signal: it appears only once the
    // accept loop is live.
    if let Some(port_file) = args.get("port-file") {
        std::fs::write(port_file, format!("{addr}\n")).map_err(run_err)?;
    }

    // The startup banner has to reach the operator *before* the daemon
    // parks, so print it here and return empty output on the normal path.
    print!("{out}");
    match args.get("max-seconds") {
        Some(_) => {
            let seconds: u64 = args.get_or("max-seconds", 0)?;
            std::thread::sleep(Duration::from_secs(seconds));
            if let Some(feeder) = _feeder {
                feeder.stop();
            }
            handle.shutdown();
            Ok(format!("arcsd on {addr} retired after {seconds}s"))
        }
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
}

/// `arcs client`: one operation against a running `arcsd`.
pub fn client(argv: &[String]) -> Result<String, CliError> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(CLIENT_USAGE.to_string());
    }
    let args = Args::parse(
        argv.iter().cloned(),
        &[
            "addr",
            "dataset",
            "group",
            "support",
            "confidence",
            "deadline-ms",
            "rows",
            "rows-file",
        ],
        &["cluster"],
    )?;
    let [op] = args.positional() else {
        return Err(CliError::Usage(format!(
            "expected exactly one operation\n\n{CLIENT_USAGE}"
        )));
    };
    let addr = args.require("addr")?;
    let dataset = args.require("dataset")?;
    let mut client = Client::connect(addr).map_err(client_err)?;

    match op.as_str() {
        "open" => {
            let info = client.open(dataset).map_err(client_err)?;
            let labels = info.labels.into_iter().map(Json::Str).collect();
            Ok(Json::Obj(vec![
                ("dataset".into(), Json::Str(info.dataset)),
                ("epoch".into(), Json::Num(info.epoch as f64)),
                ("labels".into(), Json::Arr(labels)),
                ("n_tuples".into(), Json::Num(info.n_tuples as f64)),
            ])
            .to_string())
        }
        "query" => {
            let support: f64 = args.get_or("support", 0.0)?;
            let confidence: f64 = args.get_or("confidence", 0.5)?;
            let thresholds = arcs_core::Thresholds::new(support, confidence)
                .map_err(|err| CliError::Usage(err.to_string()))?;
            let mut request =
                Request::new().group(args.require("group")?).thresholds(thresholds);
            if args.has("cluster") {
                request = request.cluster(ClusterSpec::default());
            }
            if args.get("deadline-ms").is_some() {
                request =
                    request.deadline(Duration::from_millis(args.get_or("deadline-ms", 0u64)?));
            }
            let outcome = client.query_on(Some(dataset), &request).map_err(client_err)?;
            Ok(Json::Obj(vec![
                ("result".into(), query_result_to_json(&outcome.result)),
                ("cache_hit".into(), Json::Bool(outcome.cache_hit)),
                ("retries".into(), Json::Num(outcome.retries as f64)),
            ])
            .to_string())
        }
        "append" => {
            let rows = match (args.get("rows"), args.get("rows-file")) {
                (Some(rows), None) => rows.to_string(),
                (None, Some(file)) => std::fs::read_to_string(file)
                    .map_err(|err| CliError::Data(format!("{file}: {err}")))?,
                _ => {
                    return Err(CliError::Usage(
                        "append needs exactly one of --rows or --rows-file".into(),
                    ))
                }
            };
            let (epoch, merged) = client.append(Some(dataset), &rows).map_err(client_err)?;
            Ok(Json::Obj(vec![
                ("epoch".into(), Json::Num(epoch as f64)),
                ("rows".into(), Json::Num(merged as f64)),
            ])
            .to_string())
        }
        "stats" => Ok(client.stats(Some(dataset)).map_err(client_err)?.to_string()),
        other => Err(CliError::Usage(format!(
            "unknown client operation `{other}`\n\n{CLIENT_USAGE}"
        ))),
    }
}
