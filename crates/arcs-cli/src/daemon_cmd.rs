//! `arcs daemon` and `arcs client`: the `arcsd` network daemon over the
//! serving core, and a scriptable client for it.
//!
//! The daemon serves one or more CSV-backed datasets over the
//! length-prefixed JSON wire protocol; the client speaks the same
//! protocol and maps typed wire error codes onto the CLI's exit-code
//! classes, so shell scripts can branch on error class exactly as they
//! do for the in-process commands.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use arcs_core::jsonio::Json;
use arcs_core::request::{query_result_to_json, Request};
use arcs_core::serve::{ClusterSpec, ServeConfig};
use arcs_daemon::client::RetryPolicy;
use arcs_daemon::daemon::{Daemon, DaemonConfig};
use arcs_daemon::registry::{Registry, Tenant, TenantConfig};
use arcs_daemon::repl::ReplicationConfig;
use arcs_daemon::{Client, ClientError, Feeder};

use crate::args::Args;
use crate::commands::CliError;

pub const DAEMON_USAGE: &str = "\
arcs daemon --listen <ADDR> [--datasets <NAME=FILE[,NAME=FILE...]>]
            [--x <ATTR> --y <ATTR> --criterion <ATTR>]
            [--data-dir <DIR>]
            [--bins 50] [--max-categories 16]
            [--workers 4] [--max-pending 64]
            [--max-inflight <N>] [--max-queued 64] [--cache 256]
            [--deadline-ms <MS>]
            [--idle-timeout-ms 30000] [--read-timeout-ms 10000]
            [--checkpoint-every 256] [--checkpoint-interval-ms 500]
            [--feed <NAME=FILE>] [--feed-interval-ms 200]
            [--replicate-from <HOST:PORT>] [--repl-poll-ms 50]
            [--port-file <FILE>] [--max-seconds <N>]

Serves the named CSV datasets over TCP (`--listen 127.0.0.1:0` picks an
ephemeral port). Each dataset is an independent tenant with its own
snapshot store, admission gate, and result cache; all share the same
(x, y, criterion) binning configuration. The daemon runs until
--max-seconds elapses (default: forever).

Durability (--data-dir DIR):
  Tenants live in DIR/<name>/ as a checkpointed snapshot plus a
  checksummed write-ahead log. On startup every tenant directory found
  in DIR is recovered (checkpoint + WAL replay, torn tails healed) and
  served at its pre-crash epoch; --datasets then only creates tenants
  that do not exist yet (--x/--y/--criterion required for those). Every
  append is fsynced to the WAL before it is merged, a background
  checkpointer folds the log every --checkpoint-every records, and a
  clean shutdown checkpoints everything. Audit a directory with
  `arcs fsck`.

Connection hygiene:
  --idle-timeout-ms N   close a connection idle between frames for N ms
  --read-timeout-ms N   close a connection whose frame stalls mid-read
                        for N ms (slow-loris guard); 0 disables either

Replication (--replicate-from HOST:PORT, requires --data-dir):
  Start as a read-only *standby* of the primary arcsd at HOST:PORT: its
  durable tenants are bootstrapped from checkpoint transfers, then their
  WAL records are streamed and applied through the same durable append
  path, so the standby serves reads at the primary's acked epochs.
  Writes are refused with the typed NOT_PRIMARY code until promotion
  (`arcs client promote` or SIGHUP to the standby). A standby that falls
  behind the primary's log refuses the gap and re-syncs from a fresh
  checkpoint transfer; it never applies past a missing record.
  --datasets and --feed are writer-side flags and cannot be combined
  with --replicate-from.

Readiness and scripting:
  --port-file FILE    write the bound address to FILE once the daemon is
                      accepting connections — scripts wait on the file,
                      then read the address from it
  --feed NAME=FILE    tail FILE for appended CSV rows and merge complete
                      batches into tenant NAME every --feed-interval-ms;
                      with --data-dir, the consumed offset rides in the
                      WAL and a restart resumes exactly after the last
                      durable batch";

pub const FSCK_USAGE: &str = "\
arcs fsck --data-dir <DIR> [--repair]

Audits every tenant directory under DIR: the tenant descriptor, the
checkpoint pair (array + meta, checksummed), and the write-ahead log
(record CRCs, sequence continuity, and whether each surviving record
still applies on top of the checkpoint). Prints a JSON report and exits
0 when the directory is clean (or was fully repaired), 3 otherwise.

--repair truncates torn or corrupt WAL tails to the last whole record,
recreates a destroyed log from the checkpoint's sequence number, and
removes stale temporary files. It never deletes checkpoints and never
invents data: anything beyond that (a missing checkpoint, a record that
no longer applies) stays an error in the report.";

pub const CLIENT_USAGE: &str = "\
arcs client --addr <HOST:PORT> <OP> [OPTIONS]

OPS:
  open    --dataset <NAME>
          Print the dataset's epoch, labels, and tuple count.
  query   --dataset <NAME> --group <LABEL> --support <S> --confidence <C>
          [--cluster] [--deadline-ms <MS>]
          Re-mine the dataset at the thresholds; --cluster also returns
          the clustered rectangles. Prints the result as JSON.
  append  --dataset <NAME> (--rows <CSV> | --rows-file <FILE>)
          Merge header-less CSV rows as one atomic delta batch.
  stats   --dataset <NAME>
          Print the tenant's serving counters as JSON (durable tenants
          include a `durability` object: WAL seq, checkpoint epoch/seq,
          WAL bytes).
  promote Promote a standby daemon to primary (idempotent; a primary
          answers was_standby=false). Takes no --dataset.

OPTIONS:
  --retry N   retry transient connect failures and OVERLOADED responses
              to idempotent ops (open/query/stats) up to N times with
              bounded exponential backoff; append is never retried

Wire error codes map onto the CLI exit classes: data-shaped failures
(unknown dataset/group, malformed rows, writes to a standby) exit 3,
expired deadlines and overload shedding exit 6, protocol or internal
failures exit 4.";

pub const REPL_STATUS_USAGE: &str = "\
arcs repl-status --addr <HOST:PORT> [--dataset <NAME>] [--retry N]

Prints a daemon's replication status as JSON: its role (primary or
standby), the primary it tails (standbys only), the datasets it serves,
and the replication counters (records shipped/applied, gaps refused,
re-syncs, heartbeats). With --dataset, also that tenant's durability
positions (last WAL seq, checkpoint epoch/seq, WAL bytes).";

/// Classifies a client-side failure into the CLI's exit-code classes.
/// Mirrors `pipeline_err` for codes that have in-process equivalents.
fn client_err(err: ClientError) -> CliError {
    let code = err.code().map(str::to_string);
    match code.as_deref() {
        Some("DEADLINE_EXCEEDED" | "OVERLOADED") => CliError::Timeout(err.to_string()),
        Some(
            "DATA" | "UNKNOWN_GROUP" | "NO_SEGMENTATION" | "INVALID_TUPLE" | "ATTRIBUTE_KIND"
            | "UNKNOWN_DATASET" | "NO_DATASET" | "NOT_PRIMARY",
        ) => CliError::Data(err.to_string()),
        _ => CliError::Run(err.to_string()),
    }
}

fn run_err(err: impl std::fmt::Display) -> CliError {
    CliError::Run(err.to_string())
}

/// Parses a `name=value` pair, as used by `--datasets` and `--feed`.
fn name_value(spec: &str, flag: &str) -> Result<(String, String), CliError> {
    match spec.split_once('=') {
        Some((name, value)) if !name.is_empty() && !value.is_empty() => {
            Ok((name.to_string(), value.to_string()))
        }
        _ => Err(CliError::Usage(format!(
            "--{flag} expects NAME=FILE, got `{spec}`"
        ))),
    }
}

/// `arcs daemon`: stand up `arcsd` over one or more CSV datasets.
pub fn daemon(argv: &[String]) -> Result<String, CliError> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(DAEMON_USAGE.to_string());
    }
    let args = Args::parse(
        argv.iter().cloned(),
        &[
            "listen",
            "datasets",
            "x",
            "y",
            "criterion",
            "data-dir",
            "bins",
            "max-categories",
            "workers",
            "max-pending",
            "max-inflight",
            "max-queued",
            "cache",
            "deadline-ms",
            "idle-timeout-ms",
            "read-timeout-ms",
            "checkpoint-every",
            "checkpoint-interval-ms",
            "feed",
            "feed-interval-ms",
            "replicate-from",
            "repl-poll-ms",
            "port-file",
            "max-seconds",
        ],
        &[],
    )?;
    let listen = args.require("listen")?;
    let data_dir = args.get("data-dir").map(PathBuf::from);
    let datasets = args.get("datasets");
    let replicate_from = args.get("replicate-from");
    if let Some(primary) = replicate_from {
        if data_dir.is_none() {
            return Err(CliError::Usage(
                "--replicate-from requires --data-dir (checkpoint transfers install there)"
                    .into(),
            ));
        }
        if datasets.is_some() || args.get("feed").is_some() {
            return Err(CliError::Usage(
                "--datasets and --feed are writer-side flags; a standby only applies \
                 what the primary ships"
                    .into(),
            ));
        }
        if primary.is_empty() {
            return Err(CliError::Usage("--replicate-from needs HOST:PORT".into()));
        }
    } else if datasets.is_none() && data_dir.is_none() {
        return Err(CliError::Usage(
            "need --datasets, --data-dir, or both\n\n".to_string() + DAEMON_USAGE,
        ));
    }
    let bins: usize = args.get_or("bins", 50)?;
    let max_categories: usize = args.get_or("max-categories", 16)?;

    let mut serve = ServeConfig {
        max_queued: args.get_or("max-queued", 64)?,
        cache_capacity: args.get_or("cache", 256)?,
        ..ServeConfig::default()
    };
    if args.get("max-inflight").is_some() {
        serve.max_inflight = args.get_or("max-inflight", 0)?;
        if serve.max_inflight == 0 {
            return Err(CliError::Usage("--max-inflight must be > 0".into()));
        }
    }
    if args.get("deadline-ms").is_some() {
        serve.default_deadline = Some(Duration::from_millis(args.get_or("deadline-ms", 0u64)?));
    }

    let feed_spec = match args.get("feed") {
        None => None,
        Some(spec) => Some(name_value(spec, "feed")?),
    };

    let mut out = String::new();
    let registry = Arc::new(Registry::new());

    // Recovery first: every tenant directory already in the data dir
    // comes back at its durable epoch, no source CSV needed.
    let mut recovered_names: Vec<String> = Vec::new();
    if let Some(dir) = &data_dir {
        std::fs::create_dir_all(dir)
            .map_err(|err| CliError::Run(format!("--data-dir {}: {err}", dir.display())))?;
        let reports = registry
            .open_data_dir(dir, &serve)
            .map_err(|err| CliError::Data(format!("recovery from {}: {err}", dir.display())))?;
        for (name, report) in reports {
            let _ = writeln!(
                out,
                "tenant `{name}`: recovered at epoch {} \
                 ({} WAL records replayed, {} torn bytes healed)",
                report.epoch, report.replayed_records, report.torn_bytes,
            );
            recovered_names.push(name);
        }
    }

    // A standby bootstraps/tails everything else from the primary; the
    // recovery above only warms it from its own local checkpoints.
    let replication = match replicate_from {
        None => None,
        Some(primary) => {
            let dir = data_dir.as_ref().expect("--replicate-from requires --data-dir");
            let mut repl = ReplicationConfig::new(primary, dir);
            repl.serve = serve.clone();
            repl.poll_interval = Duration::from_millis(args.get_or("repl-poll-ms", 50u64)?);
            Some(repl)
        }
    };

    if let Some(datasets) = datasets {
        let x = args.require("x")?;
        let y = args.require("y")?;
        let criterion = args.require("criterion")?;
        let tenant_config = TenantConfig {
            n_x_bins: bins,
            n_y_bins: bins,
            serve,
            ..TenantConfig::new(x, y, criterion)
        };
        for spec in datasets.split(',') {
            let (name, file) = name_value(spec, "datasets")?;
            if recovered_names.contains(&name) {
                let _ = writeln!(
                    out,
                    "tenant `{name}`: already recovered from the data dir; ignoring {file}",
                );
                continue;
            }
            let ds = arcs_data::csv::load_csv_inferred(&file, max_categories)
                .map_err(|err| CliError::Data(format!("{file}: {err}")))?;
            let tenant = match &data_dir {
                None => Tenant::from_dataset(&name, &ds, &tenant_config),
                Some(dir) => {
                    // Seed the durable feeder offset with the feed file's
                    // current length: `tail -f` semantics survive a crash
                    // that happens before the first feeder merge.
                    let feeder_offset = feed_spec
                        .as_ref()
                        .filter(|(feed_name, _)| *feed_name == name)
                        .map(|(_, feed_file)| {
                            std::fs::metadata(feed_file).map(|m| m.len()).unwrap_or(0)
                        });
                    Tenant::from_dataset_durable(&name, &ds, &tenant_config, dir, feeder_offset)
                }
            }
            .map_err(|err| CliError::Data(format!("{name}: {err}")))?;
            let _ = writeln!(
                out,
                "tenant `{name}`: {} tuples from {file}, {bins}x{bins} grid{}",
                tenant.server().snapshot().array().n_tuples(),
                if tenant.is_durable() { " (durable)" } else { "" },
            );
            registry.insert(tenant);
        }
    }

    let timeout_flag = |flag: &str, default: Option<Duration>| -> Result<Option<Duration>, CliError> {
        match args.get(flag) {
            None => Ok(default),
            Some(_) => {
                let ms: u64 = args.get_or(flag, 0)?;
                Ok((ms > 0).then(|| Duration::from_millis(ms)))
            }
        }
    };
    let defaults = DaemonConfig::default();
    let config = DaemonConfig {
        workers: args.get_or("workers", defaults.workers)?,
        max_pending: args.get_or("max-pending", defaults.max_pending)?,
        idle_timeout: timeout_flag("idle-timeout-ms", defaults.idle_timeout)?,
        read_timeout: timeout_flag("read-timeout-ms", defaults.read_timeout)?,
        checkpoint_every: args.get_or("checkpoint-every", defaults.checkpoint_every)?,
        checkpoint_interval: Duration::from_millis(args.get_or(
            "checkpoint-interval-ms",
            defaults.checkpoint_interval.as_millis() as u64,
        )?),
        replication,
    };
    let handle = Daemon::bind(listen, Arc::clone(&registry), config)
        .and_then(Daemon::spawn)
        .map_err(run_err)?;
    let addr = handle.addr();
    let _ = writeln!(out, "arcsd listening on {addr}");
    if let Some(primary) = replicate_from {
        let _ = writeln!(
            out,
            "arcsd standby: read-only, replicating from {primary} \
             (promote with `arcs client promote` or SIGHUP)",
        );
    }

    let _feeder = match feed_spec {
        None => None,
        Some((name, file)) => {
            let tenant = registry
                .get(&name)
                .map_err(|err| CliError::Run(err.to_string()))?
                .ok_or_else(|| CliError::Usage(format!("--feed names unknown tenant `{name}`")))?;
            let interval = Duration::from_millis(args.get_or("feed-interval-ms", 200u64)?);
            // Durable tenants resume at the last offset in the WAL or
            // checkpoint; ephemeral ones tail from the file's end.
            let offset = match tenant.store().and_then(|store| store.feeder_offset()) {
                Some(offset) => offset,
                None => std::fs::metadata(&file).map(|m| m.len()).unwrap_or(0),
            };
            let feeder = Feeder::spawn_at(tenant, file.clone().into(), interval, offset)
                .map_err(run_err)?;
            let _ = writeln!(out, "feeding `{name}` from {file} at byte {offset}");
            Some(feeder)
        }
    };

    // The port file is the readiness signal: it appears only once the
    // accept loop is live.
    if let Some(port_file) = args.get("port-file") {
        std::fs::write(port_file, format!("{addr}\n")).map_err(run_err)?;
    }

    // The startup banner has to reach the operator *before* the daemon
    // parks, so print it here and return empty output on the normal path.
    print!("{out}");
    match args.get("max-seconds") {
        Some(_) => {
            let seconds: u64 = args.get_or("max-seconds", 0)?;
            std::thread::sleep(Duration::from_secs(seconds));
            if let Some(feeder) = _feeder {
                feeder.stop();
            }
            handle.shutdown();
            Ok(format!("arcsd on {addr} retired after {seconds}s"))
        }
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
}

/// `arcs fsck`: audit (and optionally repair) a daemon data directory.
/// Returns the JSON report plus the process exit status: 0 when the
/// directory is clean or was fully repaired, 3 when problems remain.
pub fn fsck(argv: &[String]) -> Result<(String, u8), CliError> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        return Ok((FSCK_USAGE.to_string(), 0));
    }
    let args = Args::parse(argv.iter().cloned(), &["data-dir"], &["repair"])?;
    let data_dir = PathBuf::from(args.require("data-dir")?);
    let report = arcs_daemon::store::fsck(&data_dir, args.has("repair"))
        .map_err(|err| CliError::Data(err.to_string()))?;
    let status = if report.clean() { 0 } else { 3 };
    Ok((report.to_json().to_string(), status))
}

/// `arcs client`: one operation against a running `arcsd`.
pub fn client(argv: &[String]) -> Result<String, CliError> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(CLIENT_USAGE.to_string());
    }
    let args = Args::parse(
        argv.iter().cloned(),
        &[
            "addr",
            "dataset",
            "group",
            "support",
            "confidence",
            "deadline-ms",
            "rows",
            "rows-file",
            "retry",
        ],
        &["cluster"],
    )?;
    let [op] = args.positional() else {
        return Err(CliError::Usage(format!(
            "expected exactly one operation\n\n{CLIENT_USAGE}"
        )));
    };
    let addr = args.require("addr")?;
    // `promote` addresses the daemon, not a dataset; everything else
    // needs --dataset.
    let dataset = match args.get("dataset") {
        Some(dataset) => dataset,
        None if op == "promote" => "",
        None => {
            return Err(CliError::Usage(format!(
                "{op} needs --dataset\n\n{CLIENT_USAGE}"
            )))
        }
    };
    // --retry N: bounded exponential backoff for transient connect
    // failures, and for OVERLOADED responses to idempotent ops (append
    // is never retried — an ambiguous outcome must surface).
    let mut client = match args.get("retry") {
        None => Client::connect(addr).map_err(client_err)?,
        Some(_) => {
            let retries: u32 = args.get_or("retry", 0)?;
            Client::connect_with_retry(addr, RetryPolicy::new(retries)).map_err(client_err)?
        }
    };

    match op.as_str() {
        "open" => {
            let info = client.open(dataset).map_err(client_err)?;
            let labels = info.labels.into_iter().map(Json::Str).collect();
            Ok(Json::Obj(vec![
                ("dataset".into(), Json::Str(info.dataset)),
                ("epoch".into(), Json::Num(info.epoch as f64)),
                ("labels".into(), Json::Arr(labels)),
                ("n_tuples".into(), Json::Num(info.n_tuples as f64)),
            ])
            .to_string())
        }
        "query" => {
            let support: f64 = args.get_or("support", 0.0)?;
            let confidence: f64 = args.get_or("confidence", 0.5)?;
            let thresholds = arcs_core::Thresholds::new(support, confidence)
                .map_err(|err| CliError::Usage(err.to_string()))?;
            let mut request =
                Request::new().group(args.require("group")?).thresholds(thresholds);
            if args.has("cluster") {
                request = request.cluster(ClusterSpec::default());
            }
            if args.get("deadline-ms").is_some() {
                request =
                    request.deadline(Duration::from_millis(args.get_or("deadline-ms", 0u64)?));
            }
            let outcome = client.query_on(Some(dataset), &request).map_err(client_err)?;
            Ok(Json::Obj(vec![
                ("result".into(), query_result_to_json(&outcome.result)),
                ("cache_hit".into(), Json::Bool(outcome.cache_hit)),
                ("retries".into(), Json::Num(outcome.retries as f64)),
            ])
            .to_string())
        }
        "append" => {
            let rows = match (args.get("rows"), args.get("rows-file")) {
                (Some(rows), None) => rows.to_string(),
                (None, Some(file)) => std::fs::read_to_string(file)
                    .map_err(|err| CliError::Data(format!("{file}: {err}")))?,
                _ => {
                    return Err(CliError::Usage(
                        "append needs exactly one of --rows or --rows-file".into(),
                    ))
                }
            };
            let (epoch, merged) = client.append(Some(dataset), &rows).map_err(client_err)?;
            Ok(Json::Obj(vec![
                ("epoch".into(), Json::Num(epoch as f64)),
                ("rows".into(), Json::Num(merged as f64)),
            ])
            .to_string())
        }
        "stats" => Ok(client.stats(Some(dataset)).map_err(client_err)?.to_string()),
        "promote" => Ok(client.promote().map_err(client_err)?.to_string()),
        other => Err(CliError::Usage(format!(
            "unknown client operation `{other}`\n\n{CLIENT_USAGE}"
        ))),
    }
}

/// `arcs repl-status`: one replication-status probe against a daemon.
pub fn repl_status(argv: &[String]) -> Result<String, CliError> {
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(REPL_STATUS_USAGE.to_string());
    }
    let args = Args::parse(argv.iter().cloned(), &["addr", "dataset", "retry"], &[])?;
    let addr = args.require("addr")?;
    let mut client = match args.get("retry") {
        None => Client::connect(addr).map_err(client_err)?,
        Some(_) => {
            let retries: u32 = args.get_or("retry", 0)?;
            Client::connect_with_retry(addr, RetryPolicy::new(retries)).map_err(client_err)?
        }
    };
    let body = client.repl_heartbeat(args.get("dataset")).map_err(client_err)?;
    Ok(body.to_string())
}
