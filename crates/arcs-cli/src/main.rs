//! `arcs` — command-line interface to the ARCS reproduction.
//!
//! ```sh
//! arcs generate --out data.csv --n 50000
//! arcs segment data.csv --criterion group --group A --grid
//! arcs explore data.csv --x age --y salary --criterion group --group A
//! arcs rank data.csv --criterion group
//! ```

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("{err}");
            // Distinct exit codes per error class: 2 usage, 3 data,
            // 4 internal. Scripts can branch on them.
            ExitCode::from(err.exit_code())
        }
    }
}
