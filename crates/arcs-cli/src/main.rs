//! `arcs` — command-line interface to the ARCS reproduction.
//!
//! ```sh
//! arcs generate --out data.csv --n 50000
//! arcs segment data.csv --criterion group --group A --grid
//! arcs explore data.csv --x age --y salary --criterion group --group A
//! arcs rank data.csv --criterion group
//! arcs serve data.csv --criterion group --group A --deadline-ms 250
//! arcs daemon --listen 127.0.0.1:7878 --datasets d=data.csv \
//!     --x age --y salary --criterion group
//! arcs client --addr 127.0.0.1:7878 query --dataset d --group A \
//!     --support 0.02 --confidence 0.5
//! ```

mod args;
mod commands;
mod daemon_cmd;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch_with_status(&argv) {
        // `status` is 0 for a clean run, 5 when the run completed but the
        // memory budget forced a coarser grid than requested.
        Ok((output, status)) => {
            println!("{output}");
            ExitCode::from(status)
        }
        Err(err) => {
            eprintln!("{err}");
            // Distinct exit codes per error class: 2 usage, 3 data,
            // 4 internal, 6 deadline/overload. Scripts can branch on them.
            ExitCode::from(err.exit_code())
        }
    }
}
