//! The CLI subcommands. Each command is a pure function from parsed
//! arguments to its printed output, so the test suite drives them without
//! spawning processes.

use std::fmt::Write as _;

use arcs_core::binner::{BadTuplePolicy, CheckpointSpec};
use arcs_core::categorical::{segment_categorical, CategoricalConfig};
use arcs_core::engine::rule_grid;
use arcs_core::optimizer::ThresholdLattice;
use arcs_core::render::render_clusters;
use arcs_core::select::{rank_attributes, select_pair_joint};
use arcs_core::{Arcs, ArcsConfig, ArcsError, Binner, SegmentRequest};
use arcs_data::csv::{load_csv_inferred_with_policy, save_csv};
use arcs_data::generator::{AgrawalGenerator, GeneratorConfig};
use arcs_data::schema::AttrKind;
use arcs_data::{Dataset, IngestPolicy, IngestReport};

use crate::args::{Args, ArgsError};

/// Top-level CLI error. The variants map to distinct process exit codes
/// (see [`CliError::exit_code`]) so scripts can tell a typo from a
/// corrupt input file from a bug from an expired deadline.
#[derive(Debug)]
pub enum CliError {
    /// Argument problems (includes the usage string to print). Exit 2.
    Usage(String),
    /// The input data is bad: unreadable, malformed beyond the configured
    /// tolerance, or it does not support the requested analysis. Exit 3.
    Data(String),
    /// Anything else that went wrong while running. Exit 4.
    Run(String),
    /// A deadline expired or the serving core shed the request under
    /// overload — the run was healthy but could not answer in time.
    /// Exit 6 (5 is the budget-degraded *success* status).
    Timeout(String),
}

impl CliError {
    /// The process exit code for this error class: 2 usage, 3 data,
    /// 4 internal, 6 deadline/overload (5 marks budget-degraded success).
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Data(_) => 3,
            CliError::Run(_) => 4,
            CliError::Timeout(_) => EXIT_TIMEOUT,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg)
            | CliError::Data(msg)
            | CliError::Run(msg)
            | CliError::Timeout(msg) => {
                write!(f, "{msg}")
            }
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgsError> for CliError {
    fn from(err: ArgsError) -> Self {
        CliError::Usage(err.to_string())
    }
}

fn run_err(err: impl std::fmt::Display) -> CliError {
    CliError::Run(err.to_string())
}

fn data_err(err: impl std::fmt::Display) -> CliError {
    CliError::Data(err.to_string())
}

/// Classifies a pipeline error: conditions caused by the *content* of the
/// input (no segmentation, bad tuples, unknown groups/attributes) are data
/// errors; deadline expiry and load shedding are timeouts (exit 6); the
/// rest are internal.
fn pipeline_err(err: ArcsError) -> CliError {
    match err {
        ArcsError::NoSegmentation
        | ArcsError::InvalidTuple { .. }
        | ArcsError::UnknownGroup(_)
        | ArcsError::AttributeKind { .. }
        | ArcsError::Data(_) => CliError::Data(err.to_string()),
        ArcsError::DeadlineExceeded { .. } | ArcsError::Overloaded { .. } => {
            CliError::Timeout(err.to_string())
        }
        other => CliError::Run(other.to_string()),
    }
}

/// The overall usage text.
pub const USAGE: &str = "\
arcs — Association Rule Clustering System (Lent, Swami, Widom; ICDE 1997)

USAGE:
    arcs <COMMAND> [OPTIONS]

COMMANDS:
    generate    Write a synthetic Agrawal dataset to CSV
    segment     Mine + cluster a CSV into clustered association rules
    explore     Show the support/confidence threshold lattice of a CSV
    rank        Rank attributes by mutual information with a criterion
    serve       Stress-drive the concurrent serving core over a CSV
    daemon      Serve datasets over TCP (the arcsd wire protocol)
    client      Run one operation against a running arcsd daemon
    repl-status Print a daemon's replication role and counters
    fsck        Audit/repair an arcsd --data-dir (WAL + checkpoints)
    help        Show this message

Run `arcs <COMMAND> --help` for command options.";

const GENERATE_USAGE: &str = "\
arcs generate --out <FILE> [--n 50000] [--function 2] [--perturbation 0.05]
              [--outliers 0.0] [--seed 42]

Writes |D| labelled tuples of the chosen Agrawal function (1-10) to CSV.";

const SEGMENT_USAGE: &str = "\
arcs segment <FILE> --criterion <ATTR> --group <LABEL>
             [--x <ATTR> --y <ATTR>]      (default: auto-select by joint MI)
             [--bins 50] [--sample 2000] [--seed 0]
             [--threads <N>] [--stats json] [--memory-budget <BYTES>]
             [--max-categories 16] [--grid] [--svg <FILE>] [--categorical <ATTR>]
             [--on-bad-row fail|skip|quarantine=<FILE>] [--max-bad-fraction 1.0]
             [--checkpoint <FILE>] [--resume <FILE>] [--checkpoint-every 100000]

Loads a CSV (schema inferred), segments the (x, y) space for the group,
and prints the clustered association rules. With --categorical, uses the
density-ordered categorical x-axis extension instead of --x.

Execution and observability:
  --threads N         worker threads for binning and the threshold search
                      (default: all available cores); results are
                      bit-identical at any thread count
  --stats json        append a one-line JSON report of per-stage timings
                      and pipeline work counters to the output

Robustness options:
  --on-bad-row        fail on the first malformed row (default), skip bad
                      rows, or skip them and append the raw lines to a
                      quarantine file; skip/quarantine print an ingest report
  --max-bad-fraction  abort when more than this fraction of rows is bad
  --memory-budget B   cap the bin array at B bytes; when the requested grid
                      does not fit, bins are halved until it does (the run
                      then exits with code 5), and a budget too small for
                      even the coarsest grid refuses to start
  --checkpoint FILE   periodically checkpoint binning progress to FILE
  --resume FILE       resume binning from an earlier checkpoint of the same
                      run (the file must exist)";

const EXPLORE_USAGE: &str = "\
arcs explore <FILE> --x <ATTR> --y <ATTR> --criterion <ATTR> --group <LABEL>
             [--bins 50] [--levels 10] [--max-categories 16]

Prints the threshold lattice: the support levels occurring in the binned
data and the spread of rule counts across them.";

const RANK_USAGE: &str = "\
arcs rank <FILE> --criterion <ATTR> [--bins 20] [--max-categories 16]

Ranks quantitative attributes by mutual information with the criterion and
suggests the best pair by joint MI.";

const SERVE_USAGE: &str = "\
arcs serve <FILE> --criterion <ATTR> --group <LABEL>
           [--x <ATTR> --y <ATTR>]      (default: auto-select by joint MI)
           [--bins 50] [--requests 64] [--readers 4] [--appends 3]
           [--deadline-ms <MS>] [--max-inflight <N>] [--max-queued 64]
           [--cache 256] [--memory-budget <BYTES>] [--stats json]

Stress-drives the concurrent serving core: bins part of the CSV into an
epoch-0 snapshot, then races reader threads (sweeping thresholds through
the result cache) against a writer appending the remaining rows as
copy-on-write snapshot swaps. Prints the serving stats and verifies the
final epoch against a sequential re-mine.

Robustness envelope:
  --deadline-ms MS    per-request deadline; expired requests return a
                      typed error (whole-run failure exits with code 6)
  --max-inflight N    concurrent requests admitted (default: CPU count);
                      excess requests queue up to --max-queued, then are
                      shed with a typed overload error
  --cache N           LRU result-cache entries, keyed by snapshot epoch +
                      thresholds (0 disables)
  --memory-budget B   per-request bytes; oversized grids are served at a
                      degraded, coarser resolution";

/// Exit code for runs that completed, but only because the memory budget
/// forced the grid to a coarser resolution than requested.
pub const EXIT_BUDGET_DEGRADED: u8 = 5;

/// Exit code for runs that failed because a deadline expired or the
/// serving core shed every request under overload.
pub const EXIT_TIMEOUT: u8 = 6;

/// Dispatches a full argument vector (without the program name),
/// returning the rendered output plus the process exit status: `0` for a
/// clean run, [`EXIT_BUDGET_DEGRADED`] when the command succeeded under a
/// memory budget only by coarsening the grid.
pub fn dispatch_with_status(argv: &[String]) -> Result<(String, u8), CliError> {
    let Some((command, rest)) = argv.split_first() else {
        return Err(CliError::Usage(USAGE.to_string()));
    };
    match command.as_str() {
        "generate" => generate(rest).map(|out| (out, 0)),
        "segment" => segment_with_status(rest),
        "explore" => explore(rest).map(|out| (out, 0)),
        "rank" => rank(rest).map(|out| (out, 0)),
        "serve" => serve(rest).map(|out| (out, 0)),
        "daemon" => crate::daemon_cmd::daemon(rest).map(|out| (out, 0)),
        "client" => crate::daemon_cmd::client(rest).map(|out| (out, 0)),
        "repl-status" => crate::daemon_cmd::repl_status(rest).map(|out| (out, 0)),
        "fsck" => crate::daemon_cmd::fsck(rest),
        "help" | "--help" | "-h" => Ok((USAGE.to_string(), 0)),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

fn wants_help(argv: &[String]) -> bool {
    argv.iter().any(|a| a == "--help" || a == "-h")
}

/// `arcs generate`: synthetic Agrawal data to CSV.
pub fn generate(argv: &[String]) -> Result<String, CliError> {
    if wants_help(argv) {
        return Ok(GENERATE_USAGE.to_string());
    }
    let args = Args::parse(
        argv.iter().cloned(),
        &["out", "n", "function", "perturbation", "outliers", "seed"],
        &[],
    )?;
    let out = args.require("out")?;
    let n: usize = args.get_or("n", 50_000)?;
    let function_no: usize = args.get_or("function", 2)?;
    let function = *arcs_data::agrawal::AgrawalFunction::ALL
        .get(function_no.wrapping_sub(1))
        .ok_or_else(|| CliError::Usage(format!("--function must be 1-10, got {function_no}")))?;
    let config = GeneratorConfig {
        function,
        perturbation: args.get_or("perturbation", 0.05)?,
        outlier_fraction: args.get_or("outliers", 0.0)?,
        frac_group_a: 0.40,
        seed: args.get_or("seed", 42u64)?,
    };
    let mut gen = AgrawalGenerator::new(config).map_err(run_err)?;
    let ds = gen.generate(n);
    save_csv(&ds, out).map_err(run_err)?;
    Ok(format!(
        "wrote {n} tuples of Agrawal F{function_no} to {out} ({} attributes)",
        ds.schema().arity()
    ))
}

/// Parses `--on-bad-row` / `--max-bad-fraction` into an [`IngestPolicy`]
/// plus the quarantine file path, if any.
fn ingest_policy(args: &Args) -> Result<(IngestPolicy, Option<String>), CliError> {
    let max_bad_fraction: f64 = args.get_or("max-bad-fraction", 1.0)?;
    if !(0.0..=1.0).contains(&max_bad_fraction) {
        return Err(CliError::Usage(format!(
            "--max-bad-fraction must be in [0, 1], got {max_bad_fraction}"
        )));
    }
    match args.get("on-bad-row").unwrap_or("fail") {
        "fail" => Ok((IngestPolicy::Strict, None)),
        "skip" => Ok((IngestPolicy::Skip { max_bad_fraction }, None)),
        other => match other.split_once('=') {
            Some(("quarantine", file)) if !file.is_empty() => Ok((
                IngestPolicy::Quarantine { max_bad_fraction },
                Some(file.to_string()),
            )),
            _ => Err(CliError::Usage(format!(
                "--on-bad-row must be `fail`, `skip`, or `quarantine=<FILE>`, got `{other}`"
            ))),
        },
    }
}

fn load(args: &Args, usage: &str) -> Result<(Dataset, IngestReport), CliError> {
    let [path] = args.positional() else {
        return Err(CliError::Usage(format!(
            "expected exactly one input file\n\n{usage}"
        )));
    };
    let max_categories: usize = args.get_or("max-categories", 16)?;
    let (policy, quarantine_path) = ingest_policy(args)?;
    let mut sink = match &quarantine_path {
        Some(file) => Some(std::fs::File::create(file).map_err(run_err)?),
        None => None,
    };
    let quarantine = sink.as_mut().map(|f| f as &mut dyn std::io::Write);
    load_csv_inferred_with_policy(path, max_categories, policy, quarantine).map_err(data_err)
}

/// Renders the ingest report when anything was skipped, quarantined, or
/// repaired — clean strict loads stay silent.
fn ingest_summary(out: &mut String, report: &IngestReport) {
    if !report.is_clean() {
        let _ = writeln!(out, "ingest: {}", report.summary());
    }
}

/// `arcs segment`: the paper's end-to-end pipeline over a CSV file.
/// Returns the rendered output plus the exit status (0 clean,
/// [`EXIT_BUDGET_DEGRADED`] when a memory budget forced a coarser grid).
fn segment_with_status(argv: &[String]) -> Result<(String, u8), CliError> {
    if wants_help(argv) {
        return Ok((SEGMENT_USAGE.to_string(), 0));
    }
    let args = Args::parse(
        argv.iter().cloned(),
        &[
            "x",
            "y",
            "criterion",
            "group",
            "bins",
            "sample",
            "seed",
            "threads",
            "stats",
            "memory-budget",
            "max-categories",
            "categorical",
            "svg",
            "on-bad-row",
            "max-bad-fraction",
            "checkpoint",
            "resume",
            "checkpoint-every",
        ],
        &["grid"],
    )?;
    let (ds, report) = load(&args, SEGMENT_USAGE)?;
    if ds.is_empty() {
        return Err(CliError::Data("no usable rows in the input".into()));
    }
    let criterion = args.require("criterion")?;
    let group = args.require("group")?;
    let bins: usize = args.get_or("bins", 50)?;
    let want_stats = match args.get("stats") {
        None => false,
        Some("json") => true,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--stats supports only `json`, got `{other}`"
            )))
        }
    };
    let threads: Option<usize> = match args.get("threads") {
        None => None,
        Some(_) => {
            let t: usize = args.get_or("threads", 0)?;
            if t == 0 {
                return Err(CliError::Usage("--threads must be > 0".into()));
            }
            Some(t)
        }
    };
    let memory_budget: Option<usize> = match args.get("memory-budget") {
        None => None,
        Some(_) => {
            let bytes: usize = args.get_or("memory-budget", 0)?;
            if bytes == 0 {
                return Err(CliError::Usage("--memory-budget must be > 0 bytes".into()));
            }
            Some(bytes)
        }
    };

    let mut out = String::new();
    ingest_summary(&mut out, &report);

    // Categorical x-axis mode (§5 extension).
    if let Some(cat_attr) = args.get("categorical") {
        let y_attr = args.require("y")?;
        let config = CategoricalConfig {
            n_quant_bins: bins,
            ..CategoricalConfig::default()
        };
        let seg = segment_categorical(&ds, cat_attr, y_attr, criterion, group, &config)
            .map_err(pipeline_err)?;
        let _ = writeln!(
            out,
            "clustered rules for {criterion} = {group} ({} tuples, categorical x):",
            ds.len()
        );
        for rule in &seg.rules {
            let _ = writeln!(
                out,
                "  {rule}   (support {:.3}, confidence {:.2})",
                rule.support, rule.confidence
            );
        }
        let _ = writeln!(
            out,
            "error rate {:.2}%, MDL cost {:.3}",
            seg.errors.rate() * 100.0,
            seg.score.cost
        );
        return Ok((out, 0));
    }

    // Standard quantitative x/y mode; auto-select attributes when omitted.
    let (x_attr, y_attr) = match (args.get("x"), args.get("y")) {
        (Some(x), Some(y)) => (x.to_string(), y.to_string()),
        (None, None) => {
            let pair = select_pair_joint(&ds, criterion, 12, 8).map_err(run_err)?;
            let _ = writeln!(
                out,
                "auto-selected LHS attributes by joint MI: {}, {}",
                pair.0, pair.1
            );
            pair
        }
        _ => {
            return Err(CliError::Usage(
                "provide both --x and --y, or neither (auto-select)".into(),
            ))
        }
    };

    let mut config = ArcsConfig {
        n_x_bins: bins,
        n_y_bins: bins,
        sample_size: args.get_or("sample", 2_000)?,
        seed: args.get_or("seed", 0u64)?,
        memory_budget,
        ..ArcsConfig::default()
    };
    if let Some(t) = threads {
        config.threads = t;
        config.optimizer.threads = t;
    }
    let arcs = Arcs::new(config).map_err(run_err)?;

    // Checkpointed binning: bin as a stream with periodic snapshots, so an
    // interrupted run restarts from the last checkpoint instead of row 0.
    let ckpt_path = match (args.get("checkpoint"), args.get("resume")) {
        (Some(c), Some(r)) if c != r => {
            return Err(CliError::Usage(
                "--checkpoint and --resume must name the same file \
                 (resume continues checkpointing in place)"
                    .into(),
            ))
        }
        (c, r) => {
            if let Some(r) = r {
                if !std::path::Path::new(r).exists() {
                    return Err(CliError::Data(format!(
                        "--resume checkpoint `{r}` does not exist"
                    )));
                }
            }
            r.or(c)
        }
    };

    let request = SegmentRequest::new(&x_attr, &y_attr, criterion).group(group);
    let (seg, stats_json, budget_steps) = if let Some(ckpt) = ckpt_path {
        let every: u64 = args.get_or("checkpoint-every", 100_000u64)?;
        let binner = Binner::equi_width(ds.schema(), &x_attr, &y_attr, criterion, bins, bins)
            .map_err(pipeline_err)?;
        let spec = CheckpointSpec { path: std::path::Path::new(ckpt), every };
        let (array, stream) = binner
            .bin_stream_checkpointed(ds.iter().cloned(), BadTuplePolicy::Fail, &spec)
            .map_err(pipeline_err)?;
        if stream.resumed_from > 0 {
            let _ = writeln!(
                out,
                "resumed from checkpoint {ckpt} covering {} tuples",
                stream.resumed_from
            );
        }
        // The same verification sample Arcs::open would draw.
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(arcs.config().seed);
        let k = arcs.config().sample_size.min(ds.len());
        let rows = arcs_data::sample::sample_rows(&ds, k, &mut rng).map_err(data_err)?;
        let mut sample = Dataset::new(ds.schema().clone());
        for row in rows {
            sample.push_tuple(row.clone());
        }
        let mut session =
            arcs.open_binned(array, binner, &sample, request).map_err(pipeline_err)?;
        let seg = session.segment().map_err(pipeline_err)?;
        let steps = session.budget_coarsening_steps();
        (seg, want_stats.then(|| session.report().to_json()), steps)
    } else {
        let mut session = arcs.open(&ds, request).map_err(pipeline_err)?;
        let seg = session.segment().map_err(pipeline_err)?;
        let steps = session.budget_coarsening_steps();
        (seg, want_stats.then(|| session.report().to_json()), steps)
    };

    if budget_steps > 0 {
        let _ = writeln!(
            out,
            "note: the memory budget forced {budget_steps} bin-halving step(s); \
             results use a coarser grid than requested (exit code {EXIT_BUDGET_DEGRADED})"
        );
    }
    let ladder_steps: Vec<&str> = seg
        .relaxation_steps
        .iter()
        .map(String::as_str)
        .filter(|s| !s.starts_with("budget-coarsen"))
        .collect();
    if !ladder_steps.is_empty() {
        let _ = writeln!(
            out,
            "note: thresholds were too tight for a normal segmentation; \
             degraded result via relaxations: {}",
            ladder_steps.join(" -> ")
        );
    }
    let _ = writeln!(
        out,
        "clustered rules for {criterion} = {group} ({} tuples, {} evaluations):",
        ds.len(),
        seg.evaluations
    );
    for rule in &seg.rules {
        let _ = writeln!(
            out,
            "  {rule}   (support {:.3}, confidence {:.2})",
            rule.support, rule.confidence
        );
    }
    let _ = writeln!(
        out,
        "thresholds: support >= {:.5}, confidence >= {:.3}",
        seg.thresholds.min_support, seg.thresholds.min_confidence
    );
    let _ = writeln!(
        out,
        "sample error rate {:.2}%, group recall {:.0}%, MDL cost {:.3}",
        seg.errors.rate() * 100.0,
        seg.errors.recall() * 100.0,
        seg.score.cost
    );

    if args.has("grid") || args.get("svg").is_some() {
        let binner = Binner::equi_width(ds.schema(), &x_attr, &y_attr, criterion, bins, bins)
            .map_err(run_err)?;
        let array = binner.bin_rows(ds.iter()).map_err(run_err)?;
        let gk = ds
            .schema()
            .attribute(binner.criterion_idx())
            .and_then(|a| match &a.kind {
                AttrKind::Categorical { labels } => {
                    labels.iter().position(|l| l == group)
                }
                _ => None,
            })
            .unwrap_or(0) as u32;
        let grid = rule_grid(&array, gk, seg.thresholds).map_err(run_err)?;
        if args.has("grid") {
            let _ = writeln!(out, "\nrule grid ({y_attr} rows x {x_attr} columns):");
            out.push_str(&render_clusters(&grid, &seg.clusters));
        }
        if let Some(svg_path) = args.get("svg") {
            let svg = arcs_core::render::render_svg(&grid, &seg.clusters, 12);
            std::fs::write(svg_path, svg).map_err(run_err)?;
            let _ = writeln!(out, "wrote cluster plot to {svg_path}");
        }
    }
    if let Some(json) = stats_json {
        let _ = writeln!(out, "{json}");
    }
    let status = if budget_steps > 0 { EXIT_BUDGET_DEGRADED } else { 0 };
    Ok((out, status))
}

/// `arcs explore`: print the Figure 10 threshold lattice.
pub fn explore(argv: &[String]) -> Result<String, CliError> {
    if wants_help(argv) {
        return Ok(EXPLORE_USAGE.to_string());
    }
    let args = Args::parse(
        argv.iter().cloned(),
        &[
            "x",
            "y",
            "criterion",
            "group",
            "bins",
            "levels",
            "max-categories",
            "on-bad-row",
            "max-bad-fraction",
        ],
        &[],
    )?;
    let (ds, report) = load(&args, EXPLORE_USAGE)?;
    let x = args.require("x")?;
    let y = args.require("y")?;
    let criterion = args.require("criterion")?;
    let group = args.require("group")?;
    let bins: usize = args.get_or("bins", 50)?;
    let levels: usize = args.get_or("levels", 10)?;

    let binner =
        Binner::equi_width(ds.schema(), x, y, criterion, bins, bins).map_err(run_err)?;
    let gk = ds
        .schema()
        .attribute(binner.criterion_idx())
        .and_then(|a| match &a.kind {
            AttrKind::Categorical { labels } => labels.iter().position(|l| l == group),
            _ => None,
        })
        .ok_or_else(|| CliError::Run(format!("group `{group}` not found on `{criterion}`")))?
        as u32;
    let array = binner.bin_rows(ds.iter()).map_err(run_err)?;
    let lattice = ThresholdLattice::build(&array, gk);

    let mut out = String::new();
    ingest_summary(&mut out, &report);
    let _ = writeln!(
        out,
        "threshold lattice for {criterion} = {group}: {} distinct support levels\n",
        lattice.supports().len()
    );
    let _ = writeln!(out, "{:>12} {:>12} {:>8}", "support", "confidences", "rules");
    let step = (lattice.supports().len() / levels.max(1)).max(1);
    for (i, &s) in lattice.supports().iter().enumerate().step_by(step) {
        let confs = lattice.confidences_for(i);
        let thresholds = arcs_core::Thresholds::new((s - 1e-12).max(0.0), 0.0)
            .map_err(run_err)?;
        let n_rules = arcs_core::engine::mine_rules(&array, gk, thresholds).len();
        let _ = writeln!(out, "{s:>12.6} {:>12} {n_rules:>8}", confs.len());
    }
    out.push_str(
        "\n(re-mining at any of these thresholds touches only the BinArray — paper §3.2)\n",
    );
    Ok(out)
}

/// `arcs rank`: attribute selection report.
pub fn rank(argv: &[String]) -> Result<String, CliError> {
    if wants_help(argv) {
        return Ok(RANK_USAGE.to_string());
    }
    let args = Args::parse(
        argv.iter().cloned(),
        &["criterion", "bins", "max-categories", "on-bad-row", "max-bad-fraction"],
        &[],
    )?;
    let (ds, report) = load(&args, RANK_USAGE)?;
    let criterion = args.require("criterion")?;
    let bins: usize = args.get_or("bins", 20)?;

    let ranked = rank_attributes(&ds, criterion, bins).map_err(pipeline_err)?;
    let mut out = String::new();
    ingest_summary(&mut out, &report);
    let _ = writeln!(out, "mutual information with `{criterion}` ({bins} bins):");
    for score in &ranked {
        let _ = writeln!(out, "  {:<20} {:.4} bits", score.name, score.mutual_information);
    }
    if ranked.len() >= 2 {
        let (a, b) = select_pair_joint(&ds, criterion, bins, 8).map_err(run_err)?;
        let _ = writeln!(out, "best pair by joint MI: {a}, {b}");
    }
    Ok(out)
}

/// `arcs serve`: stress-drive the concurrent serving core — readers
/// sweeping thresholds against copy-on-write snapshot swaps, under the
/// full robustness envelope (deadlines, admission control, cache).
pub fn serve(argv: &[String]) -> Result<String, CliError> {
    use arcs_core::serve::{QueryRequest, ServeConfig, Server};
    use std::sync::Arc;
    use std::time::Duration;

    if wants_help(argv) {
        return Ok(SERVE_USAGE.to_string());
    }
    let args = Args::parse(
        argv.iter().cloned(),
        &[
            "x",
            "y",
            "criterion",
            "group",
            "bins",
            "requests",
            "readers",
            "appends",
            "deadline-ms",
            "max-inflight",
            "max-queued",
            "cache",
            "memory-budget",
            "stats",
            "max-categories",
            "on-bad-row",
            "max-bad-fraction",
        ],
        &[],
    )?;
    let (ds, report) = load(&args, SERVE_USAGE)?;
    if ds.is_empty() {
        return Err(CliError::Data("no usable rows in the input".into()));
    }
    let criterion = args.require("criterion")?;
    let group = args.require("group")?;
    let bins: usize = args.get_or("bins", 50)?;
    let requests: usize = args.get_or("requests", 64)?;
    let readers: usize = args.get_or("readers", 4)?;
    let appends: usize = args.get_or("appends", 3)?;
    if requests == 0 || readers == 0 {
        return Err(CliError::Usage("--requests and --readers must be > 0".into()));
    }
    let deadline = match args.get("deadline-ms") {
        None => None,
        Some(_) => Some(Duration::from_millis(args.get_or("deadline-ms", 0u64)?)),
    };
    let memory_budget: Option<usize> = match args.get("memory-budget") {
        None => None,
        Some(_) => Some(args.get_or("memory-budget", 0)?),
    };
    let want_stats = match args.get("stats") {
        None => false,
        Some("json") => true,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "--stats supports only `json`, got `{other}`"
            )))
        }
    };

    let mut out = String::new();
    ingest_summary(&mut out, &report);

    let (x_attr, y_attr) = match (args.get("x"), args.get("y")) {
        (Some(x), Some(y)) => (x.to_string(), y.to_string()),
        (None, None) => {
            let pair = select_pair_joint(&ds, criterion, 12, 8).map_err(run_err)?;
            let _ = writeln!(
                out,
                "auto-selected LHS attributes by joint MI: {}, {}",
                pair.0, pair.1
            );
            pair
        }
        _ => {
            return Err(CliError::Usage(
                "provide both --x and --y, or neither (auto-select)".into(),
            ))
        }
    };
    let binner = Binner::equi_width(ds.schema(), &x_attr, &y_attr, criterion, bins, bins)
        .map_err(pipeline_err)?;
    let gk = ds
        .schema()
        .attribute(binner.criterion_idx())
        .and_then(|a| match &a.kind {
            AttrKind::Categorical { labels } => labels.iter().position(|l| l == group),
            _ => None,
        })
        .ok_or_else(|| CliError::Data(format!("group `{group}` not found on `{criterion}`")))?
        as u32;

    // Split the rows: the first chunk seeds epoch 0, the rest become
    // streaming appends racing the readers as snapshot swaps.
    let rows = ds.rows();
    let chunks = appends + 1;
    let chunk_len = rows.len().div_ceil(chunks);
    let mut arrays = Vec::with_capacity(chunks);
    for chunk in rows.chunks(chunk_len.max(1)) {
        arrays.push(binner.bin_rows(chunk.iter()).map_err(pipeline_err)?);
    }
    let initial = arrays.remove(0);
    let deltas = arrays;

    let mut config = ServeConfig {
        max_queued: args.get_or("max-queued", 64)?,
        cache_capacity: args.get_or("cache", 256)?,
        default_deadline: deadline,
        ..ServeConfig::default()
    };
    if args.get("max-inflight").is_some() {
        config.max_inflight = args.get_or("max-inflight", 0)?;
        if config.max_inflight == 0 {
            return Err(CliError::Usage("--max-inflight must be > 0".into()));
        }
    }
    let server = Arc::new(Server::new(initial, config).map_err(pipeline_err)?);

    // Deterministic threshold sweep: repeated lattice points across
    // readers exercise the result cache.
    let sweep: Vec<(f64, f64)> = [0.0, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5]
        .iter()
        .flat_map(|&s| [0.0, 0.5].map(|c| (s, c)))
        .collect();

    let mut handles = Vec::new();
    for reader in 0..readers {
        let server = server.clone();
        let sweep = sweep.clone();
        let n = requests / readers + usize::from(reader < requests % readers);
        handles.push(std::thread::spawn(move || -> Result<(u64, u64, u64, u64), ArcsError> {
            let (mut completed, mut shed, mut timed_out, mut retries) = (0, 0, 0, 0);
            for i in 0..n {
                let (s, c) = sweep[(i + reader) % sweep.len()];
                let thresholds = arcs_core::Thresholds::new(s, c)?;
                let mut request = QueryRequest::new(gk, thresholds);
                request.memory_budget = memory_budget;
                match server.query(&request) {
                    Ok(resp) => {
                        completed += 1;
                        retries += u64::from(resp.retries);
                    }
                    Err(ArcsError::Overloaded { .. }) => shed += 1,
                    Err(ArcsError::DeadlineExceeded { .. }) => timed_out += 1,
                    Err(err) => return Err(err),
                }
            }
            Ok((completed, shed, timed_out, retries))
        }));
    }
    let writer = {
        let server = server.clone();
        std::thread::spawn(move || -> Result<u64, ArcsError> {
            let mut epoch = 0;
            for delta in &deltas {
                epoch = server.append(delta)?;
            }
            Ok(epoch)
        })
    };

    let (mut completed, mut shed, mut timed_out, mut retries) = (0u64, 0u64, 0u64, 0u64);
    for handle in handles {
        let (c, s, t, r) = handle
            .join()
            .map_err(|_| CliError::Run("serve reader thread panicked".into()))?
            .map_err(pipeline_err)?;
        completed += c;
        shed += s;
        timed_out += t;
        retries += r;
    }
    writer
        .join()
        .map_err(|_| CliError::Run("serve writer thread panicked".into()))?
        .map_err(pipeline_err)?;

    // Oracle check on the final epoch: a fresh query must be bit-identical
    // to a sequential re-mine of the snapshot array.
    let snapshot = server.snapshot();
    let check = arcs_core::Thresholds::new(0.0, 0.0).map_err(run_err)?;
    let served = server
        .query(&QueryRequest::new(gk, check))
        .map_err(pipeline_err)?;
    let oracle = arcs_core::engine::mine_rules(snapshot.array(), gk, check);
    if served.result.rules != oracle {
        return Err(CliError::Run(
            "serving core diverged from the sequential oracle on the final epoch".into(),
        ));
    }
    completed += 1;

    let stats = server.stats();
    let _ = writeln!(
        out,
        "served {completed} of {} requests on {} readers \
         ({shed} shed, {timed_out} timed out, {retries} retries)",
        requests + 1,
        readers
    );
    let _ = writeln!(
        out,
        "snapshots: epoch {} after {} swaps ({} tuples); \
         cache: {:.0}% hit rate over {} lookups",
        stats.epoch,
        stats.snapshot_swaps,
        snapshot.array().n_tuples(),
        stats.cache_hit_rate() * 100.0,
        stats.cache_hits + stats.cache_misses
    );
    let _ = writeln!(out, "final epoch verified bit-identical to the sequential oracle");
    if want_stats {
        let _ = writeln!(out, "{}", server.report().to_json());
    }
    if completed == 0 {
        return Err(CliError::Timeout(format!(
            "no request completed within its deadline ({shed} shed, {timed_out} timed out)"
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [`dispatch_with_status`] minus the status, for tests that only
    /// care about the rendered output.
    fn dispatch(argv: &[String]) -> Result<String, CliError> {
        dispatch_with_status(argv).map(|(out, _)| out)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("arcs-cli-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch(&argv(&["help"])).unwrap().contains("USAGE"));
        assert!(matches!(dispatch(&argv(&["bogus"])), Err(CliError::Usage(_))));
        assert!(matches!(dispatch(&[]), Err(CliError::Usage(_))));
        for cmd in ["generate", "segment", "explore", "rank"] {
            let out = dispatch(&argv(&[cmd, "--help"])).unwrap();
            assert!(out.contains(cmd), "{cmd} help: {out}");
        }
    }

    #[test]
    fn generate_then_segment_roundtrip() {
        let path = tmp("f2.csv");
        let path_str = path.to_str().expect("utf-8 path");
        let msg = dispatch(&argv(&[
            "generate", "--out", path_str, "--n", "20000", "--seed", "7",
        ]))
        .unwrap();
        assert!(msg.contains("20000 tuples"));

        let out = dispatch(&argv(&[
            "segment", path_str, "--x", "age", "--y", "salary", "--criterion", "group",
            "--group", "A",
        ]))
        .unwrap();
        assert!(out.contains("=>  group = A"), "{out}");
        assert!(out.contains("thresholds"), "{out}");
        // F2 at 20k tuples: a compact segmentation near the three disjuncts
        // (the exact count is seed-sensitive at this size).
        let n_rules = out.matches("=>  group = A").count();
        assert!((2..=5).contains(&n_rules), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segment_autoselects_attributes() {
        let path = tmp("f2_auto.csv");
        let path_str = path.to_str().expect("utf-8 path");
        dispatch(&argv(&["generate", "--out", path_str, "--n", "15000"])).unwrap();
        let out = dispatch(&argv(&[
            "segment", path_str, "--criterion", "group", "--group", "A",
        ]))
        .unwrap();
        assert!(out.contains("auto-selected"), "{out}");
        assert!(out.contains("age"), "{out}");
        assert!(out.contains("salary"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segment_grid_rendering() {
        let path = tmp("f2_grid.csv");
        let path_str = path.to_str().expect("utf-8 path");
        dispatch(&argv(&["generate", "--out", path_str, "--n", "10000"])).unwrap();
        let out = dispatch(&argv(&[
            "segment", path_str, "--x", "age", "--y", "salary", "--criterion", "group",
            "--group", "A", "--grid", "--bins", "30",
        ]))
        .unwrap();
        assert!(out.contains("rule grid"), "{out}");
        assert!(out.contains('A'), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segment_writes_svg() {
        let path = tmp("f2_svg_data.csv");
        let path_str = path.to_str().expect("utf-8 path");
        let svg_path = tmp("f2_plot.svg");
        let svg_str = svg_path.to_str().expect("utf-8 path");
        dispatch(&argv(&["generate", "--out", path_str, "--n", "10000"])).unwrap();
        let out = dispatch(&argv(&[
            "segment", path_str, "--x", "age", "--y", "salary", "--criterion", "group",
            "--group", "A", "--svg", svg_str, "--bins", "30",
        ]))
        .unwrap();
        assert!(out.contains("wrote cluster plot"), "{out}");
        let svg = std::fs::read_to_string(&svg_path).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("stroke"));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&svg_path).ok();
    }

    #[test]
    fn explore_shows_the_lattice() {
        let path = tmp("f2_explore.csv");
        let path_str = path.to_str().expect("utf-8 path");
        dispatch(&argv(&["generate", "--out", path_str, "--n", "10000"])).unwrap();
        let out = dispatch(&argv(&[
            "explore", path_str, "--x", "age", "--y", "salary", "--criterion", "group",
            "--group", "A",
        ]))
        .unwrap();
        assert!(out.contains("distinct support levels"), "{out}");
        assert!(out.contains("BinArray"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rank_reports_mi() {
        let path = tmp("f2_rank.csv");
        let path_str = path.to_str().expect("utf-8 path");
        dispatch(&argv(&["generate", "--out", path_str, "--n", "10000"])).unwrap();
        let out =
            dispatch(&argv(&["rank", path_str, "--criterion", "group"])).unwrap();
        assert!(out.contains("salary"), "{out}");
        assert!(out.contains("best pair by joint MI"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segment_categorical_mode() {
        let path = tmp("f8_cat.csv");
        let path_str = path.to_str().expect("utf-8 path");
        dispatch(&argv(&[
            "generate", "--out", path_str, "--n", "15000", "--function", "8",
        ]))
        .unwrap();
        let out = dispatch(&argv(&[
            "segment", path_str, "--categorical", "elevel", "--y", "salary",
            "--criterion", "group", "--group", "A", "--bins", "20",
        ]))
        .unwrap();
        assert!(out.contains("elevel IN {"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn usage_errors_are_informative() {
        assert!(matches!(
            dispatch(&argv(&["generate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch(&argv(&["segment", "--criterion", "g"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch(&argv(&["generate", "--out", "/tmp/x.csv", "--function", "11"])),
            Err(CliError::Usage(_))
        ));
        // --x without --y.
        let path = tmp("f2_bad.csv");
        let path_str = path.to_str().expect("utf-8 path");
        dispatch(&argv(&["generate", "--out", path_str, "--n", "500"])).unwrap();
        assert!(matches!(
            dispatch(&argv(&[
                "segment", path_str, "--x", "age", "--criterion", "group", "--group", "A"
            ])),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_a_data_error() {
        let err = dispatch(&argv(&[
            "segment",
            "/nonexistent/x.csv",
            "--criterion",
            "g",
            "--group",
            "A",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Data(_)));
        assert_eq!(err.exit_code(), 3);
    }

    #[test]
    fn error_classes_map_to_exit_codes() {
        assert_eq!(CliError::Usage(String::new()).exit_code(), 2);
        assert_eq!(CliError::Data(String::new()).exit_code(), 3);
        assert_eq!(CliError::Run(String::new()).exit_code(), 4);
        assert_eq!(CliError::Timeout(String::new()).exit_code(), 6);
        assert_eq!(EXIT_TIMEOUT, 6);
    }

    /// `arcs serve`: the stress driver races readers against snapshot
    /// swaps and verifies the final epoch against the sequential oracle.
    #[test]
    fn serve_stress_driver_end_to_end() {
        let path = tmp("f2_serve.csv");
        let path_str = path.to_str().expect("utf-8 path");
        dispatch(&argv(&[
            "generate", "--out", path_str, "--n", "8000", "--seed", "13",
        ]))
        .unwrap();
        let out = dispatch(&argv(&[
            "serve", path_str, "--x", "age", "--y", "salary", "--criterion", "group",
            "--group", "A", "--bins", "20", "--requests", "32", "--readers", "4",
            "--appends", "3", "--max-inflight", "4", "--stats", "json",
        ]))
        .unwrap();
        assert!(out.contains("after 3 swaps"), "{out}");
        assert!(out.contains("verified bit-identical"), "{out}");
        assert!(out.contains("hit rate"), "{out}");
        let json_line = out
            .lines()
            .find(|l| l.starts_with('{'))
            .unwrap_or_else(|| panic!("no JSON stats line in: {out}"));
        for key in [
            "\"requests_admitted\"",
            "\"requests_shed\"",
            "\"cache_hits\"",
            "\"snapshot_swaps\":3",
        ] {
            assert!(json_line.contains(key), "missing {key} in: {json_line}");
        }
        std::fs::remove_file(&path).ok();
    }

    /// `--deadline-ms 0`: every request's deadline is already expired at
    /// admission, so the run fails with the typed timeout class (exit 6)
    /// — deterministically, with no sleeping involved.
    #[test]
    fn serve_expired_deadline_is_a_timeout_error() {
        let path = tmp("f2_serve_deadline.csv");
        let path_str = path.to_str().expect("utf-8 path");
        dispatch(&argv(&[
            "generate", "--out", path_str, "--n", "2000", "--seed", "13",
        ]))
        .unwrap();
        let err = dispatch(&argv(&[
            "serve", path_str, "--x", "age", "--y", "salary", "--criterion", "group",
            "--group", "A", "--bins", "10", "--requests", "8", "--readers", "2",
            "--deadline-ms", "0",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Timeout(_)), "{err}");
        assert_eq!(err.exit_code(), 6);
        assert!(err.to_string().contains("deadline"), "{err}");

        // A zero admission limit is a usage error, not an internal one.
        let err = dispatch(&argv(&[
            "serve", path_str, "--x", "age", "--y", "salary", "--criterion", "group",
            "--group", "A", "--bins", "10", "--max-inflight", "0",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_on_bad_row_value_is_a_usage_error() {
        let err = dispatch(&argv(&[
            "segment", "x.csv", "--criterion", "g", "--group", "A", "--on-bad-row",
            "explode",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let err = dispatch(&argv(&[
            "segment", "x.csv", "--criterion", "g", "--group", "A",
            "--max-bad-fraction", "1.5",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
    }

    /// End-to-end robustness: a CSV with >5% corrupted rows fails under
    /// the default strict policy, completes under skip with an accurate
    /// ingest report, and quarantines the raw bad lines on request.
    #[test]
    fn segment_survives_corrupted_csv_under_skip() {
        let clean = tmp("robust_clean.csv");
        let clean_str = clean.to_str().expect("utf-8 path");
        dispatch(&argv(&[
            "generate", "--out", clean_str, "--n", "8000", "--seed", "11",
        ]))
        .unwrap();

        // Corrupt ~10% of the data lines deterministically.
        let text = std::fs::read_to_string(&clean).unwrap();
        let mut lines: Vec<String> = text.lines().map(ToString::to_string).collect();
        let mut corrupted = 0usize;
        for (i, line) in lines.iter_mut().enumerate().skip(1) {
            match i % 10 {
                3 => *line = "not,even,numbers".to_string(),
                7 => *line = line.rsplit_once(',').map(|(l, _)| l.to_string()).unwrap(),
                _ => continue,
            }
            corrupted += 1;
        }
        let dirty = tmp("robust_dirty.csv");
        let dirty_str = dirty.to_str().expect("utf-8 path");
        std::fs::write(&dirty, lines.join("\n")).unwrap();

        let base = [
            "segment", dirty_str, "--x", "age", "--y", "salary", "--criterion",
            "group", "--group", "A",
        ];

        // Default (fail): a data error naming the first bad line.
        let err = dispatch(&argv(&base)).unwrap_err();
        assert!(matches!(err, CliError::Data(_)), "{err}");
        assert_eq!(err.exit_code(), 3);

        // Skip: completes, and the report counts every injected bad row.
        let mut skip_args = base.to_vec();
        skip_args.extend(["--on-bad-row", "skip"]);
        let out = dispatch(&argv(&skip_args)).unwrap();
        assert!(out.contains("ingest:"), "{out}");
        assert!(out.contains(&format!("skipped {corrupted}")), "{out}");
        assert!(out.contains("=>  group = A"), "{out}");

        // Quarantine: the raw bad lines land in the side file.
        let qfile = tmp("robust_quarantine.csv");
        let qarg = format!("quarantine={}", qfile.to_str().expect("utf-8 path"));
        let mut q_args = base.to_vec();
        q_args.extend(["--on-bad-row", &qarg]);
        let out = dispatch(&argv(&q_args)).unwrap();
        assert!(out.contains(&format!("quarantined {corrupted}")), "{out}");
        let quarantined = std::fs::read_to_string(&qfile).unwrap();
        assert_eq!(quarantined.lines().count(), corrupted);
        assert!(quarantined.contains("not,even,numbers"), "{quarantined}");

        // A bad-fraction ceiling below the corruption rate aborts.
        let mut tight_args = skip_args.clone();
        tight_args.extend(["--max-bad-fraction", "0.05"]);
        let err = dispatch(&argv(&tight_args)).unwrap_err();
        assert!(matches!(err, CliError::Data(_)), "{err}");

        std::fs::remove_file(&clean).ok();
        std::fs::remove_file(&dirty).ok();
        std::fs::remove_file(&qfile).ok();
    }

    /// `--stats json` appends a machine-readable pipeline report; thread
    /// count must not change the mined rules.
    #[test]
    fn segment_stats_json_and_threads() {
        let path = tmp("f2_stats.csv");
        let path_str = path.to_str().expect("utf-8 path");
        dispatch(&argv(&[
            "generate", "--out", path_str, "--n", "12000", "--seed", "5",
        ]))
        .unwrap();
        let base = [
            "segment", path_str, "--x", "age", "--y", "salary", "--criterion",
            "group", "--group", "A", "--bins", "30",
        ];

        let mut stats_args = base.to_vec();
        stats_args.extend(["--stats", "json", "--threads", "4"]);
        let out = dispatch(&argv(&stats_args)).unwrap();
        let json_line = out
            .lines()
            .find(|l| l.starts_with('{'))
            .unwrap_or_else(|| panic!("no JSON stats line in: {out}"));
        for key in [
            "\"schema_version\":1",
            "\"threads\":4",
            "\"timings_ms\"",
            "\"binning\"",
            "\"counters\"",
            "\"tuples_binned\":12000",
            "\"rules_emitted\"",
        ] {
            assert!(json_line.contains(key), "missing {key} in: {json_line}");
        }

        // Same rules at 1 and 4 threads; stats line stripped (timings vary).
        let body = |s: &str| -> String {
            s.lines().filter(|l| !l.starts_with('{')).collect::<Vec<_>>().join("\n")
        };
        let mut t1 = base.to_vec();
        t1.extend(["--threads", "1"]);
        let mut t4 = base.to_vec();
        t4.extend(["--threads", "4", "--stats", "json"]);
        assert_eq!(
            body(&dispatch(&argv(&t1)).unwrap()),
            body(&dispatch(&argv(&t4)).unwrap())
        );

        // Bad values are usage errors.
        let mut bad_stats = base.to_vec();
        bad_stats.extend(["--stats", "yaml"]);
        assert!(matches!(dispatch(&argv(&bad_stats)), Err(CliError::Usage(_))));
        let mut bad_threads = base.to_vec();
        bad_threads.extend(["--threads", "0"]);
        assert!(matches!(dispatch(&argv(&bad_threads)), Err(CliError::Usage(_))));
        std::fs::remove_file(&path).ok();
    }

    /// `--memory-budget`: a budget below the requested grid coarsens the
    /// bins, prints a note, and exits with the budget-degraded status; an
    /// impossible budget refuses to run; zero is a usage error.
    #[test]
    fn segment_memory_budget_degrades_and_signals() {
        let path = tmp("f2_budget.csv");
        let path_str = path.to_str().expect("utf-8 path");
        dispatch(&argv(&[
            "generate", "--out", path_str, "--n", "8000", "--seed", "9",
        ]))
        .unwrap();
        let base = [
            "segment", path_str, "--x", "age", "--y", "salary", "--criterion",
            "group", "--group", "A",
        ];

        // Unbudgeted runs report a clean exit status.
        let (_, status) = dispatch_with_status(&argv(&base)).unwrap();
        assert_eq!(status, 0);

        // The default 50 x 50 grid with 2 groups needs 30000 bytes; a
        // 10000-byte budget forces two halvings down to 25 x 25.
        let mut tight = base.to_vec();
        tight.extend(["--memory-budget", "10000", "--stats", "json"]);
        let (out, status) = dispatch_with_status(&argv(&tight)).unwrap();
        assert_eq!(status, EXIT_BUDGET_DEGRADED);
        assert!(out.contains("memory budget forced 2 bin-halving"), "{out}");
        assert!(out.contains("\"budget_coarsening_steps\":2"), "{out}");
        assert!(out.contains("=>  group = A"), "{out}");

        // Below even the coarsest useful grid: refused, not coarsened away.
        let mut impossible = base.to_vec();
        impossible.extend(["--memory-budget", "10"]);
        let err = dispatch(&argv(&impossible)).unwrap_err();
        assert!(matches!(err, CliError::Run(_)), "{err}");
        assert!(err.to_string().contains("memory budget exceeded"), "{err}");

        let mut zero = base.to_vec();
        zero.extend(["--memory-budget", "0"]);
        assert!(matches!(dispatch(&argv(&zero)), Err(CliError::Usage(_))));

        std::fs::remove_file(&path).ok();
    }

    /// The --checkpoint/--resume flags: an interrupted binning pass picks
    /// up from the snapshot and yields the same segmentation as a clean
    /// run.
    #[test]
    fn segment_checkpoint_and_resume() {
        let path = tmp("ckpt_data.csv");
        let path_str = path.to_str().expect("utf-8 path");
        dispatch(&argv(&[
            "generate", "--out", path_str, "--n", "12000", "--seed", "3",
        ]))
        .unwrap();
        let ckpt = tmp("ckpt_file.bin");
        let ckpt_str = ckpt.to_str().expect("utf-8 path");
        std::fs::remove_file(&ckpt).ok();

        let base = [
            "segment", path_str, "--x", "age", "--y", "salary", "--criterion",
            "group", "--group", "A", "--bins", "30",
        ];
        let reference = dispatch(&argv(&base)).unwrap();

        // Full checkpointed run: same rules as the plain run.
        let mut ck_args = base.to_vec();
        ck_args.extend(["--checkpoint", ckpt_str, "--checkpoint-every", "4000"]);
        let checkpointed = dispatch(&argv(&ck_args)).unwrap();
        assert_eq!(checkpointed, reference);

        // The checkpoint now covers the whole file: a --resume run skips
        // all binning work and reproduces the result.
        let mut re_args = base.to_vec();
        re_args.extend(["--resume", ckpt_str]);
        let resumed = dispatch(&argv(&re_args)).unwrap();
        assert!(resumed.contains("resumed from checkpoint"), "{resumed}");
        assert!(resumed.contains("=>  group = A"), "{resumed}");
        // Identical modulo the resume banner.
        let resumed_body: String = resumed
            .lines()
            .filter(|l| !l.starts_with("resumed from checkpoint"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(resumed_body, reference);

        // Resuming from a missing file is a data error.
        let mut missing_args = base.to_vec();
        missing_args.extend(["--resume", "/nonexistent/ckpt.bin"]);
        assert!(matches!(
            dispatch(&argv(&missing_args)).unwrap_err(),
            CliError::Data(_)
        ));

        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&ckpt).ok();
    }
}
