//! A small, dependency-free command-line argument parser.
//!
//! Supports `--flag value`, `--flag=value`, boolean `--flag`, and
//! positional arguments; unknown flags are reported as errors so typos
//! fail loudly instead of silently using defaults.

use std::collections::BTreeMap;

/// Parsed arguments: positionals in order plus `--key value` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Argument parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// `--flag` requires a value but none followed.
    MissingValue(String),
    /// A flag the command does not accept.
    Unknown(String),
    /// A value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The raw value.
        value: String,
    },
    /// A required option was not supplied.
    Required(String),
}

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgsError::MissingValue(flag) => write!(f, "flag --{flag} requires a value"),
            ArgsError::Unknown(flag) => write!(f, "unknown flag --{flag}"),
            ArgsError::BadValue { flag, value } => {
                write!(f, "invalid value `{value}` for --{flag}")
            }
            ArgsError::Required(flag) => write!(f, "missing required flag --{flag}"),
        }
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses raw arguments. `value_flags` lists flags that take a value;
    /// `bool_flags` lists valueless switches. Anything else starting with
    /// `--` is an error.
    pub fn parse<I, S>(
        raw: I,
        value_flags: &[&str],
        bool_flags: &[&str],
    ) -> Result<Self, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut args = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    if !value_flags.contains(&key) {
                        return Err(ArgsError::Unknown(key.to_string()));
                    }
                    args.options.insert(key.to_string(), value.to_string());
                } else if value_flags.contains(&name) {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgsError::MissingValue(name.to_string()))?;
                    args.options.insert(name.to_string(), value);
                } else if bool_flags.contains(&name) {
                    args.flags.push(name.to_string());
                } else {
                    return Err(ArgsError::Unknown(name.to_string()));
                }
            } else {
                args.positional.push(arg);
            }
        }
        Ok(args)
    }

    /// The positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Whether a boolean switch was given.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// An optional string-valued flag.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.options.get(flag).map(String::as_str)
    }

    /// A required string-valued flag.
    pub fn require(&self, flag: &str) -> Result<&str, ArgsError> {
        self.get(flag).ok_or_else(|| ArgsError::Required(flag.to_string()))
    }

    /// A typed flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgsError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgsError::BadValue {
                flag: flag.to_string(),
                value: raw.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_styles() {
        let args = Args::parse(
            ["input.csv", "--n", "100", "--seed=7", "--csv"],
            &["n", "seed"],
            &["csv"],
        )
        .unwrap();
        assert_eq!(args.positional(), ["input.csv"]);
        assert_eq!(args.get("n"), Some("100"));
        assert_eq!(args.get("seed"), Some("7"));
        assert!(args.has("csv"));
        assert!(!args.has("quiet"));
        assert_eq!(args.get_or("n", 0usize).unwrap(), 100);
        assert_eq!(args.get_or("missing", 5usize).unwrap(), 5);
    }

    #[test]
    fn rejects_unknown_flags() {
        let err = Args::parse(["--nope"], &["n"], &["csv"]).unwrap_err();
        assert_eq!(err, ArgsError::Unknown("nope".into()));
        let err = Args::parse(["--nope=3"], &["n"], &[]).unwrap_err();
        assert_eq!(err, ArgsError::Unknown("nope".into()));
    }

    #[test]
    fn rejects_missing_values() {
        let err = Args::parse(["--n"], &["n"], &[]).unwrap_err();
        assert_eq!(err, ArgsError::MissingValue("n".into()));
    }

    #[test]
    fn typed_parse_errors() {
        let args = Args::parse(["--n", "abc"], &["n"], &[]).unwrap();
        assert!(matches!(
            args.get_or("n", 0usize),
            Err(ArgsError::BadValue { .. })
        ));
    }

    #[test]
    fn required_flags() {
        let args = Args::parse(["--x", "cats"], &["x"], &[]).unwrap();
        assert_eq!(args.require("x").unwrap(), "cats");
        assert!(matches!(args.require("y"), Err(ArgsError::Required(_))));
    }
}
