//! Attribute binning (paper §2.1 and §3.1).
//!
//! Quantitative attributes are partitioned into intervals ("bins") and
//! values replaced by consecutive bin integers before mining; categorical
//! attributes map their codes directly onto bins. The paper evaluates
//! *equi-width* bins and names equi-depth and homogeneity-based binning as
//! drop-in alternatives — all three are implemented here behind one
//! [`BinMap`] representation, so the rest of the system is agnostic to the
//! strategy (the binning process is "transparent to the association rule
//! engine").

use crate::error::ArcsError;
use arcs_data::Value;

/// A realised binning of one attribute: value → bin index and
/// bin index → value range.
#[derive(Debug, Clone, PartialEq)]
pub enum BinMap {
    /// Uniform intervals over `[lo, hi]` (the paper's default).
    EquiWidth {
        /// Lower bound of the attribute domain.
        lo: f64,
        /// Upper bound of the attribute domain.
        hi: f64,
        /// Number of bins.
        n_bins: usize,
    },
    /// Arbitrary ascending boundaries: bin `i` covers
    /// `[edges[i], edges[i+1])`, the last bin is closed above.
    /// Produced by equi-depth and homogeneity binning.
    Boundaries {
        /// `n_bins + 1` ascending edge values.
        edges: Vec<f64>,
    },
    /// Identity mapping for categorical attributes: code `c` → bin `c`.
    Categorical {
        /// Number of category codes.
        cardinality: usize,
    },
}

impl BinMap {
    /// Builds an equi-width map over `[lo, hi]` with `n_bins` bins.
    pub fn equi_width(lo: f64, hi: f64, n_bins: usize) -> Result<Self, ArcsError> {
        if n_bins == 0 {
            return Err(ArcsError::InvalidConfig("n_bins must be > 0".into()));
        }
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(ArcsError::InvalidConfig(format!(
                "invalid equi-width domain [{lo}, {hi}]"
            )));
        }
        Ok(BinMap::EquiWidth { lo, hi, n_bins })
    }

    /// Builds an equi-depth map: boundaries are chosen so each bin holds
    /// roughly the same number of the supplied `values`. Requires at least
    /// one value; duplicate boundaries are collapsed, so fewer than
    /// `n_bins` bins may result on highly skewed data.
    pub fn equi_depth(values: &[f64], n_bins: usize) -> Result<Self, ArcsError> {
        if n_bins == 0 {
            return Err(ArcsError::InvalidConfig("n_bins must be > 0".into()));
        }
        if values.is_empty() {
            return Err(ArcsError::InvalidConfig(
                "equi-depth binning needs at least one value".into(),
            ));
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let mut edges = Vec::with_capacity(n_bins + 1);
        edges.push(sorted[0]);
        for b in 1..n_bins {
            let idx = (b * n / n_bins).min(n - 1);
            let edge = sorted[idx];
            if edge > *edges.last().expect("non-empty") {
                edges.push(edge);
            }
        }
        let last = sorted[n - 1];
        if last > *edges.last().expect("non-empty") {
            edges.push(last);
        } else {
            // All values identical (or collapsed): widen artificially so the
            // single bin has a non-degenerate range.
            let e = *edges.last().expect("non-empty");
            edges.push(e + 1.0);
        }
        Ok(BinMap::Boundaries { edges })
    }

    /// Builds a homogeneity-based map (per the paper's reference to
    /// \[14, 23\]): start from fine equi-depth bins and greedily merge
    /// adjacent bins whose densities (tuples per unit width) differ by at
    /// most `tolerance` (relative), until at most `max_bins` remain. Bins
    /// are therefore sized so that tuples within each are near-uniformly
    /// distributed.
    pub fn homogeneity(
        values: &[f64],
        max_bins: usize,
        tolerance: f64,
    ) -> Result<Self, ArcsError> {
        if max_bins == 0 {
            return Err(ArcsError::InvalidConfig("max_bins must be > 0".into()));
        }
        if tolerance < 0.0 {
            return Err(ArcsError::InvalidConfig("tolerance must be >= 0".into()));
        }
        // Start from 4x-finer equi-depth bins, then merge.
        let fine = (max_bins * 4).min(values.len().max(1));
        let base = Self::equi_depth(values, fine)?;
        let edges = match base {
            BinMap::Boundaries { edges } => edges,
            _ => unreachable!("equi_depth returns Boundaries"),
        };
        // Per-bin counts for density computation.
        let mut counts = vec![0usize; edges.len() - 1];
        let probe = BinMap::Boundaries { edges: edges.clone() };
        for &v in values {
            counts[probe.bin_of_value(v)] += 1;
        }

        let density = |count: usize, lo: f64, hi: f64| -> f64 {
            let w = (hi - lo).max(f64::MIN_POSITIVE);
            count as f64 / w
        };

        // Greedy pairwise merge: repeatedly merge the adjacent pair with the
        // smallest relative density difference while either (a) over the bin
        // budget or (b) a pair is within tolerance.
        let mut segs: Vec<(f64, f64, usize)> = edges
            .windows(2)
            .zip(&counts)
            .map(|(w, &c)| (w[0], w[1], c))
            .collect();
        loop {
            if segs.len() <= 1 {
                break;
            }
            let mut best: Option<(usize, f64)> = None;
            for i in 0..segs.len() - 1 {
                let (alo, ahi, ac) = segs[i];
                let (blo, bhi, bc) = segs[i + 1];
                let da = density(ac, alo, ahi);
                let db = density(bc, blo, bhi);
                let rel = (da - db).abs() / da.max(db).max(f64::MIN_POSITIVE);
                if best.is_none_or(|(_, b)| rel < b) {
                    best = Some((i, rel));
                }
            }
            let (i, rel) = best.expect("segs.len() > 1");
            let over_budget = segs.len() > max_bins;
            if !over_budget && rel > tolerance {
                break;
            }
            let (alo, _, ac) = segs[i];
            let (_, bhi, bc) = segs[i + 1];
            segs[i] = (alo, bhi, ac + bc);
            segs.remove(i + 1);
        }
        let mut merged = Vec::with_capacity(segs.len() + 1);
        merged.push(segs[0].0);
        for &(_, hi, _) in &segs {
            merged.push(hi);
        }
        Ok(BinMap::Boundaries { edges: merged })
    }

    /// Builds the identity map for a categorical attribute.
    pub fn categorical(cardinality: usize) -> Result<Self, ArcsError> {
        if cardinality == 0 {
            return Err(ArcsError::InvalidConfig("cardinality must be > 0".into()));
        }
        Ok(BinMap::Categorical { cardinality })
    }

    /// Number of bins.
    pub fn n_bins(&self) -> usize {
        match self {
            BinMap::EquiWidth { n_bins, .. } => *n_bins,
            BinMap::Boundaries { edges } => edges.len() - 1,
            BinMap::Categorical { cardinality } => *cardinality,
        }
    }

    /// Maps a quantitative value to its bin. Values outside the domain are
    /// clamped to the first/last bin (streamed data may exceed the declared
    /// domain slightly, e.g. after perturbation).
    pub fn bin_of_value(&self, v: f64) -> usize {
        match self {
            BinMap::EquiWidth { lo, hi, n_bins } => {
                // Branchless: Rust's f64→usize cast saturates (negatives
                // and NaN to 0, overflow to usize::MAX), so the two
                // boundary branches collapse into the arithmetic — `v ≤
                // lo` lands at 0 via the cast, `v ≥ hi` lands at `n_bins
                // - 1` via the min. `bin_of_value_reference` keeps the
                // branchy form; a test sweeps both for bit-identity.
                let width = (hi - lo) / *n_bins as f64;
                (((v - *lo) / width) as usize).min(n_bins - 1)
            }
            BinMap::Boundaries { edges } => {
                let n = edges.len() - 1;
                if v <= edges[0] {
                    return 0;
                }
                if v >= edges[n] {
                    return n - 1;
                }
                // partition_point: first edge > v, minus one, gives the bin.
                edges.partition_point(|e| *e <= v).saturating_sub(1).min(n - 1)
            }
            BinMap::Categorical { cardinality } => {
                // Categorical attributes should use bin_of(Value::Cat).
                (v as usize).min(cardinality - 1)
            }
        }
    }

    /// Maps any attribute [`Value`] to its bin.
    pub fn bin_of(&self, value: Value) -> usize {
        match (self, value) {
            (BinMap::Categorical { cardinality }, Value::Cat(c)) => {
                (c as usize).min(cardinality - 1)
            }
            (_, Value::Quant(v)) => self.bin_of_value(v),
            (_, Value::Cat(c)) => self.bin_of_value(c as f64),
        }
    }

    /// The half-open value range `[lo, hi)` covered by `bin`
    /// (`None` for out-of-range bins). For categorical maps the range is
    /// `[code, code + 1)`.
    pub fn range(&self, bin: usize) -> Option<(f64, f64)> {
        if bin >= self.n_bins() {
            return None;
        }
        match self {
            BinMap::EquiWidth { lo, hi, n_bins } => {
                let width = (hi - lo) / *n_bins as f64;
                Some((lo + width * bin as f64, lo + width * (bin + 1) as f64))
            }
            BinMap::Boundaries { edges } => Some((edges[bin], edges[bin + 1])),
            BinMap::Categorical { .. } => Some((bin as f64, bin as f64 + 1.0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equi_width_bins_values() {
        let m = BinMap::equi_width(0.0, 100.0, 10).unwrap();
        assert_eq!(m.n_bins(), 10);
        assert_eq!(m.bin_of_value(0.0), 0);
        assert_eq!(m.bin_of_value(5.0), 0);
        assert_eq!(m.bin_of_value(10.0), 1);
        assert_eq!(m.bin_of_value(99.9), 9);
        assert_eq!(m.bin_of_value(100.0), 9);
        // Clamping outside the domain.
        assert_eq!(m.bin_of_value(-5.0), 0);
        assert_eq!(m.bin_of_value(150.0), 9);
    }

    #[test]
    fn equi_width_ranges_tile_domain() {
        let m = BinMap::equi_width(20.0, 80.0, 6).unwrap();
        let mut expected_lo = 20.0;
        for b in 0..6 {
            let (lo, hi) = m.range(b).unwrap();
            assert!((lo - expected_lo).abs() < 1e-9);
            assert!((hi - lo - 10.0).abs() < 1e-9);
            expected_lo = hi;
        }
        assert_eq!(m.range(6), None);
    }

    #[test]
    fn equi_width_rejects_bad_config() {
        assert!(BinMap::equi_width(0.0, 1.0, 0).is_err());
        assert!(BinMap::equi_width(1.0, 1.0, 5).is_err());
        assert!(BinMap::equi_width(2.0, 1.0, 5).is_err());
        assert!(BinMap::equi_width(f64::NAN, 1.0, 5).is_err());
    }

    #[test]
    fn equi_width_bin_and_range_agree() {
        let m = BinMap::equi_width(20_000.0, 150_000.0, 50).unwrap();
        for i in 0..1_000 {
            let v = 20_000.0 + (i as f64 / 999.0) * 130_000.0;
            let b = m.bin_of_value(v);
            let (lo, hi) = m.range(b).unwrap();
            assert!(
                (lo <= v && v < hi) || (b == 49 && v >= hi),
                "value {v} not in bin {b} = [{lo}, {hi})"
            );
        }
    }

    #[test]
    fn equi_depth_splits_evenly() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let m = BinMap::equi_depth(&values, 4).unwrap();
        assert_eq!(m.n_bins(), 4);
        let mut counts = [0usize; 4];
        for &v in &values {
            counts[m.bin_of_value(v)] += 1;
        }
        for &c in &counts {
            assert!((20..=30).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn equi_depth_handles_skew() {
        // 90 identical values then 10 spread out: duplicate edges collapse.
        let mut values = vec![5.0; 90];
        values.extend((0..10).map(|i| 10.0 + i as f64));
        let m = BinMap::equi_depth(&values, 10).unwrap();
        assert!(m.n_bins() >= 1);
        assert!(m.n_bins() <= 10);
        // All values still map into range.
        for &v in &values {
            assert!(m.bin_of_value(v) < m.n_bins());
        }
    }

    #[test]
    fn equi_depth_all_identical() {
        let values = vec![3.0; 50];
        let m = BinMap::equi_depth(&values, 5).unwrap();
        assert_eq!(m.n_bins(), 1);
        assert_eq!(m.bin_of_value(3.0), 0);
    }

    #[test]
    fn equi_depth_rejects_bad_config() {
        assert!(BinMap::equi_depth(&[], 4).is_err());
        assert!(BinMap::equi_depth(&[1.0], 0).is_err());
    }

    #[test]
    fn homogeneity_merges_uniform_region() {
        // Uniform data should merge into few bins; bimodal should keep the
        // modes separate.
        let uniform: Vec<f64> = (0..1_000).map(|i| i as f64 / 10.0).collect();
        let m = BinMap::homogeneity(&uniform, 10, 0.2).unwrap();
        assert!(m.n_bins() <= 10);
        assert!(m.n_bins() < 40, "uniform data should merge well below the fine grid");
    }

    #[test]
    fn homogeneity_respects_max_bins() {
        let mut values: Vec<f64> = (0..500).map(|i| i as f64).collect();
        values.extend((0..500).map(|i| 10_000.0 + i as f64 * 100.0));
        let m = BinMap::homogeneity(&values, 8, 0.05).unwrap();
        assert!(m.n_bins() <= 8);
        for &v in &values {
            assert!(m.bin_of_value(v) < m.n_bins());
        }
    }

    #[test]
    fn homogeneity_rejects_bad_config() {
        assert!(BinMap::homogeneity(&[1.0], 0, 0.1).is_err());
        assert!(BinMap::homogeneity(&[1.0], 5, -1.0).is_err());
    }

    #[test]
    fn categorical_identity() {
        let m = BinMap::categorical(5).unwrap();
        assert_eq!(m.n_bins(), 5);
        assert_eq!(m.bin_of(Value::Cat(3)), 3);
        assert_eq!(m.bin_of(Value::Cat(99)), 4); // clamped
        assert_eq!(m.range(2), Some((2.0, 3.0)));
        assert!(BinMap::categorical(0).is_err());
    }

    #[test]
    fn bin_of_value_matches_boundaries() {
        let m = BinMap::Boundaries { edges: vec![0.0, 10.0, 20.0, 50.0] };
        assert_eq!(m.n_bins(), 3);
        assert_eq!(m.bin_of_value(-1.0), 0);
        assert_eq!(m.bin_of_value(0.0), 0);
        assert_eq!(m.bin_of_value(9.99), 0);
        assert_eq!(m.bin_of_value(10.0), 1);
        assert_eq!(m.bin_of_value(20.0), 2);
        assert_eq!(m.bin_of_value(49.0), 2);
        assert_eq!(m.bin_of_value(50.0), 2);
        assert_eq!(m.bin_of_value(1_000.0), 2);
        assert_eq!(m.range(1), Some((10.0, 20.0)));
    }

    #[test]
    fn quant_value_through_bin_of() {
        let m = BinMap::equi_width(0.0, 10.0, 5).unwrap();
        assert_eq!(m.bin_of(Value::Quant(3.0)), 1);
        assert_eq!(m.bin_of(Value::Cat(3)), 1); // coerced code
    }

    /// The branchy equi-width bin-id that `bin_of_value` shipped with
    /// before the branchless rewrite — kept as the oracle for
    /// `branchless_equi_width_matches_branchy_reference`.
    fn equi_width_bin_reference(lo: f64, hi: f64, n_bins: usize, v: f64) -> usize {
        if v <= lo {
            return 0;
        }
        if v >= hi {
            return n_bins - 1;
        }
        let width = (hi - lo) / n_bins as f64;
        (((v - lo) / width) as usize).min(n_bins - 1)
    }

    #[test]
    fn branchless_equi_width_matches_branchy_reference() {
        let domains = [
            (0.0, 10.0, 5usize),
            (-3.5, 7.25, 8),
            (0.0, 1e-9, 3),
            (-1e12, 1e12, 64),
            (1.0, 1.0 + f64::EPSILON, 2),
        ];
        for &(lo, hi, n_bins) in &domains {
            let m = BinMap::EquiWidth { lo, hi, n_bins };
            let width = (hi - lo) / n_bins as f64;
            let mut probes = vec![
                f64::NAN,
                f64::NEG_INFINITY,
                f64::INFINITY,
                lo - 1.0,
                lo - f64::EPSILON,
                lo,
                lo + f64::EPSILON,
                hi - f64::EPSILON,
                hi,
                hi + f64::EPSILON,
                hi + 1.0,
                (lo + hi) / 2.0,
            ];
            for k in 0..=n_bins {
                let edge = lo + width * k as f64;
                probes.extend([edge.next_down(), edge, edge.next_up()]);
            }
            for v in probes {
                assert_eq!(
                    m.bin_of_value(v),
                    equi_width_bin_reference(lo, hi, n_bins, v),
                    "divergence at v={v:?} over [{lo}, {hi}) with {n_bins} bins"
                );
            }
        }
        // Degenerate lo == hi (unreachable via the validating
        // constructor, but the cast semantics must still agree).
        let m = BinMap::EquiWidth { lo: 2.0, hi: 2.0, n_bins: 4 };
        for v in [1.0, 2.0, 3.0, f64::NAN] {
            assert_eq!(m.bin_of_value(v), equi_width_bin_reference(2.0, 2.0, 4, v));
        }
    }
}
