//! Clusters: rectangular regions of the bin grid, and their conversion to
//! clustered association rules (paper §2.1, §3.3).

use std::fmt;

use crate::binning::BinMap;
use crate::error::ArcsError;

/// An axis-aligned rectangle of grid cells with **inclusive** bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Leftmost column.
    pub x0: usize,
    /// Bottom row (grid row index; the paper draws y increasing upward).
    pub y0: usize,
    /// Rightmost column (inclusive).
    pub x1: usize,
    /// Top row (inclusive).
    pub y1: usize,
}

impl Rect {
    /// Creates a rect, validating `x0 <= x1 && y0 <= y1`.
    pub fn new(x0: usize, y0: usize, x1: usize, y1: usize) -> Result<Self, ArcsError> {
        if x0 > x1 || y0 > y1 {
            return Err(ArcsError::InvalidConfig(format!(
                "inverted rect ({x0}, {y0})..({x1}, {y1})"
            )));
        }
        Ok(Rect { x0, y0, x1, y1 })
    }

    /// Width in cells.
    pub fn width(&self) -> usize {
        self.x1 - self.x0 + 1
    }

    /// Height in cells.
    pub fn height(&self) -> usize {
        self.y1 - self.y0 + 1
    }

    /// Area in cells.
    pub fn area(&self) -> usize {
        self.width() * self.height()
    }

    /// Whether the cell `(x, y)` lies inside.
    pub fn contains(&self, x: usize, y: usize) -> bool {
        (self.x0..=self.x1).contains(&x) && (self.y0..=self.y1).contains(&y)
    }

    /// The intersection with `other`, if non-empty.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x0.max(other.x0);
        let x1 = self.x1.min(other.x1);
        let y0 = self.y0.max(other.y0);
        let y1 = self.y1.min(other.y1);
        (x0 <= x1 && y0 <= y1).then_some(Rect { x0, y0, x1, y1 })
    }

    /// Whether `self` and `other` share at least one cell.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.intersect(other).is_some()
    }

    /// Iterates over all contained cells, row-major.
    pub fn cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (self.y0..=self.y1).flat_map(move |y| (self.x0..=self.x1).map(move |x| (x, y)))
    }
}

/// A clustered association rule (paper §2.1): two attribute ranges implying
/// a criterion group, decoded back to raw attribute values.
///
/// ```text
/// 40 <= Age < 42  AND  40000 <= Salary < 60000  =>  Group = A
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredRule {
    /// Name of the x attribute.
    pub x_attr: String,
    /// Half-open value range `[lo, hi)` on the x attribute.
    pub x_range: (f64, f64),
    /// Name of the y attribute.
    pub y_attr: String,
    /// Half-open value range `[lo, hi)` on the y attribute.
    pub y_range: (f64, f64),
    /// Name of the criterion attribute.
    pub criterion_attr: String,
    /// Label of the criterion group the rule implies.
    pub group_label: String,
    /// The grid rectangle the rule was decoded from.
    pub rect: Rect,
    /// Aggregate support of the cluster: fraction of all tuples that fall
    /// in the rectangle *and* carry the group label.
    pub support: f64,
    /// Aggregate confidence: of the tuples in the rectangle, the fraction
    /// carrying the group label.
    pub confidence: f64,
}

impl ClusteredRule {
    /// Decodes a grid rectangle into value ranges using the binner's maps.
    #[allow(clippy::too_many_arguments)]
    pub fn from_rect(
        rect: Rect,
        x_map: &BinMap,
        y_map: &BinMap,
        x_attr: &str,
        y_attr: &str,
        criterion_attr: &str,
        group_label: &str,
        support: f64,
        confidence: f64,
    ) -> Result<Self, ArcsError> {
        let (x_lo, _) = x_map.range(rect.x0).ok_or(ArcsError::OutOfBounds {
            what: format!("x bin {}", rect.x0),
        })?;
        let (_, x_hi) = x_map.range(rect.x1).ok_or(ArcsError::OutOfBounds {
            what: format!("x bin {}", rect.x1),
        })?;
        let (y_lo, _) = y_map.range(rect.y0).ok_or(ArcsError::OutOfBounds {
            what: format!("y bin {}", rect.y0),
        })?;
        let (_, y_hi) = y_map.range(rect.y1).ok_or(ArcsError::OutOfBounds {
            what: format!("y bin {}", rect.y1),
        })?;
        Ok(ClusteredRule {
            x_attr: x_attr.to_string(),
            x_range: (x_lo, x_hi),
            y_attr: y_attr.to_string(),
            y_range: (y_lo, y_hi),
            criterion_attr: criterion_attr.to_string(),
            group_label: group_label.to_string(),
            rect,
            support,
            confidence,
        })
    }

    /// Whether a raw `(x, y)` point satisfies the rule's LHS.
    pub fn covers(&self, x: f64, y: f64) -> bool {
        (self.x_range.0..self.x_range.1).contains(&x)
            && (self.y_range.0..self.y_range.1).contains(&y)
    }
}

/// Formats a bound with at most four decimals, trimming trailing zeros —
/// keeps binned boundaries like `41.6` readable despite floating-point
/// representation error.
pub(crate) fn fmt_bound(v: f64) -> String {
    let mut s = format!("{v:.4}");
    if s.contains('.') {
        while s.ends_with('0') {
            s.pop();
        }
        if s.ends_with('.') {
            s.pop();
        }
    }
    s
}

impl fmt::Display for ClusteredRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} <= {} < {}  AND  {} <= {} < {}  =>  {} = {}",
            fmt_bound(self.x_range.0),
            self.x_attr,
            fmt_bound(self.x_range.1),
            fmt_bound(self.y_range.0),
            self.y_attr,
            fmt_bound(self.y_range.1),
            self.criterion_attr,
            self.group_label
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_geometry() {
        let r = Rect::new(2, 3, 5, 7).unwrap();
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 5);
        assert_eq!(r.area(), 20);
        assert!(r.contains(2, 3));
        assert!(r.contains(5, 7));
        assert!(!r.contains(6, 7));
        assert!(!r.contains(5, 8));
        assert_eq!(r.cells().count(), 20);
        assert!(Rect::new(5, 0, 2, 0).is_err());
        assert!(Rect::new(0, 5, 0, 2).is_err());
    }

    #[test]
    fn unit_rect() {
        let r = Rect::new(4, 4, 4, 4).unwrap();
        assert_eq!(r.area(), 1);
        assert_eq!(r.cells().collect::<Vec<_>>(), vec![(4, 4)]);
    }

    #[test]
    fn intersection_and_overlap() {
        let a = Rect::new(0, 0, 4, 4).unwrap();
        let b = Rect::new(3, 3, 6, 6).unwrap();
        let c = Rect::new(5, 0, 6, 2).unwrap();
        assert_eq!(a.intersect(&b), Some(Rect { x0: 3, y0: 3, x1: 4, y1: 4 }));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert_eq!(a.intersect(&c), None);
        // Touching at a single shared cell counts as overlap.
        let d = Rect::new(4, 4, 8, 8).unwrap();
        assert_eq!(a.intersect(&d).unwrap().area(), 1);
    }

    #[test]
    fn clustered_rule_decodes_ranges() {
        let x_map = BinMap::equi_width(20.0, 80.0, 60).unwrap(); // 1 year/bin
        let y_map = BinMap::equi_width(0.0, 150_000.0, 15).unwrap(); // 10k/bin
        let rect = Rect::new(20, 4, 21, 5).unwrap(); // ages 40..42, salary 40k..60k
        let rule = ClusteredRule::from_rect(
            rect, &x_map, &y_map, "age", "salary", "group", "A", 0.1, 0.9,
        )
        .unwrap();
        assert_eq!(rule.x_range, (40.0, 42.0));
        assert_eq!(rule.y_range, (40_000.0, 60_000.0));
        let text = rule.to_string();
        assert_eq!(
            text,
            "40 <= age < 42  AND  40000 <= salary < 60000  =>  group = A"
        );
    }

    #[test]
    fn clustered_rule_covers_points() {
        let x_map = BinMap::equi_width(0.0, 10.0, 10).unwrap();
        let y_map = BinMap::equi_width(0.0, 10.0, 10).unwrap();
        let rule = ClusteredRule::from_rect(
            Rect::new(2, 3, 4, 5).unwrap(),
            &x_map,
            &y_map,
            "x",
            "y",
            "g",
            "A",
            0.0,
            0.0,
        )
        .unwrap();
        assert!(rule.covers(2.0, 3.0));
        assert!(rule.covers(4.9, 5.9));
        assert!(!rule.covers(5.0, 4.0)); // half-open upper bound
        assert!(!rule.covers(1.9, 4.0));
    }

    #[test]
    fn from_rect_rejects_out_of_range_bins() {
        let x_map = BinMap::equi_width(0.0, 10.0, 5).unwrap();
        let y_map = BinMap::equi_width(0.0, 10.0, 5).unwrap();
        let rect = Rect::new(0, 0, 5, 0).unwrap(); // x1 = 5 out of range
        assert!(ClusteredRule::from_rect(
            rect, &x_map, &y_map, "x", "y", "g", "A", 0.0, 0.0
        )
        .is_err());
    }
}
