//! Simulated-annealing threshold search (paper §5).
//!
//! The paper proposes simulated annealing as an alternative to the
//! hill-climbing heuristic of §3.7. The state space is the same Figure 10
//! lattice of *occurring* thresholds; a move perturbs the support level or
//! the confidence level by one step, and moves that worsen the MDL cost
//! are accepted with probability `exp(-Δ/T)` under a geometric cooling
//! schedule. The best state ever visited is returned, so the result is
//! never worse than the starting point.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use arcs_data::Tuple;

use crate::binarray::BinArray;
use crate::binner::Binner;
use crate::engine::Thresholds;
use crate::error::ArcsError;
use crate::optimizer::{evaluate, Evaluation, OptimizeResult, OptimizerConfig, SearchStats, ThresholdLattice};

/// Simulated-annealing parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealConfig {
    /// Component evaluation parameters (smoothing, BitOp, MDL weights).
    pub optimizer: OptimizerConfig,
    /// Initial temperature (in MDL-cost units).
    pub initial_temperature: f64,
    /// Geometric cooling factor per step, in `(0, 1)`.
    pub cooling: f64,
    /// Number of annealing steps.
    pub steps: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            optimizer: OptimizerConfig::default(),
            initial_temperature: 2.0,
            cooling: 0.97,
            steps: 200,
            seed: 0,
        }
    }
}

impl AnnealConfig {
    fn validate(&self) -> Result<(), ArcsError> {
        if self.initial_temperature <= 0.0 {
            return Err(ArcsError::InvalidConfig(
                "initial_temperature must be > 0".into(),
            ));
        }
        if !(0.0 < self.cooling && self.cooling < 1.0) {
            return Err(ArcsError::InvalidConfig("cooling must be in (0, 1)".into()));
        }
        if self.steps == 0 {
            return Err(ArcsError::InvalidConfig("steps must be > 0".into()));
        }
        Ok(())
    }
}

/// State in the lattice: a support index and a confidence index within
/// that support level's list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct State {
    si: usize,
    ci: usize,
}

fn thresholds_at(lattice: &ThresholdLattice, state: State) -> Result<Thresholds, ArcsError> {
    let s = lattice.supports()[state.si];
    let confs = lattice.confidences_for(state.si);
    let c = confs[state.ci.min(confs.len() - 1)];
    Thresholds::new((s - 1e-12).max(0.0), (c - 1e-12).max(0.0))
}

/// Runs simulated annealing over the threshold lattice. Cost of a state
/// with no clusters is treated as `+inf` so the search never settles on an
/// empty segmentation. Returns [`ArcsError::NoSegmentation`] when no
/// visited state produced any cluster.
pub fn anneal(
    array: &BinArray,
    gk: u32,
    binner: &Binner,
    sample: &[&Tuple],
    config: &AnnealConfig,
) -> Result<OptimizeResult, ArcsError> {
    config.validate()?;
    let lattice = ThresholdLattice::build(array, gk);
    if lattice.is_empty() {
        return Err(ArcsError::NoSegmentation);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);

    // States with no clusters, or below the recall guard (see
    // `OptimizerConfig::min_group_recall`), cost +inf so the walk never
    // settles on a degenerate segmentation.
    let min_recall = config.optimizer.min_group_recall;
    let cost_of = |e: &Evaluation| -> f64 {
        if e.clusters.is_empty() || e.errors.recall() < min_recall {
            f64::INFINITY
        } else {
            e.score.cost
        }
    };

    // Start at the lowest support, lowest confidence — the same corner the
    // §3.7 heuristic starts from.
    let mut state = State { si: 0, ci: 0 };
    let mut current =
        evaluate(array, gk, binner, sample, thresholds_at(&lattice, state)?, &config.optimizer)?;
    let mut trace = vec![current.clone()];
    let mut best: Option<Evaluation> =
        cost_of(&current).is_finite().then(|| current.clone());
    let mut best_any: Option<Evaluation> =
        (!current.clusters.is_empty()).then(|| current.clone());

    let mut temperature = config.initial_temperature;
    for _ in 0..config.steps {
        // Propose a single-step move along one axis.
        let next = propose(&lattice, state, &mut rng);
        if next != state {
            let eval = evaluate(
                array,
                gk,
                binner,
                sample,
                thresholds_at(&lattice, next)?,
                &config.optimizer,
            )?;
            trace.push(eval.clone());
            let delta = cost_of(&eval) - cost_of(&current);
            let accept = delta <= 0.0
                || (delta.is_finite() && rng.gen::<f64>() < (-delta / temperature).exp());
            if accept {
                state = next;
                current = eval.clone();
            }
            if !eval.clusters.is_empty()
                && best_any
                    .as_ref()
                    .is_none_or(|b| eval.score.cost < b.score.cost)
            {
                best_any = Some(eval.clone());
            }
            let improves = cost_of(&eval).is_finite()
                && best.as_ref().is_none_or(|b| eval.score.cost < b.score.cost);
            if improves {
                best = Some(eval);
            }
        }
        temperature *= config.cooling;
    }

    match best.or(best_any) {
        Some(best) => Ok(OptimizeResult {
            best,
            trace,
            stats: SearchStats { occupied_cells: lattice.occupied_cells(), ..SearchStats::default() },
        }),
        None => Err(ArcsError::NoSegmentation),
    }
}

fn propose(lattice: &ThresholdLattice, state: State, rng: &mut StdRng) -> State {
    let n_supports = lattice.supports().len();
    let move_support = rng.gen_bool(0.5);
    if move_support && n_supports > 1 {
        let si = if rng.gen_bool(0.5) {
            state.si.saturating_sub(1)
        } else {
            (state.si + 1).min(n_supports - 1)
        };
        // Keep the confidence index valid for the new support level.
        let ci = state.ci.min(lattice.confidences_for(si).len() - 1);
        State { si, ci }
    } else {
        let n_confs = lattice.confidences_for(state.si).len();
        if n_confs <= 1 {
            return state;
        }
        let ci = if rng.gen_bool(0.5) {
            state.ci.saturating_sub(1)
        } else {
            (state.ci + 1).min(n_confs - 1)
        };
        State { si: state.si, ci }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_data::schema::{Attribute, Schema};
    use arcs_data::{Dataset, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::quantitative("x", 0.0, 10.0),
            Attribute::quantitative("y", 0.0, 10.0),
            Attribute::categorical("g", ["A", "other"]),
        ])
        .unwrap()
    }

    fn blocky_dataset() -> Dataset {
        let mut ds = Dataset::new(schema());
        for ix in 0..10 {
            for iy in 0..10 {
                let x = ix as f64 + 0.5;
                let y = iy as f64 + 0.5;
                let in_block = (2..5).contains(&ix) && (2..5).contains(&iy);
                let (n_a, n_other) = if in_block { (20, 2) } else { (0, 5) };
                for _ in 0..n_a {
                    ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(0)]).unwrap();
                }
                for _ in 0..n_other {
                    ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(1)]).unwrap();
                }
            }
        }
        ds
    }

    fn setup() -> (Dataset, Binner) {
        let ds = blocky_dataset();
        let b = Binner::equi_width(&schema(), "x", "y", "g", 10, 10).unwrap();
        (ds, b)
    }

    #[test]
    fn anneal_finds_the_block() {
        let (ds, b) = setup();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let sample: Vec<&Tuple> = ds.iter().collect();
        let config = AnnealConfig {
            optimizer: OptimizerConfig {
                bitop: crate::bitop::BitOpConfig::no_pruning(),
                ..OptimizerConfig::default()
            },
            steps: 50,
            ..AnnealConfig::default()
        };
        let result = anneal(&ba, 0, &b, &sample, &config).unwrap();
        assert_eq!(result.best.clusters.len(), 1);
        let rect = result.best.clusters[0];
        assert_eq!((rect.x0, rect.y0, rect.x1, rect.y1), (2, 2, 4, 4));
    }

    #[test]
    fn anneal_is_deterministic_per_seed() {
        let (ds, b) = setup();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let sample: Vec<&Tuple> = ds.iter().collect();
        let config = AnnealConfig { steps: 30, ..AnnealConfig::default() };
        let a = anneal(&ba, 0, &b, &sample, &config).unwrap();
        let b2 = anneal(&ba, 0, &b, &sample, &config).unwrap();
        assert_eq!(a.best, b2.best);
        assert_eq!(a.trace.len(), b2.trace.len());
    }

    #[test]
    fn anneal_validates_config() {
        let (ds, b) = setup();
        let ba = b.bin_rows(ds.iter()).unwrap();
        for bad in [
            AnnealConfig { initial_temperature: 0.0, ..AnnealConfig::default() },
            AnnealConfig { cooling: 1.0, ..AnnealConfig::default() },
            AnnealConfig { cooling: 0.0, ..AnnealConfig::default() },
            AnnealConfig { steps: 0, ..AnnealConfig::default() },
        ] {
            assert!(anneal(&ba, 0, &b, &[], &bad).is_err());
        }
    }

    #[test]
    fn anneal_errors_on_empty_array() {
        let (_, b) = setup();
        let ba = b.new_bin_array().unwrap();
        assert_eq!(
            anneal(&ba, 0, &b, &[], &AnnealConfig::default()).unwrap_err(),
            ArcsError::NoSegmentation
        );
    }

    #[test]
    fn anneal_matches_heuristic_on_easy_data() {
        // On a clean single-block dataset both searches should find the
        // same (unique) optimum.
        let (ds, b) = setup();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let sample: Vec<&Tuple> = ds.iter().collect();
        let opt_config = OptimizerConfig {
            bitop: crate::bitop::BitOpConfig::no_pruning(),
            ..OptimizerConfig::default()
        };
        let heuristic = crate::optimizer::optimize(&ba, 0, &b, &sample, &opt_config).unwrap();
        let annealed = anneal(
            &ba,
            0,
            &b,
            &sample,
            &AnnealConfig { optimizer: opt_config, steps: 50, ..AnnealConfig::default() },
        )
        .unwrap();
        assert_eq!(heuristic.best.clusters, annealed.best.clusters);
    }
}
