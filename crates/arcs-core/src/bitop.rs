//! The BitOp clustering algorithm (paper §3.3.1, Figure 6).
//!
//! BitOp locates rectangular clusters of set cells in a bitmap grid using
//! only word-wide bitwise ANDs and run extraction:
//!
//! * For every start row `r0`, a running mask is ANDed with each
//!   successive row. While the mask is unchanged the candidate rectangles
//!   keep growing taller; whenever the mask *loses* bits, the maximal
//!   horizontal runs of the prior mask are emitted as candidate rectangles
//!   spanning rows `r0 .. r-1`; when the mask empties, the start row is
//!   finished.
//! * The candidates are consumed greedily: the largest is selected, its
//!   cells cleared from the grid, and enumeration repeats — the classic
//!   greedy set-cover approximation the paper cites (reference \[5\]),
//!   "near optimal … in O(|C|) time where C is the final set of clusters".
//!
//! Candidates smaller than the prune threshold terminate the loop
//! (paper §3.5: "if the algorithm cannot locate a sufficiently large
//! cluster it terminates").

use crate::cluster::Rect;
use crate::error::ArcsError;
use crate::grid::{for_each_run, Grid};
use crate::metrics::RecoveryStats;

/// Configuration of the greedy BitOp clustering loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitOpConfig {
    /// Minimum cluster size as a fraction of the total grid area
    /// (paper §3.5: clusters smaller than ~1% of the grid are pruned).
    pub min_area_fraction: f64,
    /// Absolute floor on cluster area in cells (applied together with
    /// `min_area_fraction`; the effective threshold is the larger).
    pub min_area_cells: usize,
    /// Safety cap on the number of clusters returned. The greedy loop
    /// always terminates (each selection clears at least one cell), but a
    /// cap keeps adversarial salt-and-pepper grids from producing
    /// thousands of 1-cell clusters when pruning is disabled.
    pub max_clusters: usize,
    /// Worker threads for candidate enumeration (paper §5 notes the
    /// algorithm parallelises trivially). Defaults to
    /// [`available_parallelism`](std::thread::available_parallelism);
    /// `1` = sequential. Results are bit-identical either way.
    pub threads: usize,
}

impl Default for BitOpConfig {
    fn default() -> Self {
        BitOpConfig {
            min_area_fraction: 0.01,
            min_area_cells: 1,
            max_clusters: 10_000,
            threads: crate::metrics::default_threads(),
        }
    }
}

impl BitOpConfig {
    /// A configuration with pruning disabled: every cluster down to a
    /// single cell is kept.
    pub fn no_pruning() -> Self {
        BitOpConfig {
            min_area_fraction: 0.0,
            min_area_cells: 1,
            ..BitOpConfig::default()
        }
    }

    /// The effective minimum area in cells for a `width × height` grid.
    pub fn min_area(&self, width: usize, height: usize) -> usize {
        let by_fraction = (self.min_area_fraction * (width * height) as f64).ceil() as usize;
        by_fraction.max(self.min_area_cells).max(1)
    }

    fn validate(&self) -> Result<(), ArcsError> {
        if !(0.0..=1.0).contains(&self.min_area_fraction) {
            return Err(ArcsError::InvalidConfig(format!(
                "min_area_fraction {} outside [0, 1]",
                self.min_area_fraction
            )));
        }
        if self.max_clusters == 0 {
            return Err(ArcsError::InvalidConfig("max_clusters must be > 0".into()));
        }
        if self.threads == 0 {
            return Err(ArcsError::InvalidConfig("threads must be > 0".into()));
        }
        Ok(())
    }
}

/// Enumerates every candidate rectangle the Figure 6 scan produces for the
/// current grid. Candidates may overlap and subsume one another; the
/// greedy loop in [`cluster`] resolves that.
pub fn enumerate_candidates(grid: &Grid) -> Vec<Rect> {
    enumerate_rows(grid, 0, grid.height())
}

/// Parallel candidate enumeration (paper §5: "parallel implementations of
/// the algorithm would be straightforward"): start rows are striped across
/// `threads` workers — each scan is independent because the running mask
/// only reads the grid. Results are identical to [`enumerate_candidates`]
/// including order (stripes are concatenated in row order).
pub fn enumerate_candidates_parallel(grid: &Grid, threads: usize) -> Vec<Rect> {
    enumerate_candidates_parallel_with_stats(grid, threads).0
}

/// [`enumerate_candidates_parallel`] plus panic-isolation tallies.
///
/// Stripes run on the persistent worker pool
/// ([`ExecPool`](crate::exec::ExecPool)). A panicked stripe worker is
/// retried up to [`MAX_SHARD_RETRIES`](crate::exec::MAX_SHARD_RETRIES)
/// times, then recomputed on the calling thread with the `bitop.stripe`
/// failpoint out of the loop. Each attempt rescans the stripe from the
/// read-only grid, so recovery is side-effect free and the concatenated
/// result stays bit-identical, stripe order included. A panic from the
/// scan itself on the final attempt propagates: enumeration has no
/// typed-error channel, and the caller's `catch_unwind`-free path would
/// abort anyway.
pub fn enumerate_candidates_parallel_with_stats(
    grid: &Grid,
    threads: usize,
) -> (Vec<Rect>, RecoveryStats) {
    let height = grid.height();
    let threads = threads.max(1).min(height.max(1));
    if height == 0 || threads == 1 {
        // `height == 0` is unreachable through the validated `Grid`
        // constructors but must not divide by zero below (the clamp
        // would yield `threads == 0`); a degenerate grid simply has no
        // candidates and takes the sequential path.
        let stats = RecoveryStats { effective_workers: 1, ..RecoveryStats::default() };
        return (enumerate_candidates(grid), stats);
    }
    let stripe = height.div_ceil(threads);
    let ranges: Vec<(usize, usize)> = (0..threads)
        .map(|t| (t * stripe, ((t + 1) * stripe).min(height)))
        .collect();
    let (attempts, pool_stats) =
        crate::exec::ExecPool::global().run_shards(threads, &ranges, |_, &(lo, hi)| {
            fault_check_stripe();
            enumerate_rows(grid, lo, hi)
        });
    let mut stats = RecoveryStats::default();
    stats.record_pool(&pool_stats);
    let mut stripes: Vec<Vec<Rect>> = Vec::with_capacity(threads);
    for (attempt, &(lo, hi)) in attempts.into_iter().zip(&ranges) {
        let rects = match attempt {
            Ok(rects) => rects,
            Err(_) => {
                stats.worker_panics += 1;
                recover_stripe(grid, lo, hi, &mut stats)
            }
        };
        stripes.push(rects);
    }
    (stripes.concat(), stats)
}

/// The `bitop.stripe` failpoint, panic-only by construction: enumeration
/// returns no `Result`, so `error`/`alloc` actions configured on this
/// point are escalated to panics (which the isolation layer then
/// recovers).
fn fault_check_stripe() {
    if let Err(err) = crate::faults::check("bitop.stripe") {
        panic!("injected fault at failpoint `bitop.stripe`: {err}");
    }
}

/// Retries a panicked stripe scan, then recomputes it without the
/// failpoint — through [`run_recovered`](crate::exec::run_recovered), so
/// the binner and BitOp tally identical fault schedules identically (the
/// contract documented on [`RecoveryStats`]). Enumeration has no typed
/// error channel, so an unrecoverable final-pass panic re-raises as a
/// panic carrying the [`ArcsError::WorkerPanicked`] message.
fn recover_stripe(grid: &Grid, lo: usize, hi: usize, stats: &mut RecoveryStats) -> Vec<Rect> {
    crate::exec::run_recovered(
        stats,
        "bitop",
        || {
            fault_check_stripe();
            Ok(enumerate_rows(grid, lo, hi))
        },
        || Ok(enumerate_rows(grid, lo, hi)),
    )
    .unwrap_or_else(|err| panic!("{err}"))
}

/// Figure 6 scan restricted to start rows `r0 ∈ [row_lo, row_hi)` (each
/// scan still extends downward through the whole grid).
///
/// The inner loop is word-parallel in the style of the bit-sliced
/// smoothing kernel: one branch-free pass ANDs the running mask with the
/// next row into a second buffer while OR-folding a change detector
/// (`mask ^ next`) and a liveness accumulator, so the per-word
/// `changed`/`empty` branches of the scalar formulation disappear from
/// the hot loop. The scalar oracle is kept as
/// [`enumerate_candidates_reference`]; a proptest pins their equivalence.
fn enumerate_rows(grid: &Grid, row_lo: usize, row_hi: usize) -> Vec<Rect> {
    let mut candidates = Vec::new();
    let height = grid.height();
    let width = grid.width();
    let words = grid.words_per_row();
    let mut mask = vec![0u64; words];
    let mut next = vec![0u64; words];

    for r0 in row_lo..row_hi.min(height) {
        mask.copy_from_slice(grid.row(r0));
        if mask.iter().all(|&w| w == 0) {
            continue;
        }
        let mut top = r0; // last row included in the current mask
        for r in r0 + 1..height {
            // next = mask & row[r], with `diff`/`live` OR-accumulated
            // word-parallel instead of branched per word.
            let row = grid.row(r);
            let mut diff = 0u64;
            let mut live = 0u64;
            for ((n, &m), &w) in next.iter_mut().zip(&mask).zip(row) {
                let and = m & w;
                *n = and;
                diff |= m ^ and;
                live |= and;
            }
            if diff == 0 {
                top = r;
                continue;
            }
            // Emit the prior mask's runs: rectangles spanning rows r0..=top.
            emit_runs(&mask, width, r0, top, &mut candidates);
            std::mem::swap(&mut mask, &mut next);
            if live == 0 {
                top = r0; // unused; loop exits
                break;
            }
            top = r;
        }
        if mask.iter().any(|&w| w != 0) {
            emit_runs(&mask, width, r0, top, &mut candidates);
        }
    }
    candidates
}

fn emit_runs(mask: &[u64], width: usize, y0: usize, y1: usize, out: &mut Vec<Rect>) {
    for_each_run(mask, width, |x0, x1| {
        out.push(Rect { x0, y0, x1, y1 });
    });
}

/// The scalar oracle for [`enumerate_candidates`]: the pre-bit-slicing
/// formulation with per-word `changed`/`empty` branches and the
/// bit-at-a-time run extraction
/// ([`for_each_run_reference`](crate::grid::for_each_run_reference)).
/// Kept verbatim for differential testing — a proptest asserts the
/// word-parallel kernel produces the identical candidate list on random
/// grids.
pub fn enumerate_candidates_reference(grid: &Grid) -> Vec<Rect> {
    let mut candidates = Vec::new();
    let height = grid.height();
    let width = grid.width();
    let words = grid.words_per_row();
    let mut mask = vec![0u64; words];

    for r0 in 0..height {
        mask.copy_from_slice(grid.row(r0));
        if mask.iter().all(|&w| w == 0) {
            continue;
        }
        let mut top = r0;
        for r in r0 + 1..height {
            let row = grid.row(r);
            let mut changed = false;
            let mut empty = true;
            for (m, &w) in mask.iter().zip(row) {
                let next = m & w;
                if next != *m {
                    changed = true;
                }
                if next != 0 {
                    empty = false;
                }
            }
            if !changed {
                top = r;
                continue;
            }
            crate::grid::for_each_run_reference(&mask, width, |x0, x1| {
                candidates.push(Rect { x0, y0: r0, x1, y1: top });
            });
            for (m, &w) in mask.iter_mut().zip(row) {
                *m &= w;
            }
            if empty {
                break;
            }
            top = r;
        }
        if mask.iter().any(|&w| w != 0) {
            crate::grid::for_each_run_reference(&mask, width, |x0, x1| {
                candidates.push(Rect { x0, y0: r0, x1, y1: top });
            });
        }
    }
    candidates
}

/// Work counters from one greedy clustering run. Independent of thread
/// count — both describe what was enumerated, not how it was scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterStats {
    /// Candidate rectangles enumerated across all greedy iterations.
    pub candidates_enumerated: u64,
    /// Residual candidates below the prune threshold when the loop
    /// terminated (§3.5) — the clusters the area prune suppressed.
    pub clusters_pruned: u64,
    /// Panic-isolation tallies from the parallel enumeration workers.
    pub recovery: RecoveryStats,
}

/// Runs the full greedy BitOp clustering on a copy of `grid`: enumerate
/// candidates, select the largest (ties: bottom-most, then left-most),
/// clear it, repeat until the grid is empty or no candidate reaches the
/// prune threshold.
pub fn cluster(grid: &Grid, config: &BitOpConfig) -> Result<Vec<Rect>, ArcsError> {
    cluster_with_stats(grid, config).map(|(clusters, _)| clusters)
}

/// [`cluster`] plus [`ClusterStats`] for the observability layer.
pub fn cluster_with_stats(
    grid: &Grid,
    config: &BitOpConfig,
) -> Result<(Vec<Rect>, ClusterStats), ArcsError> {
    crate::faults::check("bitop.enumerate")?;
    config.validate()?;
    let min_area = config.min_area(grid.width(), grid.height());
    let mut work = grid.clone();
    let mut clusters = Vec::new();
    let mut stats = ClusterStats::default();

    while !work.is_empty() && clusters.len() < config.max_clusters {
        let (candidates, recovery) =
            enumerate_candidates_parallel_with_stats(&work, config.threads);
        stats.recovery.merge(&recovery);
        stats.candidates_enumerated += candidates.len() as u64;
        let best = candidates.iter().copied().max_by(|a, b| {
            a.area()
                .cmp(&b.area())
                .then(b.y0.cmp(&a.y0)) // prefer smaller y0
                .then(b.x0.cmp(&a.x0)) // then smaller x0
        });
        match best {
            Some(rect) if rect.area() >= min_area => {
                debug_assert!(work.rect_is_full(rect), "candidate {rect:?} not fully set");
                work.clear_rect(rect);
                clusters.push(rect);
            }
            // §3.5: no sufficiently large cluster remains — terminate,
            // recording how many residual candidates the prune suppressed.
            _ => {
                stats.clusters_pruned +=
                    candidates.iter().filter(|r| r.area() < min_area).count() as u64;
                break;
            }
        }
    }
    Ok((clusters, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rects(grid_art: &str, config: &BitOpConfig) -> Vec<Rect> {
        let grid = Grid::parse(grid_art).unwrap();
        cluster(&grid, config).unwrap()
    }

    #[test]
    fn paper_worked_example() {
        // The §3.3.1 walk-through grid (top line = row 0 here):
        //   row3  1 0 0
        //   row2  1 1 0
        //   row1  0 1 1
        // As art with row 1 first:
        let grid = Grid::parse(
            "
            .##
            ##.
            #..
            ",
        )
        .unwrap();
        let candidates = enumerate_candidates(&grid);
        // Start row 0: mask 011 -> emits (1..2, 0..0); mask &= row1 = 010
        //   -> row2 AND = 000 -> emits (1..1, 0..1).
        // Start row 1: mask 110 -> row2 AND = 100, emits (0..1, 1..1);
        //   then end of grid emits (0..0, 1..2).
        // Start row 2: mask 100 -> emits (0..0, 2..2).
        assert!(candidates.contains(&Rect { x0: 1, y0: 0, x1: 2, y1: 0 }));
        assert!(candidates.contains(&Rect { x0: 1, y0: 0, x1: 1, y1: 1 }));
        assert!(candidates.contains(&Rect { x0: 0, y0: 1, x1: 1, y1: 1 }));
        assert!(candidates.contains(&Rect { x0: 0, y0: 1, x1: 0, y1: 2 }));
        assert!(candidates.contains(&Rect { x0: 0, y0: 2, x1: 0, y1: 2 }));
        assert_eq!(candidates.len(), 5);
    }

    #[test]
    fn single_full_rectangle_found_exactly() {
        let found = rects(
            "
            ......
            .####.
            .####.
            .####.
            ......
            ",
            &BitOpConfig::no_pruning(),
        );
        assert_eq!(found, vec![Rect { x0: 1, y0: 1, x1: 4, y1: 3 }]);
    }

    #[test]
    fn two_disjoint_rectangles() {
        let found = rects(
            "
            ##..##
            ##..##
            ......
            ",
            &BitOpConfig::no_pruning(),
        );
        assert_eq!(found.len(), 2);
        assert!(found.contains(&Rect { x0: 0, y0: 0, x1: 1, y1: 1 }));
        assert!(found.contains(&Rect { x0: 4, y0: 0, x1: 5, y1: 1 }));
    }

    #[test]
    fn l_shape_covered_by_two_clusters() {
        // The greedy choice takes the largest rectangle first.
        let found = rects(
            "
            #..
            #..
            ###
            ",
            &BitOpConfig::no_pruning(),
        );
        let total: usize = found.iter().map(Rect::area).sum();
        assert_eq!(total, 5, "clusters {found:?} must cover all 5 cells");
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn plus_shape() {
        let found = rects(
            "
            .#.
            ###
            .#.
            ",
            &BitOpConfig::no_pruning(),
        );
        let covered: usize = found.iter().map(Rect::area).sum();
        assert_eq!(covered, 5);
        // First cluster is one of the 3-cell bars.
        assert_eq!(found[0].area(), 3);
    }

    #[test]
    fn full_grid_is_one_cluster() {
        let found = rects(
            "
            ####
            ####
            ",
            &BitOpConfig::no_pruning(),
        );
        assert_eq!(found, vec![Rect { x0: 0, y0: 0, x1: 3, y1: 1 }]);
    }

    #[test]
    fn empty_grid_yields_nothing() {
        let grid = Grid::new(5, 5).unwrap();
        assert!(enumerate_candidates(&grid).is_empty());
        assert!(cluster(&grid, &BitOpConfig::no_pruning()).unwrap().is_empty());
    }

    #[test]
    fn pruning_drops_small_specks() {
        // A 4x4 block plus an isolated cell; min area 2 drops the speck.
        let config = BitOpConfig {
            min_area_fraction: 0.0,
            min_area_cells: 2,
            max_clusters: 100,
            threads: 1,
        };
        let found = rects(
            "
            ####....
            ####...#
            ####....
            ####....
            ",
            &config,
        );
        assert_eq!(found, vec![Rect { x0: 0, y0: 0, x1: 3, y1: 3 }]);
    }

    #[test]
    fn fraction_pruning_uses_grid_area() {
        let config = BitOpConfig {
            min_area_fraction: 0.10, // 10% of 8x4 = 3.2 -> 4 cells
            min_area_cells: 1,
            max_clusters: 100,
            threads: 1,
        };
        assert_eq!(config.min_area(8, 4), 4);
        let found = rects(
            "
            ##..####
            ##......
            ........
            ........
            ",
            &config,
        );
        // 2x2 block (4 cells) kept; 1x4 run (4 cells) kept; nothing smaller.
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|r| r.area() >= 4));
    }

    #[test]
    fn clusters_never_overlap() {
        let grid = Grid::parse(
            "
            ######..
            ######..
            ..######
            ..######
            ",
        )
        .unwrap();
        let found = cluster(&grid, &BitOpConfig::no_pruning()).unwrap();
        for (i, a) in found.iter().enumerate() {
            for b in &found[i + 1..] {
                assert!(!a.overlaps(b), "{a:?} overlaps {b:?}");
            }
        }
        let covered: usize = found.iter().map(Rect::area).sum();
        assert_eq!(covered, grid.count_ones());
    }

    #[test]
    fn max_clusters_caps_output() {
        // Checkerboard with pruning off would produce many 1-cell clusters.
        let mut art = String::new();
        for y in 0..6 {
            for x in 0..6 {
                art.push(if (x + y) % 2 == 0 { '#' } else { '.' });
            }
            art.push('\n');
        }
        let grid = Grid::parse(&art).unwrap();
        let config = BitOpConfig {
            min_area_fraction: 0.0,
            min_area_cells: 1,
            max_clusters: 5,
            threads: 1,
        };
        let found = cluster(&grid, &config).unwrap();
        assert_eq!(found.len(), 5);
    }

    #[test]
    fn default_threads_track_available_parallelism() {
        assert_eq!(
            BitOpConfig::default().threads,
            crate::metrics::default_threads()
        );
        assert!(BitOpConfig::default().threads >= 1);
    }

    #[test]
    fn stats_count_candidates_and_pruned_residue() {
        // A 4x4 block plus an isolated speck; min area 2 prunes the speck.
        let grid = Grid::parse(
            "
            ####....
            ####...#
            ####....
            ####....
            ",
        )
        .unwrap();
        let config = BitOpConfig {
            min_area_fraction: 0.0,
            min_area_cells: 2,
            max_clusters: 100,
            threads: 1,
        };
        let (clusters, stats) = cluster_with_stats(&grid, &config).unwrap();
        assert_eq!(clusters, vec![Rect { x0: 0, y0: 0, x1: 3, y1: 3 }]);
        assert!(stats.candidates_enumerated >= 2);
        assert_eq!(stats.clusters_pruned, 1);
        // Counts and fault tallies are schedule-independent; the pool
        // telemetry inside `recovery` (tasks run, steals, queue depth,
        // effective workers) legitimately varies with the thread count,
        // so compare through `faults_only()`.
        let (_, parallel_stats) =
            cluster_with_stats(&grid, &BitOpConfig { threads: 4, ..config }).unwrap();
        assert_eq!(stats.candidates_enumerated, parallel_stats.candidates_enumerated);
        assert_eq!(stats.clusters_pruned, parallel_stats.clusters_pruned);
        assert_eq!(stats.recovery.faults_only(), parallel_stats.recovery.faults_only());
        // Without pruning nothing is suppressed.
        let (_, loose) = cluster_with_stats(&grid, &BitOpConfig::no_pruning()).unwrap();
        assert_eq!(loose.clusters_pruned, 0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let grid = Grid::new(4, 4).unwrap();
        let bad = BitOpConfig { min_area_fraction: 1.5, ..BitOpConfig::default() };
        assert!(cluster(&grid, &bad).is_err());
        let bad = BitOpConfig { max_clusters: 0, ..BitOpConfig::default() };
        assert!(cluster(&grid, &bad).is_err());
        let bad = BitOpConfig { threads: 0, ..BitOpConfig::default() };
        assert!(cluster(&grid, &bad).is_err());
    }

    #[test]
    fn parallel_enumeration_matches_sequential() {
        // A deterministic pseudo-random grid exercising word boundaries.
        let mut grid = Grid::new(130, 23).unwrap();
        let mut state = 12345u64;
        for y in 0..23 {
            for x in 0..130 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state >> 60 > 7 {
                    grid.set(x, y);
                }
            }
        }
        let sequential = enumerate_candidates(&grid);
        for threads in [2, 3, 8, 64] {
            let parallel = enumerate_candidates_parallel(&grid, threads);
            assert_eq!(parallel, sequential, "{threads} threads");
        }
        // Clustering with threads produces identical clusters.
        let base = cluster(&grid, &BitOpConfig::no_pruning()).unwrap();
        let threaded = cluster(
            &grid,
            &BitOpConfig { threads: 4, ..BitOpConfig::no_pruning() },
        )
        .unwrap();
        assert_eq!(base, threaded);
    }

    #[test]
    fn parallel_enumeration_survives_zero_height_grid() {
        // Regression: the stripe partitioner used to clamp `threads` to
        // `height` without a floor, so a zero-height grid produced
        // `threads == 0` and `height.div_ceil(0)` panicked. The public
        // `Grid` constructors reject zero dimensions, hence the
        // test-only degenerate constructor.
        let grid = Grid::degenerate_zero_height(8);
        for threads in [1, 2, 4] {
            let (rects, stats) = enumerate_candidates_parallel_with_stats(&grid, threads);
            assert!(rects.is_empty());
            assert_eq!(stats.effective_workers, 1);
            assert!(!stats.any());
        }
    }

    #[test]
    fn parallel_enumeration_handles_tiny_grids() {
        let grid = Grid::parse("#.\n.#\n").unwrap();
        assert_eq!(
            enumerate_candidates_parallel(&grid, 16),
            enumerate_candidates(&grid)
        );
        let empty = Grid::new(3, 3).unwrap();
        assert!(enumerate_candidates_parallel(&empty, 4).is_empty());
    }

    #[test]
    fn wide_grid_crossing_word_boundaries() {
        // A 100-wide rectangle spanning the u64 boundary.
        let mut grid = Grid::new(100, 3).unwrap();
        grid.set_rect(Rect { x0: 30, y0: 0, x1: 95, y1: 2 });
        let found = cluster(&grid, &BitOpConfig::no_pruning()).unwrap();
        assert_eq!(found, vec![Rect { x0: 30, y0: 0, x1: 95, y1: 2 }]);
    }

    #[test]
    fn figure5_style_overlap_resolved_greedily() {
        // Two overlapping rectangles; greedy picks the bigger, then covers
        // the remainder.
        let found = rects(
            "
            ####....
            ####....
            ####....
            ########
            ########
            ",
            &BitOpConfig::no_pruning(),
        );
        let covered: usize = found.iter().map(Rect::area).sum();
        assert_eq!(covered, 28);
        // Largest-first: the full-height 4x5 = 20-cell left column beats
        // the 8x2 = 16-cell bottom block; the bottom-right remainder follows.
        assert_eq!(found[0], Rect { x0: 0, y0: 0, x1: 3, y1: 4 });
        assert_eq!(found[1], Rect { x0: 4, y0: 3, x1: 7, y1: 4 });
        assert_eq!(found.len(), 2);
    }
}
