//! The unified request schema shared by library, wire, and CLI.
//!
//! Before this module, three shapes described "one segmentation ask":
//! [`SegmentRequest`] (attribute binding for opening a session),
//! [`QueryRequest`] (group code + thresholds for the serving core), and
//! [`ClusterSpec`] (smooth + cluster configuration) — and the serving
//! cache keyed cluster configs by their `Debug` rendering, a second,
//! drift-prone encoding of the same data. [`Request`] unifies them:
//!
//! * one serde-able shape ([`Request::to_json`] / [`Request::from_json`])
//!   that the daemon's wire protocol, the CLI client, and the library all
//!   share — the wire payload *is* the canonical request schema;
//! * one canonical encoding of [`ClusterSpec`]
//!   ([`ClusterSpec::to_json`] / [`ClusterSpec::from_json`] /
//!   [`ClusterSpec::cache_token`]) used by both the result cache key and
//!   the wire payload, with round-trip tests so the two can never drift
//!   from the library structs;
//! * conversions to and from the old shapes, which remain as thin
//!   execution-plane aliases: [`Request::to_query_request`] resolves a
//!   group reference against a tenant's label table, and
//!   [`Request::to_segment_request`] extracts the attribute binding. The
//!   old builders keep working.
//!
//! The canonical [`ClusterSpec`] encoding deliberately **excludes**
//! [`BitOpConfig::threads`]: the engine guarantees bit-identical results
//! at any thread count, so the thread count is an execution knob, not
//! part of a query's identity. (The previous `Debug`-rendered cache key
//! included it, splitting the cache across thread counts for identical
//! results.)
//!
//! Entry points over a `Request`: [`crate::serve::Server::query_unified`]
//! for the serving core and [`crate::session::Session::query`] for an
//! owned session.

use std::time::Duration;

use crate::bitop::BitOpConfig;
use crate::cluster::Rect;
use crate::engine::{BinnedRule, Thresholds};
use crate::error::ArcsError;
use crate::jsonio::{obj, Json};
use crate::serve::{ClusterSpec, QueryRequest, QueryResult};
use crate::session::SegmentRequest;
use crate::smooth::{BorderMode, Kernel, SmoothConfig};

fn bad(message: impl Into<String>) -> ArcsError {
    ArcsError::InvalidConfig(message.into())
}

/// The two LHS attributes and the segmentation criterion a request binds
/// to — the information a [`SegmentRequest`] carried positionally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrBinding {
    /// The x (first LHS) attribute name.
    pub x: String,
    /// The y (second LHS) attribute name.
    pub y: String,
    /// The categorical criterion attribute name.
    pub criterion: String,
}

/// A criterion group referenced either by label (human-facing: CLI, wire)
/// or by code (execution-facing: the serving core mines by code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupRef {
    /// The group's label on the criterion attribute.
    Label(String),
    /// The group's code (its index in the criterion's label table).
    Code(u32),
}

impl GroupRef {
    /// Resolves the reference to a group code against a label table (the
    /// criterion attribute's labels in code order).
    pub fn resolve(&self, labels: &[String]) -> Result<u32, ArcsError> {
        match self {
            GroupRef::Code(code) => {
                if (*code as usize) < labels.len() {
                    Ok(*code)
                } else {
                    Err(ArcsError::UnknownGroup(format!("code {code}")))
                }
            }
            GroupRef::Label(label) => labels
                .iter()
                .position(|l| l == label)
                .map(|p| p as u32)
                .ok_or_else(|| ArcsError::UnknownGroup(label.clone())),
        }
    }
}

/// One segmentation request — the canonical shape shared by the library
/// entry points, the daemon wire protocol, and the CLI.
///
/// Every field is optional because different consumers need different
/// halves: opening a session needs `attrs`; querying an already-open
/// tenant needs `group` + `thresholds`; `cluster`, `deadline`, and
/// `memory_budget` refine either. The conversion methods state which
/// fields they require.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Request {
    /// Attribute binding, required to open a session / tenant.
    pub attrs: Option<AttrBinding>,
    /// The criterion group to mine.
    pub group: Option<GroupRef>,
    /// Explicit thresholds. `None` means "run the threshold search"
    /// (library sessions only — the wire protocol requires explicit
    /// thresholds so responses are cacheable and deterministic).
    pub thresholds: Option<Thresholds>,
    /// When set, also smooth + cluster the rule grid.
    pub cluster: Option<ClusterSpec>,
    /// Per-request deadline.
    pub deadline: Option<Duration>,
    /// Per-request memory budget in bytes.
    pub memory_budget: Option<usize>,
}

impl Request {
    /// An empty request; chain builders to fill it in.
    pub fn new() -> Self {
        Request::default()
    }

    /// Binds the LHS attributes and criterion (what [`SegmentRequest`]
    /// carried).
    pub fn attrs(
        mut self,
        x: impl Into<String>,
        y: impl Into<String>,
        criterion: impl Into<String>,
    ) -> Self {
        self.attrs = Some(AttrBinding { x: x.into(), y: y.into(), criterion: criterion.into() });
        self
    }

    /// Targets a criterion group by label.
    pub fn group(mut self, label: impl Into<String>) -> Self {
        self.group = Some(GroupRef::Label(label.into()));
        self
    }

    /// Targets a criterion group by code.
    pub fn group_code(mut self, code: u32) -> Self {
        self.group = Some(GroupRef::Code(code));
        self
    }

    /// Mines at explicit thresholds instead of searching.
    pub fn thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = Some(thresholds);
        self
    }

    /// Also smooth + cluster with `spec`.
    pub fn cluster(mut self, spec: ClusterSpec) -> Self {
        self.cluster = Some(spec);
        self
    }

    /// Sets the per-request deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-request memory budget in bytes.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    // -- conversions to/from the thin execution-plane shapes ---------------

    /// Lowers to the serving core's [`QueryRequest`], resolving the group
    /// reference against `labels`. Requires `group` and `thresholds`.
    pub fn to_query_request(&self, labels: &[String]) -> Result<QueryRequest, ArcsError> {
        let group = self.group.as_ref().ok_or_else(|| bad("request names no group"))?;
        let thresholds = self
            .thresholds
            .ok_or_else(|| bad("request has no thresholds (required for serving queries)"))?;
        let mut query = QueryRequest::new(group.resolve(labels)?, thresholds);
        query.cluster = self.cluster.clone();
        query.deadline = self.deadline;
        query.memory_budget = self.memory_budget;
        Ok(query)
    }

    /// Lifts a [`QueryRequest`] into the canonical shape (group kept as a
    /// code; no attribute binding — the server is already bound).
    pub fn from_query_request(query: &QueryRequest) -> Self {
        Request {
            attrs: None,
            group: Some(GroupRef::Code(query.gk)),
            thresholds: Some(query.thresholds),
            cluster: query.cluster.clone(),
            deadline: query.deadline,
            memory_budget: query.memory_budget,
        }
    }

    /// Extracts the session-opening [`SegmentRequest`]. Requires `attrs`;
    /// a group *label* and the memory budget carry over (a group *code*
    /// cannot — sessions resolve labels at open time).
    pub fn to_segment_request(&self) -> Result<SegmentRequest, ArcsError> {
        let attrs = self
            .attrs
            .as_ref()
            .ok_or_else(|| bad("request has no attribute binding (x/y/criterion)"))?;
        let mut seg = SegmentRequest::new(&attrs.x, &attrs.y, &attrs.criterion);
        match &self.group {
            Some(GroupRef::Label(label)) => seg = seg.group(label.clone()),
            Some(GroupRef::Code(_)) => {
                return Err(bad(
                    "a session open needs the group by label, not code \
                     (codes are assigned at open time)",
                ))
            }
            None => {}
        }
        if let Some(bytes) = self.memory_budget {
            seg = seg.memory_budget(bytes);
        }
        Ok(seg)
    }

    /// Lifts a [`SegmentRequest`] into the canonical shape.
    pub fn from_segment_request(seg: &SegmentRequest) -> Self {
        let mut request = Request::new().attrs(seg.x_attr(), seg.y_attr(), seg.criterion_attr());
        if let Some(label) = seg.group_label() {
            request = request.group(label);
        }
        if let Some(bytes) = seg.memory_budget_bytes() {
            request = request.memory_budget(bytes);
        }
        request
    }

    // -- the canonical JSON encoding ---------------------------------------

    /// Serializes to the canonical JSON object (the wire payload shape).
    /// Absent fields are omitted, so the encoding is minimal and stable.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = Vec::new();
        if let Some(attrs) = &self.attrs {
            pairs.push((
                "attrs",
                obj(vec![
                    ("x", Json::Str(attrs.x.clone())),
                    ("y", Json::Str(attrs.y.clone())),
                    ("criterion", Json::Str(attrs.criterion.clone())),
                ]),
            ));
        }
        match &self.group {
            Some(GroupRef::Label(label)) => {
                pairs.push(("group", obj(vec![("label", Json::Str(label.clone()))])));
            }
            Some(GroupRef::Code(code)) => {
                pairs.push(("group", obj(vec![("code", Json::Num(*code as f64))])));
            }
            None => {}
        }
        if let Some(t) = self.thresholds {
            pairs.push(("thresholds", thresholds_to_json(t)));
        }
        if let Some(spec) = &self.cluster {
            pairs.push(("cluster", spec.to_json()));
        }
        if let Some(deadline) = self.deadline {
            pairs.push(("deadline_ms", Json::Num(deadline.as_millis() as f64)));
        }
        if let Some(bytes) = self.memory_budget {
            pairs.push(("memory_budget", Json::Num(bytes as f64)));
        }
        obj(pairs)
    }

    /// Decodes the canonical JSON object. Unknown keys are ignored
    /// (forward compatibility); known keys with wrong types, invalid
    /// threshold ranges, or malformed group references are typed
    /// [`ArcsError::InvalidConfig`] errors.
    pub fn from_json(json: &Json) -> Result<Self, ArcsError> {
        if !matches!(json, Json::Obj(_)) {
            return Err(bad("request must be a JSON object"));
        }
        let attrs = match json.get("attrs") {
            None => None,
            Some(a) => Some(AttrBinding {
                x: require_str(a, "x", "attrs.x")?,
                y: require_str(a, "y", "attrs.y")?,
                criterion: require_str(a, "criterion", "attrs.criterion")?,
            }),
        };
        let group = match json.get("group") {
            None => None,
            Some(g) => Some(match (g.get("label"), g.get("code")) {
                (Some(label), None) => GroupRef::Label(
                    label.as_str().ok_or_else(|| bad("group.label must be a string"))?.to_string(),
                ),
                (None, Some(code)) => GroupRef::Code(
                    code.as_u64()
                        .and_then(|c| u32::try_from(c).ok())
                        .ok_or_else(|| bad("group.code must be a u32"))?,
                ),
                _ => return Err(bad("group must carry exactly one of `label` or `code`")),
            }),
        };
        let thresholds = json.get("thresholds").map(thresholds_from_json).transpose()?;
        let cluster = json.get("cluster").map(ClusterSpec::from_json).transpose()?;
        let deadline = match json.get("deadline_ms") {
            None => None,
            Some(ms) => Some(Duration::from_millis(
                ms.as_u64().ok_or_else(|| bad("deadline_ms must be a non-negative integer"))?,
            )),
        };
        let memory_budget = match json.get("memory_budget") {
            None => None,
            Some(bytes) => Some(
                bytes
                    .as_usize()
                    .ok_or_else(|| bad("memory_budget must be a non-negative integer"))?,
            ),
        };
        Ok(Request { attrs, group, thresholds, cluster, deadline, memory_budget })
    }
}

fn require_str(json: &Json, key: &str, what: &str) -> Result<String, ArcsError> {
    json.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| bad(format!("{what} must be a string")))
}

fn require_f64(json: &Json, key: &str, what: &str) -> Result<f64, ArcsError> {
    json.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad(format!("{what} must be a number")))
}

fn require_usize(json: &Json, key: &str, what: &str) -> Result<usize, ArcsError> {
    json.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| bad(format!("{what} must be a non-negative integer")))
}

/// Canonical JSON for [`Thresholds`] (`{"min_support", "min_confidence"}`).
pub fn thresholds_to_json(t: Thresholds) -> Json {
    obj(vec![
        ("min_support", Json::Num(t.min_support)),
        ("min_confidence", Json::Num(t.min_confidence)),
    ])
}

/// Decodes [`Thresholds`] from canonical JSON, re-validating the `[0, 1]`
/// ranges through [`Thresholds::new`].
pub fn thresholds_from_json(json: &Json) -> Result<Thresholds, ArcsError> {
    Thresholds::new(
        require_f64(json, "min_support", "thresholds.min_support")?,
        require_f64(json, "min_confidence", "thresholds.min_confidence")?,
    )
}

impl ClusterSpec {
    /// The canonical JSON encoding of this spec — the **single conversion
    /// point** shared by wire payloads and the serving cache key, so the
    /// two can never drift. [`BitOpConfig::threads`] is excluded: results
    /// are bit-identical at any thread count, so it is not part of a
    /// query's identity.
    pub fn to_json(&self) -> Json {
        obj(vec![
            (
                "smoothing",
                obj(vec![
                    (
                        "kernel",
                        Json::Str(
                            match self.smoothing.kernel {
                                Kernel::Box3 => "box3",
                                Kernel::Gaussian3 => "gaussian3",
                            }
                            .to_string(),
                        ),
                    ),
                    ("threshold", Json::Num(self.smoothing.threshold)),
                    ("passes", Json::Num(self.smoothing.passes as f64)),
                    (
                        "border",
                        Json::Str(
                            match self.smoothing.border {
                                BorderMode::FullKernel => "full_kernel",
                                BorderMode::InBounds => "in_bounds",
                            }
                            .to_string(),
                        ),
                    ),
                ]),
            ),
            (
                "bitop",
                obj(vec![
                    ("min_area_fraction", Json::Num(self.bitop.min_area_fraction)),
                    ("min_area_cells", Json::Num(self.bitop.min_area_cells as f64)),
                    ("max_clusters", Json::Num(self.bitop.max_clusters as f64)),
                ]),
            ),
        ])
    }

    /// Decodes a spec from canonical JSON. The thread count (not part of
    /// the encoding) comes back as the local default — an execution
    /// choice of the decoding host, never of the wire.
    pub fn from_json(json: &Json) -> Result<Self, ArcsError> {
        let smoothing = json
            .get("smoothing")
            .ok_or_else(|| bad("cluster spec missing `smoothing`"))?;
        let kernel = match smoothing.get("kernel").and_then(Json::as_str) {
            Some("box3") => Kernel::Box3,
            Some("gaussian3") => Kernel::Gaussian3,
            Some(other) => return Err(bad(format!("unknown smoothing kernel `{other}`"))),
            None => return Err(bad("smoothing.kernel must be a string")),
        };
        let border = match smoothing.get("border").and_then(Json::as_str) {
            Some("full_kernel") => BorderMode::FullKernel,
            Some("in_bounds") => BorderMode::InBounds,
            Some(other) => return Err(bad(format!("unknown border mode `{other}`"))),
            None => return Err(bad("smoothing.border must be a string")),
        };
        let bitop = json.get("bitop").ok_or_else(|| bad("cluster spec missing `bitop`"))?;
        Ok(ClusterSpec {
            smoothing: SmoothConfig {
                kernel,
                threshold: require_f64(smoothing, "threshold", "smoothing.threshold")?,
                passes: require_usize(smoothing, "passes", "smoothing.passes")?,
                border,
            },
            bitop: BitOpConfig {
                min_area_fraction: require_f64(bitop, "min_area_fraction", "bitop.min_area_fraction")?,
                min_area_cells: require_usize(bitop, "min_area_cells", "bitop.min_area_cells")?,
                max_clusters: require_usize(bitop, "max_clusters", "bitop.max_clusters")?,
                threads: BitOpConfig::default().threads,
            },
        })
    }

    /// The spec's identity as a compact string — the serving cache keys
    /// cluster configurations by this token, which is exactly the
    /// canonical JSON rendering, so a cache key and a wire payload always
    /// agree on what a configuration *is*.
    pub fn cache_token(&self) -> String {
        self.to_json().to_string()
    }
}

/// Canonical JSON for a served [`QueryResult`] — the response payload
/// shape shared by the daemon and the CLI client.
pub fn query_result_to_json(result: &QueryResult) -> Json {
    let rules = result
        .rules
        .iter()
        .map(|r| {
            obj(vec![
                ("x", Json::Num(r.x as f64)),
                ("y", Json::Num(r.y as f64)),
                ("group", Json::Num(r.group as f64)),
                ("support", Json::Num(r.support)),
                ("confidence", Json::Num(r.confidence)),
                ("count", Json::Num(r.count as f64)),
                ("lift", Json::Num(r.lift)),
                ("leverage", Json::Num(r.leverage)),
            ])
        })
        .collect();
    let mut pairs = vec![
        ("epoch", Json::Num(result.epoch as f64)),
        ("rules", Json::Arr(rules)),
    ];
    if let Some(clusters) = &result.clusters {
        pairs.push((
            "clusters",
            Json::Arr(
                clusters
                    .iter()
                    .map(|c| {
                        obj(vec![
                            ("x0", Json::Num(c.x0 as f64)),
                            ("y0", Json::Num(c.y0 as f64)),
                            ("x1", Json::Num(c.x1 as f64)),
                            ("y1", Json::Num(c.y1 as f64)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    pairs.push(("coarsening_steps", Json::Num(result.coarsening_steps as f64)));
    obj(pairs)
}

/// Decodes a [`QueryResult`] from its canonical JSON. Floats round-trip
/// bit-identically (see [`crate::jsonio`]), so a decoded result compares
/// `==` against the in-process original — the property the daemon's
/// end-to-end oracle test rests on.
pub fn query_result_from_json(json: &Json) -> Result<QueryResult, ArcsError> {
    let rules = json
        .get("rules")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("result missing `rules` array"))?
        .iter()
        .map(|r| {
            Ok(BinnedRule {
                x: require_usize(r, "x", "rule.x")?,
                y: require_usize(r, "y", "rule.y")?,
                group: require_usize(r, "group", "rule.group")? as u32,
                support: require_f64(r, "support", "rule.support")?,
                confidence: require_f64(r, "confidence", "rule.confidence")?,
                count: require_usize(r, "count", "rule.count")? as u32,
                lift: require_f64(r, "lift", "rule.lift")?,
                leverage: require_f64(r, "leverage", "rule.leverage")?,
            })
        })
        .collect::<Result<Vec<_>, ArcsError>>()?;
    let clusters = match json.get("clusters") {
        None => None,
        Some(c) => Some(
            c.as_arr()
                .ok_or_else(|| bad("`clusters` must be an array"))?
                .iter()
                .map(|r| {
                    Rect::new(
                        require_usize(r, "x0", "cluster.x0")?,
                        require_usize(r, "y0", "cluster.y0")?,
                        require_usize(r, "x1", "cluster.x1")?,
                        require_usize(r, "y1", "cluster.y1")?,
                    )
                })
                .collect::<Result<Vec<_>, ArcsError>>()?,
        ),
    };
    Ok(QueryResult {
        epoch: json.get("epoch").and_then(Json::as_u64).ok_or_else(|| bad("result missing `epoch`"))?,
        rules,
        clusters,
        coarsening_steps: require_usize(json, "coarsening_steps", "coarsening_steps")? as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_request() -> Request {
        Request::new()
            .attrs("age", "salary", "group")
            .group("excellent")
            .thresholds(Thresholds::new(0.017, 0.53).unwrap())
            .cluster(ClusterSpec {
                smoothing: SmoothConfig {
                    kernel: Kernel::Gaussian3,
                    threshold: 0.37,
                    passes: 2,
                    border: BorderMode::InBounds,
                },
                bitop: BitOpConfig {
                    min_area_fraction: 0.013,
                    min_area_cells: 3,
                    max_clusters: 77,
                    threads: 4,
                },
            })
            .deadline(Duration::from_millis(250))
            .memory_budget(1 << 20)
    }

    #[test]
    fn request_round_trips_through_json() {
        let request = full_request();
        let text = request.to_json().to_string();
        let back = Request::from_json(&crate::jsonio::parse(&text).unwrap()).unwrap();
        // Everything except the (deliberately non-wire) thread count
        // round-trips; compare with threads normalised.
        let mut normalised = request.clone();
        if let Some(spec) = &mut normalised.cluster {
            spec.bitop.threads = BitOpConfig::default().threads;
        }
        assert_eq!(back, normalised);
    }

    #[test]
    fn minimal_request_round_trips() {
        let request = Request::new().group_code(3).thresholds(Thresholds::new(0.0, 0.0).unwrap());
        let text = request.to_json().to_string();
        let back = Request::from_json(&crate::jsonio::parse(&text).unwrap()).unwrap();
        assert_eq!(back, request);
        assert!(back.attrs.is_none());
        assert!(back.cluster.is_none());
    }

    #[test]
    fn cluster_spec_cache_token_ignores_threads_but_nothing_else() {
        let base = ClusterSpec::default();
        let mut threads_differ = base.clone();
        threads_differ.bitop.threads = base.bitop.threads + 7;
        assert_eq!(base.cache_token(), threads_differ.cache_token());

        // Every canonical field must perturb the token.
        let mut m = base.clone();
        m.smoothing.kernel = Kernel::Gaussian3;
        assert_ne!(base.cache_token(), m.cache_token());
        let mut m = base.clone();
        m.smoothing.threshold += 1e-12;
        assert_ne!(base.cache_token(), m.cache_token());
        let mut m = base.clone();
        m.smoothing.passes += 1;
        assert_ne!(base.cache_token(), m.cache_token());
        let mut m = base.clone();
        m.smoothing.border = BorderMode::InBounds;
        assert_ne!(base.cache_token(), m.cache_token());
        let mut m = base.clone();
        m.bitop.min_area_fraction += 1e-12;
        assert_ne!(base.cache_token(), m.cache_token());
        let mut m = base.clone();
        m.bitop.min_area_cells += 1;
        assert_ne!(base.cache_token(), m.cache_token());
        let mut m = base.clone();
        m.bitop.max_clusters += 1;
        assert_ne!(base.cache_token(), m.cache_token());
    }

    #[test]
    fn cluster_spec_round_trips_and_token_matches_wire_payload() {
        let spec = full_request().cluster.unwrap();
        let wire = spec.to_json().to_string();
        let back = ClusterSpec::from_json(&crate::jsonio::parse(&wire).unwrap()).unwrap();
        // The wire payload and the cache token are the same bytes — the
        // single-conversion-point guarantee.
        assert_eq!(wire, spec.cache_token());
        assert_eq!(back.cache_token(), spec.cache_token());
        assert_eq!(back.smoothing, spec.smoothing);
        assert_eq!(back.bitop.min_area_fraction, spec.bitop.min_area_fraction);
        assert_eq!(back.bitop.min_area_cells, spec.bitop.min_area_cells);
        assert_eq!(back.bitop.max_clusters, spec.bitop.max_clusters);
    }

    #[test]
    fn conversions_to_the_thin_shapes() {
        let request = full_request();
        let labels = vec!["excellent".to_string(), "other".to_string()];
        let query = request.to_query_request(&labels).unwrap();
        assert_eq!(query.gk, 0);
        assert_eq!(query.thresholds, request.thresholds.unwrap());
        assert_eq!(query.deadline, request.deadline);
        assert_eq!(query.memory_budget, request.memory_budget);
        assert_eq!(Request::from_query_request(&query).to_query_request(&labels).unwrap().gk, 0);

        let seg = request.to_segment_request().unwrap();
        assert_eq!(seg.x_attr(), "age");
        assert_eq!(seg.group_label(), Some("excellent"));
        assert_eq!(seg.memory_budget_bytes(), Some(1 << 20));
        let lifted = Request::from_segment_request(&seg);
        assert_eq!(lifted.attrs, request.attrs);
        assert_eq!(lifted.group, request.group);

        // Missing required halves are typed errors.
        assert!(Request::new().to_query_request(&labels).is_err());
        assert!(Request::new().group("x").to_query_request(&labels).is_err());
        assert!(Request::new().to_segment_request().is_err());
        assert!(matches!(
            Request::new().group("nope").thresholds(Thresholds::new(0.1, 0.1).unwrap())
                .to_query_request(&labels),
            Err(ArcsError::UnknownGroup(_))
        ));
        assert!(matches!(
            Request::new().group_code(9).thresholds(Thresholds::new(0.1, 0.1).unwrap())
                .to_query_request(&labels),
            Err(ArcsError::UnknownGroup(_))
        ));
    }

    #[test]
    fn malformed_request_json_is_a_typed_error() {
        for bad_doc in [
            "[]",
            r#"{"group": {}}"#,
            r#"{"group": {"label": "a", "code": 1}}"#,
            r#"{"group": {"code": -1}}"#,
            r#"{"thresholds": {"min_support": 2.0, "min_confidence": 0.5}}"#,
            r#"{"thresholds": {"min_support": 0.1}}"#,
            r#"{"cluster": {"smoothing": {"kernel": "warp", "threshold": 0.4, "passes": 1, "border": "full_kernel"}, "bitop": {"min_area_fraction": 0, "min_area_cells": 1, "max_clusters": 1}}}"#,
            r#"{"cluster": {}}"#,
            r#"{"deadline_ms": -5}"#,
            r#"{"memory_budget": 0.5}"#,
            r#"{"attrs": {"x": "a"}}"#,
        ] {
            let parsed = crate::jsonio::parse(bad_doc).unwrap();
            assert!(
                matches!(Request::from_json(&parsed), Err(ArcsError::InvalidConfig(_))),
                "should reject {bad_doc}"
            );
        }
    }

    #[test]
    fn query_results_round_trip_bit_identically() {
        let result = QueryResult {
            epoch: 3,
            rules: vec![BinnedRule {
                x: 2,
                y: 5,
                group: 1,
                support: 1.0 / 3.0,
                confidence: 0.123_456_789_012_345_67,
                count: 41,
                lift: 1.7 / 0.3,
                leverage: -0.001_234_5,
            }],
            clusters: Some(vec![Rect::new(1, 2, 3, 4).unwrap()]),
            coarsening_steps: 1,
        };
        let text = query_result_to_json(&result).to_string();
        let back = query_result_from_json(&crate::jsonio::parse(&text).unwrap()).unwrap();
        assert_eq!(back, result);

        let no_clusters = QueryResult { clusters: None, ..result };
        let text = query_result_to_json(&no_clusters).to_string();
        let back = query_result_from_json(&crate::jsonio::parse(&text).unwrap()).unwrap();
        assert_eq!(back, no_clusters);
    }
}
