//! Edge and corner detection on support grids (paper §5).
//!
//! The paper's future work proposes that *"more advanced filters could be
//! used for purposes of detecting edges and corners of clusters"*. This
//! module provides the classic pair: a Sobel gradient operator for edges
//! and a Harris-style corner response, both over the per-cell support
//! values produced by
//! [`support_grid`](crate::engine::support_grid). The edge map is useful
//! for *snapping* cluster boundaries: a cluster edge sitting on a high
//! gradient ridge coincides with a true density boundary, one sitting in a
//! flat region is an artefact of thresholds.

use crate::cluster::Rect;
use crate::error::ArcsError;
use crate::grid::Grid;

fn check_dims(values: &[f64], width: usize, height: usize) -> Result<(), ArcsError> {
    if width == 0 || height == 0 || values.len() != width * height {
        return Err(ArcsError::InvalidConfig(format!(
            "value grid length {} does not match {width} x {height}",
            values.len()
        )));
    }
    Ok(())
}

/// Clamped sample of a row-major value grid (out-of-bounds reads the
/// nearest edge cell, the standard image-processing border policy).
#[inline]
fn at(values: &[f64], width: usize, height: usize, x: i64, y: i64) -> f64 {
    let x = x.clamp(0, width as i64 - 1) as usize;
    let y = y.clamp(0, height as i64 - 1) as usize;
    values[y * width + x]
}

/// Sobel gradient magnitude per cell: high values mark density edges.
pub fn sobel_magnitude(
    values: &[f64],
    width: usize,
    height: usize,
) -> Result<Vec<f64>, ArcsError> {
    check_dims(values, width, height)?;
    let mut out = vec![0.0; values.len()];
    for y in 0..height as i64 {
        for x in 0..width as i64 {
            let s = |dx: i64, dy: i64| at(values, width, height, x + dx, y + dy);
            let gx = (s(1, -1) + 2.0 * s(1, 0) + s(1, 1))
                - (s(-1, -1) + 2.0 * s(-1, 0) + s(-1, 1));
            let gy = (s(-1, 1) + 2.0 * s(0, 1) + s(1, 1))
                - (s(-1, -1) + 2.0 * s(0, -1) + s(1, -1));
            out[y as usize * width + x as usize] = (gx * gx + gy * gy).sqrt();
        }
    }
    Ok(out)
}

/// Thresholds the Sobel magnitude at `threshold` × max into a binary edge
/// grid.
pub fn detect_edges(
    values: &[f64],
    width: usize,
    height: usize,
    threshold: f64,
) -> Result<Grid, ArcsError> {
    if !(0.0..=1.0).contains(&threshold) {
        return Err(ArcsError::InvalidConfig(format!(
            "edge threshold {threshold} outside [0, 1]"
        )));
    }
    let magnitude = sobel_magnitude(values, width, height)?;
    let max = magnitude.iter().cloned().fold(0.0f64, f64::max);
    let mut grid = Grid::new(width, height)?;
    if max > 0.0 {
        let cut = threshold * max;
        for y in 0..height {
            for x in 0..width {
                let m = magnitude[y * width + x];
                if m >= cut && m > 0.0 {
                    grid.set(x, y);
                }
            }
        }
    }
    Ok(grid)
}

/// Harris-style corner response per cell:
/// `det(M) - k·trace(M)²` over the local structure tensor `M` of the
/// gradients. Positive peaks mark corners of density regions.
pub fn corner_response(
    values: &[f64],
    width: usize,
    height: usize,
    k: f64,
) -> Result<Vec<f64>, ArcsError> {
    check_dims(values, width, height)?;
    if !(0.0..=0.25).contains(&k) {
        return Err(ArcsError::InvalidConfig(format!(
            "Harris k {k} outside [0, 0.25]"
        )));
    }
    // Per-cell gradients (central differences).
    let mut gx = vec![0.0; values.len()];
    let mut gy = vec![0.0; values.len()];
    for y in 0..height as i64 {
        for x in 0..width as i64 {
            let i = y as usize * width + x as usize;
            gx[i] = (at(values, width, height, x + 1, y) - at(values, width, height, x - 1, y))
                / 2.0;
            gy[i] = (at(values, width, height, x, y + 1) - at(values, width, height, x, y - 1))
                / 2.0;
        }
    }
    // Structure tensor summed over a 3x3 window, then the Harris response.
    let mut out = vec![0.0; values.len()];
    for y in 0..height as i64 {
        for x in 0..width as i64 {
            let (mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0);
            for dy in -1..=1i64 {
                for dx in -1..=1i64 {
                    let gxv = at(&gx, width, height, x + dx, y + dy);
                    let gyv = at(&gy, width, height, x + dx, y + dy);
                    sxx += gxv * gxv;
                    syy += gyv * gyv;
                    sxy += gxv * gyv;
                }
            }
            let det = sxx * syy - sxy * sxy;
            let trace = sxx + syy;
            out[y as usize * width + x as usize] = det - k * trace * trace;
        }
    }
    Ok(out)
}

/// Fraction of a cluster's boundary cells that sit on detected edges — a
/// diagnostic for how well a cluster's rectangle aligns with true density
/// boundaries (1.0 = every boundary cell is an edge cell).
pub fn boundary_alignment(rect: Rect, edges: &Grid) -> f64 {
    let mut boundary = 0usize;
    let mut on_edge = 0usize;
    for (x, y) in rect.cells() {
        let is_boundary =
            x == rect.x0 || x == rect.x1 || y == rect.y0 || y == rect.y1;
        if is_boundary {
            boundary += 1;
            if x < edges.width() && y < edges.height() && edges.get(x, y) {
                on_edge += 1;
            }
        }
    }
    if boundary == 0 {
        0.0
    } else {
        on_edge as f64 / boundary as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 10x10 support grid with a dense 4x4 block in the middle.
    fn block_support() -> (Vec<f64>, usize, usize) {
        let (w, h) = (10, 10);
        let mut values = vec![0.0; w * h];
        for y in 3..7 {
            for x in 3..7 {
                values[y * w + x] = 1.0;
            }
        }
        (values, w, h)
    }

    #[test]
    fn sobel_peaks_on_block_boundary() {
        let (values, w, h) = block_support();
        let mag = sobel_magnitude(&values, w, h).unwrap();
        // Interior of the block: zero gradient.
        assert_eq!(mag[5 * w + 5], 0.0);
        // Far corner: zero gradient.
        assert_eq!(mag[0], 0.0);
        // On the boundary: strong gradient.
        assert!(mag[3 * w + 5] > 1.0);
        assert!(mag[5 * w + 3] > 1.0);
    }

    #[test]
    fn detect_edges_outlines_the_block() {
        let (values, w, h) = block_support();
        let edges = detect_edges(&values, w, h, 0.5).unwrap();
        // The outline must be present, the deep interior must not.
        assert!(edges.get(3, 5) || edges.get(2, 5));
        assert!(!edges.get(5, 5));
        assert!(!edges.get(0, 0));
        assert!(edges.count_ones() > 4);
    }

    #[test]
    fn corner_response_peaks_at_corners() {
        let (values, w, h) = block_support();
        let response = corner_response(&values, w, h, 0.05).unwrap();
        let corner = response[3 * w + 3];
        let edge_mid = response[3 * w + 5];
        let interior = response[5 * w + 5];
        assert!(corner > edge_mid, "corner {corner} vs edge {edge_mid}");
        assert!(corner > interior, "corner {corner} vs interior {interior}");
    }

    #[test]
    fn boundary_alignment_measures_fit() {
        let (values, w, h) = block_support();
        let edges = detect_edges(&values, w, h, 0.3).unwrap();
        // A rectangle hugging the block boundary aligns well...
        let snug = Rect { x0: 3, y0: 3, x1: 6, y1: 6 };
        // ...a rectangle floating in the empty corner aligns not at all.
        let adrift = Rect { x0: 0, y0: 0, x1: 1, y1: 1 };
        assert!(boundary_alignment(snug, &edges) > 0.5);
        assert_eq!(boundary_alignment(adrift, &edges), 0.0);
    }

    #[test]
    fn validates_inputs() {
        assert!(sobel_magnitude(&[0.0; 5], 2, 2).is_err());
        assert!(detect_edges(&[0.0; 4], 2, 2, 1.5).is_err());
        assert!(corner_response(&[0.0; 4], 2, 2, 0.5).is_err());
        assert!(corner_response(&[0.0; 4], 0, 2, 0.05).is_err());
    }

    #[test]
    fn flat_grid_has_no_edges() {
        let values = vec![0.3; 36];
        let edges = detect_edges(&values, 6, 6, 0.2).unwrap();
        assert!(edges.is_empty());
    }
}
