//! Categorical LHS attributes (paper §5).
//!
//! The paper's clustering assumes two quantitative LHS attributes because
//! categorical attributes have no ordering. Its future-work section
//! reports an extension "to handle the case where one attribute is
//! categorical and the other quantitative … by using the ordering of the
//! quantitative attribute we consider only those subsets of the
//! categorical attribute that yield the densest clusters."
//!
//! Implementation: the categorical axis is *re-ordered by density* — the
//! per-category confidence of the criterion group — so that categories
//! likely to co-occur in a cluster become adjacent columns. The standard
//! machinery (rule grid → smoothing → BitOp → pruning → MDL) then runs on
//! the reordered grid, and each cluster's column span decodes to a *set*
//! of category values rather than a range.

use arcs_data::schema::AttrKind;
use arcs_data::Dataset;

use crate::binarray::BinArray;
use crate::binning::BinMap;
use crate::bitop;
use crate::cluster::Rect;
use crate::engine::{rule_grid, Thresholds};
use crate::error::ArcsError;
use crate::mdl::MdlScore;
use crate::optimizer::{OptimizerConfig, ThresholdLattice};
use crate::smooth::smooth;
use crate::verify::ErrorCounts;

/// A clustered rule whose LHS combines a category *set* with a
/// quantitative range:
///
/// ```text
/// zipcode IN {94305, 94040}  AND  20000 <= salary < 60000  =>  group = A
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CategoricalRule {
    /// Name of the categorical attribute.
    pub cat_attr: String,
    /// Category codes covered by the cluster.
    pub category_codes: Vec<u32>,
    /// Category labels covered by the cluster.
    pub category_labels: Vec<String>,
    /// Name of the quantitative attribute.
    pub quant_attr: String,
    /// Half-open value range on the quantitative attribute.
    pub quant_range: (f64, f64),
    /// Name of the criterion attribute.
    pub criterion_attr: String,
    /// Criterion group label.
    pub group_label: String,
    /// The cluster rectangle in (reordered) grid coordinates.
    pub rect: Rect,
    /// Aggregate support of the cluster.
    pub support: f64,
    /// Aggregate confidence of the cluster.
    pub confidence: f64,
}

impl CategoricalRule {
    /// Whether a `(category, quant value)` pair satisfies the rule's LHS.
    pub fn covers(&self, category: u32, quant: f64) -> bool {
        self.category_codes.contains(&category)
            && (self.quant_range.0..self.quant_range.1).contains(&quant)
    }
}

impl std::fmt::Display for CategoricalRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} IN {{{}}}  AND  {} <= {} < {}  =>  {} = {}",
            self.cat_attr,
            self.category_labels.join(", "),
            crate::cluster::fmt_bound(self.quant_range.0),
            self.quant_attr,
            crate::cluster::fmt_bound(self.quant_range.1),
            self.criterion_attr,
            self.group_label
        )
    }
}

/// Result of categorical × quantitative segmentation.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoricalSegmentation {
    /// The clustered rules.
    pub rules: Vec<CategoricalRule>,
    /// Category codes in density order (grid column order).
    pub ordering: Vec<u32>,
    /// Thresholds the search settled on.
    pub thresholds: Thresholds,
    /// MDL score of the winning segmentation.
    pub score: MdlScore,
    /// Verification errors on the full dataset.
    pub errors: ErrorCounts,
}

/// Configuration for categorical segmentation — reuses the optimizer's
/// component parameters plus the quantitative axis bin count.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoricalConfig {
    /// Number of bins on the quantitative axis.
    pub n_quant_bins: usize,
    /// Evaluation parameters (smoothing, BitOp, MDL weights, budget).
    pub optimizer: OptimizerConfig,
}

impl Default for CategoricalConfig {
    fn default() -> Self {
        CategoricalConfig {
            n_quant_bins: 50,
            optimizer: OptimizerConfig::default(),
        }
    }
}

/// Segments `(cat_attr, quant_attr)` space for the tuples whose
/// `criterion_attr` equals `group_label`, with the categorical axis
/// density-ordered.
pub fn segment_categorical(
    dataset: &Dataset,
    cat_attr: &str,
    quant_attr: &str,
    criterion_attr: &str,
    group_label: &str,
    config: &CategoricalConfig,
) -> Result<CategoricalSegmentation, ArcsError> {
    if dataset.is_empty() {
        return Err(ArcsError::InvalidConfig("dataset is empty".into()));
    }
    let schema = dataset.schema();
    let cat_idx = schema.require(cat_attr)?;
    let quant_idx = schema.require(quant_attr)?;
    let criterion_idx = schema.require(criterion_attr)?;

    let cat = schema.attribute(cat_idx).expect("index valid");
    let AttrKind::Categorical { labels: cat_labels } = &cat.kind else {
        return Err(ArcsError::AttributeKind {
            attribute: cat_attr.to_string(),
            expected: "a categorical attribute",
        });
    };
    let quant = schema.attribute(quant_idx).expect("index valid");
    let AttrKind::Quantitative { min, max } = quant.kind else {
        return Err(ArcsError::AttributeKind {
            attribute: quant_attr.to_string(),
            expected: "a quantitative attribute",
        });
    };
    let criterion = schema.attribute(criterion_idx).expect("index valid");
    let AttrKind::Categorical { labels: group_labels } = &criterion.kind else {
        return Err(ArcsError::AttributeKind {
            attribute: criterion_attr.to_string(),
            expected: "a categorical criterion attribute",
        });
    };
    let gk = group_labels
        .iter()
        .position(|l| l == group_label)
        .ok_or_else(|| ArcsError::UnknownGroup(group_label.to_string()))? as u32;

    // Density ordering: per-category confidence of the criterion group,
    // descending, so dense categories pack into adjacent columns.
    let k = cat_labels.len();
    let mut per_cat = vec![(0u64, 0u64); k]; // (group count, total)
    for t in dataset.iter() {
        let c = t.cat(cat_idx) as usize;
        per_cat[c].1 += 1;
        if t.cat(criterion_idx) == gk {
            per_cat[c].0 += 1;
        }
    }
    let density = |c: usize| -> f64 {
        let (g, n) = per_cat[c];
        if n == 0 {
            0.0
        } else {
            g as f64 / n as f64
        }
    };
    let mut ordering: Vec<u32> = (0..k as u32).collect();
    ordering.sort_by(|&a, &b| {
        density(b as usize)
            .total_cmp(&density(a as usize))
            .then(a.cmp(&b))
    });
    // column_of[category code] = grid column.
    let mut column_of = vec![0usize; k];
    for (col, &code) in ordering.iter().enumerate() {
        column_of[code as usize] = col;
    }

    // Bin into the reordered array.
    let quant_map = BinMap::equi_width(min, max, config.n_quant_bins)?;
    let mut array = BinArray::new(k, quant_map.n_bins(), group_labels.len())?;
    for t in dataset.iter() {
        let x = column_of[t.cat(cat_idx) as usize];
        let y = quant_map.bin_of_value(t.quant(quant_idx));
        array.add(x, y, t.cat(criterion_idx));
    }

    // Threshold search over the lattice (same shape as the §3.7 loop, with
    // a dataset-level verifier since there is no standard Binner here).
    let lattice = ThresholdLattice::build(&array, gk);
    if lattice.is_empty() {
        return Err(ArcsError::NoSegmentation);
    }
    let verify = |clusters: &[Rect]| -> ErrorCounts {
        let mut counts = ErrorCounts::default();
        for t in dataset.iter() {
            let x = column_of[t.cat(cat_idx) as usize];
            let y = quant_map.bin_of_value(t.quant(quant_idx));
            let covered = clusters.iter().any(|r| r.contains(x, y));
            let in_group = t.cat(criterion_idx) == gk;
            if in_group {
                counts.group_total += 1;
            }
            match (covered, in_group) {
                (true, false) => counts.false_positives += 1,
                (false, true) => counts.false_negatives += 1,
                _ => {}
            }
            counts.n_examined += 1;
        }
        counts
    };

    let opt = &config.optimizer;
    type Candidate = (Thresholds, Vec<Rect>, ErrorCounts, MdlScore);
    let mut best: Option<Candidate> = None;
    let mut best_any: Option<Candidate> = None;
    let mut evaluations = 0usize;
    'search: for (si, &s) in lattice.supports().iter().enumerate() {
        for &c in lattice.confidences_for(si) {
            if evaluations >= opt.max_evaluations {
                break 'search;
            }
            let thresholds = Thresholds::new((s - 1e-12).max(0.0), (c - 1e-12).max(0.0))?;
            let grid = rule_grid(&array, gk, thresholds)?;
            let smoothed = smooth(&grid, &opt.smoothing)?;
            let clusters = bitop::cluster(&smoothed, &opt.bitop)?;
            evaluations += 1;
            if clusters.is_empty() {
                continue;
            }
            let errors = verify(&clusters);
            let score = MdlScore::compute(clusters.len(), errors.total(), opt.mdl_weights);
            if best_any.as_ref().is_none_or(|(_, _, _, b)| score.cost < b.cost) {
                best_any = Some((thresholds, clusters.clone(), errors, score));
            }
            // Same recall guard as the 2-D optimizer (see OptimizerConfig).
            if errors.recall() >= opt.min_group_recall
                && best.as_ref().is_none_or(|(_, _, _, b)| score.cost < b.cost)
            {
                best = Some((thresholds, clusters, errors, score));
            }
        }
    }
    let (thresholds, clusters, errors, score) =
        best.or(best_any).ok_or(ArcsError::NoSegmentation)?;

    // Decode clusters: column span -> category set; row span -> range.
    let n = array.n_tuples();
    let mut rules = Vec::with_capacity(clusters.len());
    for rect in clusters {
        let category_codes: Vec<u32> = (rect.x0..=rect.x1).map(|col| ordering[col]).collect();
        let category_labels = category_codes
            .iter()
            .map(|&c| cat_labels[c as usize].clone())
            .collect();
        let (q_lo, _) = quant_map.range(rect.y0).expect("row in range");
        let (_, q_hi) = quant_map.range(rect.y1).expect("row in range");
        let mut group_count = 0u64;
        let mut total_count = 0u64;
        for (x, y) in rect.cells() {
            group_count += array.group_count(x, y, gk) as u64;
            total_count += array.cell_total(x, y) as u64;
        }
        rules.push(CategoricalRule {
            cat_attr: cat_attr.to_string(),
            category_codes,
            category_labels,
            quant_attr: quant_attr.to_string(),
            quant_range: (q_lo, q_hi),
            criterion_attr: criterion_attr.to_string(),
            group_label: group_label.to_string(),
            rect,
            support: if n == 0 { 0.0 } else { group_count as f64 / n as f64 },
            confidence: if total_count == 0 {
                0.0
            } else {
                group_count as f64 / total_count as f64
            },
        });
    }

    Ok(CategoricalSegmentation { rules, ordering, thresholds, score, errors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_data::schema::{Attribute, Schema};
    use arcs_data::Value;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical("zip", ["z0", "z1", "z2", "z3", "z4", "z5"]),
            Attribute::quantitative("salary", 0.0, 100.0),
            Attribute::categorical("g", ["A", "other"]),
        ])
        .unwrap()
    }

    /// Group A concentrates in zips {1, 4} (non-adjacent codes!) at
    /// salaries [20, 50); everything else is background.
    fn dataset() -> Dataset {
        let mut ds = Dataset::new(schema());
        for zip in 0..6u32 {
            for s in 0..10 {
                let salary = s as f64 * 10.0 + 5.0;
                let hot = (zip == 1 || zip == 4) && (20.0..50.0).contains(&salary);
                let (n_a, n_other) = if hot { (30, 2) } else { (0, 6) };
                for _ in 0..n_a {
                    ds.push(vec![
                        Value::Cat(zip),
                        Value::Quant(salary),
                        Value::Cat(0),
                    ])
                    .unwrap();
                }
                for _ in 0..n_other {
                    ds.push(vec![
                        Value::Cat(zip),
                        Value::Quant(salary),
                        Value::Cat(1),
                    ])
                    .unwrap();
                }
            }
        }
        ds
    }

    fn config() -> CategoricalConfig {
        CategoricalConfig {
            n_quant_bins: 10,
            optimizer: OptimizerConfig {
                bitop: crate::bitop::BitOpConfig::no_pruning(),
                ..OptimizerConfig::default()
            },
        }
    }

    #[test]
    fn density_ordering_makes_nonadjacent_categories_clusterable() {
        let ds = dataset();
        let seg = segment_categorical(&ds, "zip", "salary", "g", "A", &config()).unwrap();
        // The two hot zips must land in the leading columns.
        assert_eq!(
            {
                let mut lead: Vec<u32> = seg.ordering[..2].to_vec();
                lead.sort_unstable();
                lead
            },
            vec![1, 4]
        );
        // One cluster covering exactly the two hot categories and the
        // 20..50 salary band.
        assert_eq!(seg.rules.len(), 1, "rules: {:?}", seg.rules);
        let rule = &seg.rules[0];
        let mut codes = rule.category_codes.clone();
        codes.sort_unstable();
        assert_eq!(codes, vec![1, 4]);
        assert_eq!(rule.quant_range, (20.0, 50.0));
        assert!(rule.confidence > 0.85);
        assert_eq!(seg.errors.false_negatives, 0);
    }

    #[test]
    fn rule_covers_and_displays() {
        let ds = dataset();
        let seg = segment_categorical(&ds, "zip", "salary", "g", "A", &config()).unwrap();
        let rule = &seg.rules[0];
        assert!(rule.covers(1, 30.0));
        assert!(rule.covers(4, 49.9));
        assert!(!rule.covers(0, 30.0));
        assert!(!rule.covers(1, 50.0));
        let text = rule.to_string();
        assert!(text.contains("zip IN {"));
        assert!(text.contains("=>  g = A"));
    }

    #[test]
    fn rejects_wrong_attribute_kinds() {
        let ds = dataset();
        let c = config();
        assert!(segment_categorical(&ds, "salary", "salary", "g", "A", &c).is_err());
        assert!(segment_categorical(&ds, "zip", "zip", "g", "A", &c).is_err());
        assert!(segment_categorical(&ds, "zip", "salary", "salary", "A", &c).is_err());
        assert!(segment_categorical(&ds, "zip", "salary", "g", "Z", &c).is_err());
        assert!(segment_categorical(&Dataset::new(schema()), "zip", "salary", "g", "A", &c)
            .is_err());
    }
}
