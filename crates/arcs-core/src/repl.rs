//! WAL-shipping replication: the transport-independent half.
//!
//! A primary `arcsd` streams encoded WAL records (see [`crate::wal`]) to
//! warm standbys over the wire; this module holds everything about that
//! stream that does not touch a socket:
//!
//! * **Shipped-record framing** — records travel as the exact encoded
//!   bytes [`wal::encode_record`] produces (length prefix + body +
//!   FNV-1a-64 checksum), hex-armored for the JSON wire protocol. The
//!   standby re-verifies the checksum with [`wal::decode_record`] before
//!   applying anything, so a record torn in flight is refused exactly
//!   like a record torn on disk.
//! * **[`ReplCursor`]** — the standby's sequence cursor. Replication
//!   preserves the WAL's core invariant (contiguous sequence numbers):
//!   a shipped record *behind* the cursor is a harmless duplicate (the
//!   primary re-sent an already-applied prefix) and is skipped; a record
//!   *ahead* of the cursor is a gap — applying it would silently lose
//!   the records in between, so the cursor refuses it with a typed
//!   error and the standby re-syncs from a checkpoint transfer instead.
//! * **[`ReplMetrics`]** — lock-free counters for the whole subsystem
//!   (records shipped/applied, gaps refused, re-syncs, heartbeats),
//!   foldable into [`PipelineCounters`] so replication shows up in the
//!   same `PipelineReport` JSON every other subsystem reports through.
//!
//! The daemon-side wiring (the tailer thread, the wire ops, promotion)
//! lives in `arcs-daemon`; the chaos harness drives both through the
//! `repl.*` failpoints catalogued in [`crate::faults`].

use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::ArcsError;
use crate::metrics::PipelineCounters;
use crate::wal::{self, WalRecord};

/// One record as it travels the wire: the sequence number (redundantly
/// alongside the encoded body, so a batch can be skimmed without
/// decoding) and the exact encoded bytes from the primary's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShippedRecord {
    /// The record's WAL sequence number.
    pub seq: u64,
    /// [`wal::encode_record`] output: length prefix + body + checksum.
    pub bytes: Vec<u8>,
}

impl ShippedRecord {
    /// Packages a record for shipping from its already-decoded parts.
    pub fn encode(record: &WalRecord) -> ShippedRecord {
        ShippedRecord {
            seq: record.seq,
            bytes: wal::encode_record(record.seq, record.feeder_offset, &record.payload),
        }
    }

    /// Verifies and decodes the shipped bytes — checksum, framing, and
    /// agreement between the envelope `seq` and the encoded one. Any
    /// damage in flight is a typed error, never an applied record.
    pub fn decode(&self) -> Result<WalRecord, ArcsError> {
        let record = wal::decode_record(&self.bytes)?;
        if record.seq != self.seq {
            return Err(ArcsError::Checkpoint {
                message: format!(
                    "shipped WAL record: envelope seq {} disagrees with encoded seq {}",
                    self.seq, record.seq
                ),
            });
        }
        Ok(record)
    }

    /// Hex-armors the encoded bytes for the JSON wire protocol.
    pub fn to_hex(&self) -> String {
        to_hex(&self.bytes)
    }

    /// Rebuilds a shipped record from its wire form.
    pub fn from_hex(seq: u64, hex: &str) -> Result<ShippedRecord, ArcsError> {
        Ok(ShippedRecord { seq, bytes: from_hex(hex)? })
    }
}

/// Lowercase hex encoding (the offline build has no hex crate).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

/// Strict inverse of [`to_hex`]: even length, hex digits only.
pub fn from_hex(text: &str) -> Result<Vec<u8>, ArcsError> {
    let bad = |what: &str| ArcsError::Checkpoint {
        message: format!("shipped WAL record: {what}"),
    };
    if !text.len().is_multiple_of(2) {
        return Err(bad("hex payload has odd length"));
    }
    let digits = text.as_bytes();
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16).ok_or_else(|| bad("non-hex digit in payload"))?;
        let lo = (pair[1] as char).to_digit(16).ok_or_else(|| bad("non-hex digit in payload"))?;
        out.push((hi * 16 + lo) as u8);
    }
    Ok(out)
}

/// What a standby should do with one shipped record, per its cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// The record is exactly the next expected one: apply it.
    Apply,
    /// The record precedes the cursor — an already-applied duplicate
    /// from a re-sent prefix. Skip it; this is not an error.
    Duplicate,
}

/// The standby's replication cursor: the next WAL sequence number it
/// expects. Enforces the no-gap invariant on the shipped stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplCursor {
    next_seq: u64,
}

impl ReplCursor {
    /// A cursor expecting `next_seq` as the next record to apply.
    pub fn at(next_seq: u64) -> ReplCursor {
        ReplCursor { next_seq }
    }

    /// The next sequence number the cursor will admit.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Classifies a shipped sequence number: apply, skip as duplicate,
    /// or — for a sequence *beyond* the cursor — refuse with a typed
    /// error. A gap means records were lost between primary and standby
    /// (the primary truncated them into a checkpoint, or the stream was
    /// mangled); applying past it would silently diverge, so the caller
    /// must re-sync from a checkpoint transfer instead.
    pub fn admit(&self, seq: u64) -> Result<Admit, ArcsError> {
        if seq < self.next_seq {
            return Ok(Admit::Duplicate);
        }
        if seq > self.next_seq {
            return Err(ArcsError::Checkpoint {
                message: format!(
                    "replication sequence gap: expected {}, primary shipped {} — \
                     refusing to apply past missing records; re-sync required",
                    self.next_seq, seq
                ),
            });
        }
        Ok(Admit::Apply)
    }

    /// Advances past an applied record.
    pub fn advance(&mut self) {
        self.next_seq += 1;
    }

    /// Repositions the cursor after a checkpoint re-sync.
    pub fn reset(&mut self, next_seq: u64) {
        self.next_seq = next_seq;
    }
}

/// Lock-free counters for the replication subsystem. One instance lives
/// for the daemon's lifetime and is shared by the wire handlers (primary
/// side) and the tailer thread (standby side).
#[derive(Debug, Default)]
pub struct ReplMetrics {
    /// Records a primary handed to `repl.records` responses.
    pub records_shipped: AtomicU64,
    /// Records a standby verified and applied through its store.
    pub records_applied: AtomicU64,
    /// Shipped batches a standby refused because of a sequence gap or a
    /// failed checksum — refused batches are never partially applied
    /// beyond the valid prefix.
    pub gaps_refused: AtomicU64,
    /// Full checkpoint transfers a standby installed (bootstrap included).
    pub resyncs: AtomicU64,
    /// Heartbeat rounds served (primary) or completed (standby).
    pub heartbeats: AtomicU64,
}

impl ReplMetrics {
    /// A zeroed metrics block.
    pub fn new() -> ReplMetrics {
        ReplMetrics::default()
    }

    /// Adds `n` to a counter (relaxed; the counters are statistics, not
    /// synchronization).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time snapshot as plain numbers, in field order:
    /// shipped, applied, gaps refused, re-syncs, heartbeats.
    pub fn snapshot(&self) -> [u64; 5] {
        [
            self.records_shipped.load(Ordering::Relaxed),
            self.records_applied.load(Ordering::Relaxed),
            self.gaps_refused.load(Ordering::Relaxed),
            self.resyncs.load(Ordering::Relaxed),
            self.heartbeats.load(Ordering::Relaxed),
        ]
    }

    /// Folds the snapshot into a [`PipelineCounters`] so replication
    /// reports through the same `PipelineReport` JSON as every other
    /// subsystem.
    pub fn fold_into(&self, counters: &mut PipelineCounters) {
        let [shipped, applied, gaps, resyncs, heartbeats] = self.snapshot();
        counters.repl_records_shipped += shipped;
        counters.repl_records_applied += applied;
        counters.repl_gaps_refused += gaps;
        counters.repl_resyncs += resyncs;
        counters.repl_heartbeats += heartbeats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        for bytes in [&b""[..], &b"\x00\xffhello"[..], &[0xAB; 64][..]] {
            assert_eq!(from_hex(&to_hex(bytes)).unwrap(), bytes);
        }
        assert!(from_hex("abc").is_err(), "odd length");
        assert!(from_hex("zz").is_err(), "non-hex digit");
    }

    #[test]
    fn shipped_records_survive_the_wire_form() {
        let record = WalRecord { seq: 9, feeder_offset: Some(4), payload: b"r,1,A\n".to_vec() };
        let shipped = ShippedRecord::encode(&record);
        let wire = shipped.to_hex();
        let back = ShippedRecord::from_hex(shipped.seq, &wire).unwrap();
        assert_eq!(back, shipped);
        assert_eq!(back.decode().unwrap(), record);

        // An envelope seq that disagrees with the encoded seq is refused.
        let lying = ShippedRecord { seq: 10, bytes: shipped.bytes.clone() };
        assert!(lying.decode().is_err());

        // A record torn in flight is refused by the checksum.
        let torn = ShippedRecord {
            seq: 9,
            bytes: shipped.bytes[..shipped.bytes.len() - 2].to_vec(),
        };
        assert!(torn.decode().is_err());
    }

    #[test]
    fn cursor_applies_in_order_skips_duplicates_refuses_gaps() {
        let mut cursor = ReplCursor::at(5);
        assert_eq!(cursor.admit(4).unwrap(), Admit::Duplicate);
        assert_eq!(cursor.admit(5).unwrap(), Admit::Apply);
        cursor.advance();
        assert_eq!(cursor.next_seq(), 6);

        let err = cursor.admit(8).unwrap_err();
        assert!(err.to_string().contains("gap"), "{err}");
        assert!(err.to_string().contains("re-sync"), "{err}");
        // The refusal leaves the cursor unmoved.
        assert_eq!(cursor.next_seq(), 6);

        cursor.reset(42);
        assert_eq!(cursor.admit(42).unwrap(), Admit::Apply);
    }

    #[test]
    fn metrics_fold_into_pipeline_counters() {
        let metrics = ReplMetrics::new();
        ReplMetrics::add(&metrics.records_shipped, 7);
        ReplMetrics::add(&metrics.records_applied, 5);
        ReplMetrics::add(&metrics.gaps_refused, 1);
        ReplMetrics::add(&metrics.resyncs, 2);
        ReplMetrics::add(&metrics.heartbeats, 3);

        let mut counters = PipelineCounters::default();
        metrics.fold_into(&mut counters);
        assert_eq!(counters.repl_records_shipped, 7);
        assert_eq!(counters.repl_records_applied, 5);
        assert_eq!(counters.repl_gaps_refused, 1);
        assert_eq!(counters.repl_resyncs, 2);
        assert_eq!(counters.repl_heartbeats, 3);
    }
}
