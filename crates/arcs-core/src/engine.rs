//! The association rule engine (paper §3.2, Figure 3).
//!
//! A specialised miner for two-dimensional rules over the [`BinArray`]: a
//! single scan of the occupied cells emits every rule
//! `X = i ∧ Y = j ⇒ Gk` whose support and confidence clear the thresholds.
//! Because only the bin array is consulted, thresholds can be changed and
//! rules re-mined without another pass over the source data — the property
//! the heuristic optimizer (§3.7) relies on.

// Public-API paths must fail with typed errors, never panic.
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

use crate::binarray::BinArray;
use crate::error::ArcsError;
use crate::grid::Grid;

/// Minimum support and confidence thresholds (fractions in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Minimum support: `count(i, j, Gk) / N`.
    pub min_support: f64,
    /// Minimum confidence: `count(i, j, Gk) / count(i, j)`.
    pub min_confidence: f64,
}

impl Thresholds {
    /// Creates thresholds, validating both lie in `[0, 1]`.
    pub fn new(min_support: f64, min_confidence: f64) -> Result<Self, ArcsError> {
        if !(0.0..=1.0).contains(&min_support) {
            return Err(ArcsError::InvalidConfig(format!(
                "min_support {min_support} outside [0, 1]"
            )));
        }
        if !(0.0..=1.0).contains(&min_confidence) {
            return Err(ArcsError::InvalidConfig(format!(
                "min_confidence {min_confidence} outside [0, 1]"
            )));
        }
        Ok(Thresholds { min_support, min_confidence })
    }
}

/// One mined two-dimensional association rule over binned data:
/// `X = x ∧ Y = y ⇒ G = group`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinnedRule {
    /// x bin index.
    pub x: usize,
    /// y bin index.
    pub y: usize,
    /// Criterion group code.
    pub group: u32,
    /// Rule support.
    pub support: f64,
    /// Rule confidence.
    pub confidence: f64,
    /// Raw tuple count backing the rule.
    pub count: u32,
    /// Lift: confidence divided by the group's base rate `P(G = g)` —
    /// `> 1` means the cell is *denser* in the group than chance, the
    /// "greater-than-expected" interest notion the paper's §1.1 discusses
    /// (from its references \[22, 15\]).
    pub lift: f64,
    /// Piatetsky-Shapiro leverage:
    /// `P(cell ∧ group) − P(cell) · P(group)` — the additive form of the
    /// same interest measure.
    pub leverage: f64,
}

/// Mines all rules for criterion group `gk` meeting `thresholds`
/// (the paper's `GenAssociationRules`, Figure 3). One pass over the bin
/// array; the data itself is never touched.
pub fn mine_rules(array: &BinArray, gk: u32, thresholds: Thresholds) -> Vec<BinnedRule> {
    let min_support_count = min_support_count(array, thresholds.min_support);
    let n = array.n_tuples() as f64;
    let group_rate = if array.n_tuples() == 0 {
        0.0
    } else {
        array.group_total(gk) as f64 / n
    };
    let mut rules = Vec::new();
    for y in 0..array.ny() {
        for x in 0..array.nx() {
            let count = array.group_count(x, y, gk);
            if (count as u64) < min_support_count {
                continue;
            }
            let total = array.cell_total(x, y);
            debug_assert!(total >= count);
            let confidence = count as f64 / total as f64;
            if confidence < thresholds.min_confidence {
                continue;
            }
            let support = count as f64 / n;
            let cell_rate = total as f64 / n;
            rules.push(BinnedRule {
                x,
                y,
                group: gk,
                support,
                confidence,
                count,
                lift: if group_rate > 0.0 { confidence / group_rate } else { 0.0 },
                leverage: support - cell_rate * group_rate,
            });
        }
    }
    rules
}

/// Builds the bitmap grid of qualifying cells directly (the input to
/// BitOp, §3.2: "the (i, j) pairs are then used to create a bitmap grid").
pub fn rule_grid(array: &BinArray, gk: u32, thresholds: Thresholds) -> Result<Grid, ArcsError> {
    let mut grid = Grid::new(array.nx(), array.ny())?;
    rule_grid_into(array, gk, thresholds, &mut grid)?;
    Ok(grid)
}

/// [`rule_grid`] into a caller-owned buffer. The grid is resized only on
/// dimension mismatch; otherwise its allocation is reused, which matters
/// in the threshold search and in `segment_all_groups`, where the same
/// array is re-mined once per lattice cell / criterion group.
pub fn rule_grid_into(
    array: &BinArray,
    gk: u32,
    thresholds: Thresholds,
    grid: &mut Grid,
) -> Result<(), ArcsError> {
    crate::faults::check("engine.mine")?;
    if grid.width() != array.nx() || grid.height() != array.ny() {
        *grid = Grid::new(array.nx(), array.ny())?;
    } else {
        grid.reset();
    }
    let min_support_count = min_support_count(array, thresholds.min_support);
    for y in 0..array.ny() {
        for x in 0..array.nx() {
            let count = array.group_count(x, y, gk);
            if (count as u64) < min_support_count {
                continue;
            }
            let total = array.cell_total(x, y);
            if (count as f64 / total as f64) >= thresholds.min_confidence {
                grid.set(x, y);
            }
        }
    }
    Ok(())
}

/// Builds a grid of per-cell support values for group `gk` (used by
/// support-weighted smoothing, paper §5).
pub fn support_grid(array: &BinArray, gk: u32) -> Vec<f64> {
    let mut values = vec![0.0; array.nx() * array.ny()];
    if array.n_tuples() == 0 {
        return values;
    }
    let n = array.n_tuples() as f64;
    for y in 0..array.ny() {
        for x in 0..array.nx() {
            values[y * array.nx() + x] = array.group_count(x, y, gk) as f64 / n;
        }
    }
    values
}

/// Converts a fractional minimum support into an absolute tuple count
/// (paper Figure 3: `minsupport_count = N * min_support`), rounded up so a
/// cell must actually reach the fraction. A zero threshold still requires
/// one tuple — empty cells never form rules.
fn min_support_count(array: &BinArray, min_support: f64) -> u64 {
    (((array.n_tuples() as f64) * min_support).ceil() as u64).max(1)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// 4x4 array, 2 groups. Cell pattern for group 0:
    /// (0,0): 40 of 50; (1,0): 45 of 50; (2,2): 5 of 100; (3,3): 10 of 10.
    fn demo_array() -> BinArray {
        let mut ba = BinArray::new(4, 4, 2).unwrap();
        for _ in 0..40 {
            ba.add(0, 0, 0);
        }
        for _ in 0..10 {
            ba.add(0, 0, 1);
        }
        for _ in 0..45 {
            ba.add(1, 0, 0);
        }
        for _ in 0..5 {
            ba.add(1, 0, 1);
        }
        for _ in 0..5 {
            ba.add(2, 2, 0);
        }
        for _ in 0..95 {
            ba.add(2, 2, 1);
        }
        for _ in 0..10 {
            ba.add(3, 3, 0);
        }
        ba // N = 210
    }

    #[test]
    fn thresholds_validate() {
        assert!(Thresholds::new(0.0, 0.0).is_ok());
        assert!(Thresholds::new(1.0, 1.0).is_ok());
        assert!(Thresholds::new(-0.1, 0.5).is_err());
        assert!(Thresholds::new(0.5, 1.1).is_err());
    }

    #[test]
    fn mines_cells_meeting_both_thresholds() {
        let ba = demo_array();
        // min support 0.1 -> >= 21 tuples; min confidence 0.5.
        let t = Thresholds::new(0.1, 0.5).unwrap();
        let rules = mine_rules(&ba, 0, t);
        let cells: Vec<_> = rules.iter().map(|r| (r.x, r.y)).collect();
        assert_eq!(cells, vec![(0, 0), (1, 0)]);
        let r = &rules[0];
        assert_eq!(r.count, 40);
        assert!((r.support - 40.0 / 210.0).abs() < 1e-12);
        assert!((r.confidence - 0.8).abs() < 1e-12);
        assert_eq!(r.group, 0);
    }

    #[test]
    fn interest_measures() {
        let ba = demo_array(); // N = 210, group-0 total = 100
        let t = Thresholds::new(0.1, 0.5).unwrap();
        let rules = mine_rules(&ba, 0, t);
        let r = &rules[0]; // cell (0,0): 40 of 50, conf 0.8
        // Base rate P(G=0) = 100/210; lift = 0.8 / (100/210) = 1.68.
        let base = 100.0 / 210.0;
        assert!((r.lift - 0.8 / base).abs() < 1e-12);
        assert!(r.lift > 1.0, "dense cell must have lift > 1");
        // Leverage = 40/210 - (50/210)(100/210) > 0.
        let expected = 40.0 / 210.0 - (50.0 / 210.0) * base;
        assert!((r.leverage - expected).abs() < 1e-12);
        assert!(r.leverage > 0.0);

        // A cell at exactly the base rate has lift 1 / leverage 0:
        // group_total(gk) consistency check.
        assert_eq!(ba.group_total(0), 100);
        assert_eq!(ba.group_total(1), 110);
    }

    #[test]
    fn support_threshold_filters() {
        let ba = demo_array();
        // Support 0.04 -> >= 9 tuples: (3,3) with 10 qualifies, (2,2) with
        // 5 does not.
        let t = Thresholds::new(0.04, 0.0).unwrap();
        let cells: Vec<_> = mine_rules(&ba, 0, t).iter().map(|r| (r.x, r.y)).collect();
        assert_eq!(cells, vec![(0, 0), (1, 0), (3, 3)]);
    }

    #[test]
    fn confidence_threshold_filters() {
        let ba = demo_array();
        // Low support floor; confidence 0.9 keeps (1,0) at 0.9 and (3,3)
        // at 1.0, drops (0,0) at 0.8 and (2,2) at 0.05.
        let t = Thresholds::new(0.0, 0.9).unwrap();
        let cells: Vec<_> = mine_rules(&ba, 0, t).iter().map(|r| (r.x, r.y)).collect();
        assert_eq!(cells, vec![(1, 0), (3, 3)]);
    }

    #[test]
    fn zero_thresholds_still_require_a_tuple() {
        let ba = demo_array();
        let t = Thresholds::new(0.0, 0.0).unwrap();
        let rules = mine_rules(&ba, 0, t);
        // Only the 4 occupied-for-group-0 cells, not all 16.
        assert_eq!(rules.len(), 4);
    }

    #[test]
    fn other_group_mines_independently() {
        let ba = demo_array();
        let t = Thresholds::new(0.1, 0.5).unwrap();
        let cells: Vec<_> = mine_rules(&ba, 1, t).iter().map(|r| (r.x, r.y)).collect();
        assert_eq!(cells, vec![(2, 2)]); // 95 of 100, conf 0.95
    }

    #[test]
    fn rule_grid_matches_mine_rules() {
        let ba = demo_array();
        for (s, c) in [(0.0, 0.0), (0.1, 0.5), (0.04, 0.0), (0.0, 0.9)] {
            let t = Thresholds::new(s, c).unwrap();
            let grid = rule_grid(&ba, 0, t).unwrap();
            let from_rules: std::collections::HashSet<_> =
                mine_rules(&ba, 0, t).iter().map(|r| (r.x, r.y)).collect();
            let from_grid: std::collections::HashSet<_> = grid.iter_set().collect();
            assert_eq!(from_rules, from_grid, "thresholds ({s}, {c})");
        }
    }

    #[test]
    fn rule_grid_into_reuses_a_dirty_buffer() {
        let ba = demo_array();
        let loose = Thresholds::new(0.0, 0.0).unwrap();
        let tight = Thresholds::new(0.1, 0.5).unwrap();
        // Fill the buffer at loose thresholds, then re-mine tight into the
        // same (now dirty) buffer: stale bits must not survive.
        let mut buffer = rule_grid(&ba, 0, loose).unwrap();
        rule_grid_into(&ba, 0, tight, &mut buffer).unwrap();
        assert_eq!(buffer, rule_grid(&ba, 0, tight).unwrap());
        // A wrong-shaped buffer is replaced, not misused.
        let mut wrong = Grid::new(2, 2).unwrap();
        rule_grid_into(&ba, 0, tight, &mut wrong).unwrap();
        assert_eq!(wrong, rule_grid(&ba, 0, tight).unwrap());
    }

    #[test]
    fn support_grid_values() {
        let ba = demo_array();
        let sg = support_grid(&ba, 0);
        assert_eq!(sg.len(), 16);
        assert!((sg[0] - 40.0 / 210.0).abs() < 1e-12);
        assert!((sg[2 * 4 + 2] - 5.0 / 210.0).abs() < 1e-12);
        assert_eq!(sg[5], 0.0);
    }

    #[test]
    fn empty_array_yields_nothing() {
        let ba = BinArray::new(3, 3, 2).unwrap();
        let t = Thresholds::new(0.0, 0.0).unwrap();
        assert!(mine_rules(&ba, 0, t).is_empty());
        assert!(rule_grid(&ba, 0, t).unwrap().is_empty());
        assert!(support_grid(&ba, 0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn remining_with_different_thresholds_is_consistent() {
        // Monotonicity: raising either threshold can only shrink the rule set.
        let ba = demo_array();
        let base = mine_rules(&ba, 0, Thresholds::new(0.01, 0.1).unwrap()).len();
        let tighter_s = mine_rules(&ba, 0, Thresholds::new(0.2, 0.1).unwrap()).len();
        let tighter_c = mine_rules(&ba, 0, Thresholds::new(0.01, 0.95).unwrap()).len();
        assert!(tighter_s <= base);
        assert!(tighter_c <= base);
    }
}
