//! The association rule engine (paper §3.2, Figure 3).
//!
//! A specialised miner for two-dimensional rules over the [`BinArray`]: a
//! single scan of the occupied cells emits every rule
//! `X = i ∧ Y = j ⇒ Gk` whose support and confidence clear the thresholds.
//! Because only the bin array is consulted, thresholds can be changed and
//! rules re-mined without another pass over the source data — the property
//! the heuristic optimizer (§3.7) relies on.

// Public-API paths must fail with typed errors, never panic.
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

use crate::binarray::BinArray;
use crate::error::ArcsError;
use crate::grid::Grid;
use crate::index::OccupancyIndex;

/// Minimum support and confidence thresholds (fractions in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Minimum support: `count(i, j, Gk) / N`.
    pub min_support: f64,
    /// Minimum confidence: `count(i, j, Gk) / count(i, j)`.
    pub min_confidence: f64,
}

impl Thresholds {
    /// Creates thresholds, validating both lie in `[0, 1]`.
    pub fn new(min_support: f64, min_confidence: f64) -> Result<Self, ArcsError> {
        if !(0.0..=1.0).contains(&min_support) {
            return Err(ArcsError::InvalidConfig(format!(
                "min_support {min_support} outside [0, 1]"
            )));
        }
        if !(0.0..=1.0).contains(&min_confidence) {
            return Err(ArcsError::InvalidConfig(format!(
                "min_confidence {min_confidence} outside [0, 1]"
            )));
        }
        Ok(Thresholds { min_support, min_confidence })
    }
}

/// One mined two-dimensional association rule over binned data:
/// `X = x ∧ Y = y ⇒ G = group`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinnedRule {
    /// x bin index.
    pub x: usize,
    /// y bin index.
    pub y: usize,
    /// Criterion group code.
    pub group: u32,
    /// Rule support.
    pub support: f64,
    /// Rule confidence.
    pub confidence: f64,
    /// Raw tuple count backing the rule.
    pub count: u32,
    /// Lift: confidence divided by the group's base rate `P(G = g)` —
    /// `> 1` means the cell is *denser* in the group than chance, the
    /// "greater-than-expected" interest notion the paper's §1.1 discusses
    /// (from its references \[22, 15\]).
    pub lift: f64,
    /// Piatetsky-Shapiro leverage:
    /// `P(cell ∧ group) − P(cell) · P(group)` — the additive form of the
    /// same interest measure.
    pub leverage: f64,
}

/// Assembles one [`BinnedRule`] from a qualifying cell's raw counts.
/// Shared by the reference and indexed miners so both emit bit-identical
/// rules.
// The argument list mirrors the cell's raw measurements one-to-one; a
// carrier struct would be built and destructured at exactly two sites.
#[allow(clippy::too_many_arguments)]
#[inline]
fn make_rule(
    x: usize,
    y: usize,
    gk: u32,
    count: u32,
    total: u32,
    confidence: f64,
    n: f64,
    group_rate: f64,
) -> BinnedRule {
    let support = count as f64 / n;
    let cell_rate = total as f64 / n;
    BinnedRule {
        x,
        y,
        group: gk,
        support,
        confidence,
        count,
        lift: if group_rate > 0.0 { confidence / group_rate } else { 0.0 },
        leverage: support - cell_rate * group_rate,
    }
}

/// Mines all rules for criterion group `gk` meeting `thresholds`
/// (the paper's `GenAssociationRules`, Figure 3). One pass over the bin
/// array; the data itself is never touched. For repeated re-mining at
/// varying thresholds, build an [`OccupancyIndex`] once and use
/// [`mine_rules_indexed`] — its cost is proportional to the occupied
/// cells, not the grid.
pub fn mine_rules(array: &BinArray, gk: u32, thresholds: Thresholds) -> Vec<BinnedRule> {
    mine_rules_reference(array, gk, thresholds)
}

/// The naive full-scan miner: visits every `nx · ny` cell. Kept as the
/// oracle the output-sensitive paths are property-tested against.
pub fn mine_rules_reference(
    array: &BinArray,
    gk: u32,
    thresholds: Thresholds,
) -> Vec<BinnedRule> {
    let min_support_count = min_support_count_for(array.n_tuples(), thresholds.min_support);
    let n = array.n_tuples() as f64;
    let group_rate = if array.n_tuples() == 0 {
        0.0
    } else {
        array.group_total(gk) as f64 / n
    };
    let mut rules = Vec::new();
    for y in 0..array.ny() {
        for x in 0..array.nx() {
            let count = array.group_count(x, y, gk);
            if (count as u64) < min_support_count {
                continue;
            }
            let total = array.cell_total(x, y);
            debug_assert!(total >= count);
            let confidence = count as f64 / total as f64;
            if confidence < thresholds.min_confidence {
                continue;
            }
            rules.push(make_rule(x, y, gk, count, total, confidence, n, group_rate));
        }
    }
    rules
}

/// [`mine_rules`] against a prebuilt [`OccupancyIndex`]: iterates only
/// the group's occupied cells (in the same row-major order as the
/// reference scan, so the emitted rules are bit-identical). Returns the
/// rules plus the number of cells visited, for the `cells_visited`
/// observability counter.
pub fn mine_rules_indexed(
    index: &OccupancyIndex,
    gk: u32,
    thresholds: Thresholds,
) -> (Vec<BinnedRule>, u64) {
    let min_support_count = min_support_count_for(index.n_tuples(), thresholds.min_support);
    let n = index.n_tuples() as f64;
    let group_rate = if index.n_tuples() == 0 {
        0.0
    } else {
        index.group_total(gk) as f64 / n
    };
    let cells = index.group_cells(gk);
    let mut rules = Vec::new();
    for cell in cells {
        if (cell.count as u64) < min_support_count || cell.confidence < thresholds.min_confidence
        {
            continue;
        }
        rules.push(make_rule(
            cell.x,
            cell.y,
            gk,
            cell.count,
            cell.total,
            cell.confidence,
            n,
            group_rate,
        ));
    }
    (rules, cells.len() as u64)
}

/// Builds the bitmap grid of qualifying cells directly (the input to
/// BitOp, §3.2: "the (i, j) pairs are then used to create a bitmap grid").
pub fn rule_grid(array: &BinArray, gk: u32, thresholds: Thresholds) -> Result<Grid, ArcsError> {
    let mut grid = Grid::new(array.nx(), array.ny())?;
    rule_grid_into(array, gk, thresholds, &mut grid)?;
    Ok(grid)
}

/// [`rule_grid`] into a caller-owned buffer. The grid is resized only on
/// dimension mismatch; otherwise its allocation is reused, which matters
/// in the threshold search and in `Session::segment_all`, where the same
/// array is re-mined once per lattice cell / criterion group.
pub fn rule_grid_into(
    array: &BinArray,
    gk: u32,
    thresholds: Thresholds,
    grid: &mut Grid,
) -> Result<(), ArcsError> {
    crate::faults::check("engine.mine")?;
    if grid.width() != array.nx() || grid.height() != array.ny() {
        *grid = Grid::new(array.nx(), array.ny())?;
    } else {
        grid.reset();
    }
    let min_support_count = min_support_count_for(array.n_tuples(), thresholds.min_support);
    for y in 0..array.ny() {
        for x in 0..array.nx() {
            let count = array.group_count(x, y, gk);
            if (count as u64) < min_support_count {
                continue;
            }
            let total = array.cell_total(x, y);
            if (count as f64 / total as f64) >= thresholds.min_confidence {
                grid.set(x, y);
            }
        }
    }
    Ok(())
}

/// Builds a grid of per-cell support values for group `gk` (used by
/// support-weighted smoothing, paper §5).
pub fn support_grid(array: &BinArray, gk: u32) -> Vec<f64> {
    let mut values = vec![0.0; array.nx() * array.ny()];
    if array.n_tuples() == 0 {
        return values;
    }
    let n = array.n_tuples() as f64;
    for y in 0..array.ny() {
        for x in 0..array.nx() {
            values[y * array.nx() + x] = array.group_count(x, y, gk) as f64 / n;
        }
    }
    values
}

/// Converts a fractional minimum support into an absolute tuple count
/// (paper Figure 3: `minsupport_count = N * min_support`): the smallest
/// `m` with `m / N >= min_support` **as evaluated in `f64`**, i.e. the
/// exact integer form of the miner's `count / N >= min_support` test. A
/// plain `ceil(N * min_support)` can land one off when the product
/// rounds across an integer, silently admitting (or dropping) rules at
/// exact-boundary counts; the adjustment loops below correct for that
/// without any float round-trip. A zero threshold still requires one
/// tuple — empty cells never form rules.
pub(crate) fn min_support_count_for(n_tuples: u64, min_support: f64) -> u64 {
    if n_tuples == 0 {
        return 1;
    }
    let n = n_tuples as f64;
    let mut m = ((n * min_support).ceil() as u64).min(n_tuples);
    // `k / N` is monotone in `k` even under f64 rounding, so nudging the
    // first guess until the predicate flips lands on the exact boundary;
    // both loops run at most a couple of iterations in practice.
    while m > 1 && ((m - 1) as f64) / n >= min_support {
        m -= 1;
    }
    while m < n_tuples && (m as f64) / n < min_support {
        m += 1;
    }
    m.max(1)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    /// 4x4 array, 2 groups. Cell pattern for group 0:
    /// (0,0): 40 of 50; (1,0): 45 of 50; (2,2): 5 of 100; (3,3): 10 of 10.
    fn demo_array() -> BinArray {
        let mut ba = BinArray::new(4, 4, 2).unwrap();
        for _ in 0..40 {
            ba.add(0, 0, 0);
        }
        for _ in 0..10 {
            ba.add(0, 0, 1);
        }
        for _ in 0..45 {
            ba.add(1, 0, 0);
        }
        for _ in 0..5 {
            ba.add(1, 0, 1);
        }
        for _ in 0..5 {
            ba.add(2, 2, 0);
        }
        for _ in 0..95 {
            ba.add(2, 2, 1);
        }
        for _ in 0..10 {
            ba.add(3, 3, 0);
        }
        ba // N = 210
    }

    #[test]
    fn thresholds_validate() {
        assert!(Thresholds::new(0.0, 0.0).is_ok());
        assert!(Thresholds::new(1.0, 1.0).is_ok());
        assert!(Thresholds::new(-0.1, 0.5).is_err());
        assert!(Thresholds::new(0.5, 1.1).is_err());
    }

    #[test]
    fn mines_cells_meeting_both_thresholds() {
        let ba = demo_array();
        // min support 0.1 -> >= 21 tuples; min confidence 0.5.
        let t = Thresholds::new(0.1, 0.5).unwrap();
        let rules = mine_rules(&ba, 0, t);
        let cells: Vec<_> = rules.iter().map(|r| (r.x, r.y)).collect();
        assert_eq!(cells, vec![(0, 0), (1, 0)]);
        let r = &rules[0];
        assert_eq!(r.count, 40);
        assert!((r.support - 40.0 / 210.0).abs() < 1e-12);
        assert!((r.confidence - 0.8).abs() < 1e-12);
        assert_eq!(r.group, 0);
    }

    #[test]
    fn interest_measures() {
        let ba = demo_array(); // N = 210, group-0 total = 100
        let t = Thresholds::new(0.1, 0.5).unwrap();
        let rules = mine_rules(&ba, 0, t);
        let r = &rules[0]; // cell (0,0): 40 of 50, conf 0.8
        // Base rate P(G=0) = 100/210; lift = 0.8 / (100/210) = 1.68.
        let base = 100.0 / 210.0;
        assert!((r.lift - 0.8 / base).abs() < 1e-12);
        assert!(r.lift > 1.0, "dense cell must have lift > 1");
        // Leverage = 40/210 - (50/210)(100/210) > 0.
        let expected = 40.0 / 210.0 - (50.0 / 210.0) * base;
        assert!((r.leverage - expected).abs() < 1e-12);
        assert!(r.leverage > 0.0);

        // A cell at exactly the base rate has lift 1 / leverage 0:
        // group_total(gk) consistency check.
        assert_eq!(ba.group_total(0), 100);
        assert_eq!(ba.group_total(1), 110);
    }

    #[test]
    fn support_threshold_filters() {
        let ba = demo_array();
        // Support 0.04 -> >= 9 tuples: (3,3) with 10 qualifies, (2,2) with
        // 5 does not.
        let t = Thresholds::new(0.04, 0.0).unwrap();
        let cells: Vec<_> = mine_rules(&ba, 0, t).iter().map(|r| (r.x, r.y)).collect();
        assert_eq!(cells, vec![(0, 0), (1, 0), (3, 3)]);
    }

    #[test]
    fn confidence_threshold_filters() {
        let ba = demo_array();
        // Low support floor; confidence 0.9 keeps (1,0) at 0.9 and (3,3)
        // at 1.0, drops (0,0) at 0.8 and (2,2) at 0.05.
        let t = Thresholds::new(0.0, 0.9).unwrap();
        let cells: Vec<_> = mine_rules(&ba, 0, t).iter().map(|r| (r.x, r.y)).collect();
        assert_eq!(cells, vec![(1, 0), (3, 3)]);
    }

    #[test]
    fn zero_thresholds_still_require_a_tuple() {
        let ba = demo_array();
        let t = Thresholds::new(0.0, 0.0).unwrap();
        let rules = mine_rules(&ba, 0, t);
        // Only the 4 occupied-for-group-0 cells, not all 16.
        assert_eq!(rules.len(), 4);
    }

    #[test]
    fn other_group_mines_independently() {
        let ba = demo_array();
        let t = Thresholds::new(0.1, 0.5).unwrap();
        let cells: Vec<_> = mine_rules(&ba, 1, t).iter().map(|r| (r.x, r.y)).collect();
        assert_eq!(cells, vec![(2, 2)]); // 95 of 100, conf 0.95
    }

    #[test]
    fn rule_grid_matches_mine_rules() {
        let ba = demo_array();
        for (s, c) in [(0.0, 0.0), (0.1, 0.5), (0.04, 0.0), (0.0, 0.9)] {
            let t = Thresholds::new(s, c).unwrap();
            let grid = rule_grid(&ba, 0, t).unwrap();
            let from_rules: std::collections::HashSet<_> =
                mine_rules(&ba, 0, t).iter().map(|r| (r.x, r.y)).collect();
            let from_grid: std::collections::HashSet<_> = grid.iter_set().collect();
            assert_eq!(from_rules, from_grid, "thresholds ({s}, {c})");
        }
    }

    #[test]
    fn rule_grid_into_reuses_a_dirty_buffer() {
        let ba = demo_array();
        let loose = Thresholds::new(0.0, 0.0).unwrap();
        let tight = Thresholds::new(0.1, 0.5).unwrap();
        // Fill the buffer at loose thresholds, then re-mine tight into the
        // same (now dirty) buffer: stale bits must not survive.
        let mut buffer = rule_grid(&ba, 0, loose).unwrap();
        rule_grid_into(&ba, 0, tight, &mut buffer).unwrap();
        assert_eq!(buffer, rule_grid(&ba, 0, tight).unwrap());
        // A wrong-shaped buffer is replaced, not misused.
        let mut wrong = Grid::new(2, 2).unwrap();
        rule_grid_into(&ba, 0, tight, &mut wrong).unwrap();
        assert_eq!(wrong, rule_grid(&ba, 0, tight).unwrap());
    }

    #[test]
    fn support_grid_values() {
        let ba = demo_array();
        let sg = support_grid(&ba, 0);
        assert_eq!(sg.len(), 16);
        assert!((sg[0] - 40.0 / 210.0).abs() < 1e-12);
        assert!((sg[2 * 4 + 2] - 5.0 / 210.0).abs() < 1e-12);
        assert_eq!(sg[5], 0.0);
    }

    #[test]
    fn empty_array_yields_nothing() {
        let ba = BinArray::new(3, 3, 2).unwrap();
        let t = Thresholds::new(0.0, 0.0).unwrap();
        assert!(mine_rules(&ba, 0, t).is_empty());
        assert!(rule_grid(&ba, 0, t).unwrap().is_empty());
        assert!(support_grid(&ba, 0).iter().all(|&v| v == 0.0));
    }

    /// The satellite bugfix regression: `min_support_count_for` must be
    /// the *exact* integer form of the miner's `count / N >= min_support`
    /// test. The invariant, for every (N, s): `m/N >= s` and, when
    /// `m > 1`, `(m-1)/N < s` — all in the same `f64` arithmetic.
    #[test]
    fn min_support_count_is_the_exact_boundary() {
        for n in [1u64, 2, 3, 7, 10, 97, 210, 1_000, 12_345, 1_000_003] {
            for s in [
                0.0, 1e-9, 0.001, 0.01, 0.04, 0.1, 1.0 / 3.0, 0.3, 0.5, 2.0 / 3.0, 0.9,
                0.999, 1.0 - 1e-12, 1.0,
            ] {
                let m = min_support_count_for(n, s);
                assert!(m >= 1 && m <= n, "m = {m} for N = {n}, s = {s}");
                assert!(
                    (m as f64) / (n as f64) >= s || (m == 1 && s > 0.0 && n == 1),
                    "count {m} fails its own threshold: N = {n}, s = {s}"
                );
                if m > 1 {
                    assert!(
                        ((m - 1) as f64) / (n as f64) < s,
                        "count {} would also qualify: N = {n}, s = {s}",
                        m - 1
                    );
                }
            }
        }
        assert_eq!(min_support_count_for(0, 0.5), 1, "empty array admits nothing");
    }

    /// The historical failure mode: `ceil(N * s)` rounds the product up
    /// when it lands just above an integer (0.1 is not exact in binary),
    /// silently *raising* the threshold by one tuple.
    #[test]
    fn min_support_count_survives_inexact_products() {
        // 210 * 0.1 = 21.000000000000004 in f64; ceil would say 22, but
        // 21/210 >= 0.1 holds, so 21 is the exact boundary.
        assert_eq!(min_support_count_for(210, 0.1), 21);
        // 3 * (1/3) = 0.9999999999999999...; a truncating cast would say 0.
        assert_eq!(min_support_count_for(3, 1.0 / 3.0), 1);
    }

    /// Exact-boundary counts must qualify — and one-below must not — in
    /// BOTH the naive and the indexed miner (the shared boundary-semantics
    /// regression the issue asks for).
    #[test]
    fn boundary_counts_behave_identically_in_both_miners() {
        let ba = demo_array(); // N = 210; group-0 counts 40, 45, 5, 10
        let index = OccupancyIndex::build(&ba);
        for (s, expect_cells) in [
            // Exactly at cell (3,3)'s support of 10/210: it qualifies.
            (10.0 / 210.0, vec![(0, 0), (1, 0), (3, 3)]),
            // Infinitesimally above: it must drop out.
            (11.0 / 210.0, vec![(0, 0), (1, 0)]),
            // Exactly at the largest cell's support: only it remains.
            (45.0 / 210.0, vec![(1, 0)]),
            // Above everything: nothing.
            (46.0 / 210.0, vec![]),
        ] {
            let t = Thresholds::new(s, 0.0).unwrap();
            let naive: Vec<_> =
                mine_rules_reference(&ba, 0, t).iter().map(|r| (r.x, r.y)).collect();
            let (indexed_rules, visited) = mine_rules_indexed(&index, 0, t);
            let indexed: Vec<_> = indexed_rules.iter().map(|r| (r.x, r.y)).collect();
            assert_eq!(naive, expect_cells, "naive miner at s = {s}");
            assert_eq!(indexed, expect_cells, "indexed miner at s = {s}");
            assert_eq!(
                mine_rules_reference(&ba, 0, t),
                indexed_rules,
                "full rule payloads diverge at s = {s}"
            );
            assert!(visited <= 4, "indexed miner visited {visited} > occupied cells");
        }
    }

    #[test]
    fn remining_with_different_thresholds_is_consistent() {
        // Monotonicity: raising either threshold can only shrink the rule set.
        let ba = demo_array();
        let base = mine_rules(&ba, 0, Thresholds::new(0.01, 0.1).unwrap()).len();
        let tighter_s = mine_rules(&ba, 0, Thresholds::new(0.2, 0.1).unwrap()).len();
        let tighter_c = mine_rules(&ba, 0, Thresholds::new(0.01, 0.95).unwrap()).len();
        assert!(tighter_s <= base);
        assert!(tighter_c <= base);
    }
}
