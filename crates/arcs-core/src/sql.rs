//! SQL export of clustered rules.
//!
//! The paper's motivating use (§1) is selecting customers for a mailing:
//! a segmentation is only actionable once it can run against the customer
//! database. This module renders rules as standalone SQL `WHERE`
//! predicates (standard SQL: double-quoted identifiers, single-quoted
//! literals, both with doubling escapes).

use crate::categorical::CategoricalRule;
use crate::cluster::ClusteredRule;
use crate::multidim::ClusterBox;

/// Quotes an identifier for standard SQL (`"name"`, embedded quotes
/// doubled).
pub fn quote_ident(name: &str) -> String {
    format!("\"{}\"", name.replace('"', "\"\""))
}

/// Quotes a string literal for standard SQL (`'value'`, embedded quotes
/// doubled).
pub fn quote_literal(value: &str) -> String {
    format!("'{}'", value.replace('\'', "''"))
}

fn range_predicate(attr: &str, lo: f64, hi: f64) -> String {
    format!("{0} >= {1} AND {0} < {2}", quote_ident(attr), lo, hi)
}

/// Types that can render themselves as a SQL `WHERE` predicate selecting
/// the tuples their LHS covers.
pub trait SqlPredicate {
    /// The predicate over the LHS attributes (no `WHERE` keyword).
    fn to_sql_where(&self) -> String;

    /// A full `SELECT` statement over `table` for the rows the rule
    /// selects.
    fn to_sql_select(&self, table: &str) -> String {
        format!("SELECT * FROM {} WHERE {}", quote_ident(table), self.to_sql_where())
    }
}

impl SqlPredicate for ClusteredRule {
    fn to_sql_where(&self) -> String {
        format!(
            "{} AND {}",
            range_predicate(&self.x_attr, self.x_range.0, self.x_range.1),
            range_predicate(&self.y_attr, self.y_range.0, self.y_range.1),
        )
    }
}

impl SqlPredicate for CategoricalRule {
    fn to_sql_where(&self) -> String {
        let labels: Vec<String> =
            self.category_labels.iter().map(|l| quote_literal(l)).collect();
        format!(
            "{} IN ({}) AND {}",
            quote_ident(&self.cat_attr),
            labels.join(", "),
            range_predicate(&self.quant_attr, self.quant_range.0, self.quant_range.1),
        )
    }
}

impl SqlPredicate for ClusterBox {
    fn to_sql_where(&self) -> String {
        self.ranges
            .iter()
            .map(|(attr, &(lo, hi))| range_predicate(attr, lo, hi))
            .collect::<Vec<_>>()
            .join(" AND ")
    }
}

/// Renders a whole segmentation as one predicate: the union (`OR`) of the
/// per-rule predicates, each parenthesised.
pub fn segmentation_where<T: SqlPredicate>(rules: &[T]) -> String {
    if rules.is_empty() {
        return "FALSE".to_string();
    }
    rules
        .iter()
        .map(|r| format!("({})", r.to_sql_where()))
        .collect::<Vec<_>>()
        .join(" OR ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Rect;
    use std::collections::BTreeMap;

    fn rule() -> ClusteredRule {
        ClusteredRule {
            x_attr: "age".into(),
            x_range: (40.0, 60.0),
            y_attr: "salary".into(),
            y_range: (75_000.0, 125_000.0),
            criterion_attr: "group".into(),
            group_label: "A".into(),
            rect: Rect { x0: 0, y0: 0, x1: 0, y1: 0 },
            support: 0.1,
            confidence: 0.9,
        }
    }

    #[test]
    fn quoting_escapes() {
        assert_eq!(quote_ident("age"), "\"age\"");
        assert_eq!(quote_ident("a\"b"), "\"a\"\"b\"");
        assert_eq!(quote_literal("A"), "'A'");
        assert_eq!(quote_literal("O'Brien"), "'O''Brien'");
    }

    #[test]
    fn clustered_rule_predicate() {
        let sql = rule().to_sql_where();
        assert_eq!(
            sql,
            "\"age\" >= 40 AND \"age\" < 60 AND \"salary\" >= 75000 AND \"salary\" < 125000"
        );
        let select = rule().to_sql_select("customers");
        assert!(select.starts_with("SELECT * FROM \"customers\" WHERE "));
    }

    #[test]
    fn categorical_rule_predicate() {
        let rule = CategoricalRule {
            cat_attr: "zip".into(),
            category_codes: vec![1, 4],
            category_labels: vec!["94305".into(), "94040".into()],
            quant_attr: "salary".into(),
            quant_range: (20_000.0, 60_000.0),
            criterion_attr: "group".into(),
            group_label: "A".into(),
            rect: Rect { x0: 0, y0: 0, x1: 1, y1: 0 },
            support: 0.1,
            confidence: 0.9,
        };
        assert_eq!(
            rule.to_sql_where(),
            "\"zip\" IN ('94305', '94040') AND \"salary\" >= 20000 AND \"salary\" < 60000"
        );
    }

    #[test]
    fn box_predicate_joins_all_dimensions() {
        let mut ranges = BTreeMap::new();
        ranges.insert("a".to_string(), (0.0, 1.0));
        ranges.insert("b".to_string(), (2.0, 3.0));
        let cb = ClusterBox {
            ranges,
            criterion_attr: "g".into(),
            group_label: "X".into(),
        };
        assert_eq!(
            cb.to_sql_where(),
            "\"a\" >= 0 AND \"a\" < 1 AND \"b\" >= 2 AND \"b\" < 3"
        );
    }

    #[test]
    fn segmentation_union() {
        let rules = vec![rule(), rule()];
        let sql = segmentation_where(&rules);
        assert!(sql.contains(") OR ("));
        assert_eq!(sql.matches("\"age\"").count(), 4);
        let empty: Vec<ClusteredRule> = Vec::new();
        assert_eq!(segmentation_where(&empty), "FALSE");
    }
}
