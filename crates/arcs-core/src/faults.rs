//! Deterministic fault-injection harness (the `failpoints` feature).
//!
//! Robustness claims are only worth what their tests exercise, so every
//! recovery path in the pipeline is threaded with *named failpoints* —
//! places where a test can deterministically inject a typed error, a
//! panic, or an allocation failure on exactly the Nth visit. Without the
//! `failpoints` cargo feature every [`check`] call compiles to an inlined
//! `Ok(())`, so production builds pay nothing.
//!
//! # Failpoint catalog
//!
//! | name | site |
//! |------|------|
//! | `binner.shard` | inside each parallel `bin_rows` shard worker |
//! | `binner.stream-chunk` | per chunk inside each parallel stream worker |
//! | `binner.checkpoint-save` | before writing a streaming checkpoint |
//! | `binner.checkpoint-load` | before reading a streaming checkpoint |
//! | `binarray.snapshot-write` | at [`BinArray::save`] entry |
//! | `binarray.snapshot-read` | at [`BinArray::load`] entry |
//! | `engine.mine` | at [`rule_grid`]/[`rule_grid_into`] entry |
//! | `smooth.pass` | before each smoothing pass |
//! | `bitop.enumerate` | at [`cluster_with_stats`] entry |
//! | `bitop.stripe` | inside each parallel enumeration stripe worker |
//! | `verify.sample` | at [`verify_sampled`] entry |
//! | `optimizer.evaluate` | per point inside each parallel evaluation worker |
//! | `serve.swap` | at [`SnapshotStore::append`] entry, before the merge |
//! | `serve.swap-publish` | after building the new snapshot, before publishing it |
//! | `serve.admission` | at [`AdmissionGate::admit`] entry |
//! | `serve.worker` | inside the panic-isolated query body (retried on panic) |
//! | `serve.cache-insert` | before inserting a computed result into the cache |
//! | `serve.cache-invalidate` | before post-swap cache invalidation (fault degrades reclamation, never correctness) |
//! | `daemon.accept` | per accepted TCP connection in `arcsd` (fault drops that one connection) |
//! | `daemon.frame-decode` | per received frame in `arcsd` (fault fails that one frame, not the connection) |
//! | `daemon.tenant-lookup` | at `Registry::get` in `arcsd` (fault fails that one request) |
//! | `daemon.feeder-merge` | per feeder merge tick in `arcsd` (fault retries the same bytes next tick) |
//! | `wal.write` | at [`WalWriter::append`] entry, before any byte lands |
//! | `wal.fsync` | after a WAL record's bytes are written, before the fsync that acknowledges it |
//! | `wal.checkpoint` | at [`save_checkpoint`] entry, before the array snapshot is written |
//! | `wal.replay` | at [`replay`] entry, before the log is scanned |
//! | `wal.truncate` | at [`WalWriter::reset`] entry, before the post-checkpoint truncation |
//! | `repl.subscribe` | at the primary's `repl.subscribe` handler entry (fault drops that subscribe; the standby retries) |
//! | `repl.records` | at the primary's `repl.records` handler entry (fault fails that batch — a mid-stream disconnect) |
//! | `repl.record` | per record while a primary encodes a shipped batch (fault cuts the batch short — a torn ship; the rest follows next poll) |
//! | `repl.apply` | per shipped record at the standby's apply site (fault refuses that record; the batch is re-fetched) |
//! | `repl.heartbeat` | at the primary's `repl.heartbeat` handler entry (fault starves the standby's staleness clock) |
//!
//! [`BinArray::save`]: crate::binarray::BinArray::save
//! [`BinArray::load`]: crate::binarray::BinArray::load
//! [`rule_grid`]: crate::engine::rule_grid
//! [`rule_grid_into`]: crate::engine::rule_grid_into
//! [`cluster_with_stats`]: crate::bitop::cluster_with_stats
//! [`verify_sampled`]: crate::verify::verify_sampled
//! [`SnapshotStore::append`]: crate::serve::SnapshotStore::append
//! [`AdmissionGate::admit`]: crate::serve::AdmissionGate::admit
//! [`WalWriter::append`]: crate::wal::WalWriter::append
//! [`WalWriter::reset`]: crate::wal::WalWriter::reset
//! [`save_checkpoint`]: crate::wal::save_checkpoint
//! [`replay`]: crate::wal::replay
//!
//! # Schedule specification
//!
//! A schedule is a `;`-separated list of `name=action@N` clauses:
//!
//! * `action` is one of `error` (return [`ArcsError::FaultInjected`]),
//!   `panic` (unwind with a recognisable message), or `alloc` (return
//!   [`ArcsError::AllocationFailed`], simulating allocator exhaustion).
//! * `@N` fires on exactly the Nth visit to the point (1-based, counted
//!   from when the schedule was installed); `@N+` fires on *every* visit
//!   from the Nth on (a persistent fault); omitting `@N` means `@1`.
//!
//! Example: `binner.shard=panic@1+;engine.mine=error@2` — every binning
//! shard worker panics, and the second rule-mining call fails.
//!
//! Schedules come from the `ARCS_FAILPOINTS` environment variable (parsed
//! lazily on first [`check`]) or programmatically via
//! [`configure_from_spec`]. Hit counters are global and monotonic until
//! [`clear`], so tests that share a process must serialise on a lock and
//! call [`clear`] between scenarios.

#[cfg(not(feature = "failpoints"))]
use crate::error::ArcsError;

/// Consults the failpoint registry for `point`, firing the configured
/// action if its schedule matches the current hit count.
///
/// Returns `Ok(())` when the point is unconfigured or its schedule does
/// not match; returns a typed error for `error`/`alloc` actions; unwinds
/// for `panic` actions. In builds without the `failpoints` feature this is
/// an inlined no-op.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn check(_point: &'static str) -> Result<(), ArcsError> {
    Ok(())
}

#[cfg(feature = "failpoints")]
pub use imp::{check, clear, configure_from_spec, hits, Action};

#[cfg(feature = "failpoints")]
mod imp {
    use std::collections::HashMap;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    use crate::error::ArcsError;

    /// What a failpoint does when its schedule fires.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Action {
        /// Return [`ArcsError::FaultInjected`].
        Error,
        /// Unwind with a panic whose message names the point.
        Panic,
        /// Return [`ArcsError::AllocationFailed`], simulating OOM.
        Alloc,
    }

    #[derive(Debug, Clone)]
    struct Schedule {
        action: Action,
        /// 1-based hit number the schedule first matches.
        at: u64,
        /// `true` for `@N+`: fire on every hit from `at` on.
        persistent: bool,
    }

    #[derive(Default)]
    struct State {
        schedules: HashMap<String, Schedule>,
        hits: HashMap<&'static str, u64>,
    }

    fn state() -> MutexGuard<'static, State> {
        static STATE: OnceLock<Mutex<State>> = OnceLock::new();
        let mutex = STATE.get_or_init(|| {
            let mut st = State::default();
            if let Ok(spec) = std::env::var("ARCS_FAILPOINTS") {
                if let Err(err) = apply_spec(&mut st, &spec) {
                    // A typo'd env schedule silently doing nothing would
                    // defeat the tests that rely on it; be loud.
                    eprintln!("warning: ignoring invalid ARCS_FAILPOINTS: {err}");
                }
            }
            Mutex::new(st)
        });
        // A panic action never unwinds while holding the lock, but a test
        // thread may die for unrelated reasons; the state is still valid.
        mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn parse_clause(clause: &str) -> Result<(String, Schedule), ArcsError> {
        let bad = |msg: &str| ArcsError::InvalidConfig(format!("failpoint `{clause}`: {msg}"));
        let (name, rest) = clause
            .split_once('=')
            .ok_or_else(|| bad("expected `name=action[@N[+]]`"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(bad("empty failpoint name"));
        }
        let (action_text, at_text) = match rest.split_once('@') {
            Some((a, n)) => (a.trim(), Some(n.trim())),
            None => (rest.trim(), None),
        };
        let action = match action_text {
            "error" => Action::Error,
            "panic" => Action::Panic,
            "alloc" => Action::Alloc,
            other => return Err(bad(&format!("unknown action `{other}`"))),
        };
        let (at, persistent) = match at_text {
            None => (1, false),
            Some(n) => {
                let (digits, persistent) = match n.strip_suffix('+') {
                    Some(d) => (d, true),
                    None => (n, false),
                };
                let at: u64 = digits
                    .parse()
                    .map_err(|_| bad(&format!("bad hit count `{n}`")))?;
                if at == 0 {
                    return Err(bad("hit counts are 1-based"));
                }
                (at, persistent)
            }
        };
        Ok((name.to_string(), Schedule { action, at, persistent }))
    }

    fn apply_spec(st: &mut State, spec: &str) -> Result<(), ArcsError> {
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (name, schedule) = parse_clause(clause)?;
            // `@N` counts visits from installation, not from process
            // start: a fault-free baseline run before arming must not
            // consume the schedule's hits.
            st.hits.remove(name.as_str());
            st.schedules.insert(name, schedule);
        }
        Ok(())
    }

    /// Installs (or replaces) failpoint schedules from a spec string.
    /// Clauses are merged into the existing registry; each configured
    /// point's hit counter restarts at zero, so `@N` counts visits from
    /// installation. See the module docs for the grammar.
    pub fn configure_from_spec(spec: &str) -> Result<(), ArcsError> {
        apply_spec(&mut state(), spec)
    }

    /// Removes every schedule and resets every hit counter. Call between
    /// test scenarios sharing a process.
    pub fn clear() {
        let mut st = state();
        st.schedules.clear();
        st.hits.clear();
    }

    /// Number of times [`check`] has been called for `point` since the
    /// last [`clear`] or since the point was last (re)configured —
    /// configured or not. Lets tests assert a failpoint was reached.
    pub fn hits(point: &str) -> u64 {
        state().hits.get(point).copied().unwrap_or(0)
    }

    /// Active-build implementation of [`crate::faults::check`].
    pub fn check(point: &'static str) -> Result<(), ArcsError> {
        let fire = {
            let mut st = state();
            let hit = st.hits.entry(point).or_insert(0);
            *hit += 1;
            let n = *hit;
            st.schedules.get(point).and_then(|s| {
                let fires = if s.persistent { n >= s.at } else { n == s.at };
                fires.then_some(s.action)
            })
            // Guard dropped here: a panic action never poisons the lock.
        };
        match fire {
            None => Ok(()),
            Some(Action::Error) => Err(ArcsError::FaultInjected { point }),
            Some(Action::Alloc) => Err(ArcsError::AllocationFailed {
                what: format!("injected allocation failure at failpoint `{point}`"),
            }),
            Some(Action::Panic) => panic!("injected panic at failpoint `{point}`"),
        }
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use crate::error::ArcsError;
    use std::sync::Mutex;

    /// Failpoint state is process-global; serialise the tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        let g = LOCK.lock().unwrap_or_else(|p| p.into_inner());
        clear();
        g
    }

    #[test]
    fn unconfigured_points_pass_and_count() {
        let _g = guard();
        assert!(check("test.point").is_ok());
        assert!(check("test.point").is_ok());
        assert_eq!(hits("test.point"), 2);
        clear();
    }

    #[test]
    fn exact_schedule_fires_once() {
        let _g = guard();
        configure_from_spec("test.exact=error@2").unwrap();
        assert!(check("test.exact").is_ok());
        let err = check("test.exact").unwrap_err();
        assert!(matches!(err, ArcsError::FaultInjected { point: "test.exact" }));
        assert!(check("test.exact").is_ok(), "@N fires on the Nth hit only");
        clear();
    }

    #[test]
    fn persistent_schedule_fires_from_n_on() {
        let _g = guard();
        configure_from_spec("test.persist=alloc@2+").unwrap();
        assert!(check("test.persist").is_ok());
        assert!(matches!(
            check("test.persist"),
            Err(ArcsError::AllocationFailed { .. })
        ));
        assert!(matches!(
            check("test.persist"),
            Err(ArcsError::AllocationFailed { .. })
        ));
        clear();
    }

    #[test]
    fn bare_action_means_first_hit() {
        let _g = guard();
        configure_from_spec("test.bare=error").unwrap();
        assert!(check("test.bare").is_err());
        assert!(check("test.bare").is_ok());
        clear();
    }

    #[test]
    fn panic_action_unwinds_with_point_name() {
        let _g = guard();
        configure_from_spec("test.panic=panic@1").unwrap();
        let caught = std::panic::catch_unwind(|| check("test.panic")).unwrap_err();
        let text = caught
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(text.contains("test.panic"), "{text}");
        clear();
    }

    #[test]
    fn multi_clause_specs_and_errors() {
        let _g = guard();
        configure_from_spec("test.a=error@1; test.b=panic@3+").unwrap();
        assert!(check("test.a").is_err());
        assert!(check("test.b").is_ok());
        clear();

        for bad in ["nope", "x=frobnicate", "x=error@0", "x=error@abc", "=error"] {
            assert!(configure_from_spec(bad).is_err(), "accepted `{bad}`");
        }
        clear();
    }
}
