//! ASCII rendering of grids and clusters (for the Figure 1/4/5/7-style
//! displays in examples and the benchmark harness).

use crate::cluster::Rect;
use crate::grid::Grid;

/// Renders a grid as rows of `#` / `.`, top row first.
pub fn render_grid(grid: &Grid) -> String {
    let mut out = String::with_capacity((grid.width() + 1) * grid.height());
    for y in 0..grid.height() {
        for x in 0..grid.width() {
            out.push(if grid.get(x, y) { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

/// Renders a grid with clusters overlaid: cells inside cluster `i` print
/// the letter `A + (i mod 26)` (uppercase), set cells outside any cluster
/// print `#`, unset cells `.`.
pub fn render_clusters(grid: &Grid, clusters: &[Rect]) -> String {
    let mut out = String::with_capacity((grid.width() + 1) * grid.height());
    for y in 0..grid.height() {
        for x in 0..grid.width() {
            let label = clusters.iter().position(|r| r.contains(x, y));
            out.push(match label {
                Some(i) => (b'A' + (i % 26) as u8) as char,
                None if grid.get(x, y) => '#',
                None => '.',
            });
        }
        out.push('\n');
    }
    out
}

/// Renders two grids side by side with a gutter — the paper's Figure 7
/// "(a) prior to smoothing, (b) after smoothing" layout.
pub fn render_side_by_side(left: &Grid, right: &Grid, gutter: &str) -> String {
    let height = left.height().max(right.height());
    let mut out = String::new();
    for y in 0..height {
        for x in 0..left.width() {
            out.push(if y < left.height() && left.get(x, y) { '#' } else { '.' });
        }
        out.push_str(gutter);
        for x in 0..right.width() {
            out.push(if y < right.height() && right.get(x, y) { '#' } else { '.' });
        }
        out.push('\n');
    }
    out
}

/// Renders a grid with cluster overlays as an SVG document (the paper's
/// Figure 1 style: rule cells as filled squares, clusters as outlined
/// rounded rectangles). `cell_px` is the size of one grid cell in pixels.
/// Row 0 is drawn at the *bottom*, matching the paper's axes (the y
/// attribute increases upward).
pub fn render_svg(grid: &Grid, clusters: &[Rect], cell_px: usize) -> String {
    let cell = cell_px.max(1);
    let w = grid.width() * cell;
    let h = grid.height() * cell;
    let mut svg = String::with_capacity(4096);
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
         viewBox=\"0 0 {w} {h}\">\n"
    ));
    svg.push_str(&format!(
        "  <rect width=\"{w}\" height=\"{h}\" fill=\"#ffffff\"/>\n"
    ));
    // Rule cells.
    for (x, y) in grid.iter_set() {
        let px = x * cell;
        let py = (grid.height() - 1 - y) * cell;
        svg.push_str(&format!(
            "  <rect x=\"{px}\" y=\"{py}\" width=\"{cell}\" height=\"{cell}\" \
             fill=\"#4a4a4a\"/>\n"
        ));
    }
    // Cluster outlines, cycling a small palette.
    const PALETTE: [&str; 6] =
        ["#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf"];
    for (i, rect) in clusters.iter().enumerate() {
        let px = rect.x0 * cell;
        let py = (grid.height() - 1 - rect.y1) * cell;
        let pw = rect.width() * cell;
        let ph = rect.height() * cell;
        let colour = PALETTE[i % PALETTE.len()];
        svg.push_str(&format!(
            "  <rect x=\"{px}\" y=\"{py}\" width=\"{pw}\" height=\"{ph}\" rx=\"{r}\" \
             fill=\"{colour}\" fill-opacity=\"0.15\" stroke=\"{colour}\" \
             stroke-width=\"2\"/>\n",
            r = cell / 2
        ));
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_roundtrips_through_render_and_parse() {
        let art = "##..\n.##.\n..##\n";
        let grid = Grid::parse(art).unwrap();
        assert_eq!(render_grid(&grid), art);
        let reparsed = Grid::parse(&render_grid(&grid)).unwrap();
        assert_eq!(reparsed, grid);
    }

    #[test]
    fn clusters_are_lettered() {
        let grid = Grid::parse("###.\n###.\n...#\n").unwrap();
        let clusters = vec![Rect::new(0, 0, 2, 1).unwrap()];
        let art = render_clusters(&grid, &clusters);
        assert_eq!(art, "AAA.\nAAA.\n...#\n");
    }

    #[test]
    fn cluster_letters_wrap_after_z() {
        let mut grid = Grid::new(30, 1).unwrap();
        for x in 0..28 {
            grid.set(x, 0);
        }
        let clusters: Vec<Rect> =
            (0..28).map(|x| Rect::new(x, 0, x, 0).unwrap()).collect();
        let art = render_clusters(&grid, &clusters);
        assert!(art.starts_with("ABCDEFGHIJKLMNOPQRSTUVWXYZAB"));
    }

    #[test]
    fn side_by_side_layout() {
        let a = Grid::parse("#.\n.#\n").unwrap();
        let b = Grid::parse("##\n##\n").unwrap();
        let art = render_side_by_side(&a, &b, " | ");
        assert_eq!(art, "#. | ##\n.# | ##\n");
    }

    #[test]
    fn side_by_side_uneven_heights() {
        let a = Grid::parse("#\n").unwrap();
        let b = Grid::parse("#\n#\n").unwrap();
        let art = render_side_by_side(&a, &b, "|");
        assert_eq!(art, "#|#\n.|#\n");
    }

    #[test]
    fn svg_contains_cells_and_clusters() {
        let grid = Grid::parse("##.\n##.\n...\n").unwrap();
        let clusters = vec![Rect::new(0, 1, 1, 2).unwrap()];
        let svg = render_svg(&grid, &clusters, 10);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("width=\"30\" height=\"30\""));
        // 4 set cells + background + 1 cluster outline = 6 rects.
        assert_eq!(svg.matches("<rect").count(), 6);
        assert!(svg.contains("stroke=\"#d62728\""));
        // Balanced tags (all rects self-close).
        assert_eq!(svg.matches("/>").count(), 6);
    }

    #[test]
    fn svg_flips_y_axis() {
        // A single cell at grid (0, 0) must be drawn at the *bottom* row.
        let mut grid = Grid::new(2, 3).unwrap();
        grid.set(0, 0);
        let svg = render_svg(&grid, &[], 10);
        assert!(svg.contains("<rect x=\"0\" y=\"20\""), "{svg}");
    }

    #[test]
    fn svg_minimum_cell_size() {
        let grid = Grid::parse("#\n").unwrap();
        let svg = render_svg(&grid, &[], 0); // clamped to 1
        assert!(svg.contains("width=\"1\" height=\"1\""));
    }
}
