//! Clusters with more than two attributes (paper §5).
//!
//! The paper proposes extending the system "by iteratively combining
//! overlapping sets of two-attribute clustered association rules to
//! produce clusters that have an arbitrary number of attributes". This
//! module implements that join: two rule sets that share an attribute are
//! combined on the overlap of their shared ranges, yielding boxes over the
//! union of their attributes; the join can be applied repeatedly to grow
//! dimensionality.

use std::collections::BTreeMap;

use arcs_data::{Dataset, Tuple};

use crate::cluster::ClusteredRule;
use crate::error::ArcsError;

/// An axis-aligned box over any number of named quantitative attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterBox {
    /// Per-attribute half-open ranges, keyed by attribute name (sorted).
    pub ranges: BTreeMap<String, (f64, f64)>,
    /// Criterion attribute name.
    pub criterion_attr: String,
    /// Criterion group label.
    pub group_label: String,
}

impl ClusterBox {
    /// Builds a box from one two-attribute clustered rule.
    pub fn from_rule(rule: &ClusteredRule) -> Self {
        let mut ranges = BTreeMap::new();
        ranges.insert(rule.x_attr.clone(), rule.x_range);
        ranges.insert(rule.y_attr.clone(), rule.y_range);
        ClusterBox {
            ranges,
            criterion_attr: rule.criterion_attr.clone(),
            group_label: rule.group_label.clone(),
        }
    }

    /// Number of attributes the box constrains.
    pub fn dimensions(&self) -> usize {
        self.ranges.len()
    }

    /// Whether `tuple` (interpreted against `dataset`'s schema) satisfies
    /// every range of the box.
    pub fn covers(&self, tuple: &Tuple, dataset: &Dataset) -> Result<bool, ArcsError> {
        for (attr, (lo, hi)) in &self.ranges {
            let idx = dataset.schema().require(attr)?;
            let v = tuple.quant(idx);
            if !(*lo..*hi).contains(&v) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Joins with `other` on their shared attributes: shared ranges must
    /// overlap (the result takes the intersection), disjoint attributes
    /// are carried over. Returns `None` when the boxes target different
    /// groups, share no attribute, or a shared range is disjoint.
    pub fn join(&self, other: &ClusterBox) -> Option<ClusterBox> {
        if self.group_label != other.group_label
            || self.criterion_attr != other.criterion_attr
        {
            return None;
        }
        let shared: Vec<&String> =
            self.ranges.keys().filter(|k| other.ranges.contains_key(*k)).collect();
        if shared.is_empty() {
            return None;
        }
        let mut ranges = self.ranges.clone();
        for (attr, &(lo, hi)) in &other.ranges {
            match ranges.get_mut(attr) {
                Some(range) => {
                    let new_lo = range.0.max(lo);
                    let new_hi = range.1.min(hi);
                    if new_lo >= new_hi {
                        return None; // shared range disjoint
                    }
                    *range = (new_lo, new_hi);
                }
                None => {
                    ranges.insert(attr.clone(), (lo, hi));
                }
            }
        }
        Some(ClusterBox {
            ranges,
            criterion_attr: self.criterion_attr.clone(),
            group_label: self.group_label.clone(),
        })
    }
}

impl std::fmt::Display for ClusterBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (attr, (lo, hi)) in &self.ranges {
            if !first {
                write!(f, "  AND  ")?;
            }
            first = false;
            write!(
                f,
                "{} <= {attr} < {}",
                crate::cluster::fmt_bound(*lo),
                crate::cluster::fmt_bound(*hi)
            )?;
        }
        write!(f, "  =>  {} = {}", self.criterion_attr, self.group_label)
    }
}

/// Joins every compatible pair across two rule sets (the paper's one
/// combination step). Results are deduplicated.
pub fn combine_rule_sets(a: &[ClusteredRule], b: &[ClusteredRule]) -> Vec<ClusterBox> {
    let boxes_a: Vec<ClusterBox> = a.iter().map(ClusterBox::from_rule).collect();
    let boxes_b: Vec<ClusterBox> = b.iter().map(ClusterBox::from_rule).collect();
    let mut out: Vec<ClusterBox> = Vec::new();
    for ba in &boxes_a {
        for bb in &boxes_b {
            if let Some(joined) = ba.join(bb) {
                if !out.contains(&joined) {
                    out.push(joined);
                }
            }
        }
    }
    out
}

/// Measures a box set's error on a dataset: a tuple is a false positive
/// when covered but not in the group, a false negative when in the group
/// but uncovered. (Same definition as the 2-D verifier, lifted to boxes.)
pub fn box_errors(
    boxes: &[ClusterBox],
    dataset: &Dataset,
    criterion_attr: &str,
    group_label: &str,
) -> Result<crate::verify::ErrorCounts, ArcsError> {
    let schema = dataset.schema();
    let criterion_idx = schema.require(criterion_attr)?;
    let gk = schema
        .attribute(criterion_idx)
        .and_then(|a| match &a.kind {
            arcs_data::schema::AttrKind::Categorical { labels } => {
                labels.iter().position(|l| l == group_label)
            }
            _ => None,
        })
        .ok_or_else(|| ArcsError::UnknownGroup(group_label.to_string()))? as u32;

    let mut counts = crate::verify::ErrorCounts::default();
    for tuple in dataset.iter() {
        let mut covered = false;
        for b in boxes {
            if b.covers(tuple, dataset)? {
                covered = true;
                break;
            }
        }
        let in_group = tuple.cat(criterion_idx) == gk;
        match (covered, in_group) {
            (true, false) => counts.false_positives += 1,
            (false, true) => counts.false_negatives += 1,
            _ => {}
        }
        counts.n_examined += 1;
    }
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Rect;
    use arcs_data::schema::{Attribute, Schema};
    use arcs_data::Value;

    fn rule(
        x_attr: &str,
        x: (f64, f64),
        y_attr: &str,
        y: (f64, f64),
        group: &str,
    ) -> ClusteredRule {
        ClusteredRule {
            x_attr: x_attr.into(),
            x_range: x,
            y_attr: y_attr.into(),
            y_range: y,
            criterion_attr: "g".into(),
            group_label: group.into(),
            rect: Rect { x0: 0, y0: 0, x1: 0, y1: 0 },
            support: 0.1,
            confidence: 0.9,
        }
    }

    #[test]
    fn join_on_shared_attribute() {
        let ab = ClusterBox::from_rule(&rule("a", (0.0, 10.0), "b", (5.0, 15.0), "A"));
        let bc = ClusterBox::from_rule(&rule("b", (10.0, 20.0), "c", (1.0, 2.0), "A"));
        let joined = ab.join(&bc).expect("b ranges overlap at [10, 15)");
        assert_eq!(joined.dimensions(), 3);
        assert_eq!(joined.ranges["a"], (0.0, 10.0));
        assert_eq!(joined.ranges["b"], (10.0, 15.0));
        assert_eq!(joined.ranges["c"], (1.0, 2.0));
    }

    #[test]
    fn join_fails_on_disjoint_shared_range() {
        let ab = ClusterBox::from_rule(&rule("a", (0.0, 10.0), "b", (0.0, 5.0), "A"));
        let bc = ClusterBox::from_rule(&rule("b", (5.0, 10.0), "c", (0.0, 1.0), "A"));
        assert!(ab.join(&bc).is_none());
    }

    #[test]
    fn join_fails_without_shared_attribute_or_on_group_mismatch() {
        let ab = ClusterBox::from_rule(&rule("a", (0.0, 1.0), "b", (0.0, 1.0), "A"));
        let cd = ClusterBox::from_rule(&rule("c", (0.0, 1.0), "d", (0.0, 1.0), "A"));
        assert!(ab.join(&cd).is_none());
        let ab_other = ClusterBox::from_rule(&rule("a", (0.0, 1.0), "b", (0.0, 1.0), "B"));
        assert!(ab.join(&ab_other).is_none());
    }

    #[test]
    fn combine_rule_sets_produces_expected_boxes() {
        let set_ab = vec![
            rule("a", (0.0, 10.0), "b", (0.0, 10.0), "A"),
            rule("a", (20.0, 30.0), "b", (20.0, 30.0), "A"),
        ];
        let set_bc = vec![rule("b", (5.0, 25.0), "c", (0.0, 1.0), "A")];
        let boxes = combine_rule_sets(&set_ab, &set_bc);
        // Both ab-rules' b-ranges overlap [5, 25): two 3-D boxes.
        assert_eq!(boxes.len(), 2);
        assert!(boxes.iter().all(|b| b.dimensions() == 3));
        assert_eq!(boxes[0].ranges["b"], (5.0, 10.0));
        assert_eq!(boxes[1].ranges["b"], (20.0, 25.0));
    }

    #[test]
    fn joins_chain_to_four_dimensions() {
        // (a,b) ⋈ (b,c) ⋈ (c,d): the §5 "iteratively combining" step.
        let ab = ClusterBox::from_rule(&rule("a", (0.0, 10.0), "b", (0.0, 10.0), "A"));
        let bc = ClusterBox::from_rule(&rule("b", (5.0, 15.0), "c", (0.0, 10.0), "A"));
        let cd = ClusterBox::from_rule(&rule("c", (5.0, 15.0), "d", (1.0, 2.0), "A"));
        let abc = ab.join(&bc).expect("b overlaps");
        assert_eq!(abc.dimensions(), 3);
        let abcd = abc.join(&cd).expect("c overlaps");
        assert_eq!(abcd.dimensions(), 4);
        assert_eq!(abcd.ranges["a"], (0.0, 10.0));
        assert_eq!(abcd.ranges["b"], (5.0, 10.0));
        assert_eq!(abcd.ranges["c"], (5.0, 10.0));
        assert_eq!(abcd.ranges["d"], (1.0, 2.0));
        // Join is commutative on the result's ranges.
        let alt = cd.join(&abc).expect("c overlaps");
        assert_eq!(alt.ranges, abcd.ranges);
    }

    #[test]
    fn display_reads_like_a_rule() {
        let b = ClusterBox::from_rule(&rule("age", (40.0, 60.0), "salary", (1.0, 2.0), "A"));
        let text = b.to_string();
        assert!(text.contains("40 <= age < 60"));
        assert!(text.contains("=>  g = A"));
    }

    #[test]
    fn box_errors_on_dataset() {
        let schema = Schema::new(vec![
            Attribute::quantitative("a", 0.0, 10.0),
            Attribute::quantitative("b", 0.0, 10.0),
            Attribute::quantitative("c", 0.0, 10.0),
            Attribute::categorical("g", ["A", "other"]),
        ])
        .unwrap();
        let mut ds = Dataset::new(schema);
        // In-box group-A tuple, in-box other (FP), out-of-box group-A (FN).
        for (a, b, c, g) in [
            (1.0, 1.0, 1.0, 0u32),
            (1.0, 1.0, 1.0, 1),
            (9.0, 9.0, 9.0, 0),
        ] {
            ds.push(vec![
                Value::Quant(a),
                Value::Quant(b),
                Value::Quant(c),
                Value::Cat(g),
            ])
            .unwrap();
        }
        let mut ranges = BTreeMap::new();
        ranges.insert("a".to_string(), (0.0, 5.0));
        ranges.insert("b".to_string(), (0.0, 5.0));
        ranges.insert("c".to_string(), (0.0, 5.0));
        let boxes = vec![ClusterBox {
            ranges,
            criterion_attr: "g".into(),
            group_label: "A".into(),
        }];
        let counts = box_errors(&boxes, &ds, "g", "A").unwrap();
        assert_eq!(counts.false_positives, 1);
        assert_eq!(counts.false_negatives, 1);
        assert_eq!(counts.n_examined, 3);
        assert!(box_errors(&boxes, &ds, "g", "Z").is_err());
    }
}
