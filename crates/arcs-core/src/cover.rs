//! Alternative clusterers and an exact-cover oracle.
//!
//! The paper notes that finding the fewest clusters covering a grid is an
//! instance of the NP-complete k-decision set-covering problem, and that
//! BitOp's greedy selection is a near-optimal approximation (its
//! reference \[5\]). This module provides:
//!
//! * [`connected_components`] — the obvious image-processing baseline the
//!   paper contrasts itself with (§1.1): flood-fill components and take
//!   bounding boxes. Unlike BitOp the boxes may include unset cells
//!   (over-covering), which is exactly why ARCS prefers exact rectangles.
//! * [`optimal_cover`] — an exact branch-and-bound minimum rectangle
//!   partition for small grids (≤ 64 cells), used by the test suite to
//!   measure BitOp's approximation quality.

use std::collections::HashMap;

use crate::cluster::Rect;
use crate::error::ArcsError;
use crate::grid::Grid;

/// Flood-fills 4-connected components of set cells and returns each
/// component's bounding box (largest first). Bounding boxes of L-shaped or
/// diagonal components include unset cells.
pub fn connected_components(grid: &Grid) -> Vec<Rect> {
    let w = grid.width();
    let h = grid.height();
    let mut visited = vec![false; w * h];
    let mut out = Vec::new();
    let mut stack = Vec::new();

    for (sx, sy) in grid.iter_set() {
        if visited[sy * w + sx] {
            continue;
        }
        let (mut x0, mut y0, mut x1, mut y1) = (sx, sy, sx, sy);
        stack.push((sx, sy));
        visited[sy * w + sx] = true;
        while let Some((x, y)) = stack.pop() {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
            let mut push = |nx: usize, ny: usize, stack: &mut Vec<(usize, usize)>| {
                if grid.get(nx, ny) && !visited[ny * w + nx] {
                    visited[ny * w + nx] = true;
                    stack.push((nx, ny));
                }
            };
            if x > 0 {
                push(x - 1, y, &mut stack);
            }
            if x + 1 < w {
                push(x + 1, y, &mut stack);
            }
            if y > 0 {
                push(x, y - 1, &mut stack);
            }
            if y + 1 < h {
                push(x, y + 1, &mut stack);
            }
        }
        out.push(Rect { x0, y0, x1, y1 });
    }
    out.sort_by_key(|r| std::cmp::Reverse(r.area()));
    out
}

/// Exact minimum number of disjoint, fully-set rectangles partitioning the
/// set cells — branch and bound with memoisation over the cell bitmask.
/// Only available for grids with at most 64 cells *total*
/// (`width * height <= 64`); larger grids return an error.
pub fn optimal_cover(grid: &Grid) -> Result<Vec<Rect>, ArcsError> {
    let w = grid.width();
    let h = grid.height();
    if w * h > 64 {
        return Err(ArcsError::InvalidConfig(format!(
            "optimal_cover supports at most 64 cells, grid has {}",
            w * h
        )));
    }
    let mut mask: u64 = 0;
    for (x, y) in grid.iter_set() {
        mask |= 1 << (y * w + x);
    }
    let mut memo: HashMap<u64, Vec<Rect>> = HashMap::new();
    Ok(solve(mask, w, h, &mut memo))
}

/// Minimum partition of `mask` into fully-set rectangles, fully memoised
/// (every reachable sub-mask is solved exactly once).
fn solve(mask: u64, w: usize, h: usize, memo: &mut HashMap<u64, Vec<Rect>>) -> Vec<Rect> {
    if mask == 0 {
        return Vec::new();
    }
    if let Some(cached) = memo.get(&mask) {
        return cached.clone();
    }

    // Anchor on the lowest set bit (first remaining cell in row-major
    // order): the rectangle covering it in any partition must have the
    // anchor as its top-left corner — cells above or to the left of the
    // anchor on its row/column would precede it in row-major order and
    // thus already be removed from the mask.
    let anchor = mask.trailing_zeros() as usize;
    let (ax, ay) = (anchor % w, anchor / w);
    let cell = |x: usize, y: usize| mask & (1 << (y * w + x)) != 0;

    let mut best: Option<Vec<Rect>> = None;
    // Enumerate all rectangles with top-left (ax, ay) whose cells are all
    // in `mask`.
    let mut max_x1 = w - 1;
    for y1 in ay..h {
        if !cell(ax, y1) {
            break;
        }
        // Shrink the right edge to the widest run valid on every row so far.
        let mut x1 = ax;
        while x1 < max_x1 && cell(x1 + 1, y1) {
            x1 += 1;
        }
        max_x1 = max_x1.min(x1);
        for x1 in ax..=max_x1 {
            let rect = Rect { x0: ax, y0: ay, x1, y1 };
            let mut rect_mask = 0u64;
            for (x, y) in rect.cells() {
                rect_mask |= 1 << (y * w + x);
            }
            let mut rest = solve(mask & !rect_mask, w, h, memo);
            rest.push(rect);
            if best.as_ref().is_none_or(|b| rest.len() < b.len()) {
                best = Some(rest);
            }
        }
    }
    let best = best.expect("anchor cell admits at least the 1x1 rectangle");
    memo.insert(mask, best.clone());
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitop::{self, BitOpConfig};

    #[test]
    fn components_of_disjoint_blocks() {
        let grid = Grid::parse(
            "
            ##..#
            ##..#
            .....
            ..#..
            ",
        )
        .unwrap();
        let comps = connected_components(&grid);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], Rect { x0: 0, y0: 0, x1: 1, y1: 1 });
        assert!(comps.contains(&Rect { x0: 4, y0: 0, x1: 4, y1: 1 }));
        assert!(comps.contains(&Rect { x0: 2, y0: 3, x1: 2, y1: 3 }));
    }

    #[test]
    fn components_bounding_box_overcovers_l_shape() {
        let grid = Grid::parse(
            "
            #..
            #..
            ###
            ",
        )
        .unwrap();
        let comps = connected_components(&grid);
        assert_eq!(comps.len(), 1);
        // The bbox covers 9 cells but only 5 are set: the over-covering
        // BitOp avoids.
        assert_eq!(comps[0].area(), 9);
        assert_eq!(grid.count_ones(), 5);
    }

    #[test]
    fn components_empty_grid() {
        let grid = Grid::new(4, 4).unwrap();
        assert!(connected_components(&grid).is_empty());
    }

    #[test]
    fn optimal_cover_single_rect() {
        let grid = Grid::parse(
            "
            .##.
            .##.
            ",
        )
        .unwrap();
        let cover = optimal_cover(&grid).unwrap();
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0], Rect { x0: 1, y0: 0, x1: 2, y1: 1 });
    }

    #[test]
    fn optimal_cover_l_shape_needs_two() {
        let grid = Grid::parse(
            "
            #..
            #..
            ###
            ",
        )
        .unwrap();
        let cover = optimal_cover(&grid).unwrap();
        assert_eq!(cover.len(), 2);
        let covered: usize = cover.iter().map(Rect::area).sum();
        assert_eq!(covered, 5);
    }

    #[test]
    fn optimal_cover_plus_shape_needs_three() {
        let grid = Grid::parse(
            "
            .#.
            ###
            .#.
            ",
        )
        .unwrap();
        let cover = optimal_cover(&grid).unwrap();
        assert_eq!(cover.len(), 3);
    }

    #[test]
    fn optimal_cover_empty_and_oversized() {
        let grid = Grid::new(5, 5).unwrap();
        assert!(optimal_cover(&grid).unwrap().is_empty());
        let big = Grid::new(9, 8).unwrap();
        assert!(optimal_cover(&big).is_err());
    }

    #[test]
    fn optimal_cover_is_a_disjoint_partition() {
        let grid = Grid::parse(
            "
            ###..##.
            .###.##.
            .###....
            ..##..#.
            ",
        )
        .unwrap();
        let cover = optimal_cover(&grid).unwrap();
        let covered: usize = cover.iter().map(Rect::area).sum();
        assert_eq!(covered, grid.count_ones());
        for (i, a) in cover.iter().enumerate() {
            assert!(grid.rect_is_full(*a));
            for b in &cover[i + 1..] {
                assert!(!a.overlaps(b));
            }
        }
    }

    #[test]
    fn bitop_matches_optimum_on_easy_grids() {
        for art in [
            "####\n####\n",
            "##..\n##..\n..##\n..##\n",
            "#.\n.#\n",
        ] {
            let grid = Grid::parse(art).unwrap();
            let greedy = bitop::cluster(&grid, &BitOpConfig::no_pruning()).unwrap();
            let optimal = optimal_cover(&grid).unwrap();
            assert_eq!(greedy.len(), optimal.len(), "grid:\n{art}");
        }
    }

    #[test]
    fn bitop_never_beats_the_oracle() {
        // Greedy can use more rectangles, never fewer.
        let grid = Grid::parse(
            "
            ###.
            .###
            ###.
            ",
        )
        .unwrap();
        let greedy = bitop::cluster(&grid, &BitOpConfig::no_pruning()).unwrap();
        let optimal = optimal_cover(&grid).unwrap();
        assert!(greedy.len() >= optimal.len());
    }
}
