//! Crash-safe durability: a per-tenant write-ahead append log plus
//! periodic [`BinArray`] checkpoints.
//!
//! The serving stack (PR 6/7) keeps every tenant in memory; this module
//! supplies the persistence layer under it. Durability is the classic
//! WAL contract: a row batch is written (and fsynced) to the log *before*
//! it is merged into the in-memory snapshot, so an acknowledged append
//! survives any crash, and a crash mid-write loses at most the
//! unacknowledged tail.
//!
//! # Log format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"ARCSWL\0" + version byte (1)
//! 8       8     start_seq, u64 LE — seq of the first record in this file
//! 16      ...   records
//! ```
//!
//! Each record:
//!
//! ```text
//! size  field
//! 4     body length, u32 LE (17 ..= MAX_RECORD_BODY)
//! n     body: kind (u8, 1 = append batch)
//!             seq (u64 LE, contiguous from the file's start_seq)
//!             feeder byte-offset (u64 LE, u64::MAX = none)
//!             payload (header-less CSV row batch, UTF-8)
//! 8     FNV-1a 64 checksum over the length prefix + body, u64 LE
//! ```
//!
//! # Recovery semantics
//!
//! [`replay`] scans the log front to back and returns the longest valid
//! prefix — it never panics on arbitrary bytes. The first invalid record
//! classifies the tail:
//!
//! * [`WalTail::Torn`] — the file ends mid-record (a crash during
//!   `write`). This is the *expected* crash artifact; [`WalWriter::recover`]
//!   heals it by truncating to the last whole record.
//! * [`WalTail::Corrupt`] — a checksum mismatch, bad length, unknown
//!   kind, or sequence gap strictly before end of file. This is bit rot
//!   or tampering, not a crash artifact; `recover` refuses to open the
//!   log and directs the operator to `arcs fsck --repair`.
//!
//! # Checkpoint ⇄ WAL epoch contract
//!
//! A checkpoint is the pair (`checkpoint.bin`, `checkpoint.meta`): a
//! PR-1 BinArray snapshot plus a small JSON document binding it to the
//! log. The invariants, enforced by [`load_checkpoint`] and the replay
//! path in `arcs-daemon`:
//!
//! 1. `meta.last_seq` is the seq of the last WAL record folded into the
//!    checkpointed array; `meta.epoch` is that array's serving epoch.
//! 2. Each WAL record advances the epoch by exactly one, so recovered
//!    epoch = `meta.epoch` + number of records replayed with
//!    `seq > meta.last_seq`.
//! 3. After a checkpoint commits (meta rename is the commit point), the
//!    log is reset to `start_seq = meta.last_seq + 1`. A crash between
//!    commit and reset is benign: replay skips records with
//!    `seq <= meta.last_seq`.
//! 4. `meta.array_checksum` must equal the loaded array's
//!    [`BinArray::checksum`]; a mismatch means the pair is torn and
//!    recovery must refuse.
//! 5. `meta.feeder_offset` is the CSV byte offset the feeder had durably
//!    consumed at `last_seq`; WAL records carry later offsets. The
//!    maximum over both is where a restarted feeder resumes, so it never
//!    re-reads (double-appends) acknowledged bytes.
//!
//! Both checkpoint files are written atomically (temp file + fsync +
//! rename + directory fsync); the meta is written *after* the array, so
//! an existing meta always refers to a fully-written array.
//!
//! # Failpoints
//!
//! `wal.write`, `wal.fsync`, `wal.checkpoint`, `wal.replay`, and
//! `wal.truncate` (see [`crate::faults`]) inject faults at each durability
//! boundary; the kill-and-recover chaos suite schedules them while
//! SIGKILLing daemon processes mid-append.

use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::binarray::{fnv1a64, BinArray};
use crate::error::ArcsError;
use crate::faults;
use crate::jsonio::{obj, Json};

/// Magic prefix of the log format; the trailing byte is the version.
pub const WAL_MAGIC: [u8; 8] = *b"ARCSWL\x00\x01";
/// Bytes of file header before the first record.
pub const WAL_HEADER_LEN: u64 = 16;
/// Fixed bytes of a record body before its payload (kind + seq + offset).
const BODY_PREFIX_LEN: usize = 1 + 8 + 8;
/// Largest accepted record body. The wire protocol caps append frames at
/// 8 MiB, so a length prefix beyond this is corruption, not data — and
/// the cap keeps a corrupt prefix from demanding an absurd allocation.
pub const MAX_RECORD_BODY: usize = 32 * 1024 * 1024;
/// Record kind: one validated row batch to merge.
const KIND_APPEND: u8 = 1;
/// On-disk encoding of "no feeder offset recorded".
const NO_OFFSET: u64 = u64::MAX;

fn checkpoint_err(message: impl Into<String>) -> ArcsError {
    ArcsError::Checkpoint { message: message.into() }
}

/// One durable append: a validated row batch, its log sequence number,
/// and (for feeder-driven appends) the CSV byte offset consumed by it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number, contiguous within a file.
    pub seq: u64,
    /// Feeder byte offset durably consumed once this record is applied.
    pub feeder_offset: Option<u64>,
    /// The header-less CSV row batch, exactly as validated before write.
    pub payload: Vec<u8>,
}

/// How [`replay`] classified the end of the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalTail {
    /// The file ends exactly at a record boundary.
    Clean,
    /// The file ends mid-record — the expected artifact of a crash during
    /// an append. Truncating to `valid_len` restores a consistent log.
    Torn {
        /// Byte length of the valid prefix.
        valid_len: u64,
        /// Bytes of partial record beyond it.
        dropped_bytes: u64,
    },
    /// A record failed validation (checksum, length, kind, or sequence)
    /// before end of file: bit rot rather than a torn write. Repair (via
    /// `arcs fsck --repair`) also truncates to `valid_len`, but the
    /// operator should know data beyond it is lost.
    Corrupt {
        /// Byte length of the valid prefix.
        valid_len: u64,
        /// Bytes beyond the valid prefix.
        dropped_bytes: u64,
        /// What failed on the first invalid record.
        reason: String,
    },
}

impl WalTail {
    /// `true` for a log that ends exactly at a record boundary.
    pub fn is_clean(&self) -> bool {
        matches!(self, WalTail::Clean)
    }

    /// The byte length of the valid prefix (the whole file when clean).
    pub fn valid_len(&self, file_len: u64) -> u64 {
        match self {
            WalTail::Clean => file_len,
            WalTail::Torn { valid_len, .. } | WalTail::Corrupt { valid_len, .. } => *valid_len,
        }
    }
}

/// The result of scanning a log: every record in the valid prefix plus
/// the tail classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// The file header's first sequence number.
    pub start_seq: u64,
    /// Records of the valid prefix, in sequence order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix.
    pub valid_len: u64,
    /// Sequence number the next append would receive.
    pub next_seq: u64,
    /// What the scan found past the valid prefix.
    pub tail: WalTail,
}

/// Reads exactly `buf.len()` bytes. `Ok(false)` = clean EOF before any
/// byte; an EOF partway through is reported as `Ok(true)` with `*short`
/// set (the caller treats it as a torn tail, never an error).
fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<(bool, bool)> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok((false, false)),
            Ok(0) => return Ok((true, true)),
            Ok(n) => filled += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(err),
        }
    }
    Ok((true, false))
}

/// Encodes one record exactly as [`WalWriter::append`] writes it: the
/// `u32` length prefix, the body (kind, seq, feeder offset, payload),
/// and the trailing FNV-1a-64 checksum. Replication ships these encoded
/// bytes verbatim so a standby re-verifies the same checksum the
/// primary's recovery path would.
pub fn encode_record(seq: u64, feeder_offset: Option<u64>, payload: &[u8]) -> Vec<u8> {
    let body_len = BODY_PREFIX_LEN + payload.len();
    let mut bytes = Vec::with_capacity(4 + body_len + 8);
    bytes.extend_from_slice(&(body_len as u32).to_le_bytes());
    bytes.push(KIND_APPEND);
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(&feeder_offset.unwrap_or(NO_OFFSET).to_le_bytes());
    bytes.extend_from_slice(payload);
    let crc = fnv1a64(&[&bytes]);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

/// Decodes one encoded record ([`encode_record`]'s output), verifying
/// the length prefix, the checksum, and the record kind — the same
/// validation [`replay`] applies on disk. `bytes` must hold exactly one
/// record; a short, long, or mangled buffer is a typed error, never a
/// panic. Sequence continuity is the caller's cursor to enforce.
pub fn decode_record(bytes: &[u8]) -> Result<WalRecord, ArcsError> {
    let bad = |what: String| checkpoint_err(format!("shipped WAL record: {what}"));
    if bytes.len() < 4 + BODY_PREFIX_LEN + 8 {
        return Err(bad(format!("torn: {} bytes is shorter than any record", bytes.len())));
    }
    let len_bytes: [u8; 4] = bytes[..4].try_into().expect("4-byte slice");
    let body_len = u32::from_le_bytes(len_bytes) as usize;
    if !(BODY_PREFIX_LEN..=MAX_RECORD_BODY).contains(&body_len) {
        return Err(bad(format!("record length {body_len} out of range")));
    }
    if bytes.len() != 4 + body_len + 8 {
        return Err(bad(format!(
            "torn: length prefix names {body_len} body bytes but {} were shipped",
            bytes.len().saturating_sub(4 + 8)
        )));
    }
    let body = &bytes[4..4 + body_len];
    let stored = u64::from_le_bytes(bytes[4 + body_len..].try_into().expect("8-byte slice"));
    let computed = fnv1a64(&[&len_bytes, body]);
    if stored != computed {
        return Err(bad(format!(
            "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        )));
    }
    if body[0] != KIND_APPEND {
        return Err(bad(format!("unknown record kind {}", body[0])));
    }
    let seq = u64::from_le_bytes(body[1..9].try_into().expect("8-byte slice"));
    let offset = u64::from_le_bytes(body[9..17].try_into().expect("8-byte slice"));
    Ok(WalRecord {
        seq,
        feeder_offset: (offset != NO_OFFSET).then_some(offset),
        payload: body[BODY_PREFIX_LEN..].to_vec(),
    })
}

/// Scans the log at `path`, returning the longest valid record prefix
/// and a classification of whatever follows it. Never panics on
/// arbitrary bytes; the only errors are genuine I/O failures and an
/// unreadable *file header* (without one, not even an empty prefix can
/// be attributed to a sequence range).
pub fn replay(path: &Path) -> Result<WalReplay, ArcsError> {
    faults::check("wal.replay")?;
    let file_len = std::fs::metadata(path)
        .map_err(|e| checkpoint_err(format!("cannot stat WAL {}: {e}", path.display())))?
        .len();
    // A zero-byte file is the artifact of a crash between file creation
    // and the header write: classify it Clean with no records rather
    // than erroring, so recovery and the shipper can handle it. (A file
    // that is short but *non-empty* still fails below — a few stray
    // bytes cannot be attributed to any sequence range.)
    if file_len == 0 {
        return Ok(WalReplay {
            start_seq: 0,
            records: Vec::new(),
            valid_len: 0,
            next_seq: 0,
            tail: WalTail::Clean,
        });
    }
    let mut reader = BufReader::new(
        File::open(path)
            .map_err(|e| checkpoint_err(format!("cannot open WAL {}: {e}", path.display())))?,
    );

    let mut header = [0u8; WAL_HEADER_LEN as usize];
    match read_exact_or_eof(&mut reader, &mut header) {
        Ok((true, false)) => {}
        Ok(_) => {
            return Err(checkpoint_err(format!(
                "WAL {} is shorter than its {WAL_HEADER_LEN}-byte header",
                path.display()
            )))
        }
        Err(e) => return Err(ArcsError::Io(e.to_string())),
    }
    if header[..7] != WAL_MAGIC[..7] {
        return Err(checkpoint_err(format!("{} is not a WAL (bad magic)", path.display())));
    }
    if header[7] != WAL_MAGIC[7] {
        return Err(checkpoint_err(format!(
            "unsupported WAL version {} (this build reads version {})",
            header[7], WAL_MAGIC[7]
        )));
    }
    let start_seq = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice"));

    let mut records = Vec::new();
    let mut valid_len = WAL_HEADER_LEN;
    let mut next_seq = start_seq;
    let torn = |valid_len: u64| WalTail::Torn {
        valid_len,
        dropped_bytes: file_len.saturating_sub(valid_len),
    };
    let corrupt = |valid_len: u64, reason: String| WalTail::Corrupt {
        valid_len,
        dropped_bytes: file_len.saturating_sub(valid_len),
        reason,
    };

    let tail = loop {
        let mut len_bytes = [0u8; 4];
        match read_exact_or_eof(&mut reader, &mut len_bytes) {
            Ok((false, _)) => break WalTail::Clean,
            Ok((true, true)) => break torn(valid_len),
            Ok((true, false)) => {}
            Err(e) => return Err(ArcsError::Io(e.to_string())),
        }
        let body_len = u32::from_le_bytes(len_bytes) as usize;
        if !(BODY_PREFIX_LEN..=MAX_RECORD_BODY).contains(&body_len) {
            break corrupt(valid_len, format!("record length {body_len} out of range"));
        }
        let mut rest = vec![0u8; body_len + 8];
        match read_exact_or_eof(&mut reader, &mut rest) {
            Ok((true, false)) => {}
            Ok(_) => break torn(valid_len),
            Err(e) => return Err(ArcsError::Io(e.to_string())),
        }
        let (body, crc_bytes) = rest.split_at(body_len);
        let stored = u64::from_le_bytes(crc_bytes.try_into().expect("8-byte slice"));
        let computed = fnv1a64(&[&len_bytes, body]);
        if stored != computed {
            break corrupt(
                valid_len,
                format!("record checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"),
            );
        }
        if body[0] != KIND_APPEND {
            break corrupt(valid_len, format!("unknown record kind {}", body[0]));
        }
        let seq = u64::from_le_bytes(body[1..9].try_into().expect("8-byte slice"));
        if seq != next_seq {
            break corrupt(valid_len, format!("sequence gap: expected {next_seq}, found {seq}"));
        }
        let offset = u64::from_le_bytes(body[9..17].try_into().expect("8-byte slice"));
        records.push(WalRecord {
            seq,
            feeder_offset: (offset != NO_OFFSET).then_some(offset),
            payload: body[BODY_PREFIX_LEN..].to_vec(),
        });
        next_seq += 1;
        valid_len += 4 + body_len as u64 + 8;
    };

    Ok(WalReplay { start_seq, records, valid_len, next_seq, tail })
}

/// A position in the log an append can be rolled back to (used when the
/// in-memory merge fails *after* the record was made durable — the log
/// must not replay a batch the snapshot never applied).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalMark {
    len: u64,
    next_seq: u64,
}

/// The append half of the log: owns the file handle, assigns contiguous
/// sequence numbers, and fsyncs before acknowledging.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    len: u64,
    next_seq: u64,
    /// Set when a failed append could not be rolled back: the on-disk
    /// tail is in an unknown state, so further appends are refused (the
    /// checksummed format keeps even that state *detectable*).
    poisoned: bool,
}

impl WalWriter {
    /// Creates (truncating any existing file) a fresh log whose first
    /// record will carry `start_seq`. The header is fsynced — and the
    /// directory entry with it — before this returns.
    pub fn create(path: &Path, start_seq: u64) -> Result<Self, ArcsError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&start_seq.to_le_bytes());
        file.write_all(&header)?;
        file.sync_all()?;
        if let Some(dir) = path.parent() {
            sync_dir(dir)?;
        }
        Ok(WalWriter { file, path: path.to_path_buf(), len: WAL_HEADER_LEN, next_seq: start_seq, poisoned: false })
    }

    /// Opens an existing log, healing a torn tail (the normal crash
    /// artifact) by truncating to the last whole record. A [`WalTail::
    /// Corrupt`] log is refused — mid-log bit rot needs an explicit
    /// `arcs fsck --repair` decision, not a silent discard.
    pub fn recover(path: &Path) -> Result<(Self, WalReplay), ArcsError> {
        let mut replayed = replay(path)?;
        // An empty file (crash between creation and the header write)
        // holds nothing to preserve: rewrite it as a fresh log at seq 1.
        // Callers pairing the log with a checkpoint reset it to
        // `last_seq + 1` before appending.
        if replayed.valid_len < WAL_HEADER_LEN {
            let writer = WalWriter::create(path, 1)?;
            replayed.start_seq = 1;
            replayed.next_seq = 1;
            replayed.valid_len = WAL_HEADER_LEN;
            return Ok((writer, replayed));
        }
        match &replayed.tail {
            WalTail::Clean | WalTail::Torn { .. } => {}
            WalTail::Corrupt { reason, dropped_bytes, .. } => {
                return Err(checkpoint_err(format!(
                    "WAL {} is corrupt ({reason}; {dropped_bytes} bytes past the valid prefix); \
                     run `arcs fsck --repair` to truncate it",
                    path.display()
                )))
            }
        }
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut writer = WalWriter {
            file,
            path: path.to_path_buf(),
            len: replayed.valid_len,
            next_seq: replayed.next_seq,
            poisoned: false,
        };
        if let WalTail::Torn { valid_len, .. } = replayed.tail {
            writer.file.set_len(valid_len)?;
            writer.file.sync_all()?;
        }
        writer.file.seek(SeekFrom::Start(writer.len))?;
        // The healed log is clean by construction; report the torn tail
        // to the caller through the replay value.
        replayed.valid_len = writer.len;
        Ok((writer, replayed))
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current byte length of the (valid) log.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == WAL_HEADER_LEN
    }

    /// Sequence number the next append will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The current position for a later [`rollback_to`](Self::rollback_to).
    pub fn mark(&self) -> WalMark {
        WalMark { len: self.len, next_seq: self.next_seq }
    }

    /// Durably appends one record: encode, write, fsync, acknowledge.
    /// Returns the record's sequence number. On any failure the partial
    /// record is rolled back (truncated) so the on-disk log still ends at
    /// a record boundary; if even the rollback fails the writer poisons
    /// itself and refuses further appends.
    pub fn append(&mut self, payload: &[u8], feeder_offset: Option<u64>) -> Result<u64, ArcsError> {
        if self.poisoned {
            return Err(ArcsError::Io(format!(
                "WAL {} writer is poisoned by an earlier failed rollback",
                self.path.display()
            )));
        }
        if payload.len() > MAX_RECORD_BODY - BODY_PREFIX_LEN {
            return Err(ArcsError::InvalidConfig(format!(
                "WAL record payload of {} bytes exceeds the {MAX_RECORD_BODY}-byte body cap",
                payload.len()
            )));
        }
        let seq = self.next_seq;
        let result = faults::check("wal.write")
            .and_then(|()| {
                let bytes = encode_record(seq, feeder_offset, payload);
                self.file.write_all(&bytes)?;
                faults::check("wal.fsync")?;
                self.file.sync_data()?;
                Ok(bytes.len() as u64)
            });
        match result {
            Ok(written) => {
                self.len += written;
                self.next_seq += 1;
                Ok(seq)
            }
            Err(err) => {
                // Drop whatever partial bytes the failed attempt left.
                if self.truncate_to(self.len).is_err() {
                    self.poisoned = true;
                }
                Err(err)
            }
        }
    }

    /// Truncates the log back to `mark`, dropping records appended after
    /// it. Used to undo a durable write whose in-memory merge then
    /// failed: memory and disk must agree on which batches exist.
    pub fn rollback_to(&mut self, mark: WalMark) -> Result<(), ArcsError> {
        if mark.len > self.len {
            return Err(ArcsError::InvalidConfig(
                "cannot roll a WAL forward: mark is past the current end".into(),
            ));
        }
        self.truncate_to(mark.len)?;
        self.len = mark.len;
        self.next_seq = mark.next_seq;
        Ok(())
    }

    fn truncate_to(&mut self, len: u64) -> Result<(), ArcsError> {
        self.file.set_len(len)?;
        self.file.sync_data()?;
        self.file.seek(SeekFrom::Start(len))?;
        Ok(())
    }

    /// Resets the log to empty with a new `start_seq` — the post-
    /// checkpoint truncation. Atomic via a sibling temp file renamed over
    /// the log: a crash at any instruction leaves either the old log
    /// (whose records the fresh checkpoint makes redundant — replay skips
    /// `seq <= last_seq`) or the new empty one.
    pub fn reset(&mut self, start_seq: u64) -> Result<(), ArcsError> {
        faults::check("wal.truncate")?;
        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(".reset");
        let tmp = PathBuf::from(tmp);
        {
            let mut file = File::create(&tmp)?;
            let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
            header.extend_from_slice(&WAL_MAGIC);
            header.extend_from_slice(&start_seq.to_le_bytes());
            file.write_all(&header)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            sync_dir(dir)?;
        }
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::Start(WAL_HEADER_LEN))?;
        self.file = file;
        self.len = WAL_HEADER_LEN;
        self.next_seq = start_seq;
        self.poisoned = false;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// The JSON sidecar binding a checkpointed array to the log (see the
/// module docs for the invariants it carries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Serving epoch of the checkpointed array.
    pub epoch: u64,
    /// Seq of the last WAL record folded into the array (0 = none yet).
    pub last_seq: u64,
    /// Feeder byte offset durably consumed as of `last_seq`.
    pub feeder_offset: Option<u64>,
    /// [`BinArray::checksum`] of the checkpointed array.
    pub array_checksum: u64,
}

impl CheckpointMeta {
    /// Serialises to the sidecar document.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("version", Json::Num(1.0)),
            ("epoch", Json::Num(self.epoch as f64)),
            ("last_seq", Json::Num(self.last_seq as f64)),
            (
                "feeder_offset",
                match self.feeder_offset {
                    Some(offset) => Json::Num(offset as f64),
                    None => Json::Null,
                },
            ),
            // The checksum exceeds f64's exact-integer range; ship it as
            // a hex string so the round trip is lossless.
            ("array_checksum", Json::Str(format!("{:#018x}", self.array_checksum))),
        ])
    }

    /// Parses a sidecar document written by [`to_json`](Self::to_json).
    pub fn from_json(json: &Json) -> Result<Self, ArcsError> {
        let bad = |what: &str| checkpoint_err(format!("checkpoint meta: {what}"));
        match json.get("version").and_then(Json::as_u64) {
            Some(1) => {}
            Some(v) => return Err(bad(&format!("unsupported version {v}"))),
            None => return Err(bad("missing version")),
        }
        let epoch = json.get("epoch").and_then(Json::as_u64).ok_or_else(|| bad("missing epoch"))?;
        let last_seq =
            json.get("last_seq").and_then(Json::as_u64).ok_or_else(|| bad("missing last_seq"))?;
        let feeder_offset = match json.get("feeder_offset") {
            None | Some(Json::Null) => None,
            Some(value) => {
                Some(value.as_u64().ok_or_else(|| bad("feeder_offset must be a number"))?)
            }
        };
        let checksum_text = json
            .get("array_checksum")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing array_checksum"))?;
        let array_checksum = checksum_text
            .strip_prefix("0x")
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .ok_or_else(|| bad("array_checksum must be an 0x-prefixed hex string"))?;
        Ok(CheckpointMeta { epoch, last_seq, feeder_offset, array_checksum })
    }
}

/// Writes `bytes` to `path` atomically: temp file, fsync, rename, then
/// directory fsync, so a crash at any instruction leaves either the old
/// file or the new one — never a hybrid.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), ArcsError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        sync_dir(dir)?;
    }
    Ok(())
}

/// Persists a checkpoint: the array snapshot first, the meta sidecar
/// second. The meta rename is the commit point — an existing meta always
/// refers to a fully-written, checksummed array.
pub fn save_checkpoint(
    bin_path: &Path,
    meta_path: &Path,
    array: &BinArray,
    meta: &CheckpointMeta,
) -> Result<(), ArcsError> {
    faults::check("wal.checkpoint")?;
    let mut bytes = Vec::with_capacity(array.memory_bytes() + 64);
    array.write_to(&mut bytes)?;
    write_atomic(bin_path, &bytes)?;
    write_atomic(meta_path, meta.to_json().to_string().as_bytes())?;
    Ok(())
}

/// Loads a checkpoint pair. `Ok(None)` when no meta exists (a fresh
/// directory); a meta whose array is missing, unreadable, or whose
/// checksum disagrees is a typed [`ArcsError::Checkpoint`] — the pair is
/// torn and must not be served.
pub fn load_checkpoint(
    bin_path: &Path,
    meta_path: &Path,
) -> Result<Option<(CheckpointMeta, BinArray)>, ArcsError> {
    let text = match std::fs::read_to_string(meta_path) {
        Ok(text) => text,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(ArcsError::Io(err.to_string())),
    };
    let json = crate::jsonio::parse(&text)
        .map_err(|err| checkpoint_err(format!("checkpoint meta is not JSON: {err}")))?;
    let meta = CheckpointMeta::from_json(&json)?;
    let mut reader = BufReader::new(File::open(bin_path).map_err(|e| {
        checkpoint_err(format!(
            "checkpoint meta exists but the array {} cannot be opened: {e}",
            bin_path.display()
        ))
    })?);
    let array = BinArray::read_from(&mut reader)?;
    let checksum = array.checksum();
    if checksum != meta.array_checksum {
        return Err(checkpoint_err(format!(
            "checkpoint array checksum {checksum:#018x} disagrees with meta {:#018x}",
            meta.array_checksum
        )));
    }
    Ok(Some((meta, array)))
}

/// Fsyncs a directory so a just-renamed entry survives power loss. A
/// no-op on platforms where directories cannot be opened.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("arcs-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn append_some(writer: &mut WalWriter, batches: &[(&str, Option<u64>)]) {
        for (payload, offset) in batches {
            writer.append(payload.as_bytes(), *offset).unwrap();
        }
    }

    #[test]
    fn append_and_replay_round_trip() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("wal.log");
        let mut writer = WalWriter::create(&path, 1).unwrap();
        append_some(&mut writer, &[("1,2,A\n", None), ("3,4,B\n", Some(42)), ("", None)]);
        assert_eq!(writer.next_seq(), 4);

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.start_seq, 1);
        assert_eq!(replayed.next_seq, 4);
        assert!(replayed.tail.is_clean());
        assert_eq!(replayed.records.len(), 3);
        assert_eq!(replayed.records[0].payload, b"1,2,A\n");
        assert_eq!(replayed.records[0].feeder_offset, None);
        assert_eq!(replayed.records[1].seq, 2);
        assert_eq!(replayed.records[1].feeder_offset, Some(42));
        assert_eq!(replayed.records[2].payload, b"");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_at_every_byte_recovers_a_valid_prefix() {
        let dir = temp_dir("torn");
        let path = dir.join("wal.log");
        let mut writer = WalWriter::create(&path, 1).unwrap();
        append_some(&mut writer, &[("alpha,1\n", None), ("bravo,2\n", Some(7))]);
        let full = std::fs::read(&path).unwrap();
        let record_boundaries: Vec<u64> = {
            let replayed = replay(&path).unwrap();
            let mut ends = vec![WAL_HEADER_LEN];
            let mut len = WAL_HEADER_LEN;
            for record in &replayed.records {
                len += 4 + (BODY_PREFIX_LEN + record.payload.len()) as u64 + 8;
                ends.push(len);
            }
            ends
        };

        let cut_path = dir.join("cut.log");
        for cut in WAL_HEADER_LEN as usize..full.len() {
            std::fs::write(&cut_path, &full[..cut]).unwrap();
            let replayed = replay(&cut_path).unwrap();
            let boundary = record_boundaries
                .iter()
                .filter(|&&b| b <= cut as u64)
                .max()
                .copied()
                .unwrap();
            assert_eq!(replayed.valid_len, boundary, "cut at {cut}");
            if record_boundaries.contains(&(cut as u64)) {
                assert!(replayed.tail.is_clean());
            } else {
                assert!(
                    matches!(replayed.tail, WalTail::Torn { .. }),
                    "cut at {cut}: {:?}",
                    replayed.tail
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flips_classify_as_corrupt_and_keep_the_prefix() {
        let dir = temp_dir("flip");
        let path = dir.join("wal.log");
        let mut writer = WalWriter::create(&path, 1).unwrap();
        append_some(&mut writer, &[("first,1\n", None), ("second,2\n", None)]);
        let full = std::fs::read(&path).unwrap();
        let first_record_end = replay(&path).unwrap().valid_len as usize
            - (4 + BODY_PREFIX_LEN + "second,2\n".len() + 8);

        // Flip a byte inside the *second* record: the first must survive.
        let mut flipped = full.clone();
        let target = first_record_end + 10;
        flipped[target] ^= 0x40;
        let flip_path = dir.join("flip.log");
        std::fs::write(&flip_path, &flipped).unwrap();
        let replayed = replay(&flip_path).unwrap();
        assert_eq!(replayed.records.len(), 1, "first record must survive");
        assert_eq!(replayed.records[0].payload, b"first,1\n");
        assert!(matches!(replayed.tail, WalTail::Corrupt { .. }), "{:?}", replayed.tail);

        // recover() refuses corrupt logs, pointing at fsck.
        let err = WalWriter::recover(&flip_path).unwrap_err();
        assert!(err.to_string().contains("fsck"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_heals_torn_tails_and_appends_continue() {
        let dir = temp_dir("heal");
        let path = dir.join("wal.log");
        let mut writer = WalWriter::create(&path, 5).unwrap();
        append_some(&mut writer, &[("a,1\n", None)]);
        let keep = writer.len();
        append_some(&mut writer, &[("b,2\n", None)]);
        drop(writer);

        // Simulate a crash mid-write of the second record.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..keep as usize + 3]).unwrap();

        let (mut writer, replayed) = WalWriter::recover(&path).unwrap();
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.records[0].seq, 5);
        assert!(matches!(replayed.tail, WalTail::Torn { dropped_bytes: 3, .. }));
        assert_eq!(writer.next_seq(), 6);

        // The healed log accepts appends and replays cleanly.
        append_some(&mut writer, &[("c,3\n", None)]);
        let replayed = replay(&path).unwrap();
        assert!(replayed.tail.is_clean());
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.records[1].seq, 6);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rollback_drops_the_unmerged_record() {
        let dir = temp_dir("rollback");
        let path = dir.join("wal.log");
        let mut writer = WalWriter::create(&path, 1).unwrap();
        append_some(&mut writer, &[("keep,1\n", None)]);
        let mark = writer.mark();
        append_some(&mut writer, &[("drop,2\n", None)]);
        writer.rollback_to(mark).unwrap();
        assert_eq!(writer.next_seq(), 2);

        // The dropped seq is reused — the log stays contiguous.
        append_some(&mut writer, &[("redo,2\n", None)]);
        let replayed = replay(&path).unwrap();
        assert!(replayed.tail.is_clean());
        assert_eq!(replayed.records.len(), 2);
        assert_eq!(replayed.records[1].payload, b"redo,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_starts_a_fresh_log_at_the_next_seq() {
        let dir = temp_dir("reset");
        let path = dir.join("wal.log");
        let mut writer = WalWriter::create(&path, 1).unwrap();
        append_some(&mut writer, &[("a,1\n", None), ("b,2\n", None)]);
        writer.reset(3).unwrap();
        assert!(writer.is_empty());
        append_some(&mut writer, &[("c,3\n", None)]);

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.start_seq, 3);
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.records[0].seq, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn headerless_or_foreign_files_are_typed_errors() {
        let dir = temp_dir("badheader");
        let short = dir.join("short.log");
        std::fs::write(&short, b"ARCS").unwrap();
        assert!(matches!(replay(&short), Err(ArcsError::Checkpoint { .. })));

        let foreign = dir.join("foreign.log");
        std::fs::write(&foreign, b"NOTAWAL!________").unwrap();
        let err = replay(&foreign).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        let future = dir.join("future.log");
        let mut bytes = WAL_MAGIC.to_vec();
        bytes[7] = 9;
        bytes.extend_from_slice(&1u64.to_le_bytes());
        std::fs::write(&future, &bytes).unwrap();
        let err = replay(&future).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_only_and_empty_logs_classify_clean() {
        let dir = temp_dir("edge-clean");

        // Header-only (zero-record) log: the shape right after create()
        // or reset() — Clean, no records, next_seq = start_seq.
        let header_only = dir.join("header-only.log");
        WalWriter::create(&header_only, 7).unwrap();
        let replayed = replay(&header_only).unwrap();
        assert!(replayed.tail.is_clean());
        assert!(replayed.records.is_empty());
        assert_eq!((replayed.start_seq, replayed.next_seq), (7, 7));
        assert_eq!(replayed.valid_len, WAL_HEADER_LEN);

        // A zero-byte file (crash between creation and the header
        // write): Clean with no records, never a panic or an error.
        let empty = dir.join("empty.log");
        std::fs::write(&empty, b"").unwrap();
        let replayed = replay(&empty).unwrap();
        assert!(replayed.tail.is_clean());
        assert!(replayed.records.is_empty());
        assert_eq!(replayed.valid_len, 0);

        // recover() rewrites the missing header; appends then work.
        let (mut writer, _) = WalWriter::recover(&empty).unwrap();
        assert_eq!(writer.next_seq(), 1);
        append_some(&mut writer, &[("a,1\n", None)]);
        let replayed = replay(&empty).unwrap();
        assert!(replayed.tail.is_clean());
        assert_eq!(replayed.records.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn first_record_at_a_prior_truncate_point_is_clean() {
        let dir = temp_dir("edge-truncate");
        let path = dir.join("wal.log");

        // Fill a log, checkpoint-style reset (the truncate point), then
        // append: the first surviving record starts exactly where the
        // reset left the log.
        let mut writer = WalWriter::create(&path, 1).unwrap();
        append_some(&mut writer, &[("a,1\n", None), ("b,2\n", None), ("c,3\n", None)]);
        writer.reset(4).unwrap();
        append_some(&mut writer, &[("d,4\n", None)]);
        drop(writer);

        let replayed = replay(&path).unwrap();
        assert!(replayed.tail.is_clean());
        assert_eq!(replayed.start_seq, 4);
        assert_eq!(replayed.records.len(), 1);
        assert_eq!(replayed.records[0].seq, 4);
        assert_eq!(replayed.records[0].payload, b"d,4\n");

        // The same shape through recover(): no healing needed.
        let (writer, replayed) = WalWriter::recover(&path).unwrap();
        assert!(replayed.tail.is_clean());
        assert_eq!(writer.next_seq(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shipped_records_round_trip_and_mangling_is_detected() {
        let bytes = encode_record(42, Some(17), b"x,y,A\n");
        let record = decode_record(&bytes).unwrap();
        assert_eq!(record.seq, 42);
        assert_eq!(record.feeder_offset, Some(17));
        assert_eq!(record.payload, b"x,y,A\n");

        // Torn short, torn long, and bit-flipped ships are all typed
        // errors — a standby never applies a damaged record.
        assert!(decode_record(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_record(&long).is_err());
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x10;
            assert!(decode_record(&flipped).is_err(), "flip at byte {i} went undetected");
        }
        assert!(decode_record(b"").is_err());
    }

    #[test]
    fn checkpoint_meta_round_trips() {
        for meta in [
            CheckpointMeta { epoch: 0, last_seq: 0, feeder_offset: None, array_checksum: 7 },
            CheckpointMeta {
                epoch: 12,
                last_seq: 97,
                feeder_offset: Some(1 << 40),
                array_checksum: u64::MAX,
            },
        ] {
            let text = meta.to_json().to_string();
            let back = CheckpointMeta::from_json(&crate::jsonio::parse(&text).unwrap()).unwrap();
            assert_eq!(back, meta, "{text}");
        }
        assert!(CheckpointMeta::from_json(&crate::jsonio::parse("{}").unwrap()).is_err());
    }

    #[test]
    fn checkpoint_save_load_verifies_the_pair() {
        let dir = temp_dir("checkpoint");
        let bin = dir.join("checkpoint.bin");
        let meta_path = dir.join("checkpoint.meta");
        assert_eq!(load_checkpoint(&bin, &meta_path).unwrap(), None);

        let mut array = BinArray::new(4, 4, 2).unwrap();
        for i in 0..32u32 {
            array.add((i % 4) as usize, (i as usize / 4) % 4, i % 2);
        }
        let meta = CheckpointMeta {
            epoch: 3,
            last_seq: 9,
            feeder_offset: Some(128),
            array_checksum: array.checksum(),
        };
        save_checkpoint(&bin, &meta_path, &array, &meta).unwrap();
        let (back_meta, back_array) = load_checkpoint(&bin, &meta_path).unwrap().unwrap();
        assert_eq!(back_meta, meta);
        assert_eq!(back_array, array);

        // A meta pointing at a mismatched array is a torn pair.
        let other = BinArray::new(4, 4, 2).unwrap();
        let mut bytes = Vec::new();
        other.write_to(&mut bytes).unwrap();
        std::fs::write(&bin, &bytes).unwrap();
        assert!(matches!(
            load_checkpoint(&bin, &meta_path),
            Err(ArcsError::Checkpoint { .. })
        ));

        // A meta without its array is refused, not treated as fresh.
        std::fs::remove_file(&bin).unwrap();
        assert!(load_checkpoint(&bin, &meta_path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_payloads_are_refused_before_touching_disk() {
        let dir = temp_dir("oversize");
        let path = dir.join("wal.log");
        let mut writer = WalWriter::create(&path, 1).unwrap();
        let before = writer.len();
        let huge = vec![b'x'; MAX_RECORD_BODY];
        assert!(writer.append(&huge, None).is_err());
        assert_eq!(writer.len(), before);
        std::fs::remove_dir_all(&dir).ok();
    }
}
