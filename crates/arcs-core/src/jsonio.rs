//! Minimal std-only JSON reader/writer for the wire protocol.
//!
//! The daemon's request schema (see [`crate::request`]) travels as JSON
//! inside length-prefixed frames, and the container has no network access
//! to pull in `serde`, so this module hand-rolls the small JSON subset the
//! wire needs:
//!
//! - a [`Json`] value tree (null / bool / f64 / string / array / object
//!   with insertion-ordered keys),
//! - a recursive-descent [`parse`] that is depth-limited and returns a
//!   typed [`JsonError`] on any malformed input — it never panics, which
//!   the wire-protocol proptests depend on,
//! - a writer ([`Json::to_string`]) that emits numbers with Rust's
//!   shortest round-trip float formatting, so every finite `f64` survives
//!   a serialize → parse cycle bit-identically. Bit-exact number transport
//!   is what lets the daemon end-to-end test compare wire responses
//!   against the in-process [`crate::serve::Server`] oracle with `==`.
//!
//! Non-finite floats (`NaN`, `±inf`) have no JSON representation; the
//! writer emits `null` for them, and the pipeline never produces them in
//! wire-visible fields.

use std::fmt;

/// Maximum nesting depth [`parse`] accepts before rejecting the document.
///
/// Wire payloads are a few levels deep at most; the limit exists so a
/// hostile frame full of `[[[[…` cannot overflow the parser's stack.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
///
/// Objects keep their keys in insertion order (a `Vec` of pairs, not a
/// map): canonical encodings such as [`crate::serve::ClusterSpec`]'s cache
/// token rely on a stable field order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`parse`] on malformed input.
///
/// Carries the byte offset where parsing failed and a static description
/// of what was wrong — enough for the daemon to surface a typed
/// `PROTOCOL` error naming the offending position.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Looks up a key in an object value; `None` for missing keys or
    /// non-object values.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a number that is a non-negative
    /// integer exactly representable in an `f64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a `usize` (via [`Json::as_u64`]).
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a bool if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// `true` if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

}

/// Serializes the value to compact JSON text (no whitespace) via
/// `to_string`.
///
/// Finite numbers use Rust's shortest round-trip formatting; integral
/// values print without a fractional part (`3`, not `3.0`), and both
/// forms parse back to the identical `f64`. Non-finite numbers emit
/// `null`.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

/// Convenience constructor: a JSON object from key/value pairs.
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_value(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => write_number(*n, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (key, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's float Display is the shortest decimal string that parses back
    // to the same bits, and it never uses exponent notation, so the output
    // is always valid JSON.
    let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document from text.
///
/// Accepts exactly one top-level value (trailing whitespace allowed,
/// trailing garbage rejected). Never panics: every malformed input —
/// truncated, over-deep, bad escapes, invalid UTF-16 surrogates, trailing
/// bytes — produces a [`JsonError`] with the failing byte offset.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, text: &'static str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Copy one complete UTF-8 scalar; the input is a &str
                    // so boundaries are always valid.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xC0) == 0x80
                    {
                        self.pos += 1;
                    }
                    let slice = &self.bytes[start..self.pos];
                    out.push_str(std::str::from_utf8(slice).map_err(|_| JsonError {
                        offset: start,
                        message: "invalid UTF-8 in string",
                    })?);
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (the `\u` itself already
    /// consumed), combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            Err(self.err("unpaired high surrogate"))
        } else if (0xDC00..0xE000).contains(&hi) {
            Err(self.err("unpaired low surrogate"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in unicode escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one or more digits, no leading zeros beyond "0".
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number token is ASCII");
        let n: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            message: "number out of range",
        })?;
        if !n.is_finite() {
            return Err(JsonError { offset: start, message: "number out of range" });
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structures() {
        let doc = obj(vec![
            ("op", Json::Str("query".into())),
            ("support", Json::Num(0.017_345_678_912_345)),
            ("count", Json::Num(42.0)),
            ("neg", Json::Num(-0.0)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::Num(1.0), Json::Str("a\"b\\c\nd".into())])),
        ]);
        let text = doc.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn floats_survive_bit_identically() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            -2.2250738585072014e-308,
            // The f64 immediately below 0.3: needs all 17 digits.
            f64::from_bits(0.3f64.to_bits() - 1),
            1e15 + 1.0,
        ] {
            let text = Json::Num(x).to_string();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            "", "{", "}", "[1,", "[1 2]", "{\"a\":}", "{\"a\" 1}", "{a:1}",
            "nul", "tru", "01", "1.", "1e", "-", "\"abc", "\"\\x\"",
            "\"\\u12\"", "\"\\ud800\"", "\"\\ud800\\u0041\"", "1 2",
            "[\"\u{1}\"]", "1e999",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn accepts_nested_up_to_limit_and_rejects_beyond() {
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok());
        let deep = format!("{}1{}", "[".repeat(MAX_DEPTH + 2), "]".repeat(MAX_DEPTH + 2));
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn surrogate_pairs_and_escapes_decode() {
        let v = parse(r#""\ud83d\ude00 \u0041\t/""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F600} A\t/");
    }

    #[test]
    fn object_lookup_and_typed_accessors() {
        let v = parse(r#"{"n": 3, "s": "x", "b": false, "a": [1], "z": null}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_usize), Some(3));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert!(v.get("z").unwrap().is_null());
        assert!(v.get("missing").is_none());
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
