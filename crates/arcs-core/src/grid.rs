//! The bitmap grid (paper §3.2–3.3): one bit per `(x, y)` cell.
//!
//! Rows are packed into `u64` words so BitOp's row combination is literally
//! the paper's "arithmetic registers, bitwise AND and bit-shift machine
//! instructions". A 1000×1000 grid is ~122 KB and trivially memory-resident
//! as the paper assumes.

// Public-API paths must fail with typed errors, never panic.
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

use crate::cluster::Rect;
use crate::error::ArcsError;

/// A fixed-size 2-D bitmap with word-packed rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    width: usize,
    height: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl Grid {
    /// Creates an empty `width × height` grid.
    pub fn new(width: usize, height: usize) -> Result<Self, ArcsError> {
        if width == 0 || height == 0 {
            return Err(ArcsError::InvalidConfig(format!(
                "grid dimensions must be positive, got {width} x {height}"
            )));
        }
        let words_per_row = width.div_ceil(64);
        let words = words_per_row.checked_mul(height).ok_or(ArcsError::GridTooLarge {
            nx: width,
            ny: height,
            nseg: 0,
        })?;
        let mut bits = Vec::new();
        bits.try_reserve_exact(words).map_err(|_| ArcsError::AllocationFailed {
            what: format!("{words} grid words"),
        })?;
        bits.resize(words, 0);
        Ok(Grid {
            width,
            height,
            words_per_row,
            bits,
        })
    }

    /// Test-only: a zero-height grid, impossible through the validated
    /// constructors. Exists so the parallel-enumeration degenerate-grid
    /// guard can be exercised (a zero height used to clamp the stripe
    /// worker count to zero and divide by zero).
    #[cfg(test)]
    pub(crate) fn degenerate_zero_height(width: usize) -> Self {
        Grid {
            width,
            height: 0,
            words_per_row: width.div_ceil(64),
            bits: Vec::new(),
        }
    }

    /// Builds a grid from an iterator of set cells.
    pub fn from_cells<I>(width: usize, height: usize, cells: I) -> Result<Self, ArcsError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut grid = Grid::new(width, height)?;
        for (x, y) in cells {
            grid.try_set(x, y)?;
        }
        Ok(grid)
    }

    /// Parses a grid from rows of `#` (set) and `.` (unset) characters —
    /// handy for tests and docs. Row 0 of the grid is the *first* line.
    pub fn parse(art: &str) -> Result<Self, ArcsError> {
        let lines: Vec<&str> = art
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        let height = lines.len();
        let width = lines.first().map_or(0, |l| l.chars().count());
        let mut grid = Grid::new(width, height)?;
        for (y, line) in lines.iter().enumerate() {
            if line.chars().count() != width {
                return Err(ArcsError::InvalidConfig(format!(
                    "ragged grid art: row {y} has {} cells, expected {width}",
                    line.chars().count()
                )));
            }
            for (x, ch) in line.chars().enumerate() {
                match ch {
                    '#' => grid.set(x, y),
                    '.' => {}
                    other => {
                        return Err(ArcsError::InvalidConfig(format!(
                            "unexpected grid art character `{other}`"
                        )))
                    }
                }
            }
        }
        Ok(grid)
    }

    /// Grid width in cells.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of `u64` words per row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    #[inline]
    fn index(&self, x: usize, y: usize) -> (usize, u64) {
        let word = y * self.words_per_row + x / 64;
        let mask = 1u64 << (x % 64);
        (word, mask)
    }

    /// Sets the bit at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize) {
        debug_assert!(x < self.width && y < self.height);
        let (word, mask) = self.index(x, y);
        self.bits[word] |= mask;
    }

    /// Clears the bit at `(x, y)`.
    #[inline]
    pub fn clear(&mut self, x: usize, y: usize) {
        debug_assert!(x < self.width && y < self.height);
        let (word, mask) = self.index(x, y);
        self.bits[word] &= !mask;
    }

    /// Clears every bit, keeping the allocation — lets hot loops reuse one
    /// grid buffer instead of reallocating per call.
    pub fn reset(&mut self) {
        self.bits.fill(0);
    }

    /// Checked set.
    pub fn try_set(&mut self, x: usize, y: usize) -> Result<(), ArcsError> {
        if x >= self.width || y >= self.height {
            return Err(ArcsError::OutOfBounds {
                what: format!("cell ({x}, {y}) in {}x{} grid", self.width, self.height),
            });
        }
        self.set(x, y);
        Ok(())
    }

    /// Whether the bit at `(x, y)` is set.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> bool {
        debug_assert!(x < self.width && y < self.height);
        let (word, mask) = self.index(x, y);
        self.bits[word] & mask != 0
    }

    /// The packed words of row `y`.
    #[inline]
    pub fn row(&self, y: usize) -> &[u64] {
        debug_assert!(y < self.height);
        let start = y * self.words_per_row;
        &self.bits[start..start + self.words_per_row]
    }

    /// Mutable packed words of row `y` — for word-level writers (the
    /// smoothing kernel). Writers must keep the grid invariant that bits
    /// at or beyond `width` in the last word stay zero (see
    /// [`tail_mask`](Grid::tail_mask)).
    #[inline]
    pub(crate) fn row_mut(&mut self, y: usize) -> &mut [u64] {
        debug_assert!(y < self.height);
        let start = y * self.words_per_row;
        &mut self.bits[start..start + self.words_per_row]
    }

    /// Mask of the valid bits in the *last* word of each row (all ones
    /// when the width is a multiple of 64).
    #[inline]
    pub(crate) fn tail_mask(&self) -> u64 {
        let r = self.width % 64;
        if r == 0 {
            !0
        } else {
            (1u64 << r) - 1
        }
    }

    /// Number of set bits in the whole grid.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Sets every cell in `rect` (inclusive bounds).
    pub fn set_rect(&mut self, rect: Rect) {
        debug_assert!(rect.x1 < self.width && rect.y1 < self.height);
        for y in rect.y0..=rect.y1 {
            for x in rect.x0..=rect.x1 {
                self.set(x, y);
            }
        }
    }

    /// Clears every cell in `rect` (inclusive bounds). Used by the greedy
    /// BitOp loop after a cluster is selected.
    pub fn clear_rect(&mut self, rect: Rect) {
        debug_assert!(rect.x1 < self.width && rect.y1 < self.height);
        for y in rect.y0..=rect.y1 {
            for x in rect.x0..=rect.x1 {
                self.clear(x, y);
            }
        }
    }

    /// Whether every cell of `rect` is set.
    pub fn rect_is_full(&self, rect: Rect) -> bool {
        (rect.y0..=rect.y1).all(|y| (rect.x0..=rect.x1).all(|x| self.get(x, y)))
    }

    /// Iterates over all set cells as `(x, y)`, row-major.
    pub fn iter_set(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.height).flat_map(move |y| {
            self.row(y).iter().enumerate().flat_map(move |(wi, &word)| {
                BitIter::new(word).map(move |b| (wi * 64 + b, y))
            })
        })
    }
}

/// Iterator over the set-bit positions of a single `u64`.
struct BitIter {
    word: u64,
}

impl BitIter {
    fn new(word: u64) -> Self {
        BitIter { word }
    }
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(b)
    }
}

/// Extracts the maximal runs of consecutive set bits from a packed word
/// mask of `width` bits, calling `f(start_x, end_x)` (inclusive) per run.
/// This is BitOp's `process_row` primitive.
///
/// Both run *lengths* and the zero gaps between runs are skipped with one
/// `trailing_zeros` each, so the cost is proportional to the number of
/// runs, not the number of bits — the bit-sliced treatment the smoothing
/// kernel got in its word-parallel rewrite. The bit-at-a-time
/// formulation is kept as [`for_each_run_reference`] and pinned
/// equivalent by unit tests and a proptest.
pub fn for_each_run(words: &[u64], width: usize, mut f: impl FnMut(usize, usize)) {
    let mut run_start: Option<usize> = None;
    for (wi, &word) in words.iter().enumerate() {
        let base = wi * 64;
        if base >= width {
            break;
        }
        let bits_in_word = (width - base).min(64);
        let mut w = word;
        if bits_in_word < 64 {
            w &= (1u64 << bits_in_word) - 1;
        }
        // A run carried in from the previous word ends here if bit 0 is
        // clear; if set, the first run below resumes it.
        if w & 1 == 0 {
            if let Some(carried) = run_start.take() {
                f(carried, base - 1);
            }
        }
        let mut offset = 0usize;
        while offset < bits_in_word {
            let rest = w >> offset;
            if rest == 0 {
                break; // no set bits left in this word
            }
            // One tz to skip the zero gap, one to measure the run.
            let start_bit = offset + rest.trailing_zeros() as usize;
            let ones = (!w >> start_bit).trailing_zeros() as usize;
            let run_end = start_bit + ones; // exclusive
            let start = match run_start.take() {
                Some(carried) if start_bit == 0 => carried,
                _ => base + start_bit,
            };
            if run_end >= bits_in_word {
                // The run reaches the word's edge — it may continue into
                // the next word; decided there (or flushed after the loop).
                run_start = Some(start);
                break;
            }
            f(start, base + run_end - 1);
            offset = run_end;
        }
    }
    if let Some(start) = run_start {
        f(start, width.min(words.len() * 64) - 1);
    }
}

/// The scalar oracle for [`for_each_run`]: the original bit-at-a-time
/// formulation, kept verbatim for differential testing.
pub fn for_each_run_reference(words: &[u64], width: usize, mut f: impl FnMut(usize, usize)) {
    let mut run_start: Option<usize> = None;
    let mut x = 0usize;
    for (wi, &word) in words.iter().enumerate() {
        let bits_in_word = (width - wi * 64).min(64);
        let mut w = word;
        if bits_in_word < 64 {
            w &= (1u64 << bits_in_word) - 1;
        }
        let mut offset = 0usize;
        while offset < bits_in_word {
            if w & (1 << offset) != 0 {
                if run_start.is_none() {
                    run_start = Some(x + offset);
                }
                // Skip to the end of this run within the word.
                let rest = w >> offset;
                let run_len = (!rest).trailing_zeros() as usize;
                let run_end_in_word = offset + run_len;
                if run_end_in_word < bits_in_word {
                    // Run ends inside the word; `run_start` was set when
                    // it began, a few lines up.
                    if let Some(start) = run_start.take() {
                        f(start, x + run_end_in_word - 1);
                    }
                    offset = run_end_in_word;
                } else {
                    // Run continues into the next word (or ends at width).
                    offset = bits_in_word;
                }
            } else {
                offset += 1;
            }
        }
        // If we leave the word mid-run and the run doesn't continue, close it.
        if let Some(start) = run_start {
            let next_continues = words
                .get(wi + 1)
                .is_some_and(|&nw| width > (wi + 1) * 64 && nw & 1 != 0);
            if !next_continues {
                f(start, x + bits_in_word - 1);
                run_start = None;
            }
        }
        x += 64;
    }
    debug_assert!(run_start.is_none(), "unterminated run");
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut g = Grid::new(130, 5).unwrap(); // 3 words per row
        assert_eq!(g.words_per_row(), 3);
        assert!(!g.get(0, 0));
        g.set(0, 0);
        g.set(64, 2); // second word
        g.set(129, 4); // last cell
        assert!(g.get(0, 0));
        assert!(g.get(64, 2));
        assert!(g.get(129, 4));
        assert_eq!(g.count_ones(), 3);
        g.clear(64, 2);
        assert!(!g.get(64, 2));
        assert_eq!(g.count_ones(), 2);
    }

    #[test]
    fn construction_validates() {
        assert!(Grid::new(0, 5).is_err());
        assert!(Grid::new(5, 0).is_err());
        let mut g = Grid::new(4, 4).unwrap();
        assert!(g.try_set(4, 0).is_err());
        assert!(g.try_set(0, 4).is_err());
        assert!(g.try_set(3, 3).is_ok());
    }

    #[test]
    fn from_cells_and_iter_set_roundtrip() {
        let cells = vec![(0, 0), (3, 1), (65, 1), (99, 2)];
        let g = Grid::from_cells(100, 3, cells.clone()).unwrap();
        let got: Vec<_> = g.iter_set().collect();
        assert_eq!(got, cells);
        assert!(Grid::from_cells(10, 3, vec![(10, 0)]).is_err());
    }

    #[test]
    fn parse_art() {
        let g = Grid::parse(
            "
            .##.
            ####
            .#..
            ",
        )
        .unwrap();
        assert_eq!(g.width(), 4);
        assert_eq!(g.height(), 3);
        assert!(g.get(1, 0) && g.get(2, 0) && !g.get(0, 0));
        assert!(g.get(0, 1) && g.get(3, 1));
        assert!(g.get(1, 2) && !g.get(2, 2));
        assert_eq!(g.count_ones(), 7);
        assert!(Grid::parse(".#\n.").is_err()); // ragged
        assert!(Grid::parse(".x").is_err()); // bad char
        assert!(Grid::parse("").is_err()); // empty
    }

    #[test]
    fn rect_operations() {
        let mut g = Grid::new(8, 8).unwrap();
        let r = Rect { x0: 2, y0: 1, x1: 5, y1: 3 };
        g.set_rect(r);
        assert_eq!(g.count_ones(), 12);
        assert!(g.rect_is_full(r));
        assert!(!g.rect_is_full(Rect { x0: 2, y0: 1, x1: 6, y1: 3 }));
        g.clear(3, 2);
        assert!(!g.rect_is_full(r));
        g.clear_rect(r);
        assert!(g.is_empty());
    }

    #[test]
    fn run_extraction_single_word() {
        let mut runs = Vec::new();
        // bits: 0b0110_1101 -> runs [0..0], [2..3], [5..6]
        for_each_run(&[0b0110_1101u64], 8, |a, b| runs.push((a, b)));
        assert_eq!(runs, vec![(0, 0), (2, 3), (5, 6)]);
    }

    #[test]
    fn run_extraction_empty_and_full() {
        let mut runs = Vec::new();
        for_each_run(&[0u64], 8, |a, b| runs.push((a, b)));
        assert!(runs.is_empty());

        runs.clear();
        for_each_run(&[0xFFu64], 8, |a, b| runs.push((a, b)));
        assert_eq!(runs, vec![(0, 7)]);

        // Full width-64 word.
        runs.clear();
        for_each_run(&[u64::MAX], 64, |a, b| runs.push((a, b)));
        assert_eq!(runs, vec![(0, 63)]);
    }

    #[test]
    fn run_extraction_across_word_boundary() {
        // Bits 62..=66 set: crosses the word boundary.
        let w0 = (1u64 << 62) | (1u64 << 63);
        let w1 = 0b111u64;
        let mut runs = Vec::new();
        for_each_run(&[w0, w1], 128, |a, b| runs.push((a, b)));
        assert_eq!(runs, vec![(62, 66)]);
    }

    #[test]
    fn run_extraction_run_ends_exactly_at_boundary() {
        let w0 = (1u64 << 62) | (1u64 << 63);
        let w1 = 0b110u64; // bit 64 unset: run must close at 63
        let mut runs = Vec::new();
        for_each_run(&[w0, w1], 128, |a, b| runs.push((a, b)));
        assert_eq!(runs, vec![(62, 63), (65, 66)]);
    }

    #[test]
    fn run_extraction_ignores_bits_beyond_width() {
        // Word has bits up to 63 set but width is 10.
        let mut runs = Vec::new();
        for_each_run(&[u64::MAX], 10, |a, b| runs.push((a, b)));
        assert_eq!(runs, vec![(0, 9)]);
    }

    #[test]
    fn run_extraction_three_words() {
        // One long run spanning words 0..3 entirely.
        let mut runs = Vec::new();
        for_each_run(&[u64::MAX, u64::MAX, 0b1u64], 130, |a, b| runs.push((a, b)));
        assert_eq!(runs, vec![(0, 128)]);
    }
}
