//! The persistent worker-pool execution engine.
//!
//! Before this module, every parallel stage (binner shards, BitOp
//! stripes, optimizer batches) paid `std::thread::scope` spawn cost per
//! call — BENCH_pr2.json honestly records a 0.711× "speedup" at 4 threads
//! on a 1-CPU container largely because of it. The paper's interactive
//! remine → smooth → cluster loop (Figs 10/15) issues many short parallel
//! calls, which is exactly the workload that amortizes a reusable pool.
//!
//! Design (std-only — the reproduction mandate forbids new dependencies):
//!
//! * **One lazily spawned process-wide pool** ([`ExecPool::global`]),
//!   sized from [`default_threads`](crate::metrics::default_threads).
//!   Workers are spawned on first use, never before; a purely sequential
//!   process never creates a thread. Owned pools
//!   ([`ExecPool::new`]) exist for lifecycle tests and embedders that
//!   want deterministic shutdown — dropping one drains the queue, parks
//!   the shutdown flag and joins its workers.
//! * **Injector queue**: a `Mutex<VecDeque<Task>>` + `Condvar`. Work
//!   units are whole shards (thousands of rows / a grid stripe / a batch
//!   chunk), so queue traffic is a handful of pushes per parallel call
//!   and the mutex is never contended on the data path.
//! * **Caller participation**: [`ExecPool::run_shards`] enqueues
//!   `workers − 1` helper units and then claims shards itself alongside
//!   them. The submitting thread always makes progress, so a saturated
//!   or single-worker pool (or even a pool whose spawns failed) can
//!   never deadlock a caller, and nested parallel calls degrade to
//!   sequential execution instead of self-blocking.
//! * **Panic containment**: every shard runs under
//!   [`std::panic::catch_unwind`], and the worker loop wraps each task in
//!   a second `catch_unwind` — a panicking shard surfaces as an `Err`
//!   slot for the caller's retry logic and can never kill a pool worker
//!   or wedge the queue. Completion is tracked by a latch whose guards
//!   decrement on `Drop`, so even a unit that unwinds still signals.
//! * **Replay-selection determinism**: shards are *claimed* in any
//!   order, but results land in per-shard slots and are consumed by the
//!   caller strictly in shard order — the same sequential-replay rule the
//!   optimizer uses for candidate selection. Scheduling therefore
//!   changes wall-clock time only, never results: outputs are
//!   bit-identical at any thread count and any pool size.
//!
//! The bounded-retry/sequential-fallback contract shared by all parallel
//! stages lives here too ([`run_recovered`]), so the binner, BitOp and
//! optimizer account for faults identically (see
//! [`RecoveryStats`](crate::metrics::RecoveryStats) for the contract).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Once, OnceLock};

use crate::error::ArcsError;
use crate::metrics::{default_threads, RecoveryStats};

/// Maximum bounded retries for a panicked shard before the sequential
/// fallback path recomputes it (see [`run_recovered`]).
pub const MAX_SHARD_RETRIES: usize = 2;

/// Configuration for an owned [`ExecPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Number of pool worker threads to spawn (clamped to at least 1).
    pub threads: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { threads: default_threads() }
    }
}

/// Per-call scheduling statistics reported by the pool. These describe
/// the *schedule*, not the work — steals and queue depth legitimately
/// vary run to run and across thread counts, while the computed results
/// stay bit-identical. Tests comparing stats across thread counts must
/// therefore normalize these fields (see
/// [`RecoveryStats::faults_only`](crate::metrics::RecoveryStats::faults_only)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Shard tasks executed through this call (caller-inline + stolen).
    pub tasks_run: u64,
    /// Shards executed by pool workers rather than the submitting thread.
    pub steals: u64,
    /// Deepest injector backlog observed while submitting this call's
    /// helper units.
    pub max_queue_depth: u64,
    /// Worker slots the call was actually scheduled across after
    /// clamping (submitting thread included).
    pub effective_workers: u64,
}

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolQueue {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    work_ready: Condvar,
}

impl PoolShared {
    fn new() -> Arc<PoolShared> {
        Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue { tasks: VecDeque::new(), shutdown: false }),
            work_ready: Condvar::new(),
        })
    }
}

/// Worker main loop: pop → run under `catch_unwind` → repeat. The queue
/// is drained before a shutdown is honoured, so owned-pool `Drop` never
/// strands submitted work.
fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let task = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            loop {
                if let Some(task) = queue.tasks.pop_front() {
                    break Some(task);
                }
                if queue.shutdown {
                    break None;
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        match task {
            // A panicking task must never kill the worker: shard-level
            // unwinds are already caught and boxed into result slots, but
            // this second net guarantees the pool survives even a task
            // that panics outside that envelope.
            Some(task) => {
                let _ = catch_unwind(AssertUnwindSafe(task));
            }
            None => return,
        }
    }
}

/// Completion latch: counts outstanding helper units. Guards decrement on
/// `Drop`, so a unit that unwinds (or is dropped unexecuted at pool
/// shutdown) still signals completion and can never wedge a waiter.
#[derive(Default)]
struct Latch {
    count: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn wait(&self) {
        let mut count = self
            .count
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while *count > 0 {
            count = self
                .done
                .wait(count)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

struct LatchGuard(Arc<Latch>);

impl LatchGuard {
    fn register(latch: &Arc<Latch>) -> LatchGuard {
        let mut count = latch
            .count
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *count += 1;
        drop(count);
        LatchGuard(Arc::clone(latch))
    }
}

impl Drop for LatchGuard {
    fn drop(&mut self) {
        let mut count = self
            .0
            .count
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *count -= 1;
        if *count == 0 {
            self.0.done.notify_all();
        }
    }
}

/// Waits for every outstanding helper unit on `Drop` — placed on the
/// caller's stack *before* it starts claiming shards, so the shared
/// stack context outlives every unit even if the caller unwinds.
struct CompletionGuard<'a>(&'a Latch);

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

/// A persistent worker pool. See the [module docs](self) for the design.
pub struct ExecPool {
    shared: Arc<PoolShared>,
    size: usize,
    spawn: Once,
    live_workers: AtomicUsize,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("size", &self.size)
            .field("live_workers", &self.live_workers.load(Ordering::Relaxed))
            .finish()
    }
}

impl ExecPool {
    /// Builds an owned pool. Workers are spawned lazily on first use;
    /// dropping the pool shuts them down and joins them.
    pub fn new(config: ExecConfig) -> ExecPool {
        ExecPool {
            shared: PoolShared::new(),
            size: config.threads.max(1),
            spawn: Once::new(),
            live_workers: AtomicUsize::new(0),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The lazily initialised process-wide pool, sized from
    /// [`default_threads`]. Its workers live for the rest of the process.
    pub fn global() -> &'static ExecPool {
        static GLOBAL: OnceLock<ExecPool> = OnceLock::new();
        GLOBAL.get_or_init(|| ExecPool::new(ExecConfig::default()))
    }

    /// The configured worker count (spawned lazily).
    pub fn threads(&self) -> usize {
        self.size
    }

    /// Spawns the workers exactly once and returns how many are live.
    /// A failed spawn (thread exhaustion) leaves a smaller pool rather
    /// than failing the call — `run_shards` callers still complete via
    /// caller participation.
    fn ensure_workers(&self) -> usize {
        self.spawn.call_once(|| {
            let mut handles = self
                .handles
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            for i in 0..self.size {
                let shared = Arc::clone(&self.shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("arcs-exec-{i}"))
                    .spawn(move || worker_loop(shared));
                if let Ok(handle) = spawned {
                    handles.push(handle);
                    self.live_workers.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        self.live_workers.load(Ordering::Relaxed)
    }

    /// Pushes a task onto the injector and returns the queue depth after
    /// the push (for `max_queue_depth` accounting).
    fn submit(&self, task: Task) -> usize {
        let depth = {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            queue.tasks.push_back(task);
            queue.tasks.len()
        };
        self.shared.work_ready.notify_one();
        depth
    }

    /// Runs `f(index, item)` over every item of `items`, fanning the
    /// shards across up to `threads` worker slots (the submitting thread
    /// participates). Returns per-item results **in item order** —
    /// `Err` slots are caught shard panics for the caller's retry logic
    /// — plus the call's scheduling stats.
    ///
    /// Results are bit-identical at any thread count and pool size: the
    /// schedule decides only *who* computes a shard, never which shards
    /// exist or the order the caller consumes them in.
    pub fn run_shards<T, R, F>(
        &self,
        threads: usize,
        items: &[T],
        f: F,
    ) -> (Vec<std::thread::Result<R>>, PoolStats)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = threads.max(1).min(n.max(1));
        let mut stats = PoolStats {
            effective_workers: workers as u64,
            ..PoolStats::default()
        };
        if n == 0 {
            return (Vec::new(), stats);
        }
        if workers == 1 {
            let results = items
                .iter()
                .enumerate()
                .map(|(i, item)| catch_unwind(AssertUnwindSafe(|| f(i, item))))
                .collect();
            stats.tasks_run = n as u64;
            return (results, stats);
        }
        let live = self.ensure_workers();

        let slots: Vec<OnceLock<std::thread::Result<R>>> =
            (0..n).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        let steals = AtomicU64::new(0);
        let ctx = ShardCtx { items, f: &f, slots: &slots, next: &next, steals: &steals };

        // Lifetime erasure: helper units receive the context as a plain
        // address. This is the `std::thread::scope` pattern without the
        // per-call spawn — sound because `CompletionGuard` (below) blocks
        // this stack frame until every unit has finished (or been dropped
        // unexecuted), so the address can never dangle.
        let ctx_addr = &ctx as *const ShardCtx<'_, T, R, F> as usize;
        let latch = Arc::new(Latch::default());
        {
            let completion = CompletionGuard(&latch);
            if live > 0 {
                for _ in 0..workers - 1 {
                    let guard = LatchGuard::register(&latch);
                    let depth = self.submit(Box::new(move || {
                        let _guard = guard;
                        // SAFETY: see `ctx_addr` above — the caller's
                        // CompletionGuard keeps `ctx` alive until this
                        // unit's LatchGuard drops.
                        let ctx =
                            unsafe { &*(ctx_addr as *const ShardCtx<'_, T, R, F>) };
                        ctx.run(true);
                    }));
                    stats.max_queue_depth = stats.max_queue_depth.max(depth as u64);
                }
            }
            ctx.run(false);
            drop(completion); // blocks until all helper units are done
        }

        stats.tasks_run = n as u64;
        stats.steals = steals.load(Ordering::Relaxed);
        let results = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every shard index is claimed and filled exactly once")
            })
            .collect();
        (results, stats)
    }

    /// Producer/consumer variant for streams that cannot be sliced into
    /// shards: submits `units` long-running consumer tasks to the pool,
    /// runs `producer` on the calling thread (feeding them, e.g. through
    /// a bounded channel), and returns the per-unit results in unit order
    /// once everything has drained.
    ///
    /// Requires at least one live pool worker — the caller is busy
    /// producing and cannot steal. Callers must check
    /// [`has_workers`](ExecPool::has_workers) first and fall back to a
    /// sequential path when the pool could not spawn any threads.
    pub fn run_with_producer<R, O, F, P>(
        &self,
        units: usize,
        worker: F,
        producer: P,
    ) -> (Vec<std::thread::Result<R>>, O, PoolStats)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        P: FnOnce() -> O,
    {
        self.ensure_workers();
        let slots: Vec<OnceLock<std::thread::Result<R>>> =
            (0..units).map(|_| OnceLock::new()).collect();
        let mut stats = PoolStats {
            tasks_run: units as u64,
            steals: units as u64,
            effective_workers: units as u64,
            ..PoolStats::default()
        };
        let ctx = ProducerCtx { worker: &worker, slots: &slots };
        let ctx_addr = &ctx as *const ProducerCtx<'_, R, F> as usize;
        let latch = Arc::new(Latch::default());
        let output = {
            let completion = CompletionGuard(&latch);
            for i in 0..units {
                let guard = LatchGuard::register(&latch);
                let depth = self.submit(Box::new(move || {
                    let _guard = guard;
                    // SAFETY: as in `run_shards` — the CompletionGuard
                    // pins `ctx` until every unit's guard has dropped.
                    let ctx = unsafe { &*(ctx_addr as *const ProducerCtx<'_, R, F>) };
                    ctx.run(i);
                }));
                stats.max_queue_depth = stats.max_queue_depth.max(depth as u64);
            }
            let output = producer();
            drop(completion);
            output
        };
        let results = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every consumer unit fills its slot exactly once")
            })
            .collect();
        (results, output, stats)
    }

    /// Whether the pool has (or can spawn) at least one live worker.
    /// `run_shards` works either way; [`run_with_producer`] requires it.
    pub fn has_workers(&self) -> bool {
        self.ensure_workers() > 0
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            queue.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        let handles = std::mem::take(
            &mut *self
                .handles
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Shared per-call context for `run_shards`: the work list, the shard
/// function, the ordered result slots and the claim counter.
struct ShardCtx<'a, T, R, F> {
    items: &'a [T],
    f: &'a F,
    slots: &'a [OnceLock<std::thread::Result<R>>],
    next: &'a AtomicUsize,
    steals: &'a AtomicU64,
}

impl<T, R, F> ShardCtx<'_, T, R, F>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    fn run(&self, is_pool_worker: bool) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.items.len() {
                return;
            }
            if is_pool_worker {
                self.steals.fetch_add(1, Ordering::Relaxed);
            }
            let result = catch_unwind(AssertUnwindSafe(|| (self.f)(i, &self.items[i])));
            let _ = self.slots[i].set(result);
        }
    }
}

/// Shared per-call context for `run_with_producer`.
struct ProducerCtx<'a, R, F> {
    worker: &'a F,
    slots: &'a [OnceLock<std::thread::Result<R>>],
}

impl<R, F> ProducerCtx<'_, R, F>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    fn run(&self, i: usize) {
        let result = catch_unwind(AssertUnwindSafe(|| (self.worker)(i)));
        let _ = self.slots[i].set(result);
    }
}

/// The one bounded-retry/sequential-fallback contract shared by every
/// parallel stage (binner shards, BitOp stripes, optimizer batch points).
///
/// The caller has already caught the shard's *initial* panic and counted
/// it in `stats.worker_panics`. This helper then:
///
/// 1. retries `attempt` up to [`MAX_SHARD_RETRIES`] times, incrementing
///    `shard_retries` **before** each attempt and `worker_panics` for
///    each retry that panics;
/// 2. on exhaustion increments `sequential_fallbacks` once and runs
///    `final_attempt` (the fault-free sequential recomputation);
/// 3. maps a panic on that final pass to
///    [`ArcsError::WorkerPanicked`] with the given `stage` label.
///
/// Typed errors (`Err`) returned by either closure propagate immediately
/// — only panics are retried.
pub fn run_recovered<R>(
    stats: &mut RecoveryStats,
    stage: &'static str,
    mut attempt: impl FnMut() -> Result<R, ArcsError>,
    final_attempt: impl FnOnce() -> Result<R, ArcsError>,
) -> Result<R, ArcsError> {
    for _ in 0..MAX_SHARD_RETRIES {
        stats.shard_retries += 1;
        match catch_unwind(AssertUnwindSafe(&mut attempt)) {
            Ok(result) => return result,
            Err(_) => stats.worker_panics += 1,
        }
    }
    stats.sequential_fallbacks += 1;
    match catch_unwind(AssertUnwindSafe(final_attempt)) {
        Ok(result) => result,
        Err(panic) => Err(ArcsError::WorkerPanicked {
            stage,
            message: crate::error::panic_message(panic),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_shards_returns_results_in_item_order() {
        let pool = ExecPool::new(ExecConfig { threads: 3 });
        let items: Vec<usize> = (0..64).collect();
        let (results, stats) = pool.run_shards(4, &items, |i, &item| {
            assert_eq!(i, item);
            item * 2
        });
        let values: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(stats.tasks_run, 64);
        assert_eq!(stats.effective_workers, 4);
    }

    #[test]
    fn results_are_identical_at_any_thread_count_and_pool_size() {
        let items: Vec<u64> = (0..97).collect();
        let reference: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for pool_size in [1, 2, 4] {
            let pool = ExecPool::new(ExecConfig { threads: pool_size });
            for threads in [1, 2, 4, 8] {
                let (results, stats) =
                    pool.run_shards(threads, &items, |_, &x| x * x + 1);
                let values: Vec<u64> = results.into_iter().map(|r| r.unwrap()).collect();
                assert_eq!(values, reference, "threads={threads} pool={pool_size}");
                assert_eq!(stats.tasks_run, items.len() as u64);
            }
        }
    }

    #[test]
    fn a_panicking_shard_is_isolated_and_the_pool_survives() {
        let pool = ExecPool::new(ExecConfig { threads: 2 });
        let items: Vec<usize> = (0..8).collect();
        let (results, _) = pool.run_shards(4, &items, |_, &item| {
            if item == 3 {
                panic!("boom on shard 3");
            }
            item
        });
        for (i, result) in results.iter().enumerate() {
            if i == 3 {
                assert!(result.is_err(), "shard 3 should surface its panic");
            } else {
                assert_eq!(*result.as_ref().unwrap(), i);
            }
        }
        // The pool must survive the panic and serve subsequent calls.
        let (again, stats) = pool.run_shards(4, &items, |_, &item| item + 1);
        assert!(again.into_iter().all(|r| r.is_ok()));
        assert_eq!(stats.tasks_run, 8);
    }

    #[test]
    fn every_shard_panicking_does_not_wedge_the_queue() {
        let pool = ExecPool::new(ExecConfig { threads: 2 });
        let items: Vec<usize> = (0..16).collect();
        let (results, _) = pool.run_shards(8, &items, |_, _| -> usize {
            panic!("all shards die");
        });
        assert_eq!(results.len(), 16);
        assert!(results.iter().all(|r| r.is_err()));
        // And the workers are still alive for a healthy follow-up call.
        let (ok, _) = pool.run_shards(8, &items, |_, &item| item);
        assert!(ok.into_iter().all(|r| r.is_ok()));
    }

    #[test]
    fn empty_and_single_item_inputs_take_the_inline_path() {
        let pool = ExecPool::new(ExecConfig { threads: 4 });
        let (results, stats) = pool.run_shards::<usize, usize, _>(4, &[], |_, &x| x);
        assert!(results.is_empty());
        assert_eq!(stats.tasks_run, 0);

        let (results, stats) = pool.run_shards(4, &[41usize], |_, &x| x + 1);
        assert_eq!(results.into_iter().next().unwrap().unwrap(), 42);
        assert_eq!(stats.effective_workers, 1, "one item needs one worker");
    }

    #[test]
    fn owned_pool_drop_joins_workers_cleanly() {
        let pool = ExecPool::new(ExecConfig { threads: 3 });
        let items: Vec<usize> = (0..32).collect();
        let (results, _) = pool.run_shards(3, &items, |_, &x| x);
        assert_eq!(results.len(), 32);
        drop(pool); // must not hang or leak: workers join here
    }

    #[test]
    fn global_pool_is_shared_and_reused() {
        let a = ExecPool::global() as *const ExecPool;
        let b = ExecPool::global() as *const ExecPool;
        assert_eq!(a, b);
        let items: Vec<usize> = (0..10).collect();
        let (results, _) = ExecPool::global().run_shards(2, &items, |_, &x| x);
        assert_eq!(results.len(), 10);
    }

    #[test]
    fn run_with_producer_feeds_consumers_through_a_channel() {
        let pool = ExecPool::new(ExecConfig { threads: 2 });
        assert!(pool.has_workers());
        let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(4);
        let rx = Mutex::new(rx);
        let (results, produced, stats) = pool.run_with_producer(
            2,
            |_| {
                let mut sum = 0u64;
                loop {
                    let value = {
                        let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                        guard.recv()
                    };
                    match value {
                        Ok(v) => sum += v,
                        Err(_) => return sum,
                    }
                }
            },
            move || {
                let mut total = 0u64;
                for v in 1..=100 {
                    tx.send(v).expect("consumers are draining");
                    total += v;
                }
                total
            },
        );
        assert_eq!(produced, 5050);
        let consumed: u64 = results.into_iter().map(|r| r.unwrap()).sum();
        assert_eq!(consumed, 5050, "every produced value is consumed once");
        assert_eq!(stats.tasks_run, 2);
    }

    #[test]
    fn run_recovered_retries_then_falls_back_with_the_documented_tally() {
        // Persistent panic: MAX_SHARD_RETRIES retries (each counted
        // before the attempt), each retry panic counted, one fallback.
        let mut stats = RecoveryStats::default();
        let out = run_recovered(
            &mut stats,
            "test",
            || -> Result<u32, ArcsError> { panic!("persistent") },
            || Ok(7),
        );
        assert_eq!(out.unwrap(), 7);
        assert_eq!(stats.shard_retries, MAX_SHARD_RETRIES as u64);
        assert_eq!(stats.worker_panics, MAX_SHARD_RETRIES as u64);
        assert_eq!(stats.sequential_fallbacks, 1);

        // Transient panic: first retry succeeds — no fallback.
        let mut stats = RecoveryStats::default();
        let flaky = std::cell::Cell::new(true);
        let out = run_recovered(
            &mut stats,
            "test",
            || {
                if flaky.replace(false) {
                    panic!("transient");
                }
                Ok(11)
            },
            || Ok(0),
        );
        assert_eq!(out.unwrap(), 11);
        assert_eq!(stats.shard_retries, 2, "counted before each attempt");
        assert_eq!(stats.worker_panics, 1);
        assert_eq!(stats.sequential_fallbacks, 0);
    }

    #[test]
    fn run_recovered_propagates_typed_errors_without_retrying() {
        let mut stats = RecoveryStats::default();
        let out: Result<u32, ArcsError> = run_recovered(
            &mut stats,
            "test",
            || Err(ArcsError::InvalidConfig("typed".to_string())),
            || Ok(0),
        );
        assert!(out.is_err());
        assert_eq!(stats.shard_retries, 1, "the attempt itself is counted");
        assert_eq!(stats.worker_panics, 0, "typed errors are not panics");
        assert_eq!(stats.sequential_fallbacks, 0);
    }

    #[test]
    fn run_recovered_reports_a_final_pass_panic_as_worker_panicked() {
        let mut stats = RecoveryStats::default();
        let out: Result<u32, ArcsError> = run_recovered(
            &mut stats,
            "binning",
            || panic!("always"),
            || panic!("even the fallback"),
        );
        match out {
            Err(ArcsError::WorkerPanicked { stage, .. }) => assert_eq!(stage, "binning"),
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }
}
