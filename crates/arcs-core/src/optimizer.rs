//! The heuristic threshold optimizer (paper §3.7, Figure 10).
//!
//! Finding the support/confidence thresholds that give the MDL-best
//! segmentation is a combinatorial search. ARCS restricts it to the
//! thresholds that *actually occur* in the binned data: one pass
//! enumerates the unique support values of the occupied cells and, for
//! each, the unique confidence values of the qualifying cells (the
//! Figure 10 lattice). The search then starts at a **low** support
//! threshold — cheap because re-mining off the `BinArray` is nearly free —
//! and works upwards, re-clustering and re-verifying at each step, until
//! the verifier sees no significant improvement (within `epsilon`) or the
//! evaluation budget expires.

use std::panic::{catch_unwind, AssertUnwindSafe};

use arcs_data::Tuple;

use crate::binarray::BinArray;
use crate::binner::Binner;
use crate::bitop::{self, BitOpConfig, ClusterStats};
use crate::cluster::Rect;
use crate::engine::Thresholds;
use crate::error::ArcsError;
use crate::index::{DeltaMiner, OccupancyIndex};
use crate::mdl::{MdlScore, MdlWeights};
use crate::metrics::RecoveryStats;
use crate::smooth::{smooth_with_stats, SmoothConfig};
use crate::verify::{verify_tuples, ErrorCounts};

/// The Figure 10 data structure: the support thresholds that occur in the
/// binned data, each with its list of occurring confidence thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdLattice {
    /// Ascending unique support fractions (per-cell group count / N).
    supports: Vec<f64>,
    /// `confidences[i]`: ascending unique confidences among cells whose
    /// support is at least `supports[i]`.
    confidences: Vec<Vec<f64>>,
    /// Occupied cells scanned while building (observability counter).
    occupied: u64,
}

impl ThresholdLattice {
    /// Builds the lattice for criterion group `gk` — the paper's two
    /// passes over the binned data.
    pub fn build(array: &BinArray, gk: u32) -> Self {
        let n = array.n_tuples();
        if n == 0 {
            return ThresholdLattice {
                supports: Vec::new(),
                confidences: Vec::new(),
                occupied: 0,
            };
        }
        // Pass 1: collect each occupied cell's (count, confidence).
        let mut occupied = 0u64;
        let mut cells: Vec<(u32, f64)> = Vec::new();
        for (x, y) in array.occupied_cells() {
            occupied += 1;
            let count = array.group_count(x, y, gk);
            if count > 0 {
                cells.push((count, array.confidence(x, y, gk)));
            }
        }
        let mut counts: Vec<u32> = cells.iter().map(|&(c, _)| c).collect();
        counts.sort_unstable();
        counts.dedup();

        // Pass 2: per support level, the unique confidences of cells still
        // qualifying. As support rises, fewer cells qualify and the
        // confidence lists shrink (the narrowing the paper observes).
        let mut supports = Vec::with_capacity(counts.len());
        let mut confidences = Vec::with_capacity(counts.len());
        for &count in &counts {
            let mut confs: Vec<f64> = cells
                .iter()
                .filter(|&&(c, _)| c >= count)
                .map(|&(_, conf)| conf)
                .collect();
            confs.sort_by(f64::total_cmp);
            confs.dedup();
            supports.push(count as f64 / n as f64);
            confidences.push(confs);
        }
        ThresholdLattice { supports, confidences, occupied }
    }

    /// The ascending unique support fractions.
    pub fn supports(&self) -> &[f64] {
        &self.supports
    }

    /// Number of occupied cells scanned while building the lattice.
    pub fn occupied_cells(&self) -> u64 {
        self.occupied
    }

    /// The confidence list for support level `i`.
    pub fn confidences_for(&self, i: usize) -> &[f64] {
        &self.confidences[i]
    }

    /// Whether no cell produced any threshold.
    pub fn is_empty(&self) -> bool {
        self.supports.is_empty()
    }

    /// Evenly subsamples `values` down to at most `max` entries, always
    /// keeping the first and last.
    fn subsample(values: &[f64], max: usize) -> Vec<f64> {
        if values.len() <= max || max == 0 {
            return values.to_vec();
        }
        if max == 1 {
            return vec![values[0]];
        }
        (0..max)
            .map(|i| values[i * (values.len() - 1) / (max - 1)])
            .collect()
    }
}

/// Configuration of the heuristic search.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerConfig {
    /// MDL bias weights.
    pub mdl_weights: MdlWeights,
    /// Grid smoothing applied before clustering.
    pub smoothing: SmoothConfig,
    /// BitOp clustering / pruning parameters.
    pub bitop: BitOpConfig,
    /// Minimum MDL improvement counted as progress.
    pub epsilon: f64,
    /// Stop after this many consecutive support levels without progress.
    pub patience: usize,
    /// Within one support level, stop walking confidence levels after this
    /// many consecutive non-improving evaluations (the paper's "until there
    /// is no improvement (within some ε)" stall rule applied along the
    /// confidence axis). The default equals `max_confidence_levels`, i.e.
    /// every subsampled level is evaluated — lower it for a stricter
    /// hill climb.
    pub confidence_patience: usize,
    /// Minimum fraction of the group's sample tuples a candidate
    /// segmentation must identify (cover) to be eligible as the best. The
    /// MDL formula's logarithmic error term can otherwise prefer a
    /// near-empty segmentation on very noisy data — covering nothing keeps
    /// false positives at zero while the log compresses the huge
    /// false-negative count. A segmentation that fails to identify the
    /// group is useless for the paper's stated purpose (segmenting the
    /// data), so candidates below this recall only win when *no* candidate
    /// reaches it. Documented deviation from the paper's literal formula.
    pub min_group_recall: f64,
    /// Hard cap on (support, confidence) evaluations — the paper's
    /// "budgeted time".
    pub max_evaluations: usize,
    /// Optional wall-clock budget: the search stops starting new
    /// evaluations once this much time has elapsed (the paper's literal
    /// "the verifier determines that the budgeted time has expired").
    pub max_wall_time: Option<std::time::Duration>,
    /// Cap on distinct support levels searched (evenly subsampled).
    pub max_support_levels: usize,
    /// Cap on distinct confidence levels searched per support level.
    pub max_confidence_levels: usize,
    /// Worker threads for the lattice search: a support level's
    /// confidence cells are independent re-mines of the shared immutable
    /// `BinArray`, so they evaluate concurrently. Defaults to
    /// [`available_parallelism`](std::thread::available_parallelism);
    /// results are bit-identical for any value. A `max_wall_time` budget
    /// forces the sequential path (which evaluation the clock cuts off is
    /// inherently timing-dependent).
    pub threads: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            mdl_weights: MdlWeights::default(),
            smoothing: SmoothConfig::default(),
            bitop: BitOpConfig::default(),
            epsilon: 1e-6,
            patience: 4,
            confidence_patience: 8,
            min_group_recall: 0.5,
            max_evaluations: 512,
            max_wall_time: None,
            max_support_levels: 16,
            max_confidence_levels: 8,
            threads: crate::metrics::default_threads(),
        }
    }
}

impl OptimizerConfig {
    fn validate(&self) -> Result<(), ArcsError> {
        if self.threads == 0 {
            return Err(ArcsError::InvalidConfig(
                "optimizer threads must be > 0".into(),
            ));
        }
        if self.epsilon < 0.0 {
            return Err(ArcsError::InvalidConfig("epsilon must be >= 0".into()));
        }
        if self.patience == 0 {
            return Err(ArcsError::InvalidConfig("patience must be > 0".into()));
        }
        if self.confidence_patience == 0 {
            return Err(ArcsError::InvalidConfig(
                "confidence_patience must be > 0".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.min_group_recall) {
            return Err(ArcsError::InvalidConfig(format!(
                "min_group_recall {} outside [0, 1]",
                self.min_group_recall
            )));
        }
        if self.max_evaluations == 0 {
            return Err(ArcsError::InvalidConfig("max_evaluations must be > 0".into()));
        }
        Ok(())
    }
}

/// One evaluated candidate segmentation.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Thresholds used.
    pub thresholds: Thresholds,
    /// Clusters found (after smoothing, BitOp, pruning).
    pub clusters: Vec<Rect>,
    /// Verification errors on the sample.
    pub errors: ErrorCounts,
    /// MDL score.
    pub score: MdlScore,
}

/// Work counters from one threshold search. Schedule-independent — the
/// parallel and sequential paths report identical values — except:
/// `recovery` tallies the faults this particular run actually encountered
/// and survived, and `cells_visited` / `remine_delta_hits` depend on the
/// delta-mining chains (each parallel worker starts its own chain from an
/// empty grid, so the crossing sets differ from one sequential chain even
/// though every produced grid is bit-identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Occupied cells scanned while building the threshold lattice.
    pub occupied_cells: u64,
    /// BitOp candidate rectangles enumerated across all traced
    /// evaluations.
    pub candidates_enumerated: u64,
    /// Residual candidates the area prune suppressed across all traced
    /// evaluations.
    pub clusters_pruned: u64,
    /// Indexed cells the delta miner examined across all traced
    /// evaluations (schedule-dependent, see above). A full-rescan miner
    /// would report `nx · ny` per evaluation; this counter is how tests
    /// prove the search is output-sensitive.
    pub cells_visited: u64,
    /// Cells whose qualification actually flipped across all traced
    /// evaluations (schedule-dependent, see above).
    pub remine_delta_hits: u64,
    /// Packed 64-bit words the smoothing kernel processed across all
    /// traced evaluations.
    pub smooth_words_processed: u64,
    /// Panic-isolation bookkeeping accumulated across all evaluations
    /// (worker panics caught, retries, sequential fallbacks).
    pub recovery: RecoveryStats,
}

/// The optimizer's result: the best evaluation plus the full search trace.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeResult {
    /// The MDL-minimal evaluation.
    pub best: Evaluation,
    /// Every evaluation performed, in search order.
    pub trace: Vec<Evaluation>,
    /// Work counters of the search.
    pub stats: SearchStats,
}

/// Per-worker re-mining state of the search: a [`DeltaMiner`] bound to
/// the shared [`OccupancyIndex`]. The delta grid carries over between the
/// points a worker evaluates, so consecutive lattice points pay only for
/// threshold crossings; after a caught panic the miner is rebuilt (the
/// panic may have left its grid mid-update).
struct Reminer<'a> {
    index: &'a OccupancyIndex,
    delta: DeltaMiner,
}

impl<'a> Reminer<'a> {
    fn new(index: &'a OccupancyIndex, gk: u32) -> Result<Self, ArcsError> {
        Ok(Reminer { index, delta: DeltaMiner::new(index, gk)? })
    }
}

/// Work counters of one evaluation, alongside its [`Evaluation`].
#[derive(Debug, Clone, Copy, Default)]
struct EvalStats {
    cluster: ClusterStats,
    cells_visited: u64,
    delta_hits: u64,
    smooth_words: u64,
}

/// Evaluates a single `(support, confidence)` point: mine → smooth →
/// cluster → verify → score. One-shot convenience — builds a throwaway
/// [`OccupancyIndex`]; the search itself shares one index across all
/// evaluations via [`evaluate_into`].
pub fn evaluate(
    array: &BinArray,
    gk: u32,
    binner: &Binner,
    sample: &[&Tuple],
    thresholds: Thresholds,
    config: &OptimizerConfig,
) -> Result<Evaluation, ArcsError> {
    let index = OccupancyIndex::build(array);
    let mut reminer = Reminer::new(&index, gk)?;
    evaluate_into(binner, sample, thresholds, config, &mut reminer).map(|(eval, _)| eval)
}

/// The hot path of the search: every lattice point re-mines through here.
/// The delta miner updates its qualifying grid in place (bit-identical to
/// a from-scratch [`rule_grid`](crate::engine::rule_grid)) touching only
/// threshold-crossing cells, then the word-parallel smoother and BitOp
/// run as before.
fn evaluate_into(
    binner: &Binner,
    sample: &[&Tuple],
    thresholds: Thresholds,
    config: &OptimizerConfig,
    reminer: &mut Reminer<'_>,
) -> Result<(Evaluation, EvalStats), ArcsError> {
    crate::faults::check("engine.mine")?;
    let (cells_visited, delta_hits) = reminer.delta.update(reminer.index, thresholds);
    let (smoothed, smooth_stats) = smooth_with_stats(reminer.delta.grid(), &config.smoothing)?;
    let (clusters, cluster_stats) = bitop::cluster_with_stats(&smoothed, &config.bitop)?;
    let errors = verify_tuples(&clusters, binner, sample.iter().copied(), reminer.delta.gk());
    let score = MdlScore::compute(clusters.len(), errors.total(), config.mdl_weights);
    let stats = EvalStats {
        cluster: cluster_stats,
        cells_visited,
        delta_hits,
        smooth_words: smooth_stats.words_processed,
    };
    Ok((Evaluation { thresholds, clusters, errors, score }, stats))
}

/// [`evaluate_into`] behind the `optimizer.evaluate` failpoint — the unit
/// of panic-isolated work in [`evaluate_batch`].
fn evaluate_point(
    binner: &Binner,
    sample: &[&Tuple],
    point: Thresholds,
    config: &OptimizerConfig,
    reminer: &mut Reminer<'_>,
) -> Result<(Evaluation, EvalStats), ArcsError> {
    crate::faults::check("optimizer.evaluate")?;
    evaluate_into(binner, sample, point, config, reminer)
}

/// Evaluates `points` in order across up to `threads` persistent pool
/// workers (see [`ExecPool`](crate::exec::ExecPool)), each chunk holding
/// a private [`Reminer`] against the shared immutable
/// [`OccupancyIndex`]. Results come back in `points` order, so callers
/// can replay the sequential selection logic over them unchanged.
///
/// Each point is individually panic-isolated: a worker that panics on one
/// point leaves that slot empty (and rebuilds its delta miner, which the
/// panic may have left mid-update) and carries on with the rest of its
/// chunk. Empty slots are recovered after the join — bounded retries with
/// any failpoint still armed, then a fault-free sequential recompute —
/// so a surviving batch is bit-identical to a fault-free one. Recovery
/// tallies come back separately from the evaluations: the caller's replay
/// may discard evaluations past an early-stop point, but a panic that was
/// absorbed must still reach the report.
fn evaluate_batch(
    index: &OccupancyIndex,
    gk: u32,
    binner: &Binner,
    sample: &[&Tuple],
    points: &[Thresholds],
    config: &OptimizerConfig,
    threads: usize,
) -> Result<(Vec<(Evaluation, EvalStats)>, RecoveryStats), ArcsError> {
    let workers = threads.min(points.len()).max(1);
    if workers == 1 {
        let mut reminer = Reminer::new(index, gk)?;
        let stats = RecoveryStats { effective_workers: 1, ..RecoveryStats::default() };
        return points
            .iter()
            .map(|&t| evaluate_point(binner, sample, t, config, &mut reminer))
            .collect::<Result<_, _>>()
            .map(|results| (results, stats));
    }
    type Slots = Vec<Option<Result<(Evaluation, EvalStats), ArcsError>>>;
    let per_worker = points.len().div_ceil(workers);
    let chunks: Vec<&[Thresholds]> = points.chunks(per_worker).collect();
    let (attempts, pool_stats) =
        crate::exec::ExecPool::global().run_shards(workers, &chunks, |_, point_chunk| {
            let mut chunk_slots: Slots = (0..point_chunk.len()).map(|_| None).collect();
            let mut reminer = match Reminer::new(index, gk) {
                Ok(reminer) => reminer,
                Err(err) => {
                    // Surface through the first slot; the chunk's
                    // remaining empty slots are recovered by the
                    // caller (and will hit the same error there).
                    chunk_slots[0] = Some(Err(err));
                    return chunk_slots;
                }
            };
            for (&point, slot) in point_chunk.iter().zip(chunk_slots.iter_mut()) {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    evaluate_point(binner, sample, point, config, &mut reminer)
                }));
                match outcome {
                    Ok(result) => *slot = Some(result),
                    Err(_) => match Reminer::new(index, gk) {
                        Ok(fresh) => reminer = fresh,
                        Err(err) => {
                            *slot = Some(Err(err));
                            return chunk_slots;
                        }
                    },
                }
            }
            chunk_slots
        });
    let mut slots: Slots = Vec::with_capacity(points.len());
    for (attempt, chunk) in attempts.into_iter().zip(&chunks) {
        match attempt {
            Ok(chunk_slots) => slots.extend(chunk_slots),
            // The chunk body is panic-isolated per point, so a
            // whole-chunk panic is out-of-envelope; treat every point in
            // the chunk as panicked and recover them individually below.
            Err(_) => slots.extend((0..chunk.len()).map(|_| None)),
        }
    }
    let mut results = Vec::with_capacity(points.len());
    let mut batch_recovery = RecoveryStats::default();
    batch_recovery.record_pool(&pool_stats);
    for (slot_index, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(result) => results.push(result?),
            None => {
                let mut recovery =
                    RecoveryStats { worker_panics: 1, ..RecoveryStats::default() };
                let recovered = recover_point(
                    index, gk, binner, sample, points[slot_index], config, &mut recovery,
                );
                batch_recovery.merge(&recovery);
                results.push(recovered?);
            }
        }
    }
    Ok((results, batch_recovery))
}

/// Recovers one evaluation point whose worker panicked: bounded retries
/// with any failpoint still armed, then a final sequential attempt with
/// the failpoint disarmed — through
/// [`run_recovered`](crate::exec::run_recovered), the retry contract
/// shared by every parallel stage (see [`RecoveryStats`]). A panic on
/// the final attempt is genuine and surfaces as
/// [`ArcsError::WorkerPanicked`]. Every attempt starts from a fresh
/// [`Reminer`] so a half-updated delta grid can never leak in.
fn recover_point(
    index: &OccupancyIndex,
    gk: u32,
    binner: &Binner,
    sample: &[&Tuple],
    point: Thresholds,
    config: &OptimizerConfig,
    recovery: &mut RecoveryStats,
) -> Result<(Evaluation, EvalStats), ArcsError> {
    crate::exec::run_recovered(
        recovery,
        "optimizer",
        || {
            let mut reminer = Reminer::new(index, gk)?;
            evaluate_point(binner, sample, point, config, &mut reminer)
        },
        || {
            let mut reminer = Reminer::new(index, gk)?;
            evaluate_into(binner, sample, point, config, &mut reminer)
        },
    )
}

/// Mutable state of the greedy selection replayed over evaluations in
/// search order — shared verbatim by the sequential and parallel paths so
/// they cannot diverge.
struct Selection<'a> {
    config: &'a OptimizerConfig,
    /// Best evaluation meeting the recall guard.
    best: Option<Evaluation>,
    /// Best evaluation regardless of the guard (fallback).
    best_any: Option<Evaluation>,
    trace: Vec<Evaluation>,
    stats: SearchStats,
}

impl Selection<'_> {
    /// Consumes one evaluation in search order. Returns `true` when the
    /// current support level's confidence walk should stop
    /// (`confidence_patience` consecutive non-improvements).
    fn consume(
        &mut self,
        eval: Evaluation,
        eval_stats: EvalStats,
        improved: &mut bool,
        conf_stale: &mut usize,
    ) -> bool {
        self.stats.candidates_enumerated += eval_stats.cluster.candidates_enumerated;
        self.stats.clusters_pruned += eval_stats.cluster.clusters_pruned;
        self.stats.recovery.merge(&eval_stats.cluster.recovery);
        self.stats.cells_visited += eval_stats.cells_visited;
        self.stats.remine_delta_hits += eval_stats.delta_hits;
        self.stats.smooth_words_processed += eval_stats.smooth_words;
        self.trace.push(eval.clone());
        if eval.clusters.is_empty() {
            return false; // never a candidate, never counts as stale progress
        }
        let beats = |incumbent: &Option<Evaluation>| match incumbent {
            None => true,
            Some(b) => eval.score.cost + self.config.epsilon < b.score.cost,
        };
        if beats(&self.best_any) {
            self.best_any = Some(eval.clone());
        }
        let qualifies = eval.errors.recall() >= self.config.min_group_recall;
        if qualifies && beats(&self.best) {
            self.best = Some(eval);
            *improved = true;
            *conf_stale = 0;
        } else if self.best.is_some() {
            *conf_stale += 1;
            if *conf_stale >= self.config.confidence_patience {
                return true;
            }
        }
        false
    }
}

/// Runs the heuristic search (the Figure 2 feedback loop): ascending
/// support levels from the lattice, each with its confidence levels,
/// stopping on `patience` support levels without improvement or on budget
/// exhaustion. Returns [`ArcsError::NoSegmentation`] when the lattice is
/// empty or no evaluation produced any cluster.
///
/// With `config.threads > 1` each support level's confidence cells are
/// evaluated concurrently against the shared immutable occupancy index,
/// then consumed in their sequential order — `best`, `trace`, and `stats`
/// are bit-identical to a single-threaded run, except the
/// schedule-dependent `stats` fields called out on [`SearchStats`].
/// (Speculative evaluations past an early-stop point are discarded,
/// trading some redundant work for wall-clock time.)
pub fn optimize(
    array: &BinArray,
    gk: u32,
    binner: &Binner,
    sample: &[&Tuple],
    config: &OptimizerConfig,
) -> Result<OptimizeResult, ArcsError> {
    config.validate()?;
    let lattice = ThresholdLattice::build(array, gk);
    if lattice.is_empty() {
        return Err(ArcsError::NoSegmentation);
    }

    let support_levels =
        ThresholdLattice::subsample(lattice.supports(), config.max_support_levels);
    // A wall-clock budget forces the sequential path: which evaluation
    // the clock cuts off cannot be reproduced by a parallel batch.
    let sequential = config.threads == 1 || config.max_wall_time.is_some();
    // Parallel-path workers keep BitOp single-threaded — the level batch
    // already saturates `threads` cores; nested enumeration threads would
    // only oversubscribe. The sequential path honours the caller's BitOp
    // thread count unchanged.
    let worker_config = if sequential {
        config.clone()
    } else {
        OptimizerConfig {
            bitop: BitOpConfig { threads: 1, ..config.bitop },
            ..config.clone()
        }
    };
    // Two-tier best: candidates meeting the recall guard are preferred;
    // `best_any` is the fallback when nothing qualifies.
    let mut sel = Selection {
        config,
        best: None,
        best_any: None,
        trace: Vec::new(),
        stats: SearchStats {
            occupied_cells: lattice.occupied_cells(),
            ..SearchStats::default()
        },
    };
    let mut stale = 0usize;
    let started = std::time::Instant::now();
    // One index for the whole search; the sequential walk threads a single
    // delta-mining chain through every lattice point it evaluates.
    let index = OccupancyIndex::build(array);
    let mut reminer = Reminer::new(&index, gk)?;

    'search: for &s in &support_levels {
        // Map back to the lattice index to fetch this level's confidences.
        let li = lattice
            .supports()
            .iter()
            .position(|&v| v >= s)
            .unwrap_or(lattice.supports().len() - 1);
        let conf_levels =
            ThresholdLattice::subsample(lattice.confidences_for(li), config.max_confidence_levels);

        let mut improved = false;
        let mut conf_stale = 0usize;
        if sequential {
            for &c in &conf_levels {
                if sel.trace.len() >= config.max_evaluations {
                    break 'search;
                }
                if config
                    .max_wall_time
                    .is_some_and(|budget| started.elapsed() >= budget)
                {
                    break 'search;
                }
                let thresholds = level_thresholds(s, c)?;
                let (eval, eval_stats) =
                    evaluate_into(binner, sample, thresholds, &worker_config, &mut reminer)?;
                if sel.consume(eval, eval_stats, &mut improved, &mut conf_stale) {
                    break;
                }
            }
        } else {
            let budget_left = config.max_evaluations.saturating_sub(sel.trace.len());
            if budget_left == 0 {
                break 'search;
            }
            // Evaluate up to the remaining budget concurrently, then
            // replay the batch in order. Evaluations past a
            // confidence-patience stop are computed but discarded —
            // exactly what the sequential walk would never have run.
            let take = conf_levels.len().min(budget_left);
            let points: Vec<Thresholds> = conf_levels[..take]
                .iter()
                .map(|&c| level_thresholds(s, c))
                .collect::<Result<_, _>>()?;
            let (batch, batch_recovery) = evaluate_batch(
                &index,
                gk,
                binner,
                sample,
                &points,
                &worker_config,
                config.threads,
            )?;
            // Merged before the replay: evaluations past an early-stop
            // point are discarded, but an absorbed panic is not.
            sel.stats.recovery.merge(&batch_recovery);
            let mut stopped_early = false;
            for (eval, eval_stats) in batch {
                if sel.consume(eval, eval_stats, &mut improved, &mut conf_stale) {
                    stopped_early = true;
                    break;
                }
            }
            // The budget truncated this level's walk mid-way: the
            // sequential search stops the whole run here, before any
            // staleness bookkeeping.
            if !stopped_early && take < conf_levels.len() {
                break 'search;
            }
        }

        if improved {
            stale = 0;
        } else if sel.best.is_some() {
            // Only start counting staleness once something was found.
            stale += 1;
            if stale >= config.patience {
                break;
            }
        }
    }

    match sel.best.or(sel.best_any) {
        Some(best) => Ok(OptimizeResult { best, trace: sel.trace, stats: sel.stats }),
        None => Err(ArcsError::NoSegmentation),
    }
}

/// Backs a lattice point off a hair below the observed values so cells
/// *at* the threshold still qualify despite floating-point rounding.
fn level_thresholds(s: f64, c: f64) -> Result<Thresholds, ArcsError> {
    Thresholds::new((s - 1e-12).max(0.0), (c - 1e-12).max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_data::schema::{Attribute, Schema};
    use arcs_data::{Dataset, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::quantitative("x", 0.0, 10.0),
            Attribute::quantitative("y", 0.0, 10.0),
            Attribute::categorical("g", ["A", "other"]),
        ])
        .unwrap()
    }

    /// A dataset with a dense Group-A block in x,y ∈ [2, 5) and background
    /// "other" tuples everywhere.
    fn blocky_dataset() -> Dataset {
        let mut ds = Dataset::new(schema());
        for ix in 0..10 {
            for iy in 0..10 {
                let x = ix as f64 + 0.5;
                let y = iy as f64 + 0.5;
                let in_block = (2..5).contains(&ix) && (2..5).contains(&iy);
                let (n_a, n_other) = if in_block { (20, 2) } else { (0, 5) };
                for _ in 0..n_a {
                    ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(0)]).unwrap();
                }
                for _ in 0..n_other {
                    ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(1)]).unwrap();
                }
            }
        }
        ds
    }

    fn binner() -> Binner {
        Binner::equi_width(&schema(), "x", "y", "g", 10, 10).unwrap()
    }

    #[test]
    fn lattice_enumerates_occurring_thresholds() {
        let b = binner();
        let ds = blocky_dataset();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let lattice = ThresholdLattice::build(&ba, 0);
        assert!(!lattice.is_empty());
        // Only cells in the block have group-0 tuples, all with count 20:
        // one unique support level.
        assert_eq!(lattice.supports().len(), 1);
        let s = lattice.supports()[0];
        assert!((s - 20.0 / ba.n_tuples() as f64).abs() < 1e-12);
        // All those cells share confidence 20/22.
        assert_eq!(lattice.confidences_for(0), &[20.0 / 22.0]);
    }

    #[test]
    fn lattice_supports_ascend_and_confidences_narrow() {
        let mut ba = BinArray::new(4, 4, 2).unwrap();
        // Three cells with distinct counts and confidences.
        for _ in 0..10 {
            ba.add(0, 0, 0);
        }
        for _ in 0..10 {
            ba.add(0, 0, 1);
        }
        for _ in 0..20 {
            ba.add(1, 1, 0);
        }
        for _ in 0..5 {
            ba.add(1, 1, 1);
        }
        for _ in 0..30 {
            ba.add(2, 2, 0);
        }
        let lattice = ThresholdLattice::build(&ba, 0);
        let sup = lattice.supports();
        assert_eq!(sup.len(), 3);
        assert!(sup.windows(2).all(|w| w[0] < w[1]));
        // At the lowest support all three confidences appear; at the
        // highest only one.
        assert_eq!(lattice.confidences_for(0).len(), 3);
        assert_eq!(lattice.confidences_for(2).len(), 1);
    }

    #[test]
    fn lattice_empty_for_empty_array() {
        let ba = BinArray::new(3, 3, 2).unwrap();
        assert!(ThresholdLattice::build(&ba, 0).is_empty());
    }

    #[test]
    fn subsample_keeps_endpoints() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = ThresholdLattice::subsample(&values, 5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[4], 99.0);
        assert!(s.windows(2).all(|w| w[0] < w[1]));

        let small = vec![1.0, 2.0];
        assert_eq!(ThresholdLattice::subsample(&small, 5), small);
        assert_eq!(ThresholdLattice::subsample(&values, 1), vec![0.0]);
    }

    #[test]
    fn optimizer_recovers_the_block() {
        let ds = blocky_dataset();
        let b = binner();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let sample: Vec<&Tuple> = ds.iter().collect();
        let config = OptimizerConfig {
            // Small grid: disable fraction pruning so the 3x3 block (9% of
            // the grid) is never at risk.
            bitop: BitOpConfig::no_pruning(),
            ..OptimizerConfig::default()
        };
        let result = optimize(&ba, 0, &b, &sample, &config).unwrap();
        assert_eq!(result.best.clusters.len(), 1);
        let rect = result.best.clusters[0];
        assert_eq!((rect.x0, rect.y0, rect.x1, rect.y1), (2, 2, 4, 4));
        assert_eq!(result.best.errors.false_negatives, 0);
        assert!(!result.trace.is_empty());
    }

    #[test]
    fn optimizer_errors_on_empty_data() {
        let b = binner();
        let ba = b.new_bin_array().unwrap();
        let err = optimize(&ba, 0, &b, &[], &OptimizerConfig::default()).unwrap_err();
        assert_eq!(err, ArcsError::NoSegmentation);
    }

    #[test]
    fn optimizer_respects_evaluation_budget() {
        let ds = blocky_dataset();
        let b = binner();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let sample: Vec<&Tuple> = ds.iter().collect();
        let config = OptimizerConfig {
            max_evaluations: 1,
            bitop: BitOpConfig::no_pruning(),
            ..OptimizerConfig::default()
        };
        let result = optimize(&ba, 0, &b, &sample, &config).unwrap();
        assert_eq!(result.trace.len(), 1);
    }

    #[test]
    fn parallel_search_is_bit_identical_to_sequential() {
        let ds = blocky_dataset();
        let b = binner();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let sample: Vec<&Tuple> = ds.iter().collect();
        let base = OptimizerConfig {
            bitop: BitOpConfig { threads: 1, ..BitOpConfig::no_pruning() },
            threads: 1,
            ..OptimizerConfig::default()
        };
        let sequential = optimize(&ba, 0, &b, &sample, &base).unwrap();
        // Delta-mining work counters are schedule-dependent (each parallel
        // worker starts its own crossing chain), as is the pool telemetry
        // inside `recovery` (tasks run, steals, queue depth, effective
        // workers); everything else must be bit-identical.
        let normalized = |stats: SearchStats| SearchStats {
            cells_visited: 0,
            remine_delta_hits: 0,
            recovery: stats.recovery.faults_only(),
            ..stats
        };
        for threads in [2, 4, 8] {
            let config = OptimizerConfig { threads, ..base.clone() };
            let parallel = optimize(&ba, 0, &b, &sample, &config).unwrap();
            assert_eq!(parallel.best, sequential.best, "threads = {threads}");
            assert_eq!(parallel.trace, sequential.trace, "threads = {threads}");
            assert_eq!(
                normalized(parallel.stats),
                normalized(sequential.stats),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_search_respects_tight_budgets_identically() {
        let ds = blocky_dataset();
        let b = binner();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let sample: Vec<&Tuple> = ds.iter().collect();
        for max_evaluations in [1, 2, 3, 5] {
            let base = OptimizerConfig {
                max_evaluations,
                bitop: BitOpConfig { threads: 1, ..BitOpConfig::no_pruning() },
                threads: 1,
                ..OptimizerConfig::default()
            };
            let sequential = optimize(&ba, 0, &b, &sample, &base).unwrap();
            assert_eq!(sequential.trace.len().min(max_evaluations), sequential.trace.len());
            let parallel = optimize(
                &ba,
                0,
                &b,
                &sample,
                &OptimizerConfig { threads: 4, ..base },
            )
            .unwrap();
            assert_eq!(parallel.trace, sequential.trace, "budget {max_evaluations}");
            assert_eq!(parallel.best, sequential.best, "budget {max_evaluations}");
        }
    }

    #[test]
    fn search_stats_count_lattice_and_bitop_work() {
        let ds = blocky_dataset();
        let b = binner();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let sample: Vec<&Tuple> = ds.iter().collect();
        let config = OptimizerConfig {
            bitop: BitOpConfig::no_pruning(),
            ..OptimizerConfig::default()
        };
        let result = optimize(&ba, 0, &b, &sample, &config).unwrap();
        // Every cell of the 10x10 demo grid is occupied.
        assert_eq!(result.stats.occupied_cells, 100);
        assert!(result.stats.candidates_enumerated > 0);
        // The search is output-sensitive: only the 9 block cells carry
        // group-0 tuples, so no evaluation may examine more than those —
        // a full-rescan miner would report 100 per evaluation.
        assert!(result.stats.cells_visited > 0);
        assert!(
            result.stats.cells_visited <= 9 * result.trace.len() as u64,
            "visited {} cells over {} evaluations",
            result.stats.cells_visited,
            result.trace.len()
        );
        // The word kernel ran: 10-wide rows pack into one word each.
        assert!(result.stats.smooth_words_processed >= 10 * result.trace.len() as u64);
    }

    #[test]
    fn zero_threads_rejected() {
        let b = binner();
        let ba = b.new_bin_array().unwrap();
        let bad = OptimizerConfig { threads: 0, ..OptimizerConfig::default() };
        assert!(matches!(
            optimize(&ba, 0, &b, &[], &bad),
            Err(ArcsError::InvalidConfig(_))
        ));
    }

    #[test]
    fn optimizer_config_validates() {
        let ds = blocky_dataset();
        let b = binner();
        let ba = b.bin_rows(ds.iter()).unwrap();
        for bad in [
            OptimizerConfig { epsilon: -1.0, ..OptimizerConfig::default() },
            OptimizerConfig { patience: 0, ..OptimizerConfig::default() },
            OptimizerConfig { max_evaluations: 0, ..OptimizerConfig::default() },
        ] {
            assert!(optimize(&ba, 0, &b, &[], &bad).is_err());
        }
    }

    /// On data with heavy label noise the MDL formula alone would prefer a
    /// near-empty segmentation; the recall guard must keep the covering
    /// one (see DESIGN.md).
    #[test]
    fn recall_guard_rejects_degenerate_segmentations() {
        // The block plus one ultra-pure tiny cell elsewhere. Heavy noise
        // inside the block keeps its confidence moderate; the tiny cell is
        // pure. Without the guard the 1-cluster "pure speck" solution can
        // win on MDL.
        let mut ds = Dataset::new(schema());
        for ix in 0..10 {
            for iy in 0..10 {
                let x = ix as f64 + 0.5;
                let y = iy as f64 + 0.5;
                let in_block = (2..5).contains(&ix) && (2..5).contains(&iy);
                let pure_speck = ix == 8 && iy == 8;
                let (n_a, n_other) = if in_block {
                    (20, 12) // conf ~0.63: noisy
                } else if pure_speck {
                    (25, 0) // conf 1.0
                } else {
                    (0, 5)
                };
                for _ in 0..n_a {
                    ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(0)]).unwrap();
                }
                for _ in 0..n_other {
                    ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(1)]).unwrap();
                }
            }
        }
        let b = binner();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let sample: Vec<&Tuple> = ds.iter().collect();
        let config = OptimizerConfig {
            bitop: BitOpConfig::no_pruning(),
            ..OptimizerConfig::default()
        };
        let result = optimize(&ba, 0, &b, &sample, &config).unwrap();
        // The chosen segmentation must identify most of group A — i.e.
        // include the block, not just the speck.
        assert!(
            result.best.errors.recall() >= 0.5,
            "recall {} with clusters {:?}",
            result.best.errors.recall(),
            result.best.clusters
        );
        assert!(result
            .best
            .clusters
            .iter()
            .any(|r| r.contains(3, 3)), "block not covered: {:?}", result.best.clusters);
    }

    /// When *no* candidate reaches the recall guard, the optimizer falls
    /// back to the best unguarded candidate instead of erroring.
    #[test]
    fn recall_guard_falls_back_when_nothing_qualifies() {
        // A 2x2 group-A block plus scattered single-cell group-A strays.
        // Pruning (min area 2) always drops the 1-cell stray clusters, so
        // no candidate can cover every group tuple; with
        // min_group_recall = 1.0 nothing qualifies and the optimizer must
        // fall back to the best unguarded segmentation (the block).
        let mut ds = Dataset::new(schema());
        for (ix, iy) in [(2, 2), (2, 3), (3, 2), (3, 3)] {
            for _ in 0..30 {
                ds.push(vec![
                    Value::Quant(ix as f64 + 0.5),
                    Value::Quant(iy as f64 + 0.5),
                    Value::Cat(0),
                ])
                .unwrap();
            }
        }
        for (x, y) in [(7.5, 1.5), (1.5, 7.5), (8.5, 8.5)] {
            for _ in 0..30 {
                ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(0)]).unwrap();
            }
        }
        for _ in 0..100 {
            ds.push(vec![Value::Quant(5.5), Value::Quant(5.5), Value::Cat(1)]).unwrap();
        }
        let b = binner();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let sample: Vec<&Tuple> = ds.iter().collect();
        let config = OptimizerConfig {
            min_group_recall: 1.0,
            smoothing: crate::smooth::SmoothConfig::disabled(),
            bitop: BitOpConfig {
                min_area_fraction: 0.0,
                min_area_cells: 2,
                max_clusters: 100,
                threads: 1,
            },
            ..OptimizerConfig::default()
        };
        let result = optimize(&ba, 0, &b, &sample, &config).unwrap();
        assert!(!result.best.clusters.is_empty());
        assert!(result.best.errors.recall() < 1.0);
        assert!(result.best.clusters.iter().any(|r| r.contains(2, 2)));
    }

    #[test]
    fn wall_clock_budget_stops_the_search() {
        let ds = blocky_dataset();
        let b = binner();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let sample: Vec<&Tuple> = ds.iter().collect();
        // An already-expired budget: at most one confidence loop entry per
        // support level is even attempted — in fact none, so the optimizer
        // reports NoSegmentation.
        let config = OptimizerConfig {
            max_wall_time: Some(std::time::Duration::ZERO),
            ..OptimizerConfig::default()
        };
        let result = optimize(&ba, 0, &b, &sample, &config);
        assert!(matches!(result, Err(ArcsError::NoSegmentation)));
        // A generous budget behaves like no budget.
        let config = OptimizerConfig {
            max_wall_time: Some(std::time::Duration::from_secs(3600)),
            bitop: BitOpConfig::no_pruning(),
            ..OptimizerConfig::default()
        };
        let result = optimize(&ba, 0, &b, &sample, &config).unwrap();
        assert_eq!(result.best.clusters.len(), 1);
    }

    #[test]
    fn min_group_recall_validates() {
        let b = binner();
        let ba = b.new_bin_array().unwrap();
        let bad = OptimizerConfig { min_group_recall: 1.5, ..OptimizerConfig::default() };
        assert!(matches!(
            optimize(&ba, 0, &b, &[], &bad),
            Err(ArcsError::InvalidConfig(_))
        ));
    }

    #[test]
    fn evaluate_reports_consistent_score() {
        let ds = blocky_dataset();
        let b = binner();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let sample: Vec<&Tuple> = ds.iter().collect();
        let config = OptimizerConfig::default();
        let eval = evaluate(
            &ba,
            0,
            &b,
            &sample,
            Thresholds::new(0.001, 0.5).unwrap(),
            &config,
        )
        .unwrap();
        assert_eq!(eval.score.n_clusters, eval.clusters.len());
        assert_eq!(eval.score.errors, eval.errors.total());
    }

    #[test]
    fn raising_support_above_everything_yields_no_clusters() {
        let ds = blocky_dataset();
        let b = binner();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let config = OptimizerConfig::default();
        let eval = evaluate(
            &ba,
            0,
            &b,
            &[],
            Thresholds::new(0.99, 0.0).unwrap(),
            &config,
        )
        .unwrap();
        assert!(eval.clusters.is_empty());
    }
}
