//! Stage-level observability for the execution layer.
//!
//! The pipeline runs in well-defined stages (bin → sample → threshold
//! search → decode); this module gives each a wall-clock timing, a set of
//! work counters that make the parallel execution layer's speedups
//! measurable, an [`Observer`] trait the pipeline reports into, and a
//! dependency-free JSON rendering for `arcs segment --stats json` and the
//! benchmark harness.

use std::time::Duration;

/// Resolves the default worker-thread count for the execution layer:
/// [`std::thread::available_parallelism`], or 1 when the platform cannot
/// report it.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// The pipeline stages reported to an [`Observer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Streaming tuples into the `BinArray` (the only stage that touches
    /// the source data).
    Binning,
    /// Drawing the verification sample.
    Sampling,
    /// The threshold search: mine → smooth → cluster → verify per lattice
    /// cell.
    Search,
    /// Decoding winning clusters back to attribute-range rules.
    Decode,
}

impl Stage {
    /// Stable lowercase stage name (used as the JSON key).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Binning => "binning",
            Stage::Sampling => "sampling",
            Stage::Search => "search",
            Stage::Decode => "decode",
        }
    }
}

/// Wall-clock time spent per pipeline stage. Repeated runs against one
/// session (e.g. `segment_all`) accumulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTimings {
    /// Time binning tuples into the `BinArray`.
    pub binning: Duration,
    /// Time drawing the verification sample.
    pub sampling: Duration,
    /// Time in the threshold search (mine/smooth/cluster/verify).
    pub search: Duration,
    /// Time decoding clusters to rules.
    pub decode: Duration,
}

impl StageTimings {
    /// Sum of all stage timings.
    pub fn total(&self) -> Duration {
        self.binning + self.sampling + self.search + self.decode
    }

    /// Adds `elapsed` to the given stage's tally.
    pub fn record(&mut self, stage: Stage, elapsed: Duration) {
        let slot = match stage {
            Stage::Binning => &mut self.binning,
            Stage::Sampling => &mut self.sampling,
            Stage::Search => &mut self.search,
            Stage::Decode => &mut self.decode,
        };
        *slot += elapsed;
    }
}

/// Work counters accumulated across a session's pipeline runs. Parallel
/// execution reports exactly the same values as sequential execution —
/// the counters describe the work, not the schedule — except the
/// delta-mining tallies (`cells_visited`, `remine_delta_hits`), which
/// depend on how the search's threshold walk was chained across workers
/// (see [`SearchStats`](crate::optimizer::SearchStats)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineCounters {
    /// Tuples streamed into the `BinArray`.
    pub tuples_binned: u64,
    /// Occupied `BinArray` cells scanned while building threshold
    /// lattices.
    pub occupied_cells: u64,
    /// Rules emitted by the engine at the winning (or requested)
    /// thresholds.
    pub rules_emitted: u64,
    /// Candidate rectangles enumerated by BitOp across all evaluations.
    pub candidates_enumerated: u64,
    /// Residual candidates suppressed by the minimum-area prune when the
    /// greedy loop terminated.
    pub clusters_pruned: u64,
    /// `(support, confidence)` evaluations the threshold search ran.
    pub evaluations: u64,
    /// Indexed cells the output-sensitive re-miner examined (delta
    /// updates plus explicit re-mines). A full-rescan miner would report
    /// `nx · ny` per re-mine; this stays proportional to occupied and
    /// threshold-crossing cells.
    pub cells_visited: u64,
    /// Cells whose rule qualification actually flipped during delta
    /// re-mining.
    pub remine_delta_hits: u64,
    /// Packed 64-bit row words the word-parallel smoothing kernel
    /// processed.
    pub smooth_words_processed: u64,
    /// Verifier false positives of the winning segmentations.
    pub verifier_false_positives: u64,
    /// Verifier false negatives of the winning segmentations.
    pub verifier_false_negatives: u64,
    /// Parallel worker panics caught and isolated (0 in healthy runs).
    pub worker_panics: u64,
    /// Bounded retries of panicked shards/batches.
    pub shard_retries: u64,
    /// Shards/batches that exhausted retries and were recomputed on the
    /// sequential fallback path.
    pub sequential_fallbacks: u64,
    /// Bin-halving steps the resource governor took to fit the grid into
    /// the configured memory budget (0 when no coarsening was needed).
    pub budget_coarsening_steps: u64,
    /// Requests the serving core admitted past its in-flight gate.
    pub requests_admitted: u64,
    /// Requests the serving core shed with a typed `Overloaded` error
    /// because both the in-flight slots and the wait queue were full.
    pub requests_shed: u64,
    /// Requests that failed with a typed `DeadlineExceeded` error, either
    /// while queued for admission or between pipeline stages.
    pub requests_timed_out: u64,
    /// Request retries after an isolated worker panic in the serving core.
    pub request_retries: u64,
    /// Serving-core result-cache hits (a repeated `(epoch, thresholds,
    /// cluster config)` lattice point answered without re-mining).
    pub cache_hits: u64,
    /// Serving-core result-cache misses (fresh computations).
    pub cache_misses: u64,
    /// Copy-on-write snapshot swaps the serving core published (streaming
    /// appends merged into a new epoch).
    pub snapshot_swaps: u64,
    /// WAL records a replication primary shipped to standbys.
    pub repl_records_shipped: u64,
    /// Shipped WAL records a standby verified and applied.
    pub repl_records_applied: u64,
    /// Shipped batches a standby refused over a sequence gap or a failed
    /// checksum (each triggers a re-sync, never a partial apply).
    pub repl_gaps_refused: u64,
    /// Full checkpoint transfers a standby installed (bootstrap included).
    pub repl_resyncs: u64,
    /// Replication heartbeat rounds served or completed.
    pub repl_heartbeats: u64,
    /// Shard tasks executed through the persistent worker pool
    /// ([`ExecPool`](crate::exec::ExecPool)) across all parallel calls.
    pub pool_tasks_run: u64,
    /// Pool shard tasks executed by pool workers rather than the
    /// submitting thread (schedule-dependent; see
    /// [`PoolStats`](crate::exec::PoolStats)).
    pub pool_steals: u64,
    /// Deepest injector backlog observed at submit time across all pool
    /// calls (merged by maximum, not summed).
    pub pool_max_queue_depth: u64,
    /// Largest effective worker count any parallel call actually used
    /// after input-size clamping (merged by maximum). When this stays at
    /// 1 despite `threads > 1`, every input was small enough to take the
    /// sequential path.
    pub workers_effective: u64,
}

impl PipelineCounters {
    /// Adds `other`'s tallies into `self`.
    pub fn merge(&mut self, other: &PipelineCounters) {
        self.tuples_binned += other.tuples_binned;
        self.occupied_cells += other.occupied_cells;
        self.rules_emitted += other.rules_emitted;
        self.candidates_enumerated += other.candidates_enumerated;
        self.clusters_pruned += other.clusters_pruned;
        self.evaluations += other.evaluations;
        self.cells_visited += other.cells_visited;
        self.remine_delta_hits += other.remine_delta_hits;
        self.smooth_words_processed += other.smooth_words_processed;
        self.verifier_false_positives += other.verifier_false_positives;
        self.verifier_false_negatives += other.verifier_false_negatives;
        self.worker_panics += other.worker_panics;
        self.shard_retries += other.shard_retries;
        self.sequential_fallbacks += other.sequential_fallbacks;
        self.budget_coarsening_steps += other.budget_coarsening_steps;
        self.requests_admitted += other.requests_admitted;
        self.requests_shed += other.requests_shed;
        self.requests_timed_out += other.requests_timed_out;
        self.request_retries += other.request_retries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.snapshot_swaps += other.snapshot_swaps;
        self.repl_records_shipped += other.repl_records_shipped;
        self.repl_records_applied += other.repl_records_applied;
        self.repl_gaps_refused += other.repl_gaps_refused;
        self.repl_resyncs += other.repl_resyncs;
        self.repl_heartbeats += other.repl_heartbeats;
        self.pool_tasks_run += other.pool_tasks_run;
        self.pool_steals += other.pool_steals;
        self.pool_max_queue_depth = self.pool_max_queue_depth.max(other.pool_max_queue_depth);
        self.workers_effective = self.workers_effective.max(other.workers_effective);
    }

    /// Folds panic-isolation and pool-scheduling tallies from one
    /// parallel call into the session counters.
    pub fn record_recovery(&mut self, recovery: &RecoveryStats) {
        self.worker_panics += recovery.worker_panics;
        self.shard_retries += recovery.shard_retries;
        self.sequential_fallbacks += recovery.sequential_fallbacks;
        self.pool_tasks_run += recovery.pool_tasks_run;
        self.pool_steals += recovery.pool_steals;
        self.pool_max_queue_depth = self.pool_max_queue_depth.max(recovery.pool_max_queue_depth);
        self.workers_effective = self.workers_effective.max(recovery.effective_workers);
    }
}

/// Tallies from panic isolation and pool scheduling in one parallel
/// call. The fault fields are all zero in healthy runs; the result data
/// is bit-identical either way.
///
/// # The retry-accounting contract
///
/// Every parallel stage (binner shards, BitOp stripes, optimizer batch
/// points, stream chunks) accounts for a panicked work unit through one
/// shared helper ([`run_recovered`](crate::exec::run_recovered)) with one
/// order, so identical fault schedules produce identical tallies across
/// stages:
///
/// 1. the *initial* caught panic increments `worker_panics` once;
/// 2. each bounded retry increments `shard_retries` **before** the
///    attempt runs, and `worker_panics` again if that attempt panics;
/// 3. exhausting [`MAX_SHARD_RETRIES`](crate::exec::MAX_SHARD_RETRIES)
///    increments `sequential_fallbacks` once for the fault-free
///    recomputation.
///
/// A unit that panics persistently therefore tallies
/// `(worker_panics, shard_retries, sequential_fallbacks)` =
/// `(1 + MAX_SHARD_RETRIES, MAX_SHARD_RETRIES, 1)`; a single transient
/// panic tallies `(1, 1, 0)`. `tests/faults.rs` asserts this contract
/// holds identically for the binner and BitOp under the same schedule.
///
/// The pool fields (`pool_*`, `effective_workers`) describe the
/// *schedule*, not the work: they legitimately differ across thread
/// counts while results stay bit-identical. Cross-thread-count equality
/// tests should compare [`faults_only`](RecoveryStats::faults_only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Worker panics caught by the isolation layer.
    pub worker_panics: u64,
    /// Retry attempts for panicked shards/batches.
    pub shard_retries: u64,
    /// Shards/batches recomputed sequentially after retries were
    /// exhausted.
    pub sequential_fallbacks: u64,
    /// Shard tasks this call executed through the persistent pool.
    pub pool_tasks_run: u64,
    /// Shards executed by pool workers rather than the submitting thread.
    pub pool_steals: u64,
    /// Deepest injector backlog observed while submitting (merge: max).
    pub pool_max_queue_depth: u64,
    /// Worker slots the call actually used after input-size clamping
    /// (merge: max). Stays 1 when the input was too small to go
    /// parallel — the observable signal that a `threads > 1` request
    /// took the sequential path.
    pub effective_workers: u64,
}

impl RecoveryStats {
    /// Adds `other`'s tallies into `self` (`max` for the high-water
    /// fields `pool_max_queue_depth` / `effective_workers`).
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.worker_panics += other.worker_panics;
        self.shard_retries += other.shard_retries;
        self.sequential_fallbacks += other.sequential_fallbacks;
        self.pool_tasks_run += other.pool_tasks_run;
        self.pool_steals += other.pool_steals;
        self.pool_max_queue_depth = self.pool_max_queue_depth.max(other.pool_max_queue_depth);
        self.effective_workers = self.effective_workers.max(other.effective_workers);
    }

    /// `true` when any fault was observed (pool scheduling fields do not
    /// count — they are populated in healthy runs too).
    pub fn any(&self) -> bool {
        self.worker_panics > 0 || self.shard_retries > 0 || self.sequential_fallbacks > 0
    }

    /// Copy with the schedule-dependent pool fields zeroed, keeping only
    /// the fault tallies — the projection to compare across thread
    /// counts, where the schedule legitimately differs but fault
    /// accounting must not.
    pub fn faults_only(&self) -> RecoveryStats {
        RecoveryStats {
            worker_panics: self.worker_panics,
            shard_retries: self.shard_retries,
            sequential_fallbacks: self.sequential_fallbacks,
            ..RecoveryStats::default()
        }
    }

    /// Folds one pool call's scheduling stats into this record.
    pub fn record_pool(&mut self, pool: &crate::exec::PoolStats) {
        self.pool_tasks_run += pool.tasks_run;
        self.pool_steals += pool.steals;
        self.pool_max_queue_depth = self.pool_max_queue_depth.max(pool.max_queue_depth);
        self.effective_workers = self.effective_workers.max(pool.effective_workers);
    }
}

/// Callback interface the pipeline reports into. All methods have empty
/// defaults, so an observer implements only what it cares about.
///
/// Observers are driven at stage granularity from the session's thread —
/// worker threads never call into an observer, so implementations need no
/// internal synchronisation.
pub trait Observer {
    /// A pipeline stage finished.
    fn stage_completed(&mut self, stage: Stage, elapsed: Duration) {
        let _ = (stage, elapsed);
    }

    /// The session's cumulative counters changed.
    fn counters_updated(&mut self, counters: &PipelineCounters) {
        let _ = counters;
    }
}

/// The full observability report of one session: stage timings, work
/// counters, and the worker-thread count the execution layer used.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PipelineReport {
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Accumulated work counters.
    pub counters: PipelineCounters,
    /// Worker threads the execution layer was configured with.
    pub threads: usize,
}

/// Version of the JSON schema emitted by [`PipelineReport::to_json`];
/// bumped on any incompatible key change (CI validates against it).
pub const REPORT_SCHEMA_VERSION: u32 = 1;

fn push_ms(out: &mut String, key: &str, d: Duration, trailing_comma: bool) {
    out.push_str(&format!(
        "\"{key}\":{:.3}{}",
        d.as_secs_f64() * 1e3,
        if trailing_comma { "," } else { "" }
    ));
}

impl PipelineReport {
    /// Renders the report as a single-line JSON object (hand-rolled — the
    /// offline build has no serde). Key set is stable under
    /// [`REPORT_SCHEMA_VERSION`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        out.push_str(&format!("\"schema_version\":{REPORT_SCHEMA_VERSION},"));
        out.push_str(&format!("\"threads\":{},", self.threads));
        out.push_str("\"timings_ms\":{");
        push_ms(&mut out, "binning", self.timings.binning, true);
        push_ms(&mut out, "sampling", self.timings.sampling, true);
        push_ms(&mut out, "search", self.timings.search, true);
        push_ms(&mut out, "decode", self.timings.decode, true);
        push_ms(&mut out, "total", self.timings.total(), false);
        out.push_str("},");
        let c = &self.counters;
        out.push_str("\"counters\":{");
        out.push_str(&format!("\"tuples_binned\":{},", c.tuples_binned));
        out.push_str(&format!("\"occupied_cells\":{},", c.occupied_cells));
        out.push_str(&format!("\"rules_emitted\":{},", c.rules_emitted));
        out.push_str(&format!(
            "\"candidates_enumerated\":{},",
            c.candidates_enumerated
        ));
        out.push_str(&format!("\"clusters_pruned\":{},", c.clusters_pruned));
        out.push_str(&format!("\"evaluations\":{},", c.evaluations));
        out.push_str(&format!("\"cells_visited\":{},", c.cells_visited));
        out.push_str(&format!("\"remine_delta_hits\":{},", c.remine_delta_hits));
        out.push_str(&format!(
            "\"smooth_words_processed\":{},",
            c.smooth_words_processed
        ));
        out.push_str(&format!(
            "\"verifier_false_positives\":{},",
            c.verifier_false_positives
        ));
        out.push_str(&format!(
            "\"verifier_false_negatives\":{},",
            c.verifier_false_negatives
        ));
        out.push_str(&format!("\"worker_panics\":{},", c.worker_panics));
        out.push_str(&format!("\"shard_retries\":{},", c.shard_retries));
        out.push_str(&format!(
            "\"sequential_fallbacks\":{},",
            c.sequential_fallbacks
        ));
        out.push_str(&format!(
            "\"budget_coarsening_steps\":{},",
            c.budget_coarsening_steps
        ));
        out.push_str(&format!("\"requests_admitted\":{},", c.requests_admitted));
        out.push_str(&format!("\"requests_shed\":{},", c.requests_shed));
        out.push_str(&format!("\"requests_timed_out\":{},", c.requests_timed_out));
        out.push_str(&format!("\"request_retries\":{},", c.request_retries));
        out.push_str(&format!("\"cache_hits\":{},", c.cache_hits));
        out.push_str(&format!("\"cache_misses\":{},", c.cache_misses));
        out.push_str(&format!("\"snapshot_swaps\":{},", c.snapshot_swaps));
        out.push_str(&format!(
            "\"repl_records_shipped\":{},",
            c.repl_records_shipped
        ));
        out.push_str(&format!(
            "\"repl_records_applied\":{},",
            c.repl_records_applied
        ));
        out.push_str(&format!("\"repl_gaps_refused\":{},", c.repl_gaps_refused));
        out.push_str(&format!("\"repl_resyncs\":{},", c.repl_resyncs));
        out.push_str(&format!("\"repl_heartbeats\":{},", c.repl_heartbeats));
        out.push_str(&format!("\"pool_tasks_run\":{},", c.pool_tasks_run));
        out.push_str(&format!("\"pool_steals\":{},", c.pool_steals));
        out.push_str(&format!(
            "\"pool_max_queue_depth\":{},",
            c.pool_max_queue_depth
        ));
        out.push_str(&format!("\"workers_effective\":{}", c.workers_effective));
        out.push_str("}}");
        out
    }
}

/// An [`Observer`] that accumulates everything it is told into a
/// [`PipelineReport`] — the built-in collector behind `--stats json`.
#[derive(Debug, Clone, Default)]
pub struct CollectingObserver {
    /// The report built so far.
    pub report: PipelineReport,
}

impl Observer for CollectingObserver {
    fn stage_completed(&mut self, stage: Stage, elapsed: Duration) {
        self.report.timings.record(stage, elapsed);
    }

    fn counters_updated(&mut self, counters: &PipelineCounters) {
        self.report.counters = *counters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_accumulate_and_total() {
        let mut t = StageTimings::default();
        t.record(Stage::Binning, Duration::from_millis(10));
        t.record(Stage::Binning, Duration::from_millis(5));
        t.record(Stage::Search, Duration::from_millis(20));
        assert_eq!(t.binning, Duration::from_millis(15));
        assert_eq!(t.total(), Duration::from_millis(35));
    }

    #[test]
    fn counters_merge() {
        let mut a = PipelineCounters { tuples_binned: 10, evaluations: 2, ..Default::default() };
        let b = PipelineCounters {
            tuples_binned: 5,
            rules_emitted: 3,
            verifier_false_negatives: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.tuples_binned, 15);
        assert_eq!(a.rules_emitted, 3);
        assert_eq!(a.evaluations, 2);
        assert_eq!(a.verifier_false_negatives, 1);
    }

    #[test]
    fn json_contains_the_full_schema() {
        let report = PipelineReport {
            threads: 4,
            timings: StageTimings {
                binning: Duration::from_millis(12),
                ..StageTimings::default()
            },
            counters: PipelineCounters { tuples_binned: 100, ..Default::default() },
        };
        let json = report.to_json();
        for key in [
            "\"schema_version\":1",
            "\"threads\":4",
            "\"timings_ms\"",
            "\"binning\":12.000",
            "\"sampling\"",
            "\"search\"",
            "\"decode\"",
            "\"total\"",
            "\"counters\"",
            "\"tuples_binned\":100",
            "\"occupied_cells\"",
            "\"rules_emitted\"",
            "\"candidates_enumerated\"",
            "\"clusters_pruned\"",
            "\"evaluations\"",
            "\"cells_visited\"",
            "\"remine_delta_hits\"",
            "\"smooth_words_processed\"",
            "\"verifier_false_positives\"",
            "\"verifier_false_negatives\"",
            "\"worker_panics\"",
            "\"shard_retries\"",
            "\"sequential_fallbacks\"",
            "\"budget_coarsening_steps\"",
            "\"requests_admitted\"",
            "\"requests_shed\"",
            "\"requests_timed_out\"",
            "\"request_retries\"",
            "\"cache_hits\"",
            "\"cache_misses\"",
            "\"snapshot_swaps\"",
            "\"repl_records_shipped\"",
            "\"repl_records_applied\"",
            "\"repl_gaps_refused\"",
            "\"repl_resyncs\"",
            "\"repl_heartbeats\"",
            "\"pool_tasks_run\"",
            "\"pool_steals\"",
            "\"pool_max_queue_depth\"",
            "\"workers_effective\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn collecting_observer_builds_a_report() {
        let mut obs = CollectingObserver::default();
        obs.stage_completed(Stage::Search, Duration::from_millis(7));
        let counters = PipelineCounters { evaluations: 9, ..Default::default() };
        obs.counters_updated(&counters);
        assert_eq!(obs.report.timings.search, Duration::from_millis(7));
        assert_eq!(obs.report.counters.evaluations, 9);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(Stage::Binning.name(), "binning");
        assert_eq!(Stage::Sampling.name(), "sampling");
        assert_eq!(Stage::Search.name(), "search");
        assert_eq!(Stage::Decode.name(), "decode");
    }
}
