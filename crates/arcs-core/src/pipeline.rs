//! The end-to-end ARCS pipeline (paper Figure 2).
//!
//! Wires together binner → association rule engine → clustering
//! (smooth + BitOp + prune) → verifier → heuristic optimizer, and decodes
//! the winning clusters into user-facing [`ClusteredRule`]s.
//!
//! The primary entry points are the session constructors —
//! [`Arcs::open`], [`Arcs::open_stream`] and [`Arcs::open_binned`] — which
//! bin once and return a [`Session`](crate::session::Session) for mining,
//! re-mining, and re-clustering. The deprecated five-argument `segment_*`
//! wrappers compile only under the `legacy-api` feature.

use arcs_data::{Dataset, Schema};
#[cfg(feature = "legacy-api")]
use arcs_data::Tuple;

use crate::binner::{Binner, BinningStrategy};
use crate::binning::BinMap;
use crate::cluster::{ClusteredRule, Rect};
use crate::engine::Thresholds;
use crate::error::ArcsError;
#[cfg(feature = "legacy-api")]
use crate::binarray::BinArray;
use crate::mdl::MdlScore;
use crate::optimizer::OptimizerConfig;
#[cfg(any(feature = "legacy-api", test))]
use crate::session::SegmentRequest;
use crate::verify::ErrorCounts;

/// Configuration of the whole ARCS system.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcsConfig {
    /// Number of x-attribute bins (the paper presets 50, §3.7).
    pub n_x_bins: usize,
    /// Number of y-attribute bins.
    pub n_y_bins: usize,
    /// Binning strategy for the LHS attributes.
    pub strategy: BinningStrategy,
    /// The heuristic optimizer's parameters (smoothing, BitOp, MDL, budget).
    pub optimizer: OptimizerConfig,
    /// Verification sample size (capped at the dataset size).
    pub sample_size: usize,
    /// RNG seed for sampling.
    pub seed: u64,
    /// Worker threads for the binning pass (sharded bin arrays merged
    /// deterministically). Defaults to the machine's available
    /// parallelism; the optimizer's search parallelism is configured
    /// separately via [`OptimizerConfig::threads`].
    pub threads: usize,
    /// When the optimizer finds no segmentation, walk the degradation
    /// ladder (floor thresholds, then disable smoothing, then disable
    /// pruning) instead of failing. The resulting [`Segmentation`] is
    /// marked [`degraded`](Segmentation::degraded). Disable for strict
    /// paper-faithful behaviour.
    pub degrade_on_no_segmentation: bool,
    /// Memory budget in bytes for the bin array. `None` (the default)
    /// only guards against address-space overflow. With a budget set,
    /// the resource governor halves the larger bin axis until the grid
    /// fits (marking the session's segmentations degraded), and refuses
    /// admission with [`ArcsError::BudgetExceeded`] when even the
    /// coarsest useful grid cannot fit. A per-session override is
    /// available via [`SegmentRequest::memory_budget`].
    pub memory_budget: Option<usize>,
}

impl Default for ArcsConfig {
    fn default() -> Self {
        ArcsConfig {
            n_x_bins: 50,
            n_y_bins: 50,
            strategy: BinningStrategy::EquiWidth,
            optimizer: OptimizerConfig::default(),
            sample_size: 2_000,
            seed: 0,
            threads: crate::metrics::default_threads(),
            degrade_on_no_segmentation: true,
            memory_budget: None,
        }
    }
}

/// The final output of ARCS: a segmentation of the attribute space for one
/// criterion group.
#[derive(Debug, Clone, PartialEq)]
pub struct Segmentation {
    /// The clustered association rules, decoded to attribute value ranges.
    pub rules: Vec<ClusteredRule>,
    /// The cluster rectangles in bin coordinates.
    pub clusters: Vec<Rect>,
    /// The thresholds the optimizer settled on.
    pub thresholds: Thresholds,
    /// MDL score of the winning segmentation.
    pub score: MdlScore,
    /// Verification errors of the winning segmentation on the sample.
    pub errors: ErrorCounts,
    /// Number of tuples binned.
    pub n_tuples: u64,
    /// Number of (support, confidence) evaluations the optimizer ran.
    pub evaluations: usize,
    /// Whether the result came from the degradation ladder rather than
    /// the normal threshold search.
    pub degraded: bool,
    /// The relaxation steps tried, in order, when `degraded` — the last
    /// entry is the one that produced this segmentation. Empty otherwise.
    pub relaxation_steps: Vec<String>,
}

/// Per-group segmentation outcomes from
/// [`Session::segment_all`](crate::session::Session::segment_all): one
/// `(group label, result)` entry per criterion value.
pub type GroupSegmentations = Vec<(String, Result<Segmentation, ArcsError>)>;

/// The configured ARCS system.
#[derive(Debug, Clone, PartialEq)]
pub struct Arcs {
    config: ArcsConfig,
}

impl Arcs {
    /// Creates the system with the given configuration.
    pub fn new(config: ArcsConfig) -> Result<Self, ArcsError> {
        if config.n_x_bins == 0 || config.n_y_bins == 0 {
            return Err(ArcsError::InvalidConfig("bin counts must be positive".into()));
        }
        if config.sample_size == 0 {
            return Err(ArcsError::InvalidConfig("sample_size must be positive".into()));
        }
        if config.threads == 0 {
            return Err(ArcsError::InvalidConfig("threads must be positive".into()));
        }
        Ok(Arcs { config })
    }

    /// Creates the system with the paper's default configuration.
    pub fn with_defaults() -> Self {
        Arcs { config: ArcsConfig::default() }
    }

    /// The active configuration.
    pub fn config(&self) -> &ArcsConfig {
        &self.config
    }

    /// Builds the binner for `(x_attr, y_attr, criterion_attr)`, realising
    /// the configured binning strategy at the bin counts the (possibly
    /// budget-coarsened) `plan` settled on. Equi-depth and homogeneity
    /// need the data columns, hence the optional `dataset`.
    pub(crate) fn build_binner(
        &self,
        schema: &Schema,
        x_attr: &str,
        y_attr: &str,
        criterion_attr: &str,
        dataset: Option<&Dataset>,
        plan: &crate::budget::BinPlan,
    ) -> Result<Binner, ArcsError> {
        let (n_x_bins, n_y_bins) = (plan.nx, plan.ny);
        match self.config.strategy {
            BinningStrategy::EquiWidth => Binner::equi_width(
                schema,
                x_attr,
                y_attr,
                criterion_attr,
                n_x_bins,
                n_y_bins,
            ),
            BinningStrategy::EquiDepth => {
                let ds = dataset.ok_or_else(|| {
                    ArcsError::InvalidConfig(
                        "equi-depth binning requires in-memory data (use Arcs::open)".into(),
                    )
                })?;
                let x_col = ds.quant_column(schema.require(x_attr)?)?;
                let y_col = ds.quant_column(schema.require(y_attr)?)?;
                let x_map = BinMap::equi_depth(&x_col, n_x_bins)?;
                let y_map = BinMap::equi_depth(&y_col, n_y_bins)?;
                Binner::with_maps(schema, x_attr, y_attr, criterion_attr, x_map, y_map)
            }
            BinningStrategy::Homogeneity { tolerance } => {
                let ds = dataset.ok_or_else(|| {
                    ArcsError::InvalidConfig(
                        "homogeneity binning requires in-memory data (use Arcs::open)".into(),
                    )
                })?;
                let x_col = ds.quant_column(schema.require(x_attr)?)?;
                let y_col = ds.quant_column(schema.require(y_attr)?)?;
                let x_map = BinMap::homogeneity(&x_col, n_x_bins, tolerance)?;
                let y_map = BinMap::homogeneity(&y_col, n_y_bins, tolerance)?;
                Binner::with_maps(schema, x_attr, y_attr, criterion_attr, x_map, y_map)
            }
        }
    }

    /// Segments an in-memory dataset: clusters the `(x_attr, y_attr)`
    /// space for the tuples whose `criterion_attr` equals `group_label`.
    ///
    /// Only compiled under the `legacy-api` feature; use the session API,
    /// which names the attributes once and keeps the binned state for
    /// re-mining:
    /// `arcs.open(&ds, SegmentRequest::new(x, y, criterion).group(label))?.segment()`.
    #[cfg(feature = "legacy-api")]
    #[deprecated(note = "use Arcs::open + Session::segment (see the session module)")]
    pub fn segment_dataset(
        &self,
        dataset: &Dataset,
        x_attr: &str,
        y_attr: &str,
        criterion_attr: &str,
        group_label: &str,
    ) -> Result<Segmentation, ArcsError> {
        let request =
            SegmentRequest::new(x_attr, y_attr, criterion_attr).group(group_label);
        self.open(dataset, request)?.segment()
    }

    /// Segments the dataset once per criterion group, re-using a single
    /// `BinArray` and verification sample — the paper's §3.1 point that
    /// keeping per-group counts lets "an entirely new segmentation for a
    /// different value of the segmentation criteria" be computed "without
    /// the need to re-bin the original data". Returns
    /// `(group_label, segmentation result)` per group; groups for which no
    /// segmentation exists (e.g. no rule ever qualifies) report their
    /// error.
    ///
    /// Only compiled under the `legacy-api` feature; use
    /// `arcs.open(&ds, SegmentRequest::new(x, y, criterion))?.segment_all()`.
    #[cfg(feature = "legacy-api")]
    #[deprecated(note = "use Arcs::open + Session::segment_all")]
    pub fn segment_all_groups(
        &self,
        dataset: &Dataset,
        x_attr: &str,
        y_attr: &str,
        criterion_attr: &str,
    ) -> Result<GroupSegmentations, ArcsError> {
        self.open(dataset, SegmentRequest::new(x_attr, y_attr, criterion_attr))?
            .segment_all()
    }

    /// Segments a tuple stream in one pass with an explicit verification
    /// sample (which must share `schema`). Only [`BinningStrategy::EquiWidth`]
    /// is possible here — the alternatives need a second look at the data.
    ///
    /// Only compiled under the `legacy-api` feature; use
    /// [`Arcs::open_stream`] + a [`SegmentRequest`].
    #[cfg(feature = "legacy-api")]
    #[deprecated(note = "use Arcs::open_stream + Session::segment")]
    #[allow(clippy::too_many_arguments)]
    pub fn segment_stream<I>(
        &self,
        schema: &Schema,
        tuples: I,
        x_attr: &str,
        y_attr: &str,
        criterion_attr: &str,
        group_label: &str,
        sample: &Dataset,
    ) -> Result<Segmentation, ArcsError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let request =
            SegmentRequest::new(x_attr, y_attr, criterion_attr).group(group_label);
        self.open_stream(schema, tuples, request, sample)?.segment()
    }

    /// Segments a pre-built [`BinArray`] (e.g. one resumed from a
    /// checkpoint) against an explicit verification sample. The `binner`
    /// must be the one that produced the array — its bin maps decode the
    /// clusters back to attribute ranges.
    ///
    /// Only compiled under the `legacy-api` feature; use
    /// [`Arcs::open_binned`] + a [`SegmentRequest`] (which take ownership
    /// and avoid this clone).
    #[cfg(feature = "legacy-api")]
    #[deprecated(note = "use Arcs::open_binned + Session::segment")]
    #[allow(clippy::too_many_arguments)]
    pub fn segment_binned(
        &self,
        array: &BinArray,
        binner: &Binner,
        sample: &Dataset,
        x_attr: &str,
        y_attr: &str,
        criterion_attr: &str,
        group_label: &str,
    ) -> Result<Segmentation, ArcsError> {
        let request =
            SegmentRequest::new(x_attr, y_attr, criterion_attr).group(group_label);
        self.open_binned(array.clone(), binner.clone(), sample, request)?.segment()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_data::agrawal::{self, AgrawalFunction};
    use arcs_data::generator::{AgrawalGenerator, GeneratorConfig};
    use arcs_data::schema::Attribute;
    use arcs_data::Value;

    fn small_schema() -> Schema {
        Schema::new(vec![
            Attribute::quantitative("x", 0.0, 10.0),
            Attribute::quantitative("y", 0.0, 10.0),
            Attribute::categorical("g", ["A", "other"]),
        ])
        .unwrap()
    }

    fn blocky_dataset() -> Dataset {
        let mut ds = Dataset::new(small_schema());
        for ix in 0..10 {
            for iy in 0..10 {
                let x = ix as f64 + 0.5;
                let y = iy as f64 + 0.5;
                let in_block = (2..5).contains(&ix) && (2..5).contains(&iy);
                let (n_a, n_other) = if in_block { (20, 2) } else { (0, 5) };
                for _ in 0..n_a {
                    ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(0)]).unwrap();
                }
                for _ in 0..n_other {
                    ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(1)]).unwrap();
                }
            }
        }
        ds
    }

    fn small_config() -> ArcsConfig {
        ArcsConfig {
            n_x_bins: 10,
            n_y_bins: 10,
            optimizer: OptimizerConfig {
                bitop: crate::bitop::BitOpConfig::no_pruning(),
                ..OptimizerConfig::default()
            },
            ..ArcsConfig::default()
        }
    }

    /// One-shot session segment, the shape the legacy five-argument
    /// wrapper used to provide.
    fn segment_once(
        arcs: &Arcs,
        ds: &Dataset,
        x: &str,
        y: &str,
        criterion: &str,
        group: &str,
    ) -> Result<Segmentation, ArcsError> {
        arcs.open(ds, SegmentRequest::new(x, y, criterion).group(group))?.segment()
    }

    #[test]
    fn segments_the_blocky_dataset() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        let seg = segment_once(&arcs, &ds, "x", "y", "g", "A").unwrap();
        assert_eq!(seg.clusters.len(), 1);
        assert_eq!(seg.rules.len(), 1);
        let rule = &seg.rules[0];
        assert_eq!(rule.x_range, (2.0, 5.0));
        assert_eq!(rule.y_range, (2.0, 5.0));
        assert_eq!(rule.group_label, "A");
        assert!(rule.confidence > 0.85);
        assert!(rule.support > 0.0);
        assert_eq!(seg.n_tuples, ds.len() as u64);
        assert!(seg.evaluations > 0);
    }

    #[test]
    fn unknown_labels_and_attrs_error() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        assert!(matches!(
            segment_once(&arcs, &ds, "x", "y", "g", "Z"),
            Err(ArcsError::UnknownGroup(_))
        ));
        assert!(segment_once(&arcs, &ds, "x", "y", "missing", "A").is_err());
        assert!(segment_once(&arcs, &ds, "missing", "y", "g", "A").is_err());
    }

    #[test]
    fn empty_dataset_errors() {
        let ds = Dataset::new(small_schema());
        let arcs = Arcs::new(small_config()).unwrap();
        assert!(segment_once(&arcs, &ds, "x", "y", "g", "A").is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Arcs::new(ArcsConfig { n_x_bins: 0, ..ArcsConfig::default() }).is_err());
        assert!(Arcs::new(ArcsConfig { sample_size: 0, ..ArcsConfig::default() }).is_err());
    }

    #[test]
    fn stream_and_dataset_agree() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        let from_ds = segment_once(&arcs, &ds, "x", "y", "g", "A").unwrap();
        // Stream the same tuples; use the full dataset as the sample.
        let from_stream = arcs
            .open_stream(
                ds.schema(),
                ds.iter().cloned(),
                SegmentRequest::new("x", "y", "g").group("A"),
                &ds,
            )
            .unwrap()
            .segment()
            .unwrap();
        assert_eq!(from_ds.clusters, from_stream.clusters);
    }

    #[test]
    fn equi_depth_strategy_works_in_memory() {
        let ds = blocky_dataset();
        let config = ArcsConfig {
            strategy: BinningStrategy::EquiDepth,
            ..small_config()
        };
        let arcs = Arcs::new(config).unwrap();
        let seg = segment_once(&arcs, &ds, "x", "y", "g", "A").unwrap();
        assert!(!seg.clusters.is_empty());
    }

    #[test]
    fn homogeneity_strategy_works_in_memory() {
        let ds = blocky_dataset();
        // Homogeneity binning can merge to very few (wide) bins; disable
        // smoothing so a one-bin-wide qualifying column is not eroded by
        // the low-pass filter before clustering.
        let mut config = ArcsConfig {
            strategy: BinningStrategy::Homogeneity { tolerance: 0.05 },
            ..small_config()
        };
        config.optimizer.smoothing = crate::smooth::SmoothConfig::disabled();
        let arcs = Arcs::new(config).unwrap();
        let seg = segment_once(&arcs, &ds, "x", "y", "g", "A").unwrap();
        assert!(!seg.clusters.is_empty());
        // The block must be identified despite data-driven bin edges.
        assert!(seg.errors.recall() > 0.8, "recall {}", seg.errors.recall());
    }

    #[test]
    fn equi_depth_strategy_rejected_for_streams() {
        let ds = blocky_dataset();
        let config = ArcsConfig {
            strategy: BinningStrategy::EquiDepth,
            ..small_config()
        };
        let arcs = Arcs::new(config).unwrap();
        let err = arcs
            .open_stream(
                ds.schema(),
                ds.iter().cloned(),
                SegmentRequest::new("x", "y", "g").group("A"),
                &ds,
            )
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ArcsError::InvalidConfig(_)));
    }

    #[test]
    fn segment_all_groups_shares_one_binning() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        let all = arcs
            .open(&ds, SegmentRequest::new("x", "y", "g"))
            .unwrap()
            .segment_all()
            .unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "A");
        assert_eq!(all[1].0, "other");
        let seg_a = all[0].1.as_ref().unwrap();
        assert_eq!(seg_a.clusters.len(), 1);
        // Must agree with the single-group entry point.
        let direct = segment_once(&arcs, &ds, "x", "y", "g", "A").unwrap();
        assert_eq!(seg_a.clusters, direct.clusters);
        // The complement group segments too (it covers the background).
        let seg_other = all[1].1.as_ref().unwrap();
        assert!(!seg_other.clusters.is_empty());
    }

    #[test]
    fn normal_segmentations_are_not_degraded() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        let seg = segment_once(&arcs, &ds, "x", "y", "g", "A").unwrap();
        assert!(!seg.degraded);
        assert!(seg.relaxation_steps.is_empty());
    }

    /// A dataset whose only group-A mass sits in one grid cell while the
    /// pruner demands clusters of at least four cells: every point in the
    /// threshold lattice clusters to nothing, so only the degradation
    /// ladder (which disables pruning as its last step) can produce a
    /// segmentation.
    fn speck_dataset() -> Dataset {
        let mut ds = Dataset::new(small_schema());
        for _ in 0..30 {
            ds.push(vec![Value::Quant(5.5), Value::Quant(5.5), Value::Cat(0)]).unwrap();
        }
        for ix in 0..10 {
            for iy in 0..10 {
                for _ in 0..3 {
                    ds.push(vec![
                        Value::Quant(ix as f64 + 0.5),
                        Value::Quant(iy as f64 + 0.5),
                        Value::Cat(1),
                    ])
                    .unwrap();
                }
            }
        }
        ds
    }

    fn strict_pruning_config() -> ArcsConfig {
        let mut config = small_config();
        config.optimizer.bitop = crate::bitop::BitOpConfig {
            min_area_fraction: 0.0,
            min_area_cells: 4,
            max_clusters: 100,
            threads: 1,
        };
        config
    }

    #[test]
    fn degradation_ladder_rescues_no_segmentation() {
        let ds = speck_dataset();
        let arcs = Arcs::new(strict_pruning_config()).unwrap();
        let seg = segment_once(&arcs, &ds, "x", "y", "g", "A").unwrap();
        assert!(seg.degraded);
        assert_eq!(
            seg.relaxation_steps,
            vec!["floor-thresholds", "disable-smoothing", "disable-pruning"]
        );
        assert!(!seg.clusters.is_empty());
        assert!(seg.clusters.iter().any(|r| r.contains(5, 5)));
    }

    #[test]
    fn degradation_can_be_disabled() {
        let ds = speck_dataset();
        let mut config = strict_pruning_config();
        config.degrade_on_no_segmentation = false;
        let arcs = Arcs::new(config).unwrap();
        assert!(matches!(
            segment_once(&arcs, &ds, "x", "y", "g", "A"),
            Err(ArcsError::NoSegmentation)
        ));
    }

    #[test]
    fn ladder_cannot_conjure_rules_from_an_absent_group() {
        // No group-A tuple at all: even the fully relaxed ladder must
        // report NoSegmentation rather than invent clusters.
        let mut ds = Dataset::new(small_schema());
        for i in 0..100 {
            ds.push(vec![
                Value::Quant((i % 10) as f64 + 0.5),
                Value::Quant((i / 10) as f64 + 0.5),
                Value::Cat(1),
            ])
            .unwrap();
        }
        let arcs = Arcs::new(small_config()).unwrap();
        assert!(matches!(
            segment_once(&arcs, &ds, "x", "y", "g", "A"),
            Err(ArcsError::NoSegmentation)
        ));
    }

    #[test]
    fn open_binned_matches_open() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        let direct = segment_once(&arcs, &ds, "x", "y", "g", "A").unwrap();

        // Re-create the pipeline's binner and array externally — the
        // checkpoint/resume path hands exactly this to open_binned.
        let binner = Binner::equi_width(ds.schema(), "x", "y", "g", 10, 10).unwrap();
        let array = binner.bin_rows(ds.iter()).unwrap();
        let seg = arcs
            .open_binned(array, binner, &ds, SegmentRequest::new("x", "y", "g").group("A"))
            .unwrap()
            .segment()
            .unwrap();
        assert_eq!(seg.clusters, direct.clusters);
        assert_eq!(seg.thresholds, direct.thresholds);
    }

    /// The paper's headline qualitative result (§4.2): on Function 2 data
    /// ARCS recovers three clustered rules closely matching the generating
    /// disjuncts.
    #[test]
    fn recovers_f2_disjuncts() {
        let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(2024)).unwrap();
        let ds = gen.generate(20_000);
        let arcs = Arcs::with_defaults();
        let seg = segment_once(&arcs, &ds, "age", "salary", "group", "A").unwrap();
        assert_eq!(
            seg.rules.len(),
            3,
            "expected the three F2 disjuncts, got: {:#?}",
            seg.rules.iter().map(ToString::to_string).collect::<Vec<_>>()
        );
        // Each recovered rule should match one true region with tolerant
        // boundaries (binning granularity: 60/50 = 1.2 years, 2.6k salary).
        let regions = agrawal::f2_regions();
        for region in &regions {
            let matched = seg.rules.iter().any(|r| {
                (r.x_range.0 - region.x_lo).abs() <= 3.0
                    && (r.x_range.1 - region.x_hi).abs() <= 3.0
                    && (r.y_range.0 - region.y_lo).abs() <= 8_000.0
                    && (r.y_range.1 - region.y_hi).abs() <= 8_000.0
            });
            assert!(
                matched,
                "no rule matches region {region:?}; rules: {:#?}",
                seg.rules.iter().map(ToString::to_string).collect::<Vec<_>>()
            );
        }
        let _ = AgrawalFunction::F2;
    }
}
