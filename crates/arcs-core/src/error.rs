//! Error types for the ARCS core.

use std::fmt;

use arcs_data::DataError;

/// Errors produced by the ARCS pipeline and its components.
#[derive(Debug, Clone, PartialEq)]
pub enum ArcsError {
    /// A component was configured with invalid parameters.
    InvalidConfig(String),
    /// An attribute used in the pipeline has the wrong kind (e.g. a
    /// categorical attribute where a quantitative LHS attribute is needed).
    AttributeKind {
        /// Attribute name.
        attribute: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A named group label does not exist on the criterion attribute.
    UnknownGroup(String),
    /// A coordinate was outside the grid or bin array.
    OutOfBounds {
        /// Human-readable description of the access.
        what: String,
    },
    /// An error bubbled up from the data substrate.
    Data(DataError),
    /// The optimizer exhausted its budget without finding any candidate
    /// segmentation (e.g. no cell ever met the thresholds).
    NoSegmentation,
    /// A streamed tuple failed validation under [`BadTuplePolicy::Fail`]
    /// (1-based stream position included for triage).
    ///
    /// [`BadTuplePolicy::Fail`]: crate::binner::BadTuplePolicy::Fail
    InvalidTuple {
        /// 1-based position of the tuple in the stream.
        position: u64,
        /// What was wrong with it.
        message: String,
    },
    /// An I/O error occurred (message-only: `std::io::Error` is not `Clone`).
    Io(String),
    /// A checkpoint or snapshot file is corrupt, truncated, or written by
    /// an incompatible version.
    Checkpoint {
        /// What failed while reading the file.
        message: String,
    },
}

impl fmt::Display for ArcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArcsError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ArcsError::AttributeKind { attribute, expected } => {
                write!(f, "attribute `{attribute}` has the wrong kind: expected {expected}")
            }
            ArcsError::UnknownGroup(label) => {
                write!(f, "group label `{label}` not found on the criterion attribute")
            }
            ArcsError::OutOfBounds { what } => write!(f, "out of bounds: {what}"),
            ArcsError::Data(err) => write!(f, "data error: {err}"),
            ArcsError::NoSegmentation => {
                write!(f, "no segmentation found: no cell met any support/confidence threshold")
            }
            ArcsError::InvalidTuple { position, message } => {
                write!(f, "invalid tuple at stream position {position}: {message}")
            }
            ArcsError::Io(message) => write!(f, "I/O error: {message}"),
            ArcsError::Checkpoint { message } => write!(f, "bad checkpoint: {message}"),
        }
    }
}

impl std::error::Error for ArcsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArcsError::Data(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DataError> for ArcsError {
    fn from(err: DataError) -> Self {
        ArcsError::Data(err)
    }
}

impl From<std::io::Error> for ArcsError {
    fn from(err: std::io::Error) -> Self {
        ArcsError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = ArcsError::UnknownGroup("excellent".into());
        assert!(err.to_string().contains("excellent"));

        let err: ArcsError = DataError::UnknownAttribute("x".into()).into();
        assert!(matches!(err, ArcsError::Data(_)));
        assert!(std::error::Error::source(&err).is_some());

        let err = ArcsError::NoSegmentation;
        assert!(std::error::Error::source(&err).is_none());
        assert!(err.to_string().contains("no segmentation"));
    }
}
