//! Error types for the ARCS core.

use std::fmt;

use arcs_data::DataError;

/// Errors produced by the ARCS pipeline and its components.
#[derive(Debug, Clone, PartialEq)]
pub enum ArcsError {
    /// A component was configured with invalid parameters.
    InvalidConfig(String),
    /// An attribute used in the pipeline has the wrong kind (e.g. a
    /// categorical attribute where a quantitative LHS attribute is needed).
    AttributeKind {
        /// Attribute name.
        attribute: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A named group label does not exist on the criterion attribute.
    UnknownGroup(String),
    /// A coordinate was outside the grid or bin array.
    OutOfBounds {
        /// Human-readable description of the access.
        what: String,
    },
    /// An error bubbled up from the data substrate.
    Data(DataError),
    /// The optimizer exhausted its budget without finding any candidate
    /// segmentation (e.g. no cell ever met the thresholds).
    NoSegmentation,
    /// A streamed tuple failed validation under [`BadTuplePolicy::Fail`]
    /// (1-based stream position included for triage).
    ///
    /// [`BadTuplePolicy::Fail`]: crate::binner::BadTuplePolicy::Fail
    InvalidTuple {
        /// 1-based position of the tuple in the stream.
        position: u64,
        /// What was wrong with it.
        message: String,
    },
    /// An I/O error occurred (message-only: `std::io::Error` is not `Clone`).
    Io(String),
    /// A checkpoint or snapshot file is corrupt, truncated, or written by
    /// an incompatible version.
    Checkpoint {
        /// What failed while reading the file.
        message: String,
    },
    /// A requested grid's cell count overflows `usize` or cannot be
    /// allocated: `nx * ny * (nseg + 1)` is beyond what this process can
    /// address.
    GridTooLarge {
        /// Requested number of x bins.
        nx: usize,
        /// Requested number of y bins.
        ny: usize,
        /// Number of criterion groups (the array stores `nseg + 1` slots
        /// per cell).
        nseg: usize,
    },
    /// The configured memory budget is too small even for the coarsest
    /// acceptable grid, so the resource governor refused admission.
    BudgetExceeded {
        /// Bytes the smallest acceptable allocation would need.
        required_bytes: usize,
        /// The configured budget in bytes.
        budget_bytes: usize,
    },
    /// A large allocation failed (the allocator reported out-of-memory
    /// instead of aborting the process).
    AllocationFailed {
        /// What was being allocated.
        what: String,
    },
    /// A parallel worker panicked and the panic could not be recovered by
    /// retry or sequential fallback.
    WorkerPanicked {
        /// Which stage's worker panicked.
        stage: &'static str,
        /// Best-effort panic payload text.
        message: String,
    },
    /// A fault-injection failpoint fired a typed error (only produced by
    /// builds with the `failpoints` feature, under an explicit schedule).
    FaultInjected {
        /// Name of the failpoint that fired.
        point: &'static str,
    },
    /// A request's deadline expired before its work completed. The
    /// serving core checks deadlines at admission and between pipeline
    /// stages, so the error names where the budget ran out.
    DeadlineExceeded {
        /// The stage at which the deadline was found expired.
        stage: &'static str,
    },
    /// Admission control shed the request: the server's in-flight slots
    /// and its wait queue were both full. Shedding is immediate — the
    /// caller is never left stalled behind an unbounded queue.
    Overloaded {
        /// Requests executing when the request was shed.
        inflight: usize,
        /// Requests already waiting when the request was shed.
        queued: usize,
    },
}

impl ArcsError {
    /// Stable machine-readable code for this error, used 1:1 as the wire
    /// error code by the daemon protocol and mapped to CLI exit codes.
    ///
    /// Codes are part of the wire contract: they never change once
    /// shipped, even if variant names or messages do.
    pub fn code(&self) -> &'static str {
        match self {
            ArcsError::InvalidConfig(_) => "INVALID_CONFIG",
            ArcsError::AttributeKind { .. } => "ATTRIBUTE_KIND",
            ArcsError::UnknownGroup(_) => "UNKNOWN_GROUP",
            ArcsError::OutOfBounds { .. } => "OUT_OF_BOUNDS",
            ArcsError::Data(_) => "DATA",
            ArcsError::NoSegmentation => "NO_SEGMENTATION",
            ArcsError::InvalidTuple { .. } => "INVALID_TUPLE",
            ArcsError::Io(_) => "IO",
            ArcsError::Checkpoint { .. } => "CHECKPOINT",
            ArcsError::GridTooLarge { .. } => "GRID_TOO_LARGE",
            ArcsError::BudgetExceeded { .. } => "BUDGET_EXCEEDED",
            ArcsError::AllocationFailed { .. } => "ALLOCATION_FAILED",
            ArcsError::WorkerPanicked { .. } => "WORKER_PANICKED",
            ArcsError::FaultInjected { .. } => "FAULT_INJECTED",
            ArcsError::DeadlineExceeded { .. } => "DEADLINE_EXCEEDED",
            ArcsError::Overloaded { .. } => "OVERLOADED",
        }
    }
}

impl fmt::Display for ArcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArcsError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ArcsError::AttributeKind { attribute, expected } => {
                write!(f, "attribute `{attribute}` has the wrong kind: expected {expected}")
            }
            ArcsError::UnknownGroup(label) => {
                write!(f, "group label `{label}` not found on the criterion attribute")
            }
            ArcsError::OutOfBounds { what } => write!(f, "out of bounds: {what}"),
            ArcsError::Data(err) => write!(f, "data error: {err}"),
            ArcsError::NoSegmentation => {
                write!(f, "no segmentation found: no cell met any support/confidence threshold")
            }
            ArcsError::InvalidTuple { position, message } => {
                write!(f, "invalid tuple at stream position {position}: {message}")
            }
            ArcsError::Io(message) => write!(f, "I/O error: {message}"),
            ArcsError::Checkpoint { message } => write!(f, "bad checkpoint: {message}"),
            ArcsError::GridTooLarge { nx, ny, nseg } => write!(
                f,
                "grid too large: {nx} x {ny} bins with {nseg} groups exceeds addressable memory"
            ),
            ArcsError::BudgetExceeded { required_bytes, budget_bytes } => write!(
                f,
                "memory budget exceeded: need at least {required_bytes} bytes \
                 but the budget is {budget_bytes} bytes"
            ),
            ArcsError::AllocationFailed { what } => {
                write!(f, "allocation failed: out of memory while allocating {what}")
            }
            ArcsError::WorkerPanicked { stage, message } => {
                write!(f, "{stage} worker panicked and could not be recovered: {message}")
            }
            ArcsError::FaultInjected { point } => {
                write!(f, "injected fault fired at failpoint `{point}`")
            }
            ArcsError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded at stage `{stage}`")
            }
            ArcsError::Overloaded { inflight, queued } => write!(
                f,
                "server overloaded: {inflight} requests in flight and {queued} queued; \
                 request shed"
            ),
        }
    }
}

impl std::error::Error for ArcsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArcsError::Data(err) => Some(err),
            _ => None,
        }
    }
}

/// Best-effort text of a caught panic payload (panics carry `&str` or
/// `String` in practice; anything else is opaque).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl From<DataError> for ArcsError {
    fn from(err: DataError) -> Self {
        ArcsError::Data(err)
    }
}

impl From<std::io::Error> for ArcsError {
    fn from(err: std::io::Error) -> Self {
        ArcsError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = ArcsError::UnknownGroup("excellent".into());
        assert!(err.to_string().contains("excellent"));

        let err: ArcsError = DataError::UnknownAttribute("x".into()).into();
        assert!(matches!(err, ArcsError::Data(_)));
        assert!(std::error::Error::source(&err).is_some());

        let err = ArcsError::NoSegmentation;
        assert!(std::error::Error::source(&err).is_none());
        assert!(err.to_string().contains("no segmentation"));
    }

    #[test]
    fn wire_codes_are_stable_and_distinct() {
        let samples = [
            (ArcsError::InvalidConfig("x".into()), "INVALID_CONFIG"),
            (
                ArcsError::AttributeKind { attribute: "a".into(), expected: "quantitative" },
                "ATTRIBUTE_KIND",
            ),
            (ArcsError::UnknownGroup("g".into()), "UNKNOWN_GROUP"),
            (ArcsError::OutOfBounds { what: "w".into() }, "OUT_OF_BOUNDS"),
            (ArcsError::Data(DataError::UnknownAttribute("x".into())), "DATA"),
            (ArcsError::NoSegmentation, "NO_SEGMENTATION"),
            (ArcsError::InvalidTuple { position: 1, message: "m".into() }, "INVALID_TUPLE"),
            (ArcsError::Io("io".into()), "IO"),
            (ArcsError::Checkpoint { message: "c".into() }, "CHECKPOINT"),
            (ArcsError::GridTooLarge { nx: 1, ny: 1, nseg: 1 }, "GRID_TOO_LARGE"),
            (
                ArcsError::BudgetExceeded { required_bytes: 2, budget_bytes: 1 },
                "BUDGET_EXCEEDED",
            ),
            (ArcsError::AllocationFailed { what: "w".into() }, "ALLOCATION_FAILED"),
            (
                ArcsError::WorkerPanicked { stage: "s", message: "m".into() },
                "WORKER_PANICKED",
            ),
            (ArcsError::FaultInjected { point: "p" }, "FAULT_INJECTED"),
            (ArcsError::DeadlineExceeded { stage: "s" }, "DEADLINE_EXCEEDED"),
            (ArcsError::Overloaded { inflight: 1, queued: 1 }, "OVERLOADED"),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for (err, code) in samples {
            assert_eq!(err.code(), code);
            assert!(seen.insert(code), "duplicate wire code {code}");
        }
    }

    #[test]
    fn robustness_variants_display() {
        let err = ArcsError::GridTooLarge { nx: 1 << 20, ny: 1 << 20, nseg: 9 };
        assert!(err.to_string().contains("grid too large"), "{err}");

        let err = ArcsError::BudgetExceeded { required_bytes: 4096, budget_bytes: 1024 };
        assert!(err.to_string().contains("4096"), "{err}");
        assert!(err.to_string().contains("1024"), "{err}");

        let err = ArcsError::AllocationFailed { what: "bin array counters".into() };
        assert!(err.to_string().contains("out of memory"), "{err}");

        let err = ArcsError::WorkerPanicked { stage: "binning", message: "boom".into() };
        assert!(err.to_string().contains("binning"), "{err}");
        assert!(err.to_string().contains("boom"), "{err}");

        let err = ArcsError::FaultInjected { point: "binner.shard" };
        assert!(err.to_string().contains("binner.shard"), "{err}");

        let err = ArcsError::DeadlineExceeded { stage: "serve.admission" };
        assert!(err.to_string().contains("deadline"), "{err}");
        assert!(err.to_string().contains("serve.admission"), "{err}");

        let err = ArcsError::Overloaded { inflight: 8, queued: 16 };
        assert!(err.to_string().contains("overloaded"), "{err}");
        assert!(err.to_string().contains("shed"), "{err}");
    }
}
