//! The binner (paper Figure 2, §3.1): streams tuples into a [`BinArray`].
//!
//! The binner is the only component that touches the source data, and it
//! does so in a single pass, so ARCS memory use is bounded by the bin array
//! regardless of database size (§4.3).

use arcs_data::schema::AttrKind;
use arcs_data::{Schema, Tuple};

use crate::binarray::BinArray;
use crate::binning::BinMap;
use crate::error::ArcsError;

/// Strategy used to construct the LHS attribute [`BinMap`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BinningStrategy {
    /// Equi-width bins over the attribute's declared domain (the paper's
    /// default; needs no data pass).
    EquiWidth,
    /// Equi-depth bins computed from a sample of attribute values.
    EquiDepth,
    /// Homogeneity-based bins (see [`BinMap::homogeneity`]) with the given
    /// relative density tolerance.
    Homogeneity {
        /// Maximum relative density difference for merging adjacent bins.
        tolerance: f64,
    },
}

/// A configured binner for one `(x, y, criterion)` attribute triple.
#[derive(Debug, Clone, PartialEq)]
pub struct Binner {
    x_idx: usize,
    y_idx: usize,
    criterion_idx: usize,
    x_map: BinMap,
    y_map: BinMap,
    nseg: usize,
}

impl Binner {
    /// Builds a binner for schema attributes `x_attr` and `y_attr` (the two
    /// LHS attributes, which the paper requires to be quantitative) and the
    /// categorical `criterion_attr`, with `n_x_bins` / `n_y_bins` equi-width
    /// bins.
    pub fn equi_width(
        schema: &Schema,
        x_attr: &str,
        y_attr: &str,
        criterion_attr: &str,
        n_x_bins: usize,
        n_y_bins: usize,
    ) -> Result<Self, ArcsError> {
        let x_idx = schema.require(x_attr)?;
        let y_idx = schema.require(y_attr)?;
        let x_map = Self::quant_map(schema, x_idx, n_x_bins)?;
        let y_map = Self::quant_map(schema, y_idx, n_y_bins)?;
        Self::assemble(schema, x_idx, y_idx, criterion_attr, x_map, y_map)
    }

    /// Builds a binner with explicit, pre-computed [`BinMap`]s (used for
    /// equi-depth / homogeneity binning, or custom boundaries).
    pub fn with_maps(
        schema: &Schema,
        x_attr: &str,
        y_attr: &str,
        criterion_attr: &str,
        x_map: BinMap,
        y_map: BinMap,
    ) -> Result<Self, ArcsError> {
        let x_idx = schema.require(x_attr)?;
        let y_idx = schema.require(y_attr)?;
        Self::assemble(schema, x_idx, y_idx, criterion_attr, x_map, y_map)
    }

    fn quant_map(schema: &Schema, idx: usize, n_bins: usize) -> Result<BinMap, ArcsError> {
        let attr = schema.attribute(idx).expect("index from require");
        match &attr.kind {
            AttrKind::Quantitative { min, max } => BinMap::equi_width(*min, *max, n_bins),
            AttrKind::Categorical { .. } => Err(ArcsError::AttributeKind {
                attribute: attr.name.clone(),
                expected: "a quantitative LHS attribute",
            }),
        }
    }

    fn assemble(
        schema: &Schema,
        x_idx: usize,
        y_idx: usize,
        criterion_attr: &str,
        x_map: BinMap,
        y_map: BinMap,
    ) -> Result<Self, ArcsError> {
        if x_idx == y_idx {
            return Err(ArcsError::InvalidConfig(
                "x and y must be distinct attributes".into(),
            ));
        }
        let criterion_idx = schema.require(criterion_attr)?;
        if criterion_idx == x_idx || criterion_idx == y_idx {
            return Err(ArcsError::InvalidConfig(
                "criterion attribute must differ from the LHS attributes".into(),
            ));
        }
        let criterion = schema.attribute(criterion_idx).expect("index from require");
        let nseg = match &criterion.kind {
            AttrKind::Categorical { labels } => labels.len(),
            AttrKind::Quantitative { .. } => {
                return Err(ArcsError::AttributeKind {
                    attribute: criterion.name.clone(),
                    expected: "a categorical criterion attribute (bin it first, §2.2)",
                })
            }
        };
        Ok(Binner { x_idx, y_idx, criterion_idx, x_map, y_map, nseg })
    }

    /// The x attribute's bin map.
    pub fn x_map(&self) -> &BinMap {
        &self.x_map
    }

    /// The y attribute's bin map.
    pub fn y_map(&self) -> &BinMap {
        &self.y_map
    }

    /// Schema index of the x attribute.
    pub fn x_idx(&self) -> usize {
        self.x_idx
    }

    /// Schema index of the y attribute.
    pub fn y_idx(&self) -> usize {
        self.y_idx
    }

    /// Schema index of the criterion attribute.
    pub fn criterion_idx(&self) -> usize {
        self.criterion_idx
    }

    /// Number of criterion groups.
    pub fn nseg(&self) -> usize {
        self.nseg
    }

    /// Creates an empty [`BinArray`] matching this binner's dimensions.
    pub fn new_bin_array(&self) -> Result<BinArray, ArcsError> {
        BinArray::new(self.x_map.n_bins(), self.y_map.n_bins(), self.nseg)
    }

    /// Bins one tuple's `(x, y, group)` projection.
    #[inline]
    pub fn bin_tuple(&self, tuple: &Tuple) -> (usize, usize, u32) {
        let x = self.x_map.bin_of(tuple.values()[self.x_idx]);
        let y = self.y_map.bin_of(tuple.values()[self.y_idx]);
        let g = tuple.cat(self.criterion_idx);
        (x, y, g)
    }

    /// Bins a raw `(x, y)` value pair (used by the verifier to place sample
    /// tuples and by exact-error integration).
    #[inline]
    pub fn bin_point(&self, x: f64, y: f64) -> (usize, usize) {
        (self.x_map.bin_of_value(x), self.y_map.bin_of_value(y))
    }

    /// Adds one tuple to `array`.
    #[inline]
    pub fn bin_into(&self, tuple: &Tuple, array: &mut BinArray) {
        let (x, y, g) = self.bin_tuple(tuple);
        array.add(x, y, g);
    }

    /// Streams `tuples` into a fresh [`BinArray`] — the paper's single data
    /// pass.
    pub fn bin_stream<I>(&self, tuples: I) -> Result<BinArray, ArcsError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut array = self.new_bin_array()?;
        for tuple in tuples {
            self.bin_into(&tuple, &mut array);
        }
        Ok(array)
    }

    /// Streams `tuples` into a **single-group** `nx × ny × 2` array
    /// tracking only criterion group `gk` — the paper's §3.1
    /// memory-premium mode ("if memory space is at a premium … set
    /// nseg = 1"). Tuples of other groups count only toward cell totals.
    /// The resulting array mines group code `0` (= `gk`); memory shrinks
    /// from `(nseg + 1)` to `2` counters per cell.
    pub fn bin_stream_single_group<I>(&self, tuples: I, gk: u32) -> Result<BinArray, ArcsError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        if gk as usize >= self.nseg {
            return Err(ArcsError::OutOfBounds {
                what: format!("group {gk} with nseg {}", self.nseg),
            });
        }
        let mut array = BinArray::new(self.x_map.n_bins(), self.y_map.n_bins(), 1)?;
        for tuple in tuples {
            let (x, y, g) = self.bin_tuple(&tuple);
            if g == gk {
                array.add(x, y, 0);
            } else {
                array.add_background(x, y);
            }
        }
        Ok(array)
    }

    /// Bins every row of an in-memory dataset slice.
    pub fn bin_rows<'a, I>(&self, rows: I) -> Result<BinArray, ArcsError>
    where
        I: IntoIterator<Item = &'a Tuple>,
    {
        let mut array = self.new_bin_array()?;
        for tuple in rows {
            self.bin_into(tuple, &mut array);
        }
        Ok(array)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_data::schema::Attribute;
    use arcs_data::Value;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::quantitative("age", 20.0, 80.0),
            Attribute::quantitative("salary", 0.0, 100_000.0),
            Attribute::categorical("group", ["A", "other"]),
        ])
        .unwrap()
    }

    fn tuple(age: f64, salary: f64, g: u32) -> Tuple {
        Tuple::new(vec![Value::Quant(age), Value::Quant(salary), Value::Cat(g)])
    }

    #[test]
    fn equi_width_construction() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        assert_eq!(b.x_map().n_bins(), 6);
        assert_eq!(b.y_map().n_bins(), 10);
        assert_eq!(b.nseg(), 2);
        assert_eq!(b.x_idx(), 0);
        assert_eq!(b.y_idx(), 1);
        assert_eq!(b.criterion_idx(), 2);
    }

    #[test]
    fn rejects_bad_attribute_choices() {
        let s = schema();
        assert!(Binner::equi_width(&s, "age", "age", "group", 5, 5).is_err());
        assert!(Binner::equi_width(&s, "group", "salary", "group", 5, 5).is_err());
        assert!(Binner::equi_width(&s, "age", "salary", "salary", 5, 5).is_err());
        assert!(Binner::equi_width(&s, "missing", "salary", "group", 5, 5).is_err());
        assert!(Binner::equi_width(&s, "age", "salary", "missing", 5, 5).is_err());
    }

    #[test]
    fn bins_tuples_into_expected_cells() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        // age 20..80 in 6 bins of width 10; salary 0..100k in 10 bins of 10k.
        assert_eq!(b.bin_tuple(&tuple(25.0, 5_000.0, 0)), (0, 0, 0));
        assert_eq!(b.bin_tuple(&tuple(35.0, 95_000.0, 1)), (1, 9, 1));
        assert_eq!(b.bin_tuple(&tuple(80.0, 100_000.0, 0)), (5, 9, 0));
        assert_eq!(b.bin_point(45.0, 52_000.0), (2, 5));
    }

    #[test]
    fn bin_stream_counts_everything() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        let tuples = vec![
            tuple(25.0, 5_000.0, 0),
            tuple(25.0, 5_000.0, 0),
            tuple(25.0, 5_000.0, 1),
            tuple(75.0, 95_000.0, 1),
        ];
        let ba = b.bin_stream(tuples).unwrap();
        assert_eq!(ba.n_tuples(), 4);
        assert_eq!(ba.group_count(0, 0, 0), 2);
        assert_eq!(ba.group_count(0, 0, 1), 1);
        assert_eq!(ba.cell_total(5, 9), 1);
    }

    #[test]
    fn bin_rows_matches_bin_stream() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 4, 4).unwrap();
        let tuples = vec![tuple(30.0, 10_000.0, 0), tuple(60.0, 80_000.0, 1)];
        let by_rows = b.bin_rows(tuples.iter()).unwrap();
        let by_stream = b.bin_stream(tuples).unwrap();
        assert_eq!(by_rows, by_stream);
    }

    #[test]
    fn single_group_mode_matches_full_tracking() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        let tuples = vec![
            tuple(25.0, 5_000.0, 0),
            tuple(25.0, 5_000.0, 0),
            tuple(25.0, 5_000.0, 1),
            tuple(75.0, 95_000.0, 1),
        ];
        let full = b.bin_stream(tuples.clone()).unwrap();
        let single = b.bin_stream_single_group(tuples, 0).unwrap();
        assert_eq!(single.nseg(), 1);
        assert_eq!(single.n_tuples(), full.n_tuples());
        // Group-0 counts and totals agree cell by cell; memory halves+.
        for y in 0..10 {
            for x in 0..6 {
                assert_eq!(single.group_count(x, y, 0), full.group_count(x, y, 0));
                assert_eq!(single.cell_total(x, y), full.cell_total(x, y));
            }
        }
        assert!(single.memory_bytes() < full.memory_bytes());
        // Mining the single-group array at code 0 is equivalent.
        let t = crate::engine::Thresholds::new(0.0, 0.5).unwrap();
        let a = crate::engine::mine_rules(&full, 0, t);
        let b2 = crate::engine::mine_rules(&single, 0, t);
        assert_eq!(
            a.iter().map(|r| (r.x, r.y, r.count)).collect::<Vec<_>>(),
            b2.iter().map(|r| (r.x, r.y, r.count)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_group_mode_rejects_bad_group() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        assert!(b.bin_stream_single_group(Vec::new(), 2).is_err());
    }

    #[test]
    fn with_maps_allows_custom_boundaries() {
        let s = schema();
        let x_map = BinMap::Boundaries { edges: vec![20.0, 40.0, 60.0, 80.0] };
        let y_map = BinMap::equi_width(0.0, 100_000.0, 5).unwrap();
        let b = Binner::with_maps(&s, "age", "salary", "group", x_map, y_map).unwrap();
        assert_eq!(b.x_map().n_bins(), 3);
        assert_eq!(b.bin_tuple(&tuple(45.0, 1_000.0, 0)).0, 1);
    }
}
