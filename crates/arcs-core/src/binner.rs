//! The binner (paper Figure 2, §3.1): streams tuples into a [`BinArray`].
//!
//! The binner is the only component that touches the source data, and it
//! does so in a single pass, so ARCS memory use is bounded by the bin array
//! regardless of database size (§4.3).

use std::io::{Read, Write};
use std::path::Path;

use arcs_data::schema::AttrKind;
use arcs_data::tuple::Value;
use arcs_data::{Schema, Tuple};

use crate::binarray::BinArray;
use crate::binning::BinMap;
use crate::error::ArcsError;
use crate::metrics::RecoveryStats;

/// Maximum times a panicked shard (or a panicking chunk-entry failpoint)
/// is retried before the sequential fallback takes over. Re-exported
/// from the execution engine, which owns the shared recovery contract.
pub use crate::exec::MAX_SHARD_RETRIES;

/// How a resilient streaming run treats tuples that fail validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BadTuplePolicy {
    /// Abort on the first invalid tuple.
    Fail,
    /// Count the tuple by issue kind and keep streaming.
    Skip,
}

/// Why one tuple was rejected by the resilient stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TupleIssue {
    /// The tuple is too short to hold the binner's attribute indices.
    Arity,
    /// An LHS position holds a categorical value, or the criterion
    /// position holds a quantitative one.
    Type,
    /// An LHS value is `NaN` or `±inf`.
    NonFinite,
    /// The criterion code is outside `0..nseg`.
    CategoryRange,
}

/// Counters from a resilient or checkpointed streaming run. `seen`
/// includes tuples replayed from a resumed checkpoint; `accepted +
/// skipped == seen` always holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamReport {
    /// Input tuples consumed (including those covered by a resumed
    /// checkpoint).
    pub seen: u64,
    /// Tuples binned into the array.
    pub accepted: u64,
    /// Tuples rejected and dropped.
    pub skipped: u64,
    /// Rejections because the tuple was too short.
    pub arity_issues: u64,
    /// Rejections because a value had the wrong kind.
    pub type_issues: u64,
    /// Rejections because an LHS value was `NaN`/`±inf`.
    pub non_finite: u64,
    /// Rejections because the criterion code was out of range.
    pub category_issues: u64,
    /// Position in the stream the run resumed from (0 for a fresh run).
    pub resumed_from: u64,
}

impl StreamReport {
    fn count(&mut self, issue: TupleIssue) {
        self.skipped += 1;
        match issue {
            TupleIssue::Arity => self.arity_issues += 1,
            TupleIssue::Type => self.type_issues += 1,
            TupleIssue::NonFinite => self.non_finite += 1,
            TupleIssue::CategoryRange => self.category_issues += 1,
        }
    }
}

/// Where and how often a checkpointed stream persists its state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec<'a> {
    /// Checkpoint file path. If the file already exists and loads
    /// cleanly, the run resumes from it; a corrupt or incompatible file
    /// is an error (delete it to restart from zero).
    pub path: &'a Path,
    /// Persist the state every this many input tuples (must be > 0).
    pub every: u64,
}

/// Magic prefix + version byte of the checkpoint wrapper format (which
/// embeds a [`BinArray`] snapshot plus the stream counters).
const CHECKPOINT_MAGIC: [u8; 8] = *b"ARCSCK\x00\x01";

/// Strategy used to construct the LHS attribute [`BinMap`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BinningStrategy {
    /// Equi-width bins over the attribute's declared domain (the paper's
    /// default; needs no data pass).
    EquiWidth,
    /// Equi-depth bins computed from a sample of attribute values.
    EquiDepth,
    /// Homogeneity-based bins (see [`BinMap::homogeneity`]) with the given
    /// relative density tolerance.
    Homogeneity {
        /// Maximum relative density difference for merging adjacent bins.
        tolerance: f64,
    },
}

/// A configured binner for one `(x, y, criterion)` attribute triple.
#[derive(Debug, Clone, PartialEq)]
pub struct Binner {
    x_idx: usize,
    y_idx: usize,
    criterion_idx: usize,
    x_map: BinMap,
    y_map: BinMap,
    nseg: usize,
}

impl Binner {
    /// Builds a binner for schema attributes `x_attr` and `y_attr` (the two
    /// LHS attributes, which the paper requires to be quantitative) and the
    /// categorical `criterion_attr`, with `n_x_bins` / `n_y_bins` equi-width
    /// bins.
    pub fn equi_width(
        schema: &Schema,
        x_attr: &str,
        y_attr: &str,
        criterion_attr: &str,
        n_x_bins: usize,
        n_y_bins: usize,
    ) -> Result<Self, ArcsError> {
        let x_idx = schema.require(x_attr)?;
        let y_idx = schema.require(y_attr)?;
        let x_map = Self::quant_map(schema, x_idx, n_x_bins)?;
        let y_map = Self::quant_map(schema, y_idx, n_y_bins)?;
        Self::assemble(schema, x_idx, y_idx, criterion_attr, x_map, y_map)
    }

    /// Builds a binner with explicit, pre-computed [`BinMap`]s (used for
    /// equi-depth / homogeneity binning, or custom boundaries).
    pub fn with_maps(
        schema: &Schema,
        x_attr: &str,
        y_attr: &str,
        criterion_attr: &str,
        x_map: BinMap,
        y_map: BinMap,
    ) -> Result<Self, ArcsError> {
        let x_idx = schema.require(x_attr)?;
        let y_idx = schema.require(y_attr)?;
        Self::assemble(schema, x_idx, y_idx, criterion_attr, x_map, y_map)
    }

    fn quant_map(schema: &Schema, idx: usize, n_bins: usize) -> Result<BinMap, ArcsError> {
        let attr = schema.attribute(idx).expect("index from require");
        match &attr.kind {
            AttrKind::Quantitative { min, max } => BinMap::equi_width(*min, *max, n_bins),
            AttrKind::Categorical { .. } => Err(ArcsError::AttributeKind {
                attribute: attr.name.clone(),
                expected: "a quantitative LHS attribute",
            }),
        }
    }

    fn assemble(
        schema: &Schema,
        x_idx: usize,
        y_idx: usize,
        criterion_attr: &str,
        x_map: BinMap,
        y_map: BinMap,
    ) -> Result<Self, ArcsError> {
        if x_idx == y_idx {
            return Err(ArcsError::InvalidConfig(
                "x and y must be distinct attributes".into(),
            ));
        }
        let criterion_idx = schema.require(criterion_attr)?;
        if criterion_idx == x_idx || criterion_idx == y_idx {
            return Err(ArcsError::InvalidConfig(
                "criterion attribute must differ from the LHS attributes".into(),
            ));
        }
        let criterion = schema.attribute(criterion_idx).expect("index from require");
        let nseg = match &criterion.kind {
            AttrKind::Categorical { labels } => labels.len(),
            AttrKind::Quantitative { .. } => {
                return Err(ArcsError::AttributeKind {
                    attribute: criterion.name.clone(),
                    expected: "a categorical criterion attribute (bin it first, §2.2)",
                })
            }
        };
        Ok(Binner { x_idx, y_idx, criterion_idx, x_map, y_map, nseg })
    }

    /// The x attribute's bin map.
    pub fn x_map(&self) -> &BinMap {
        &self.x_map
    }

    /// The y attribute's bin map.
    pub fn y_map(&self) -> &BinMap {
        &self.y_map
    }

    /// Schema index of the x attribute.
    pub fn x_idx(&self) -> usize {
        self.x_idx
    }

    /// Schema index of the y attribute.
    pub fn y_idx(&self) -> usize {
        self.y_idx
    }

    /// Schema index of the criterion attribute.
    pub fn criterion_idx(&self) -> usize {
        self.criterion_idx
    }

    /// Number of criterion groups.
    pub fn nseg(&self) -> usize {
        self.nseg
    }

    /// Creates an empty [`BinArray`] matching this binner's dimensions.
    pub fn new_bin_array(&self) -> Result<BinArray, ArcsError> {
        BinArray::new(self.x_map.n_bins(), self.y_map.n_bins(), self.nseg)
    }

    /// Bins one tuple's `(x, y, group)` projection.
    #[inline]
    pub fn bin_tuple(&self, tuple: &Tuple) -> (usize, usize, u32) {
        let x = self.x_map.bin_of(tuple.values()[self.x_idx]);
        let y = self.y_map.bin_of(tuple.values()[self.y_idx]);
        let g = tuple.cat(self.criterion_idx);
        (x, y, g)
    }

    /// Bins a raw `(x, y)` value pair (used by the verifier to place sample
    /// tuples and by exact-error integration).
    #[inline]
    pub fn bin_point(&self, x: f64, y: f64) -> (usize, usize) {
        (self.x_map.bin_of_value(x), self.y_map.bin_of_value(y))
    }

    /// Adds one tuple to `array`.
    #[inline]
    pub fn bin_into(&self, tuple: &Tuple, array: &mut BinArray) {
        let (x, y, g) = self.bin_tuple(tuple);
        array.add(x, y, g);
    }

    /// Streams `tuples` into a fresh [`BinArray`] — the paper's single data
    /// pass.
    pub fn bin_stream<I>(&self, tuples: I) -> Result<BinArray, ArcsError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut array = self.new_bin_array()?;
        for tuple in tuples {
            self.bin_into(&tuple, &mut array);
        }
        Ok(array)
    }

    /// Streams `tuples` into a **single-group** `nx × ny × 2` array
    /// tracking only criterion group `gk` — the paper's §3.1
    /// memory-premium mode ("if memory space is at a premium … set
    /// nseg = 1"). Tuples of other groups count only toward cell totals.
    /// The resulting array mines group code `0` (= `gk`); memory shrinks
    /// from `(nseg + 1)` to `2` counters per cell.
    pub fn bin_stream_single_group<I>(&self, tuples: I, gk: u32) -> Result<BinArray, ArcsError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        if gk as usize >= self.nseg {
            return Err(ArcsError::OutOfBounds {
                what: format!("group {gk} with nseg {}", self.nseg),
            });
        }
        let mut array = BinArray::new(self.x_map.n_bins(), self.y_map.n_bins(), 1)?;
        for tuple in tuples {
            let (x, y, g) = self.bin_tuple(&tuple);
            if g == gk {
                array.add(x, y, 0);
            } else {
                array.add_background(x, y);
            }
        }
        Ok(array)
    }

    /// Bins every row of an in-memory dataset slice.
    pub fn bin_rows<'a, I>(&self, rows: I) -> Result<BinArray, ArcsError>
    where
        I: IntoIterator<Item = &'a Tuple>,
    {
        let mut array = self.new_bin_array()?;
        for tuple in rows {
            self.bin_into(tuple, &mut array);
        }
        Ok(array)
    }

    /// Bins an in-memory slice of rows across up to `threads` persistent
    /// pool workers (see [`ExecPool`](crate::exec::ExecPool)).
    ///
    /// Each worker fills a *private* [`BinArray`] over one contiguous
    /// chunk of `rows`; the shards are then merged in chunk order via
    /// [`BinArray::merge`]. Because the merge is an element-wise sum, the
    /// result is bit-identical to [`Binner::bin_rows`] regardless of
    /// thread count or scheduling. Small inputs fall back to the
    /// sequential path — sharding has no payoff below a few chunks' worth
    /// of tuples.
    pub fn bin_rows_parallel(&self, rows: &[Tuple], threads: usize) -> Result<BinArray, ArcsError> {
        Ok(self.bin_rows_parallel_with_stats(rows, threads)?.0)
    }

    /// [`Binner::bin_rows_parallel`] plus panic-isolation tallies.
    ///
    /// Worker panics are caught per shard: a panicked shard is retried up
    /// to [`MAX_SHARD_RETRIES`] times, then recomputed on the calling
    /// thread via the plain sequential routine. Every attempt rebuilds
    /// the shard's private array from scratch, so recovery can never
    /// double-count a tuple and the merged result stays bit-identical to
    /// the fault-free run.
    pub fn bin_rows_parallel_with_stats(
        &self,
        rows: &[Tuple],
        threads: usize,
    ) -> Result<(BinArray, RecoveryStats), ArcsError> {
        if threads == 0 {
            return Err(ArcsError::InvalidConfig(
                "binning thread count must be positive".into(),
            ));
        }
        // Below this many rows per worker, queue + merge overhead exceeds
        // the binning work itself.
        const MIN_ROWS_PER_WORKER: usize = 4_096;
        let workers = threads.min(rows.len() / MIN_ROWS_PER_WORKER).max(1);
        if workers == 1 {
            // Small input: sequential path. The recorded worker count
            // makes the clamp observable — a `threads > 1` request that
            // ran sequentially reports `effective_workers == 1` instead
            // of silently masquerading as a parallel run.
            let stats = RecoveryStats { effective_workers: 1, ..RecoveryStats::default() };
            return Ok((self.bin_rows(rows.iter())?, stats));
        }
        let chunk = rows.len().div_ceil(workers);
        let shards: Vec<&[Tuple]> = rows.chunks(chunk).collect();
        let (attempts, pool_stats) =
            crate::exec::ExecPool::global().run_shards(workers, &shards, |_, shard| {
                crate::faults::check("binner.shard")?;
                self.bin_rows(shard.iter())
            });
        let mut stats = RecoveryStats::default();
        stats.record_pool(&pool_stats);
        let mut merged: Option<BinArray> = None;
        for (attempt, shard) in attempts.into_iter().zip(shards) {
            let shard_array = match attempt {
                // Typed errors are deterministic — retrying cannot help.
                Ok(result) => result?,
                Err(_) => {
                    stats.worker_panics += 1;
                    self.recover_shard(shard, &mut stats)?
                }
            };
            match merged.as_mut() {
                None => merged = Some(shard_array),
                Some(acc) => acc.merge(&shard_array)?,
            }
        }
        match merged {
            Some(array) => Ok((array, stats)),
            // workers > 1 implies at least one chunk; keep the path typed.
            None => Ok((self.new_bin_array()?, stats)),
        }
    }

    /// Re-runs a panicked shard: bounded retries through the (still
    /// armed) `binner.shard` failpoint, then one final pass on the plain
    /// sequential routine with the failpoint out of the loop. Delegates
    /// to [`run_recovered`](crate::exec::run_recovered) — the one retry
    /// contract shared by every parallel stage (see
    /// [`RecoveryStats`]). A panic on the final pass is unrecoverable
    /// and surfaces as [`ArcsError::WorkerPanicked`].
    fn recover_shard(
        &self,
        shard: &[Tuple],
        stats: &mut RecoveryStats,
    ) -> Result<BinArray, ArcsError> {
        crate::exec::run_recovered(
            stats,
            "binning",
            || {
                crate::faults::check("binner.shard")?;
                self.bin_rows(shard.iter())
            },
            || self.bin_rows(shard.iter()),
        )
    }

    /// Streams `tuples` into a fresh [`BinArray`] using `threads`
    /// persistent pool workers fed over a bounded channel.
    ///
    /// The calling thread plays producer: it pulls the iterator in chunks
    /// and hands each chunk to whichever worker is free; every worker
    /// fills a private array, and the shards are merged deterministically
    /// at the end (see [`BinArray::merge`]). The result is bit-identical
    /// to [`Binner::bin_stream`] for any thread count. With `threads == 1`
    /// this *is* [`Binner::bin_stream`].
    pub fn bin_stream_parallel<I>(&self, tuples: I, threads: usize) -> Result<BinArray, ArcsError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        Ok(self.bin_stream_parallel_with_stats(tuples, threads)?.0)
    }

    /// [`Binner::bin_stream_parallel`] plus panic-isolation tallies.
    ///
    /// The unit of isolation is the chunk-entry `binner.stream-chunk`
    /// failpoint, which fires *before* any of the chunk's tuples touch
    /// the worker's private array — so a caught panic there is retried
    /// (bounded) and finally disarmed without any risk of double-counted
    /// tuples. A panic from the binning arithmetic itself cannot be
    /// replayed safely (the private array may hold a partial chunk) and
    /// surfaces as [`ArcsError::WorkerPanicked`] instead of aborting the
    /// process.
    pub fn bin_stream_parallel_with_stats<I>(
        &self,
        tuples: I,
        threads: usize,
    ) -> Result<(BinArray, RecoveryStats), ArcsError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        if threads == 0 {
            return Err(ArcsError::InvalidConfig(
                "binning thread count must be positive".into(),
            ));
        }
        let pool = crate::exec::ExecPool::global();
        if threads == 1 || !pool.has_workers() {
            // The producer/consumer split needs at least one pool worker
            // (the caller is busy producing); without one, stream
            // sequentially instead of deadlocking on a full channel.
            let stats = RecoveryStats { effective_workers: 1, ..RecoveryStats::default() };
            return Ok((self.bin_stream(tuples)?, stats));
        }
        // Chunk size balances channel traffic (bigger = fewer sends)
        // against producer/worker overlap (smaller = earlier start).
        const CHUNK: usize = 16_384;
        use std::sync::mpsc;
        use std::sync::Mutex;
        type Shard = Result<(BinArray, RecoveryStats), ArcsError>;
        let (tx, rx) = mpsc::sync_channel::<Vec<Tuple>>(threads * 2);
        let rx = Mutex::new(rx);
        let (attempts, (), pool_stats) = pool.run_with_producer(
            threads,
            |_| -> Shard {
                let mut array = self.new_bin_array()?;
                let mut stats = RecoveryStats::default();
                loop {
                    // Hold the lock only for the receive itself so other
                    // workers can pick up chunks while this one bins.
                    // Nothing panics while holding it; recover the guard
                    // if a sibling test thread ever poisoned the mutex
                    // anyway.
                    let chunk = match rx
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .recv()
                    {
                        Ok(chunk) => chunk,
                        Err(_) => break, // producer done
                    };
                    self.pass_stream_chunk_failpoint(&mut stats)?;
                    for tuple in &chunk {
                        self.bin_into(tuple, &mut array);
                    }
                }
                Ok((array, stats))
            },
            move || {
                let mut iter = tuples.into_iter();
                loop {
                    let chunk: Vec<Tuple> = iter.by_ref().take(CHUNK).collect();
                    if chunk.is_empty() || tx.send(chunk).is_err() {
                        break;
                    }
                }
            },
        );
        let mut stats = RecoveryStats::default();
        stats.record_pool(&pool_stats);
        let mut merged: Option<BinArray> = None;
        for attempt in attempts {
            let shard: Shard = attempt.unwrap_or_else(|panic| {
                Err(ArcsError::WorkerPanicked {
                    stage: "binning",
                    message: crate::error::panic_message(panic),
                })
            });
            let (array, shard_stats) = shard?;
            stats.merge(&shard_stats);
            match merged.as_mut() {
                None => merged = Some(array),
                Some(acc) => acc.merge(&array)?,
            }
        }
        match merged {
            Some(array) => Ok((array, stats)),
            None => Ok((self.new_bin_array()?, stats)),
        }
    }

    /// Clears the `binner.stream-chunk` failpoint before a chunk is
    /// binned: panics are caught and retried up to [`MAX_SHARD_RETRIES`]
    /// times, after which the failpoint is disarmed for this chunk (the
    /// stream equivalent of the sequential fallback). Typed errors
    /// propagate immediately. Accounting follows the shared
    /// [`run_recovered`](crate::exec::run_recovered) contract documented
    /// on [`RecoveryStats`]: the initial panic counts one
    /// `worker_panics`, each retry counts `shard_retries` before it
    /// runs, and the disarm counts one `sequential_fallbacks`.
    fn pass_stream_chunk_failpoint(&self, stats: &mut RecoveryStats) -> Result<(), ArcsError> {
        match std::panic::catch_unwind(|| crate::faults::check("binner.stream-chunk")) {
            Ok(result) => result,
            Err(_) => {
                stats.worker_panics += 1;
                crate::exec::run_recovered(
                    stats,
                    "binning",
                    || crate::faults::check("binner.stream-chunk"),
                    // The "fallback" for a chunk-entry fault is simply to
                    // proceed: no tuple has touched the array yet.
                    || Ok(()),
                )
            }
        }
    }

    /// Validates one untrusted tuple against this binner's requirements —
    /// arity, LHS kind and finiteness, criterion kind and range — and
    /// returns its `(x, y, group)` projection, or the issue that
    /// disqualifies it. Unlike [`Binner::bin_tuple`] this never panics.
    pub fn check_tuple(&self, tuple: &Tuple) -> Result<(usize, usize, u32), TupleIssue> {
        let needed = self.x_idx.max(self.y_idx).max(self.criterion_idx) + 1;
        if tuple.arity() < needed {
            return Err(TupleIssue::Arity);
        }
        let values = tuple.values();
        let (Value::Quant(vx), Value::Quant(vy)) = (values[self.x_idx], values[self.y_idx])
        else {
            return Err(TupleIssue::Type);
        };
        if !vx.is_finite() || !vy.is_finite() {
            return Err(TupleIssue::NonFinite);
        }
        let Value::Cat(g) = values[self.criterion_idx] else {
            return Err(TupleIssue::Type);
        };
        if g as usize >= self.nseg {
            return Err(TupleIssue::CategoryRange);
        }
        Ok((self.x_map.bin_of_value(vx), self.y_map.bin_of_value(vy), g))
    }

    /// Streams `tuples` into a fresh [`BinArray`], validating every tuple
    /// (see [`Binner::check_tuple`]) instead of trusting it. Under
    /// [`BadTuplePolicy::Skip`] invalid tuples are counted by issue kind
    /// in the returned [`StreamReport`]; under [`BadTuplePolicy::Fail`]
    /// the first invalid tuple aborts with its stream position.
    pub fn bin_stream_resilient<I>(
        &self,
        tuples: I,
        policy: BadTuplePolicy,
    ) -> Result<(BinArray, StreamReport), ArcsError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        self.stream_impl(tuples, policy, None)
    }

    /// [`Binner::bin_stream_resilient`] with periodic checkpointing: the
    /// bin array and stream counters are persisted to `spec.path`
    /// (atomically, every `spec.every` tuples and once at the end), and a
    /// run finding an existing checkpoint resumes after the covered
    /// prefix of the stream rather than from zero. The caller must
    /// replay the *same* stream; the checkpoint records only how many
    /// tuples were consumed, not their content.
    pub fn bin_stream_checkpointed<I>(
        &self,
        tuples: I,
        policy: BadTuplePolicy,
        spec: &CheckpointSpec<'_>,
    ) -> Result<(BinArray, StreamReport), ArcsError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        self.stream_impl(tuples, policy, Some(spec))
    }

    fn stream_impl<I>(
        &self,
        tuples: I,
        policy: BadTuplePolicy,
        spec: Option<&CheckpointSpec<'_>>,
    ) -> Result<(BinArray, StreamReport), ArcsError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        if let Some(spec) = spec {
            if spec.every == 0 {
                return Err(ArcsError::InvalidConfig(
                    "checkpoint interval must be positive".into(),
                ));
            }
        }
        let (mut array, mut report) = match spec {
            Some(spec) if spec.path.exists() => {
                let (array, report) = load_checkpoint(spec.path)?;
                if array.nx() != self.x_map.n_bins()
                    || array.ny() != self.y_map.n_bins()
                    || array.nseg() != self.nseg
                {
                    return Err(ArcsError::Checkpoint {
                        message: format!(
                            "checkpoint dimensions {}x{}x{} do not match binner {}x{}x{}",
                            array.nx(),
                            array.ny(),
                            array.nseg(),
                            self.x_map.n_bins(),
                            self.y_map.n_bins(),
                            self.nseg
                        ),
                    });
                }
                (array, report)
            }
            _ => (self.new_bin_array()?, StreamReport::default()),
        };
        let resume_at = report.seen;
        report.resumed_from = resume_at;

        let mut iter = tuples.into_iter();
        for _ in 0..resume_at {
            if iter.next().is_none() {
                return Err(ArcsError::Checkpoint {
                    message: format!(
                        "checkpoint covers {resume_at} tuples but the stream is shorter — \
                         wrong input for this checkpoint?"
                    ),
                });
            }
        }
        for tuple in iter {
            report.seen += 1;
            match self.check_tuple(&tuple) {
                Ok((x, y, g)) => {
                    array.add(x, y, g);
                    report.accepted += 1;
                }
                Err(issue) => match policy {
                    BadTuplePolicy::Skip => report.count(issue),
                    BadTuplePolicy::Fail => {
                        return Err(ArcsError::InvalidTuple {
                            position: report.seen,
                            message: issue_message(issue, &tuple, self.nseg),
                        })
                    }
                },
            }
            if let Some(spec) = spec {
                if report.seen % spec.every == 0 {
                    save_checkpoint(spec.path, &array, &report)?;
                }
            }
        }
        if let Some(spec) = spec {
            save_checkpoint(spec.path, &array, &report)?;
        }
        Ok((array, report))
    }
}

fn issue_message(issue: TupleIssue, tuple: &Tuple, nseg: usize) -> String {
    match issue {
        TupleIssue::Arity => format!("tuple has only {} values", tuple.arity()),
        TupleIssue::Type => "value kind does not match the attribute".into(),
        TupleIssue::NonFinite => "LHS value is NaN or infinite".into(),
        TupleIssue::CategoryRange => format!("criterion code out of range (nseg {nseg})"),
    }
}

/// Serialised stream counters: everything except `resumed_from`, which
/// describes a *run*, not the stream state.
const CHECKPOINT_COUNTERS: usize = 7;

fn report_counters(report: &StreamReport) -> [u64; CHECKPOINT_COUNTERS] {
    [
        report.seen,
        report.accepted,
        report.skipped,
        report.arity_issues,
        report.type_issues,
        report.non_finite,
        report.category_issues,
    ]
}

/// Writes `{magic, BinArray snapshot, stream counters, checksum}` to
/// `path` atomically (temp file + rename).
fn save_checkpoint(path: &Path, array: &BinArray, report: &StreamReport) -> Result<(), ArcsError> {
    crate::faults::check("binner.checkpoint-save")?;
    let mut buf = Vec::with_capacity(array.memory_bytes() + 128);
    buf.extend_from_slice(&CHECKPOINT_MAGIC);
    array.write_to(&mut buf)?;
    for counter in report_counters(report) {
        buf.extend_from_slice(&counter.to_le_bytes());
    }
    let checksum = crate::binarray::fnv1a64(&[&buf]);
    buf.extend_from_slice(&checksum.to_le_bytes());

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&buf)?;
        file.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn load_checkpoint(path: &Path) -> Result<(BinArray, StreamReport), ArcsError> {
    crate::faults::check("binner.checkpoint-load")?;
    let bytes = std::fs::read(path)?;
    if bytes.len() < CHECKPOINT_MAGIC.len() + 8 {
        return Err(ArcsError::Checkpoint {
            message: "checkpoint file is too short".into(),
        });
    }
    if bytes[..7] != CHECKPOINT_MAGIC[..7] {
        return Err(ArcsError::Checkpoint {
            message: "not a stream checkpoint (bad magic)".into(),
        });
    }
    if bytes[7] != CHECKPOINT_MAGIC[7] {
        return Err(ArcsError::Checkpoint {
            message: format!(
                "unsupported checkpoint version {} (this build reads version {})",
                bytes[7], CHECKPOINT_MAGIC[7]
            ),
        });
    }
    let (body, stored) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(stored.try_into().expect("split gave 8 bytes"));
    let computed = crate::binarray::fnv1a64(&[body]);
    if stored != computed {
        return Err(ArcsError::Checkpoint {
            message: format!(
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
        });
    }
    let mut cursor = &body[CHECKPOINT_MAGIC.len()..];
    let array = BinArray::read_from(&mut cursor)?;
    if cursor.len() != CHECKPOINT_COUNTERS * 8 {
        return Err(ArcsError::Checkpoint {
            message: format!(
                "unexpected trailer length {} (want {})",
                cursor.len(),
                CHECKPOINT_COUNTERS * 8
            ),
        });
    }
    let mut counters = [0u64; CHECKPOINT_COUNTERS];
    for counter in counters.iter_mut() {
        let mut raw = [0u8; 8];
        cursor
            .read_exact(&mut raw)
            .map_err(|e| ArcsError::Checkpoint { message: format!("truncated trailer: {e}") })?;
        *counter = u64::from_le_bytes(raw);
    }
    let report = StreamReport {
        seen: counters[0],
        accepted: counters[1],
        skipped: counters[2],
        arity_issues: counters[3],
        type_issues: counters[4],
        non_finite: counters[5],
        category_issues: counters[6],
        resumed_from: 0,
    };
    if report.accepted != array.n_tuples() || report.accepted + report.skipped != report.seen {
        return Err(ArcsError::Checkpoint {
            message: "checkpoint counters are internally inconsistent".into(),
        });
    }
    Ok((array, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_data::schema::Attribute;
    use arcs_data::Value;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::quantitative("age", 20.0, 80.0),
            Attribute::quantitative("salary", 0.0, 100_000.0),
            Attribute::categorical("group", ["A", "other"]),
        ])
        .unwrap()
    }

    fn tuple(age: f64, salary: f64, g: u32) -> Tuple {
        Tuple::new(vec![Value::Quant(age), Value::Quant(salary), Value::Cat(g)])
    }

    #[test]
    fn equi_width_construction() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        assert_eq!(b.x_map().n_bins(), 6);
        assert_eq!(b.y_map().n_bins(), 10);
        assert_eq!(b.nseg(), 2);
        assert_eq!(b.x_idx(), 0);
        assert_eq!(b.y_idx(), 1);
        assert_eq!(b.criterion_idx(), 2);
    }

    #[test]
    fn rejects_bad_attribute_choices() {
        let s = schema();
        assert!(Binner::equi_width(&s, "age", "age", "group", 5, 5).is_err());
        assert!(Binner::equi_width(&s, "group", "salary", "group", 5, 5).is_err());
        assert!(Binner::equi_width(&s, "age", "salary", "salary", 5, 5).is_err());
        assert!(Binner::equi_width(&s, "missing", "salary", "group", 5, 5).is_err());
        assert!(Binner::equi_width(&s, "age", "salary", "missing", 5, 5).is_err());
    }

    #[test]
    fn bins_tuples_into_expected_cells() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        // age 20..80 in 6 bins of width 10; salary 0..100k in 10 bins of 10k.
        assert_eq!(b.bin_tuple(&tuple(25.0, 5_000.0, 0)), (0, 0, 0));
        assert_eq!(b.bin_tuple(&tuple(35.0, 95_000.0, 1)), (1, 9, 1));
        assert_eq!(b.bin_tuple(&tuple(80.0, 100_000.0, 0)), (5, 9, 0));
        assert_eq!(b.bin_point(45.0, 52_000.0), (2, 5));
    }

    #[test]
    fn bin_stream_counts_everything() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        let tuples = vec![
            tuple(25.0, 5_000.0, 0),
            tuple(25.0, 5_000.0, 0),
            tuple(25.0, 5_000.0, 1),
            tuple(75.0, 95_000.0, 1),
        ];
        let ba = b.bin_stream(tuples).unwrap();
        assert_eq!(ba.n_tuples(), 4);
        assert_eq!(ba.group_count(0, 0, 0), 2);
        assert_eq!(ba.group_count(0, 0, 1), 1);
        assert_eq!(ba.cell_total(5, 9), 1);
    }

    #[test]
    fn bin_rows_matches_bin_stream() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 4, 4).unwrap();
        let tuples = vec![tuple(30.0, 10_000.0, 0), tuple(60.0, 80_000.0, 1)];
        let by_rows = b.bin_rows(tuples.iter()).unwrap();
        let by_stream = b.bin_stream(tuples).unwrap();
        assert_eq!(by_rows, by_stream);
    }

    #[test]
    fn single_group_mode_matches_full_tracking() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        let tuples = vec![
            tuple(25.0, 5_000.0, 0),
            tuple(25.0, 5_000.0, 0),
            tuple(25.0, 5_000.0, 1),
            tuple(75.0, 95_000.0, 1),
        ];
        let full = b.bin_stream(tuples.clone()).unwrap();
        let single = b.bin_stream_single_group(tuples, 0).unwrap();
        assert_eq!(single.nseg(), 1);
        assert_eq!(single.n_tuples(), full.n_tuples());
        // Group-0 counts and totals agree cell by cell; memory halves+.
        for y in 0..10 {
            for x in 0..6 {
                assert_eq!(single.group_count(x, y, 0), full.group_count(x, y, 0));
                assert_eq!(single.cell_total(x, y), full.cell_total(x, y));
            }
        }
        assert!(single.memory_bytes() < full.memory_bytes());
        // Mining the single-group array at code 0 is equivalent.
        let t = crate::engine::Thresholds::new(0.0, 0.5).unwrap();
        let a = crate::engine::mine_rules(&full, 0, t);
        let b2 = crate::engine::mine_rules(&single, 0, t);
        assert_eq!(
            a.iter().map(|r| (r.x, r.y, r.count)).collect::<Vec<_>>(),
            b2.iter().map(|r| (r.x, r.y, r.count)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn single_group_mode_rejects_bad_group() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        assert!(b.bin_stream_single_group(Vec::new(), 2).is_err());
    }

    #[test]
    fn parallel_rows_match_sequential_bitwise() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        // Enough rows to clear the per-worker minimum and use real shards.
        let tuples: Vec<Tuple> = (0..20_000)
            .map(|i| tuple(20.0 + (i % 60) as f64, (i * 997 % 100_000) as f64, i % 2))
            .collect();
        let sequential = b.bin_rows(tuples.iter()).unwrap();
        for threads in [1, 2, 3, 4, 7] {
            let parallel = b.bin_rows_parallel(&tuples, threads).unwrap();
            assert_eq!(parallel, sequential, "threads = {threads}");
            assert_eq!(parallel.checksum(), sequential.checksum());
        }
        assert!(b.bin_rows_parallel(&tuples, 0).is_err());
    }

    #[test]
    fn parallel_stream_matches_sequential_bitwise() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        let make = || {
            (0..50_000)
                .map(|i| tuple(20.0 + (i % 60) as f64, (i * 31 % 100_000) as f64, i % 2))
        };
        let sequential = b.bin_stream(make()).unwrap();
        for threads in [1, 2, 4] {
            let parallel = b.bin_stream_parallel(make(), threads).unwrap();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
        assert!(b.bin_stream_parallel(make(), 0).is_err());
    }

    #[test]
    fn parallel_rows_handle_tiny_and_empty_inputs() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        let empty: Vec<Tuple> = Vec::new();
        assert_eq!(b.bin_rows_parallel(&empty, 4).unwrap().n_tuples(), 0);
        let few = vec![tuple(25.0, 5_000.0, 0), tuple(75.0, 95_000.0, 1)];
        let parallel = b.bin_rows_parallel(&few, 8).unwrap();
        assert_eq!(parallel, b.bin_rows(few.iter()).unwrap());
        assert_eq!(b.bin_stream_parallel(Vec::new(), 4).unwrap().n_tuples(), 0);
    }

    fn mixed_tuples() -> Vec<Tuple> {
        vec![
            tuple(25.0, 5_000.0, 0),                                        // ok
            Tuple::new(vec![Value::Quant(30.0)]),                           // arity
            tuple(f64::NAN, 5_000.0, 0),                                    // non-finite
            tuple(40.0, f64::INFINITY, 1),                                  // non-finite
            Tuple::new(vec![Value::Cat(1), Value::Quant(1.0), Value::Cat(0)]), // type
            tuple(50.0, 50_000.0, 9),                                       // category range
            tuple(75.0, 95_000.0, 1),                                       // ok
        ]
    }

    #[test]
    fn resilient_stream_skips_and_counts_by_kind() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        let (ba, report) = b
            .bin_stream_resilient(mixed_tuples(), BadTuplePolicy::Skip)
            .unwrap();
        assert_eq!(report.seen, 7);
        assert_eq!(report.accepted, 2);
        assert_eq!(report.skipped, 5);
        assert_eq!(report.arity_issues, 1);
        assert_eq!(report.non_finite, 2);
        assert_eq!(report.type_issues, 1);
        assert_eq!(report.category_issues, 1);
        assert_eq!(report.resumed_from, 0);
        assert_eq!(ba.n_tuples(), 2);
        // The accepted tuples landed where the trusting path puts them.
        assert_eq!(ba.group_count(0, 0, 0), 1);
        assert_eq!(ba.group_count(5, 9, 1), 1);
    }

    #[test]
    fn resilient_stream_fail_policy_reports_position() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        let err = b
            .bin_stream_resilient(mixed_tuples(), BadTuplePolicy::Fail)
            .unwrap_err();
        assert!(
            matches!(err, ArcsError::InvalidTuple { position: 2, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn resilient_stream_matches_trusting_path_on_clean_data() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        let tuples: Vec<Tuple> =
            (0..100).map(|i| tuple(20.0 + (i % 60) as f64, (i * 997 % 100_000) as f64, i % 2)).collect();
        let trusted = b.bin_stream(tuples.clone()).unwrap();
        let (checked, report) = b
            .bin_stream_resilient(tuples, BadTuplePolicy::Fail)
            .unwrap();
        assert_eq!(trusted, checked);
        assert_eq!(report.accepted, 100);
        assert_eq!(report.skipped, 0);
    }

    #[test]
    fn checkpointed_stream_resumes_to_identical_array() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        let tuples: Vec<Tuple> = (0..500)
            .map(|i| {
                if i % 50 == 13 {
                    tuple(f64::NAN, 0.0, 0) // sprinkle bad tuples
                } else {
                    tuple(20.0 + (i % 60) as f64, (i * 31 % 100_000) as f64, i % 2)
                }
            })
            .collect();

        let dir = std::env::temp_dir().join("arcs-binner-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.ckpt");
        std::fs::remove_file(&path).ok();
        let spec = CheckpointSpec { path: &path, every: 100 };

        // Uninterrupted reference run (no checkpointing).
        let (reference, _) = b
            .bin_stream_resilient(tuples.clone(), BadTuplePolicy::Skip)
            .unwrap();

        // Interrupted run: the stream dies after 230 tuples, past two
        // checkpoints. Its partial result is discarded, as after a crash.
        let _ = b
            .bin_stream_checkpointed(
                tuples.iter().take(230).cloned(),
                BadTuplePolicy::Skip,
                &spec,
            )
            .unwrap();

        // Resume over the full stream: the first 230 tuples (the last
        // checkpoint covers them) are skipped, the rest replayed.
        let (resumed, report) = b
            .bin_stream_checkpointed(tuples.clone(), BadTuplePolicy::Skip, &spec)
            .unwrap();
        assert_eq!(report.resumed_from, 230);
        assert_eq!(report.seen, 500);
        assert_eq!(resumed, reference);

        // Bit-identical serialised form, not just structural equality.
        let mut a = Vec::new();
        let mut r = Vec::new();
        reference.write_to(&mut a).unwrap();
        resumed.write_to(&mut r).unwrap();
        assert_eq!(a, r);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_rejects_dimension_mismatch_and_short_streams() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        let tuples: Vec<Tuple> = (0..50).map(|i| tuple(30.0, 1_000.0, i % 2)).collect();

        let dir = std::env::temp_dir().join("arcs-binner-ckpt-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.ckpt");
        std::fs::remove_file(&path).ok();
        let spec = CheckpointSpec { path: &path, every: 10 };
        b.bin_stream_checkpointed(tuples.clone(), BadTuplePolicy::Skip, &spec)
            .unwrap();

        // A binner with different dimensions must refuse the checkpoint.
        let other = Binner::equi_width(&s, "age", "salary", "group", 5, 5).unwrap();
        let err = other
            .bin_stream_checkpointed(tuples.clone(), BadTuplePolicy::Skip, &spec)
            .unwrap_err();
        assert!(matches!(err, ArcsError::Checkpoint { .. }), "{err:?}");

        // A stream shorter than the checkpoint's progress is an error.
        let err = b
            .bin_stream_checkpointed(
                tuples.iter().take(10).cloned(),
                BadTuplePolicy::Skip,
                &spec,
            )
            .unwrap_err();
        assert!(matches!(err, ArcsError::Checkpoint { .. }), "{err:?}");

        // Zero interval is a config error.
        let bad = CheckpointSpec { path: &path, every: 0 };
        assert!(matches!(
            b.bin_stream_checkpointed(tuples, BadTuplePolicy::Skip, &bad),
            Err(ArcsError::InvalidConfig(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_checkpoint_is_detected() {
        let s = schema();
        let b = Binner::equi_width(&s, "age", "salary", "group", 6, 10).unwrap();
        let tuples: Vec<Tuple> = (0..20).map(|i| tuple(30.0, 1_000.0, i % 2)).collect();
        let dir = std::env::temp_dir().join("arcs-binner-ckpt-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.ckpt");
        std::fs::remove_file(&path).ok();
        let spec = CheckpointSpec { path: &path, every: 10 };
        b.bin_stream_checkpointed(tuples.clone(), BadTuplePolicy::Skip, &spec)
            .unwrap();

        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        std::fs::write(&path, &bytes).unwrap();
        let err = b
            .bin_stream_checkpointed(tuples, BadTuplePolicy::Skip, &spec)
            .unwrap_err();
        assert!(matches!(err, ArcsError::Checkpoint { .. }), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn with_maps_allows_custom_boundaries() {
        let s = schema();
        let x_map = BinMap::Boundaries { edges: vec![20.0, 40.0, 60.0, 80.0] };
        let y_map = BinMap::equi_width(0.0, 100_000.0, 5).unwrap();
        let b = Binner::with_maps(&s, "age", "salary", "group", x_map, y_map).unwrap();
        assert_eq!(b.x_map().n_bins(), 3);
        assert_eq!(b.bin_tuple(&tuple(45.0, 1_000.0, 0)).0, 1);
    }
}
