//! The MDL cluster-quality measure (paper §3.6).
//!
//! The Minimum Description Length principle: the best model minimises the
//! cost of describing the model plus the cost of describing the data given
//! the model. For a segmentation the model is the cluster set and the data
//! cost is the residual error (false positives + false negatives on a
//! sample):
//!
//! ```text
//! cost = wc · log2(|C|) + we · log2(errors)
//! ```
//!
//! The weights `wc`, `we` let the user bias toward fewer clusters or lower
//! error (both default to 1, "the default case" in the paper).

use crate::error::ArcsError;

/// User bias weights for the MDL cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdlWeights {
    /// Weight on the cluster-count (model) term.
    pub wc: f64,
    /// Weight on the error (data) term.
    pub we: f64,
}

impl Default for MdlWeights {
    fn default() -> Self {
        MdlWeights { wc: 1.0, we: 1.0 }
    }
}

impl MdlWeights {
    /// Creates weights, validating both are non-negative and not both zero.
    pub fn new(wc: f64, we: f64) -> Result<Self, ArcsError> {
        if wc < 0.0 || we < 0.0 || !wc.is_finite() || !we.is_finite() {
            return Err(ArcsError::InvalidConfig(format!(
                "MDL weights must be finite and non-negative, got wc={wc}, we={we}"
            )));
        }
        if wc == 0.0 && we == 0.0 {
            return Err(ArcsError::InvalidConfig(
                "MDL weights must not both be zero".into(),
            ));
        }
        Ok(MdlWeights { wc, we })
    }
}

/// The MDL cost of a segmentation with `n_clusters` clusters and `errors`
/// total sample errors (false positives + false negatives).
///
/// `log2` is taken of `max(x, 1)` so that an empty cluster set or a
/// zero-error segmentation contributes zero cost for that term rather than
/// `-inf` (the paper's uniform-encoding simplification).
pub fn mdl_cost(n_clusters: usize, errors: usize, weights: MdlWeights) -> f64 {
    let model = (n_clusters.max(1) as f64).log2();
    let data = (errors.max(1) as f64).log2();
    weights.wc * model + weights.we * data
}

/// A segmentation's quality summary: the inputs and output of the MDL
/// measure, kept together for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdlScore {
    /// Number of clusters in the segmentation.
    pub n_clusters: usize,
    /// Total errors (false positives + false negatives) on the sample.
    pub errors: usize,
    /// The combined MDL cost.
    pub cost: f64,
}

impl MdlScore {
    /// Computes the score for a segmentation.
    pub fn compute(n_clusters: usize, errors: usize, weights: MdlWeights) -> Self {
        MdlScore {
            n_clusters,
            errors,
            cost: mdl_cost(n_clusters, errors, weights),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_weights_are_unbiased() {
        let w = MdlWeights::default();
        assert_eq!(w.wc, 1.0);
        assert_eq!(w.we, 1.0);
    }

    #[test]
    fn weights_validate() {
        assert!(MdlWeights::new(1.0, 2.0).is_ok());
        assert!(MdlWeights::new(0.0, 1.0).is_ok());
        assert!(MdlWeights::new(-1.0, 1.0).is_err());
        assert!(MdlWeights::new(1.0, f64::NAN).is_err());
        assert!(MdlWeights::new(0.0, 0.0).is_err());
    }

    #[test]
    fn cost_formula_matches_paper() {
        let w = MdlWeights::default();
        // 4 clusters, 16 errors: log2(4) + log2(16) = 2 + 4.
        assert!((mdl_cost(4, 16, w) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn zero_edge_cases_finite() {
        let w = MdlWeights::default();
        assert_eq!(mdl_cost(0, 0, w), 0.0);
        assert_eq!(mdl_cost(1, 0, w), 0.0);
        assert_eq!(mdl_cost(0, 1, w), 0.0);
        assert!(mdl_cost(2, 0, w) > 0.0);
    }

    #[test]
    fn more_clusters_cost_more() {
        let w = MdlWeights::default();
        assert!(mdl_cost(8, 10, w) > mdl_cost(3, 10, w));
        assert!(mdl_cost(3, 100, w) > mdl_cost(3, 10, w));
    }

    #[test]
    fn weights_bias_the_tradeoff() {
        // Segmentation A: 2 clusters, 64 errors. B: 16 clusters, 8 errors.
        let a = (2usize, 64usize);
        let b = (16usize, 8usize);
        // Cluster-averse user prefers A.
        let cluster_averse = MdlWeights::new(4.0, 1.0).unwrap();
        assert!(
            mdl_cost(a.0, a.1, cluster_averse) < mdl_cost(b.0, b.1, cluster_averse)
        );
        // Error-averse user prefers B.
        let error_averse = MdlWeights::new(1.0, 4.0).unwrap();
        assert!(mdl_cost(b.0, b.1, error_averse) < mdl_cost(a.0, a.1, error_averse));
    }

    #[test]
    fn score_carries_inputs() {
        let s = MdlScore::compute(3, 5, MdlWeights::default());
        assert_eq!(s.n_clusters, 3);
        assert_eq!(s.errors, 5);
        assert!((s.cost - (3.0f64.log2() + 5.0f64.log2())).abs() < 1e-12);
    }
}
