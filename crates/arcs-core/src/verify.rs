//! The verifier (paper §3.6, Figure 9): measures segmentation accuracy.
//!
//! A tuple is a **false positive** when some cluster covers it but it does
//! not belong to the criterion group; a **false negative** when it belongs
//! to the group but no cluster covers it. On real data the error is
//! estimated from samples (repeated k-out-of-n); when the generating
//! function is known (synthetic experiments) the exact region error of
//! Figure 9 can be integrated directly.

// Public-API paths must fail with typed errors, never panic.
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

use arcs_data::agrawal::Region2D;
use arcs_data::sample::RepeatedSampling;
use arcs_data::{Dataset, Tuple};

use crate::binner::Binner;
use crate::cluster::Rect;
use crate::error::ArcsError;

/// Error tallies from verifying a segmentation against tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ErrorCounts {
    /// Tuples covered by a cluster but not in the criterion group.
    pub false_positives: usize,
    /// Tuples in the criterion group not covered by any cluster.
    pub false_negatives: usize,
    /// Number of tuples examined.
    pub n_examined: usize,
    /// Tuples examined that belong to the criterion group.
    pub group_total: usize,
}

impl ErrorCounts {
    /// Total errors (the paper's `errors` term in the MDL cost).
    pub fn total(&self) -> usize {
        self.false_positives + self.false_negatives
    }

    /// Error rate in `[0, 1]`; zero when nothing was examined.
    pub fn rate(&self) -> f64 {
        if self.n_examined == 0 {
            return 0.0;
        }
        self.total() as f64 / self.n_examined as f64
    }

    /// Fraction of group tuples the clusters identify (1 − FN rate within
    /// the group). Vacuously 1 when the sample holds no group tuples.
    pub fn recall(&self) -> f64 {
        if self.group_total == 0 {
            return 1.0;
        }
        (self.group_total - self.false_negatives) as f64 / self.group_total as f64
    }
}

/// Verifies cluster rectangles against explicit tuples: each tuple is
/// binned with `binner` and tested for cluster membership and group
/// membership.
pub fn verify_tuples<'a, I>(clusters: &[Rect], binner: &Binner, tuples: I, gk: u32) -> ErrorCounts
where
    I: IntoIterator<Item = &'a Tuple>,
{
    let mut counts = ErrorCounts::default();
    for tuple in tuples {
        let (x, y, g) = binner.bin_tuple(tuple);
        let covered = clusters.iter().any(|r| r.contains(x, y));
        let in_group = g == gk;
        if in_group {
            counts.group_total += 1;
        }
        match (covered, in_group) {
            (true, false) => counts.false_positives += 1,
            (false, true) => counts.false_negatives += 1,
            _ => {}
        }
        counts.n_examined += 1;
    }
    counts
}

/// Estimates the error rate with repeated k-out-of-n sampling
/// (paper §3.6: "a stronger statistical technique"). Returns
/// `(mean_rate, std_dev)` across repetitions.
///
/// Edge cases are well-defined rather than errors: a requested sample
/// size larger than the dataset is clamped to the dataset (every
/// repetition then examines all of it), an empty dataset yields
/// `(0.0, 0.0)` (nothing examined, no error evidence), and an empty
/// cluster set or group-free sample simply produces the corresponding
/// [`ErrorCounts::rate`] — no panics anywhere on the path.
pub fn verify_sampled(
    clusters: &[Rect],
    binner: &Binner,
    dataset: &Dataset,
    gk: u32,
    sampling: RepeatedSampling,
) -> Result<(f64, f64), ArcsError> {
    crate::faults::check("verify.sample")?;
    if dataset.is_empty() {
        return Ok((0.0, 0.0));
    }
    let sampling = RepeatedSampling {
        k: sampling.k.min(dataset.len()),
        ..sampling
    };
    let (mean, sd) = sampling
        .estimate(dataset, |rows| {
            verify_tuples(clusters, binner, rows.iter().copied(), gk).rate()
        })
        .map_err(ArcsError::Data)?;
    Ok((mean, sd))
}

/// Exact area-based error against known true regions (paper Figure 9),
/// integrated on a `resolution × resolution` lattice over the binner's
/// attribute domains. Returns the fraction of lattice points that are
/// false positives and false negatives.
///
/// Only meaningful for synthetic data where the generating regions are
/// known (e.g. [`f2_regions`](arcs_data::agrawal::f2_regions)).
pub fn region_error(
    clusters: &[Rect],
    binner: &Binner,
    true_regions: &[Region2D],
    x_domain: (f64, f64),
    y_domain: (f64, f64),
    resolution: usize,
) -> Result<ErrorCounts, ArcsError> {
    if resolution < 2 {
        return Err(ArcsError::InvalidConfig(
            "region_error resolution must be at least 2".into(),
        ));
    }
    let mut counts = ErrorCounts::default();
    for iy in 0..resolution {
        let y = y_domain.0 + (y_domain.1 - y_domain.0) * (iy as f64 + 0.5) / resolution as f64;
        for ix in 0..resolution {
            let x =
                x_domain.0 + (x_domain.1 - x_domain.0) * (ix as f64 + 0.5) / resolution as f64;
            let in_true = true_regions.iter().any(|r| r.contains(x, y));
            if in_true {
                counts.group_total += 1;
            }
            let (bx, by) = binner.bin_point(x, y);
            let in_computed = clusters.iter().any(|r| r.contains(bx, by));
            match (in_computed, in_true) {
                (true, false) => counts.false_positives += 1,
                (false, true) => counts.false_negatives += 1,
                _ => {}
            }
            counts.n_examined += 1;
        }
    }
    Ok(counts)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use arcs_data::schema::{Attribute, Schema};
    use arcs_data::Value;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::quantitative("x", 0.0, 10.0),
            Attribute::quantitative("y", 0.0, 10.0),
            Attribute::categorical("g", ["A", "other"]),
        ])
        .unwrap()
    }

    fn binner() -> Binner {
        Binner::equi_width(&schema(), "x", "y", "g", 10, 10).unwrap()
    }

    fn tuple(x: f64, y: f64, g: u32) -> Tuple {
        Tuple::new(vec![Value::Quant(x), Value::Quant(y), Value::Cat(g)])
    }

    #[test]
    fn counts_classify_each_quadrant() {
        let clusters = vec![Rect::new(0, 0, 4, 4).unwrap()];
        let b = binner();
        let tuples = [
            tuple(2.0, 2.0, 0), // covered + in group: correct
            tuple(2.0, 2.0, 1), // covered + not in group: FP
            tuple(8.0, 8.0, 0), // uncovered + in group: FN
            tuple(8.0, 8.0, 1), // uncovered + not in group: correct
        ];
        let counts = verify_tuples(&clusters, &b, tuples.iter(), 0);
        assert_eq!(counts.false_positives, 1);
        assert_eq!(counts.false_negatives, 1);
        assert_eq!(counts.n_examined, 4);
        assert_eq!(counts.total(), 2);
        assert!((counts.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_set_counts_all_group_tuples_as_fn() {
        let b = binner();
        let tuples = [tuple(1.0, 1.0, 0), tuple(2.0, 2.0, 0), tuple(3.0, 3.0, 1)];
        let counts = verify_tuples(&[], &b, tuples.iter(), 0);
        assert_eq!(counts.false_negatives, 2);
        assert_eq!(counts.false_positives, 0);
    }

    #[test]
    fn empty_examination_has_zero_rate() {
        let counts = verify_tuples(&[], &binner(), std::iter::empty(), 0);
        assert_eq!(counts.rate(), 0.0);
        assert_eq!(counts.n_examined, 0);
    }

    #[test]
    fn sampled_verification_approximates_full() {
        let b = binner();
        let clusters = vec![Rect::new(0, 0, 4, 4).unwrap()];
        let mut ds = Dataset::new(schema());
        // 500 perfect tuples, 100 FPs, 100 FNs -> true rate = 200/700.
        for i in 0..500 {
            let v = (i % 5) as f64;
            ds.push(vec![Value::Quant(v), Value::Quant(v), Value::Cat(0)]).unwrap();
        }
        for _ in 0..100 {
            ds.push(vec![Value::Quant(1.0), Value::Quant(1.0), Value::Cat(1)]).unwrap();
        }
        for _ in 0..100 {
            ds.push(vec![Value::Quant(9.0), Value::Quant(9.0), Value::Cat(0)]).unwrap();
        }
        let full = verify_tuples(&clusters, &b, ds.iter(), 0);
        assert!((full.rate() - 200.0 / 700.0).abs() < 1e-12);

        let sampling = RepeatedSampling { k: 200, repetitions: 10, seed: 3 };
        let (mean, sd) = verify_sampled(&clusters, &b, &ds, 0, sampling).unwrap();
        assert!((mean - full.rate()).abs() < 0.08, "mean {mean} vs {}", full.rate());
        assert!(sd < 0.1);
    }

    #[test]
    fn sampled_verification_clamps_oversized_k() {
        // k far beyond the dataset: every repetition examines the whole
        // dataset, so the estimate is exact with zero variance.
        let b = binner();
        let clusters = vec![Rect::new(0, 0, 4, 4).unwrap()];
        let mut ds = Dataset::new(schema());
        for i in 0..20 {
            let v = (i % 5) as f64;
            ds.push(vec![Value::Quant(v), Value::Quant(v), Value::Cat(0)]).unwrap();
        }
        ds.push(vec![Value::Quant(9.0), Value::Quant(9.0), Value::Cat(0)]).unwrap();
        let full = verify_tuples(&clusters, &b, ds.iter(), 0);
        let sampling = RepeatedSampling { k: 10_000, repetitions: 5, seed: 1 };
        let (mean, sd) = verify_sampled(&clusters, &b, &ds, 0, sampling).unwrap();
        assert!((mean - full.rate()).abs() < 1e-12, "mean {mean} vs {}", full.rate());
        assert_eq!(sd, 0.0);
    }

    #[test]
    fn sampled_verification_handles_empty_dataset_and_group() {
        let b = binner();
        let ds = Dataset::new(schema());
        let sampling = RepeatedSampling { k: 100, repetitions: 3, seed: 1 };
        let clusters = vec![Rect::new(0, 0, 4, 4).unwrap()];
        // Empty dataset: nothing examined, zero rate, no error.
        let (mean, sd) = verify_sampled(&clusters, &b, &ds, 0, sampling).unwrap();
        assert_eq!((mean, sd), (0.0, 0.0));

        // Sample with no group members: FP-only rate, recall vacuously 1.
        let mut ds = Dataset::new(schema());
        for _ in 0..10 {
            ds.push(vec![Value::Quant(1.0), Value::Quant(1.0), Value::Cat(1)]).unwrap();
        }
        let counts = verify_tuples(&clusters, &b, ds.iter(), 0);
        assert_eq!(counts.group_total, 0);
        assert_eq!(counts.recall(), 1.0);
        let sampling = RepeatedSampling { k: 100, repetitions: 3, seed: 1 };
        let (mean, _) = verify_sampled(&clusters, &b, &ds, 0, sampling).unwrap();
        assert!((mean - 1.0).abs() < 1e-12, "all covered non-group tuples are FPs");

        // Zero-cluster grid: every group tuple is a false negative, and
        // the sampled path agrees without panicking.
        let (mean, _) = verify_sampled(&[], &b, &ds, 1, sampling).unwrap();
        assert!((mean - 1.0).abs() < 1e-12);
        let (mean, _) = verify_sampled(&[], &b, &ds, 0, sampling).unwrap();
        assert_eq!(mean, 0.0, "no group tuples and no clusters: error-free");
    }

    #[test]
    fn region_error_perfect_overlap_is_zero() {
        // Cluster rect covering bins 0..=4 on both axes == true region
        // [0, 5) x [0, 5).
        let b = binner();
        let clusters = vec![Rect::new(0, 0, 4, 4).unwrap()];
        let regions = [Region2D { x_lo: 0.0, x_hi: 5.0, y_lo: 0.0, y_hi: 5.0 }];
        let counts =
            region_error(&clusters, &b, &regions, (0.0, 10.0), (0.0, 10.0), 100).unwrap();
        assert_eq!(counts.false_positives, 0);
        assert_eq!(counts.false_negatives, 0);
        assert_eq!(counts.n_examined, 10_000);
    }

    #[test]
    fn region_error_measures_mismatch_area() {
        // Computed cluster covers x bins 0..=4 but the true region only
        // extends to x < 2.5: half the cluster's x-extent is FP area.
        let b = binner();
        let clusters = vec![Rect::new(0, 0, 4, 4).unwrap()];
        let regions = [Region2D { x_lo: 0.0, x_hi: 2.5, y_lo: 0.0, y_hi: 5.0 }];
        let counts =
            region_error(&clusters, &b, &regions, (0.0, 10.0), (0.0, 10.0), 200).unwrap();
        let fp_frac = counts.false_positives as f64 / counts.n_examined as f64;
        // FP area = (5.0 - 2.5) * 5.0 = 12.5 of 100 total.
        assert!((fp_frac - 0.125).abs() < 0.01, "fp_frac = {fp_frac}");
        assert_eq!(counts.false_negatives, 0);
    }

    #[test]
    fn region_error_counts_false_negatives() {
        // No clusters at all: the whole true region is FN area.
        let b = binner();
        let regions = [Region2D { x_lo: 0.0, x_hi: 5.0, y_lo: 0.0, y_hi: 5.0 }];
        let counts = region_error(&[], &b, &regions, (0.0, 10.0), (0.0, 10.0), 100).unwrap();
        let fn_frac = counts.false_negatives as f64 / counts.n_examined as f64;
        assert!((fn_frac - 0.25).abs() < 0.01);
        assert_eq!(counts.false_positives, 0);
    }

    #[test]
    fn region_error_validates_resolution() {
        let b = binner();
        assert!(region_error(&[], &b, &[], (0.0, 1.0), (0.0, 1.0), 1).is_err());
    }
}
