//! The session API: bin once, then mine, cluster, and re-mine at will.
//!
//! [`Arcs::open`] runs the expensive front half of the pipeline — binning
//! and sampling — and hands back a [`Session`] that **owns** the populated
//! [`BinArray`], the binner, and the verification sample. Everything after
//! that point (threshold search, re-mining at explicit thresholds,
//! re-clustering under a different BitOp configuration) operates on the
//! session alone; the source data can be dropped. This is the paper's §3.2
//! observation made concrete: once the bin array holds per-group counts,
//! "an entirely new segmentation" is available "without the need to re-bin
//! the original data".
//!
//! A [`SegmentRequest`] names the attributes once, up front, replacing the
//! stringly five-argument calls of the original API:
//!
//! ```text
//! // before:
//! arcs.segment_dataset(&ds, "age", "salary", "group", "A")?
//! // after:
//! let mut session = arcs.open(&ds, SegmentRequest::new("age", "salary", "group").group("A"))?;
//! let seg = session.segment()?;
//! let rules = session.remine(Thresholds::new(0.01, 0.5)?)?;   // instant, §3.2
//! ```
//!
//! Sessions also carry the observability state of PR 2: a
//! [`PipelineReport`] of per-stage wall-clock timings and work counters,
//! and an optional [`Observer`] notified as stages complete.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use arcs_data::sample::sample_rows;
use arcs_data::schema::AttrKind;
use arcs_data::{Dataset, Schema, Tuple};

use crate::binarray::BinArray;
use crate::binner::Binner;
use crate::bitop::{self, BitOpConfig};
use crate::cluster::{ClusteredRule, Rect};
use crate::engine::{self, BinnedRule, Thresholds};
use crate::error::ArcsError;
use crate::index::OccupancyIndex;
use crate::metrics::{Observer, PipelineReport, Stage};
use crate::optimizer::{evaluate, optimize, Evaluation, OptimizerConfig, SearchStats};
use crate::pipeline::{Arcs, ArcsConfig, GroupSegmentations, Segmentation};
use crate::smooth::smooth;

/// Names the attributes of one segmentation task: the two quantitative
/// LHS attributes (`x`, `y`), the categorical segmentation criterion, and
/// optionally the criterion group to target.
///
/// Built once and handed to [`Arcs::open`]; replaces the positional
/// `(x_attr, y_attr, criterion_attr, group_label)` string arguments of
/// the deprecated `segment_*` methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentRequest {
    x: String,
    y: String,
    criterion: String,
    group: Option<String>,
    memory_budget: Option<usize>,
}

impl SegmentRequest {
    /// A request clustering the `(x, y)` plane by `criterion`.
    pub fn new(
        x: impl Into<String>,
        y: impl Into<String>,
        criterion: impl Into<String>,
    ) -> Self {
        SegmentRequest {
            x: x.into(),
            y: y.into(),
            criterion: criterion.into(),
            group: None,
            memory_budget: None,
        }
    }

    /// Targets one criterion group, enabling [`Session::segment`],
    /// [`Session::remine`] and [`Session::recluster`] without an explicit
    /// label. Without it, use the `*_group` / [`Session::segment_all`]
    /// forms.
    pub fn group(mut self, label: impl Into<String>) -> Self {
        self.group = Some(label.into());
        self
    }

    /// The x (first LHS) attribute name.
    pub fn x_attr(&self) -> &str {
        &self.x
    }

    /// The y (second LHS) attribute name.
    pub fn y_attr(&self) -> &str {
        &self.y
    }

    /// The segmentation criterion attribute name.
    pub fn criterion_attr(&self) -> &str {
        &self.criterion
    }

    /// The targeted criterion group, if one was set.
    pub fn group_label(&self) -> Option<&str> {
        self.group.as_deref()
    }

    /// Caps the bin array at `bytes` for this request, overriding
    /// [`ArcsConfig::memory_budget`]. When the requested grid does not
    /// fit, the resource governor halves the larger bin axis until it
    /// does (the session's segmentations are then marked degraded), or
    /// refuses admission with [`ArcsError::BudgetExceeded`]
    /// when even the coarsest useful grid exceeds the budget.
    ///
    /// [`ArcsError::BudgetExceeded`]: crate::error::ArcsError::BudgetExceeded
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// The per-request memory budget, if one was set.
    pub fn memory_budget_bytes(&self) -> Option<usize> {
        self.memory_budget
    }
}

/// Outcome of the threshold search, including degradation-ladder
/// bookkeeping and the work counters accumulated along the way.
struct SearchOutcome {
    best: Evaluation,
    evaluations: usize,
    degraded: bool,
    relaxation_steps: Vec<String>,
    stats: SearchStats,
}

/// Runs the threshold search; when it finds nothing and degradation is
/// enabled, walks a bounded ladder of relaxations: (1) floor the
/// support/confidence thresholds at zero, (2) additionally disable
/// smoothing (whose low-pass filter can erase every sparse qualifying
/// cell), (3) additionally disable cluster pruning. The first step
/// yielding any cluster wins; each evaluation still runs the full
/// smooth → cluster → verify → score path.
fn run_search(
    config: &ArcsConfig,
    array: &BinArray,
    gk: u32,
    binner: &Binner,
    sample: &[&Tuple],
) -> Result<SearchOutcome, ArcsError> {
    match optimize(array, gk, binner, sample, &config.optimizer) {
        Ok(result) => Ok(SearchOutcome {
            best: result.best,
            evaluations: result.trace.len(),
            degraded: false,
            relaxation_steps: Vec::new(),
            stats: result.stats,
        }),
        Err(ArcsError::NoSegmentation) if config.degrade_on_no_segmentation => {
            let floor = Thresholds::new(0.0, 0.0)?;
            let mut relaxed = config.optimizer.clone();
            type Relax = fn(&mut OptimizerConfig);
            let ladder: [(&str, Relax); 3] = [
                ("floor-thresholds", |_| {}),
                ("disable-smoothing", |c| {
                    c.smoothing = crate::smooth::SmoothConfig::disabled();
                }),
                ("disable-pruning", |c| {
                    c.bitop = crate::bitop::BitOpConfig::no_pruning();
                }),
            ];
            let mut steps = Vec::new();
            for (i, (name, relax)) in ladder.iter().enumerate() {
                relax(&mut relaxed);
                steps.push(name.to_string());
                let eval = evaluate(array, gk, binner, sample, floor, &relaxed)?;
                if !eval.clusters.is_empty() {
                    return Ok(SearchOutcome {
                        best: eval,
                        evaluations: i + 1,
                        degraded: true,
                        relaxation_steps: steps,
                        stats: SearchStats::default(),
                    });
                }
            }
            Err(ArcsError::NoSegmentation)
        }
        Err(err) => Err(err),
    }
}

/// The labels of a categorical criterion attribute, or an error when the
/// attribute is quantitative.
fn criterion_labels(schema: &Schema, criterion_attr: &str) -> Result<Vec<String>, ArcsError> {
    let idx = schema.require(criterion_attr)?;
    let attr = schema.attribute(idx).ok_or_else(|| ArcsError::OutOfBounds {
        what: format!("attribute index {idx} from schema lookup of `{criterion_attr}`"),
    })?;
    match &attr.kind {
        AttrKind::Categorical { labels } => Ok(labels.clone()),
        AttrKind::Quantitative { .. } => Err(ArcsError::AttributeKind {
            attribute: attr.name.clone(),
            expected: "a categorical criterion attribute",
        }),
    }
}

/// A populated pipeline: the bin array, binner, and verification sample
/// for one [`SegmentRequest`], independent of the source data.
///
/// Created by [`Arcs::open`], [`Arcs::open_stream`] or
/// [`Arcs::open_binned`]. Mining operations ([`segment`](Session::segment),
/// [`remine`](Session::remine), [`recluster`](Session::recluster)) borrow
/// the session mutably only to update its [`PipelineReport`]; the bin
/// array is only ever modified through the explicit append paths
/// ([`append_rows`](Session::append_rows) /
/// [`merge_delta`](Session::merge_delta)), so results are reproducible
/// across repeated calls between appends.
pub struct Session {
    config: ArcsConfig,
    request: SegmentRequest,
    binner: Binner,
    array: BinArray,
    /// Owned copy of the verification sample — what lets the source
    /// dataset be dropped while `remine`/`segment` keep working.
    sample: Vec<Tuple>,
    /// Criterion group labels, in code order.
    labels: Vec<String>,
    /// Thresholds of the most recent mine (search winner or explicit
    /// `remine` argument); `recluster` reuses them.
    thresholds: Option<Thresholds>,
    /// Occupancy index over `array`, built lazily on the first re-mine.
    /// Per the index invalidation contract, every mutation of `array`
    /// ([`merge_delta`](Session::merge_delta)) must reset this to `None`
    /// so the next re-mine rebuilds it.
    index: Option<OccupancyIndex>,
    /// Bin-halving steps the resource governor took at open time; `> 0`
    /// marks every segmentation from this session degraded.
    budget_coarsening: u32,
    report: PipelineReport,
    observer: Option<Box<dyn Observer>>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("request", &self.request)
            .field("n_tuples", &self.array.n_tuples())
            .field("sample_len", &self.sample.len())
            .field("labels", &self.labels)
            .field("thresholds", &self.thresholds)
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

impl Arcs {
    /// Opens a session over an in-memory dataset: builds the binner, bins
    /// every tuple (in parallel across [`ArcsConfig::threads`] workers),
    /// and draws the verification sample. The returned [`Session`] owns
    /// everything it needs; `dataset` may be dropped afterwards.
    pub fn open(&self, dataset: &Dataset, request: SegmentRequest) -> Result<Session, ArcsError> {
        if dataset.is_empty() {
            return Err(ArcsError::InvalidConfig("dataset is empty".into()));
        }
        let schema = dataset.schema();
        let labels = criterion_labels(schema, request.criterion_attr())?;
        check_group(&labels, &request)?;
        let plan = self.plan_bins(&request, labels.len())?;
        let binner = self.build_binner(
            schema,
            request.x_attr(),
            request.y_attr(),
            request.criterion_attr(),
            Some(dataset),
            &plan,
        )?;

        let threads = self.config().threads;
        let mut report = PipelineReport { threads, ..PipelineReport::default() };
        report.counters.budget_coarsening_steps = plan.coarsening_steps as u64;

        let start = Instant::now();
        let (array, recovery) = binner.bin_rows_parallel_with_stats(dataset.rows(), threads)?;
        report.timings.record(Stage::Binning, start.elapsed());
        report.counters.tuples_binned = array.n_tuples();
        report.counters.record_recovery(&recovery);

        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.config().seed);
        let k = self.config().sample_size.min(dataset.len());
        let sample: Vec<Tuple> = sample_rows(dataset, k, &mut rng)
            .map_err(ArcsError::Data)?
            .into_iter()
            .cloned()
            .collect();
        report.timings.record(Stage::Sampling, start.elapsed());

        Ok(Session {
            config: self.config().clone(),
            request,
            binner,
            array,
            sample,
            labels,
            thresholds: None,
            index: None,
            budget_coarsening: plan.coarsening_steps,
            report,
            observer: None,
        })
    }

    /// Opens a session over a tuple stream in one pass, with an explicit
    /// verification sample (which must share `schema`). Only
    /// [`crate::binner::BinningStrategy::EquiWidth`] is possible here —
    /// the alternatives need a second look at the data.
    pub fn open_stream<I>(
        &self,
        schema: &Schema,
        tuples: I,
        request: SegmentRequest,
        sample: &Dataset,
    ) -> Result<Session, ArcsError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let labels = criterion_labels(schema, request.criterion_attr())?;
        check_group(&labels, &request)?;
        let plan = self.plan_bins(&request, labels.len())?;
        let binner = self.build_binner(
            schema,
            request.x_attr(),
            request.y_attr(),
            request.criterion_attr(),
            None,
            &plan,
        )?;

        let threads = self.config().threads;
        let mut report = PipelineReport { threads, ..PipelineReport::default() };
        report.counters.budget_coarsening_steps = plan.coarsening_steps as u64;

        let start = Instant::now();
        let (array, recovery) = binner.bin_stream_parallel_with_stats(tuples, threads)?;
        report.timings.record(Stage::Binning, start.elapsed());
        report.counters.tuples_binned = array.n_tuples();
        report.counters.record_recovery(&recovery);

        let start = Instant::now();
        let sample: Vec<Tuple> = sample.rows().to_vec();
        report.timings.record(Stage::Sampling, start.elapsed());

        Ok(Session {
            config: self.config().clone(),
            request,
            binner,
            array,
            sample,
            labels,
            thresholds: None,
            index: None,
            budget_coarsening: plan.coarsening_steps,
            report,
            observer: None,
        })
    }

    /// Opens a session around a pre-built [`BinArray`] (e.g. one resumed
    /// from a checkpoint). The `binner` must be the one that produced the
    /// array — its bin maps decode clusters back to attribute ranges. The
    /// `sample` provides both the verification tuples and the schema.
    pub fn open_binned(
        &self,
        array: BinArray,
        binner: Binner,
        sample: &Dataset,
        request: SegmentRequest,
    ) -> Result<Session, ArcsError> {
        let labels = criterion_labels(sample.schema(), request.criterion_attr())?;
        check_group(&labels, &request)?;
        let mut report = PipelineReport {
            threads: self.config().threads,
            ..PipelineReport::default()
        };
        report.counters.tuples_binned = array.n_tuples();
        Ok(Session {
            config: self.config().clone(),
            request,
            binner,
            array,
            sample: sample.rows().to_vec(),
            labels,
            thresholds: None,
            index: None,
            budget_coarsening: 0,
            report,
            observer: None,
        })
    }

    /// Runs the resource governor over the configured bin counts: the
    /// request's budget override, else [`ArcsConfig::memory_budget`],
    /// else unlimited (overflow-checked only).
    fn plan_bins(
        &self,
        request: &SegmentRequest,
        n_groups: usize,
    ) -> Result<crate::budget::BinPlan, ArcsError> {
        let budget = request.memory_budget_bytes().or(self.config().memory_budget);
        crate::budget::plan_bins(
            self.config().n_x_bins,
            self.config().n_y_bins,
            n_groups,
            budget,
        )
    }
}

/// Fails fast when the request targets a group the criterion does not have.
fn check_group(labels: &[String], request: &SegmentRequest) -> Result<(), ArcsError> {
    if let Some(group) = request.group_label() {
        if !labels.iter().any(|l| l == group) {
            return Err(ArcsError::UnknownGroup(group.to_string()));
        }
    }
    Ok(())
}

impl Session {
    /// Segments the group named in the request. Errors with
    /// [`ArcsError::InvalidConfig`] when the request has no group — use
    /// [`SegmentRequest::group`], [`segment_group`](Session::segment_group)
    /// or [`segment_all`](Session::segment_all).
    pub fn segment(&mut self) -> Result<Segmentation, ArcsError> {
        let label = self.request_group("segment")?;
        self.segment_group(&label)
    }

    /// Runs the threshold search and decodes the winning clusters for one
    /// criterion group, updating the session's timings and counters.
    pub fn segment_group(&mut self, group_label: &str) -> Result<Segmentation, ArcsError> {
        let gk = self.group_code(group_label)?;

        let start = Instant::now();
        let outcome = {
            let sample_refs: Vec<&Tuple> = self.sample.iter().collect();
            run_search(&self.config, &self.array, gk, &self.binner, &sample_refs)
        };
        self.record_stage(Stage::Search, start.elapsed());
        let outcome = outcome?;

        {
            let c = &mut self.report.counters;
            c.occupied_cells += outcome.stats.occupied_cells;
            c.candidates_enumerated += outcome.stats.candidates_enumerated;
            c.clusters_pruned += outcome.stats.clusters_pruned;
            c.cells_visited += outcome.stats.cells_visited;
            c.remine_delta_hits += outcome.stats.remine_delta_hits;
            c.smooth_words_processed += outcome.stats.smooth_words_processed;
            c.record_recovery(&outcome.stats.recovery);
            c.evaluations += outcome.evaluations as u64;
            c.verifier_false_positives += outcome.best.errors.false_positives as u64;
            c.verifier_false_negatives += outcome.best.errors.false_negatives as u64;
        }

        let start = Instant::now();
        let rules = self.decode(&outcome.best.clusters, gk, group_label)?;
        let (mined, visited) = {
            let index = self.occupancy_index();
            engine::mine_rules_indexed(index, gk, outcome.best.thresholds)
        };
        self.report.counters.rules_emitted += mined.len() as u64;
        self.report.counters.cells_visited += visited;
        self.record_stage(Stage::Decode, start.elapsed());
        self.notify_counters();

        self.thresholds = Some(outcome.best.thresholds);
        // Budget coarsening at open time is a quality degradation too:
        // surface it through the same channel as the threshold ladder.
        let mut relaxation_steps = outcome.relaxation_steps;
        if self.budget_coarsening > 0 {
            relaxation_steps
                .insert(0, format!("budget-coarsen-bins({} halvings)", self.budget_coarsening));
        }
        Ok(Segmentation {
            rules,
            clusters: outcome.best.clusters,
            thresholds: outcome.best.thresholds,
            score: outcome.best.score,
            errors: outcome.best.errors,
            n_tuples: self.array.n_tuples(),
            evaluations: outcome.evaluations,
            degraded: outcome.degraded || self.budget_coarsening > 0,
            relaxation_steps,
        })
    }

    /// Segments every criterion group against the one shared bin array
    /// and sample (paper §3.1). Returns `(group label, result)` per group;
    /// groups for which no segmentation exists report their error.
    pub fn segment_all(&mut self) -> Result<GroupSegmentations, ArcsError> {
        let labels = self.labels.clone();
        Ok(labels
            .into_iter()
            .map(|label| {
                let seg = self.segment_group(&label);
                (label, seg)
            })
            .collect())
    }

    /// Re-mines association rules at explicit thresholds against the
    /// already-populated bin array — the paper's §3.2 instant re-mining;
    /// no pass over the source data. Targets the request's group.
    ///
    /// The first re-mine builds the session's [`OccupancyIndex`]; from
    /// then on each call iterates only the group's occupied cells, never
    /// the full `nx · ny` grid (tracked by the `cells_visited` counter).
    pub fn remine(&mut self, thresholds: Thresholds) -> Result<Vec<BinnedRule>, ArcsError> {
        let label = self.request_group("remine")?;
        self.remine_group(&label, thresholds)
    }

    /// [`remine`](Session::remine) for an explicit criterion group.
    pub fn remine_group(
        &mut self,
        group_label: &str,
        thresholds: Thresholds,
    ) -> Result<Vec<BinnedRule>, ArcsError> {
        let gk = self.group_code(group_label)?;
        let start = Instant::now();
        let (rules, visited) = {
            let index = self.occupancy_index();
            engine::mine_rules_indexed(index, gk, thresholds)
        };
        self.record_stage(Stage::Search, start.elapsed());
        self.report.counters.rules_emitted += rules.len() as u64;
        self.report.counters.cells_visited += visited;
        self.notify_counters();
        self.thresholds = Some(thresholds);
        Ok(rules)
    }

    /// Re-clusters at the session's current thresholds (from the last
    /// [`segment`](Session::segment) or [`remine`](Session::remine)) under
    /// a different BitOp configuration, returning decoded rules. Errors
    /// when no thresholds have been established yet.
    pub fn recluster(&mut self, bitop_config: &BitOpConfig) -> Result<Vec<ClusteredRule>, ArcsError> {
        let label = self.request_group("recluster")?;
        self.recluster_group(&label, bitop_config)
    }

    /// [`recluster`](Session::recluster) for an explicit criterion group.
    pub fn recluster_group(
        &mut self,
        group_label: &str,
        bitop_config: &BitOpConfig,
    ) -> Result<Vec<ClusteredRule>, ArcsError> {
        let gk = self.group_code(group_label)?;
        let thresholds = self.thresholds.ok_or_else(|| {
            ArcsError::InvalidConfig(
                "no thresholds established yet — call segment or remine first".into(),
            )
        })?;

        let start = Instant::now();
        let grid = engine::rule_grid(&self.array, gk, thresholds)?;
        let smoothed = smooth(&grid, &self.config.optimizer.smoothing)?;
        let (clusters, stats) = bitop::cluster_with_stats(&smoothed, bitop_config)?;
        self.record_stage(Stage::Search, start.elapsed());
        self.report.counters.candidates_enumerated += stats.candidates_enumerated;
        self.report.counters.clusters_pruned += stats.clusters_pruned;

        let start = Instant::now();
        let rules = self.decode(&clusters, gk, group_label)?;
        self.report.counters.rules_emitted += rules.len() as u64;
        self.record_stage(Stage::Decode, start.elapsed());
        self.notify_counters();
        Ok(rules)
    }

    /// Serves a canonical [`Request`](crate::request::Request) against
    /// the session's owned bin array — the same request shape (and the
    /// same mining path) the daemon serves over the wire, so a library
    /// caller and a wire client asking the same question get bit-identical
    /// answers.
    ///
    /// Requires explicit `thresholds` (threshold *search* stays on
    /// [`segment`](Session::segment), which returns the richer
    /// [`Segmentation`]); the group comes from the request, falling back
    /// to the group the session was opened with. `deadline` and
    /// `memory_budget` are serving-core admission concerns and are
    /// ignored here — the session caller owns its own resources. The
    /// returned result's `epoch` is 0: sessions are not epoch-versioned.
    pub fn query(
        &mut self,
        request: &crate::request::Request,
    ) -> Result<crate::serve::QueryResult, ArcsError> {
        let thresholds = request.thresholds.ok_or_else(|| {
            ArcsError::InvalidConfig(
                "session query needs explicit thresholds — use segment() for \
                 the threshold search"
                    .into(),
            )
        })?;
        let gk = match &request.group {
            Some(group) => group.resolve(&self.labels)?,
            None => {
                let label = self.request_group("query")?;
                self.group_code(&label)?
            }
        };

        let start = Instant::now();
        let (rules, visited) = {
            let index = self.occupancy_index();
            engine::mine_rules_indexed(index, gk, thresholds)
        };
        self.record_stage(Stage::Search, start.elapsed());
        self.report.counters.rules_emitted += rules.len() as u64;
        self.report.counters.cells_visited += visited;

        let clusters = match &request.cluster {
            None => None,
            Some(spec) => {
                let start = Instant::now();
                let grid = engine::rule_grid(&self.array, gk, thresholds)?;
                let smoothed = smooth(&grid, &spec.smoothing)?;
                let (rects, stats) = bitop::cluster_with_stats(&smoothed, &spec.bitop)?;
                self.record_stage(Stage::Search, start.elapsed());
                self.report.counters.candidates_enumerated += stats.candidates_enumerated;
                self.report.counters.clusters_pruned += stats.clusters_pruned;
                Some(rects)
            }
        };
        self.notify_counters();
        self.thresholds = Some(thresholds);
        Ok(crate::serve::QueryResult {
            epoch: 0,
            rules,
            clusters,
            coarsening_steps: self.budget_coarsening,
        })
    }

    /// Decodes cluster rectangles into [`ClusteredRule`]s with aggregate
    /// support/confidence computed from the bin array.
    fn decode(
        &self,
        clusters: &[Rect],
        gk: u32,
        group_label: &str,
    ) -> Result<Vec<ClusteredRule>, ArcsError> {
        let n = self.array.n_tuples();
        let mut rules = Vec::with_capacity(clusters.len());
        for &rect in clusters {
            // Aggregate support/confidence of the whole rectangle.
            let mut group_count = 0u64;
            let mut total_count = 0u64;
            for (x, y) in rect.cells() {
                group_count += self.array.group_count(x, y, gk) as u64;
                total_count += self.array.cell_total(x, y) as u64;
            }
            let support = if n == 0 { 0.0 } else { group_count as f64 / n as f64 };
            let confidence = if total_count == 0 {
                0.0
            } else {
                group_count as f64 / total_count as f64
            };
            rules.push(ClusteredRule::from_rect(
                rect,
                self.binner.x_map(),
                self.binner.y_map(),
                self.request.x_attr(),
                self.request.y_attr(),
                self.request.criterion_attr(),
                group_label,
                support,
                confidence,
            )?);
        }
        Ok(rules)
    }

    /// Bins `rows` with the session's binner and merges them into the
    /// bin array — streaming append without reopening the session.
    /// Returns the array's new total tuple count.
    ///
    /// Appending invalidates the lazily-built [`OccupancyIndex`] (the
    /// documented invalidation contract): the next
    /// [`remine`](Session::remine) rebuilds it over the merged counts, so
    /// re-mining after an append sees every appended tuple.
    pub fn append_rows(&mut self, rows: &[Tuple]) -> Result<u64, ArcsError> {
        let start = Instant::now();
        let (delta, recovery) =
            self.binner.bin_rows_parallel_with_stats(rows, self.config.threads)?;
        self.report.counters.record_recovery(&recovery);
        let total = self.merge_delta(&delta)?;
        self.record_stage(Stage::Binning, start.elapsed());
        Ok(total)
    }

    /// Merges an already-binned delta array (same grid shape) into the
    /// session's bin array via [`BinArray::merge`], invalidating the
    /// occupancy index so subsequent re-mines rebuild it. Returns the
    /// array's new total tuple count.
    pub fn merge_delta(&mut self, delta: &BinArray) -> Result<u64, ArcsError> {
        self.array.merge(delta)?;
        // The invalidation contract: the index (when built) describes the
        // pre-merge array; drop it so the next re-mine rebuilds.
        self.index = None;
        self.report.counters.tuples_binned = self.array.n_tuples();
        self.notify_counters();
        Ok(self.array.n_tuples())
    }

    /// Installs an observer notified as stages complete and counters
    /// change. Replaces any previous observer.
    pub fn observe(&mut self, observer: Box<dyn Observer>) {
        self.observer = Some(observer);
    }

    /// The populated bin array.
    pub fn bin_array(&self) -> &BinArray {
        &self.array
    }

    /// The binner that produced the array (bin maps included).
    pub fn binner(&self) -> &Binner {
        &self.binner
    }

    /// The request this session was opened with.
    pub fn request(&self) -> &SegmentRequest {
        &self.request
    }

    /// Criterion group labels, in code order.
    pub fn group_labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of tuples in the owned verification sample.
    pub fn sample_len(&self) -> usize {
        self.sample.len()
    }

    /// Thresholds of the most recent mine, if any.
    pub fn thresholds(&self) -> Option<Thresholds> {
        self.thresholds
    }

    /// Bin-halving steps the resource governor took to fit the memory
    /// budget when this session was opened (0 without a budget, or when
    /// the requested grid already fit).
    pub fn budget_coarsening_steps(&self) -> u32 {
        self.budget_coarsening
    }

    /// Accumulated stage timings and work counters.
    pub fn report(&self) -> &PipelineReport {
        &self.report
    }

    fn request_group(&self, op: &str) -> Result<String, ArcsError> {
        self.request.group_label().map(str::to_string).ok_or_else(|| {
            ArcsError::InvalidConfig(format!(
                "the segment request names no group — add .group(..) to the \
                 request or use {op}_group / segment_all"
            ))
        })
    }

    /// The session's occupancy index, built on first use and rebuilt
    /// after any append (which resets it to `None` — the invalidation
    /// contract).
    fn occupancy_index(&mut self) -> &OccupancyIndex {
        if self.index.is_none() {
            self.index = Some(OccupancyIndex::build(&self.array));
        }
        debug_assert!(self.index.as_ref().is_some_and(|i| i.matches(&self.array)));
        match self.index.as_ref() {
            Some(index) => index,
            // Freshly inserted above; unreachable without a panic channel.
            None => unreachable!("occupancy index initialised above"),
        }
    }

    fn group_code(&self, label: &str) -> Result<u32, ArcsError> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|p| p as u32)
            .ok_or_else(|| ArcsError::UnknownGroup(label.to_string()))
    }

    fn record_stage(&mut self, stage: Stage, elapsed: Duration) {
        self.report.timings.record(stage, elapsed);
        if let Some(observer) = self.observer.as_deref_mut() {
            observer.stage_completed(stage, elapsed);
        }
    }

    fn notify_counters(&mut self) {
        if let Some(observer) = self.observer.as_deref_mut() {
            observer.counters_updated(&self.report.counters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::PipelineCounters;
    use crate::optimizer::OptimizerConfig;
    use arcs_data::schema::Attribute;
    use arcs_data::Value;

    fn small_schema() -> Schema {
        Schema::new(vec![
            Attribute::quantitative("x", 0.0, 10.0),
            Attribute::quantitative("y", 0.0, 10.0),
            Attribute::categorical("g", ["A", "other"]),
        ])
        .unwrap()
    }

    fn blocky_dataset() -> Dataset {
        let mut ds = Dataset::new(small_schema());
        for ix in 0..10 {
            for iy in 0..10 {
                let x = ix as f64 + 0.5;
                let y = iy as f64 + 0.5;
                let in_block = (2..5).contains(&ix) && (2..5).contains(&iy);
                let (n_a, n_other) = if in_block { (20, 2) } else { (0, 5) };
                for _ in 0..n_a {
                    ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(0)]).unwrap();
                }
                for _ in 0..n_other {
                    ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(1)]).unwrap();
                }
            }
        }
        ds
    }

    fn small_config() -> ArcsConfig {
        ArcsConfig {
            n_x_bins: 10,
            n_y_bins: 10,
            optimizer: OptimizerConfig {
                bitop: crate::bitop::BitOpConfig::no_pruning(),
                ..OptimizerConfig::default()
            },
            ..ArcsConfig::default()
        }
    }

    /// The deprecated five-argument wrapper (behind `legacy-api`) must
    /// stay a thin alias of the session path.
    #[cfg(feature = "legacy-api")]
    #[test]
    fn session_matches_the_deprecated_entry_point() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        #[allow(deprecated)]
        let legacy = arcs.segment_dataset(&ds, "x", "y", "g", "A").unwrap();
        let mut session = arcs
            .open(&ds, SegmentRequest::new("x", "y", "g").group("A"))
            .unwrap();
        let seg = session.segment().unwrap();
        assert_eq!(seg, legacy);
    }

    #[test]
    fn remine_works_after_the_dataset_is_dropped() {
        let arcs = Arcs::new(small_config()).unwrap();
        let mut session = {
            let ds = blocky_dataset();
            arcs.open(&ds, SegmentRequest::new("x", "y", "g").group("A")).unwrap()
            // `ds` dropped here — the session owns all it needs.
        };
        let seg = session.segment().unwrap();
        assert_eq!(seg.clusters.len(), 1);

        // §3.2 instant re-mining: lower thresholds, no pass over the data.
        let loose = session.remine(Thresholds::new(0.0, 0.5).unwrap()).unwrap();
        assert!(!loose.is_empty());
        let strict = session.remine(Thresholds::new(0.5, 0.99).unwrap()).unwrap();
        assert!(strict.len() <= loose.len());
    }

    #[test]
    fn recluster_reuses_the_last_thresholds() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        let mut session = arcs
            .open(&ds, SegmentRequest::new("x", "y", "g").group("A"))
            .unwrap();

        // Before any mine, recluster has no thresholds to work with.
        assert!(matches!(
            session.recluster(&BitOpConfig::no_pruning()),
            Err(ArcsError::InvalidConfig(_))
        ));

        let seg = session.segment().unwrap();
        let rules = session.recluster(&BitOpConfig::no_pruning()).unwrap();
        assert_eq!(rules.len(), seg.rules.len());

        // An aggressive pruning config may cluster differently, but must
        // not panic and must still decode against the same array.
        let strict = BitOpConfig {
            min_area_fraction: 0.0,
            min_area_cells: 100,
            max_clusters: 100,
            threads: 1,
        };
        let pruned = session.recluster(&strict).unwrap();
        assert!(pruned.len() <= rules.len());
    }

    #[test]
    fn segment_without_group_requires_the_group_forms() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        let mut session = arcs.open(&ds, SegmentRequest::new("x", "y", "g")).unwrap();
        assert!(matches!(session.segment(), Err(ArcsError::InvalidConfig(_))));
        let seg = session.segment_group("A").unwrap();
        assert_eq!(seg.clusters.len(), 1);
        let all = session.segment_all().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].1.as_ref().unwrap().clusters, seg.clusters);
    }

    #[test]
    fn unknown_groups_rejected_at_open() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        assert!(matches!(
            arcs.open(&ds, SegmentRequest::new("x", "y", "g").group("Z")),
            Err(ArcsError::UnknownGroup(_))
        ));
    }

    #[test]
    fn report_accumulates_timings_and_counters() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        let mut session = arcs
            .open(&ds, SegmentRequest::new("x", "y", "g").group("A"))
            .unwrap();
        assert_eq!(session.report().counters.tuples_binned, ds.len() as u64);
        session.segment().unwrap();
        let c = &session.report().counters;
        assert!(c.evaluations > 0);
        assert!(c.occupied_cells > 0);
        assert!(c.rules_emitted > 0);
        assert!(session.report().timings.total() > Duration::ZERO);
        assert_eq!(session.report().threads, arcs.config().threads);
    }

    #[derive(Default)]
    struct Recording {
        stages: Vec<Stage>,
        counter_updates: usize,
    }

    struct SharedRecorder(std::sync::Arc<std::sync::Mutex<Recording>>);

    impl Observer for SharedRecorder {
        fn stage_completed(&mut self, stage: Stage, _elapsed: Duration) {
            self.0.lock().unwrap().stages.push(stage);
        }
        fn counters_updated(&mut self, _counters: &PipelineCounters) {
            self.0.lock().unwrap().counter_updates += 1;
        }
    }

    #[test]
    fn observer_sees_stage_completions() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        let mut session = arcs
            .open(&ds, SegmentRequest::new("x", "y", "g").group("A"))
            .unwrap();
        let recording = std::sync::Arc::new(std::sync::Mutex::new(Recording::default()));
        session.observe(Box::new(SharedRecorder(recording.clone())));
        session.segment().unwrap();
        let seen = recording.lock().unwrap();
        assert_eq!(seen.stages, vec![Stage::Search, Stage::Decode]);
        assert!(seen.counter_updates >= 1);
    }

    #[test]
    fn memory_budget_coarsens_bins_instead_of_aborting() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        // A 10 x 10 grid with 2 groups needs (2+1)*100*4 = 1200 bytes; a
        // 400-byte budget forces two halvings: (5,10) = 600, (5,5) = 300.
        let mut session = arcs
            .open(&ds, SegmentRequest::new("x", "y", "g").group("A").memory_budget(400))
            .unwrap();
        assert_eq!(session.budget_coarsening_steps(), 2);
        assert_eq!(session.bin_array().nx(), 5);
        assert_eq!(session.bin_array().ny(), 5);
        assert_eq!(session.report().counters.budget_coarsening_steps, 2);
        let seg = session.segment().unwrap();
        assert!(seg.degraded);
        assert!(
            seg.relaxation_steps[0].starts_with("budget-coarsen-bins"),
            "{:?}",
            seg.relaxation_steps
        );
    }

    #[test]
    fn config_budget_applies_when_the_request_has_none() {
        let ds = blocky_dataset();
        let config = ArcsConfig { memory_budget: Some(400), ..small_config() };
        let arcs = Arcs::new(config).unwrap();
        let session = arcs
            .open(&ds, SegmentRequest::new("x", "y", "g").group("A"))
            .unwrap();
        assert_eq!(session.budget_coarsening_steps(), 2);
    }

    #[test]
    fn impossible_budget_is_refused_at_open() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        // Even the coarsest useful grid (2 x 2, 2 groups = 48 bytes)
        // cannot fit in 10 bytes: refuse admission, don't coarsen to
        // nothing.
        let err = arcs
            .open(&ds, SegmentRequest::new("x", "y", "g").group("A").memory_budget(10))
            .unwrap_err();
        assert!(matches!(err, ArcsError::BudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn append_invalidates_the_occupancy_index() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        let mut session = arcs
            .open(&ds, SegmentRequest::new("x", "y", "g").group("A"))
            .unwrap();

        // Build the lazy index and establish a pre-append baseline.
        let floor = Thresholds::new(0.0, 0.0).unwrap();
        let before = session.remine(floor).unwrap();
        let n_before = session.bin_array().n_tuples();

        // Append rows for group "A" into a cell that was previously
        // all-"other" — the index's occupied-cell list for group A must
        // grow, which only happens if the merge invalidated it.
        let rows: Vec<Tuple> = (0..50)
            .map(|_| Tuple::new(vec![Value::Quant(8.5), Value::Quant(8.5), Value::Cat(0)]))
            .collect();
        let total = session.append_rows(&rows).unwrap();
        assert_eq!(total, n_before + 50);
        assert_eq!(session.report().counters.tuples_binned, total);

        // Re-mining must see the appended mass: the stale index would
        // still report the old counts (or trip its debug structural
        // guard). Compare bit-identically against sequential mining on
        // the merged array.
        let after = session.remine(floor).unwrap();
        let oracle = engine::mine_rules(session.bin_array(), 0, floor);
        assert_eq!(after, oracle);
        assert_ne!(before, after, "appended tuples must change the rules");
        assert!(
            after.iter().any(|r| r.x == 8 && r.y == 8 && r.count > 0),
            "the appended cell must now mine for group A: {after:?}"
        );

        // merge_delta with a mismatched grid is rejected and leaves the
        // session usable.
        let bad = BinArray::new(3, 3, 2).unwrap();
        assert!(session.merge_delta(&bad).is_err());
        assert_eq!(session.remine(floor).unwrap(), oracle);
    }

    #[test]
    fn unified_query_matches_server_and_remine() {
        use crate::request::Request;
        use crate::serve::{ServeConfig, Server};

        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        let mut session = arcs
            .open(&ds, SegmentRequest::new("x", "y", "g").group("A"))
            .unwrap();

        let thresholds = Thresholds::new(0.01, 0.5).unwrap();
        let spec = crate::serve::ClusterSpec {
            bitop: BitOpConfig::no_pruning(),
            ..crate::serve::ClusterSpec::default()
        };
        let request = Request::new()
            .group("A")
            .thresholds(thresholds)
            .cluster(spec.clone());

        // The same request served by the serving core over the same array
        // answers bit-identically — one schema, one mining path.
        let server = Server::new(session.bin_array().clone(), ServeConfig::default()).unwrap();
        let labels: Vec<String> = session.group_labels().to_vec();
        let served = server.query_unified(&request, &labels).unwrap();
        let local = session.query(&request).unwrap();
        assert_eq!(local.rules, served.result.rules);
        assert_eq!(local.clusters, served.result.clusters);

        // And it agrees with the narrow-shape methods it unifies.
        assert_eq!(local.rules, session.remine(thresholds).unwrap());

        // Thresholds are required; a bad group is a typed error; the
        // request's group falls back to the session's when omitted.
        assert!(matches!(
            session.query(&Request::new().group("A")),
            Err(ArcsError::InvalidConfig(_))
        ));
        assert!(matches!(
            session.query(&Request::new().group("Z").thresholds(thresholds)),
            Err(ArcsError::UnknownGroup(_))
        ));
        let defaulted = session.query(&Request::new().thresholds(thresholds)).unwrap();
        assert_eq!(defaulted.rules, local.rules);
    }

    #[test]
    fn open_stream_matches_open() {
        let ds = blocky_dataset();
        let arcs = Arcs::new(small_config()).unwrap();
        let request = SegmentRequest::new("x", "y", "g").group("A");
        let mut a = arcs.open(&ds, request.clone()).unwrap();
        let mut b = arcs
            .open_stream(ds.schema(), ds.iter().cloned(), request, &ds)
            .unwrap();
        assert_eq!(a.bin_array().checksum(), b.bin_array().checksum());
        let seg_a = a.segment().unwrap();
        let seg_b = b.segment().unwrap();
        assert_eq!(seg_a.clusters, seg_b.clusters);
    }
}
