//! Entropy-based LHS attribute selection (paper §5).
//!
//! The paper leaves choosing the two LHS attributes to the user (or to
//! classical factor analysis) and suggests, as future work, *"apply
//! measures of information gain such as entropy when determining which two
//! attributes to select for segmentation"*. This module implements that:
//! each quantitative attribute is discretised and scored by the mutual
//! information between its bins and the criterion attribute; pairs can
//! additionally be scored jointly.

use arcs_data::schema::AttrKind;
use arcs_data::stats::mutual_information;
use arcs_data::Dataset;

use crate::binning::BinMap;
use crate::error::ArcsError;

/// A scored candidate LHS attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeScore {
    /// Attribute name.
    pub name: String,
    /// Position in the schema.
    pub index: usize,
    /// Mutual information (bits) between the binned attribute and the
    /// criterion attribute.
    pub mutual_information: f64,
}

/// Scores every quantitative attribute by mutual information with the
/// categorical `criterion` attribute, descending. `n_bins` controls the
/// discretisation used for scoring (not for the later segmentation).
pub fn rank_attributes(
    dataset: &Dataset,
    criterion: &str,
    n_bins: usize,
) -> Result<Vec<AttributeScore>, ArcsError> {
    if dataset.is_empty() {
        return Err(ArcsError::InvalidConfig("dataset is empty".into()));
    }
    let schema = dataset.schema();
    let criterion_idx = schema.require(criterion)?;
    let nseg = match &schema.attribute(criterion_idx).expect("index valid").kind {
        AttrKind::Categorical { labels } => labels.len(),
        AttrKind::Quantitative { .. } => {
            return Err(ArcsError::AttributeKind {
                attribute: criterion.to_string(),
                expected: "a categorical criterion attribute",
            })
        }
    };
    let classes = dataset.cat_column(criterion_idx)?;

    let mut scores = Vec::new();
    for (idx, attr) in schema.attributes().iter().enumerate() {
        let AttrKind::Quantitative { min, max } = attr.kind else {
            continue;
        };
        let map = BinMap::equi_width(min, max, n_bins)?;
        let col = dataset.quant_column(idx)?;
        let mut joint = vec![vec![0usize; nseg]; n_bins];
        for (v, &c) in col.iter().zip(&classes) {
            joint[map.bin_of_value(*v)][c as usize] += 1;
        }
        scores.push(AttributeScore {
            name: attr.name.clone(),
            index: idx,
            mutual_information: mutual_information(&joint),
        });
    }
    scores.sort_by(|a, b| b.mutual_information.total_cmp(&a.mutual_information));
    Ok(scores)
}

/// Picks the two most informative quantitative attributes for the given
/// criterion — a fully automatic replacement for the paper's user choice.
pub fn select_pair(
    dataset: &Dataset,
    criterion: &str,
    n_bins: usize,
) -> Result<(String, String), ArcsError> {
    let ranked = rank_attributes(dataset, criterion, n_bins)?;
    if ranked.len() < 2 {
        return Err(ArcsError::InvalidConfig(format!(
            "need at least two quantitative attributes, found {}",
            ranked.len()
        )));
    }
    Ok((ranked[0].name.clone(), ranked[1].name.clone()))
}

/// Picks the attribute pair with the highest *joint* mutual information
/// with the criterion, searching all pairs among the `top_k`
/// marginally-ranked attributes. Joint scoring is essential when an
/// attribute matters only in combination — e.g. Function 2's `age`, whose
/// marginal MI is near zero because each age band merely shifts the
/// salary window. For the same reason `top_k` should usually cover *all*
/// quantitative attributes (the pair count grows quadratically, so cap it
/// only when the schema is wide).
pub fn select_pair_joint(
    dataset: &Dataset,
    criterion: &str,
    n_bins: usize,
    top_k: usize,
) -> Result<(String, String), ArcsError> {
    let ranked = rank_attributes(dataset, criterion, n_bins)?;
    if ranked.len() < 2 {
        return Err(ArcsError::InvalidConfig(format!(
            "need at least two quantitative attributes, found {}",
            ranked.len()
        )));
    }
    let candidates = &ranked[..top_k.clamp(2, ranked.len())];
    let mut best: Option<((&str, &str), f64)> = None;
    for (i, a) in candidates.iter().enumerate() {
        for b in &candidates[i + 1..] {
            let mi = pair_mutual_information(dataset, &a.name, &b.name, criterion, n_bins)?;
            if best.is_none_or(|(_, m)| mi > m) {
                best = Some(((&a.name, &b.name), mi));
            }
        }
    }
    let ((a, b), _) = best.expect("at least one pair exists");
    Ok((a.to_string(), b.to_string()))
}

/// Joint mutual information (bits) between the binned `(x, y)` pair and
/// the criterion — a finer (but quadratically larger) pair score.
pub fn pair_mutual_information(
    dataset: &Dataset,
    x_attr: &str,
    y_attr: &str,
    criterion: &str,
    n_bins: usize,
) -> Result<f64, ArcsError> {
    let schema = dataset.schema();
    let x_idx = schema.require(x_attr)?;
    let y_idx = schema.require(y_attr)?;
    let criterion_idx = schema.require(criterion)?;
    let nseg = schema
        .attribute(criterion_idx)
        .and_then(|a| a.kind.cardinality())
        .ok_or_else(|| ArcsError::AttributeKind {
            attribute: criterion.to_string(),
            expected: "a categorical criterion attribute",
        })? as usize;

    let map_for = |idx: usize| -> Result<BinMap, ArcsError> {
        let attr = schema.attribute(idx).expect("index valid");
        match attr.kind {
            AttrKind::Quantitative { min, max } => BinMap::equi_width(min, max, n_bins),
            AttrKind::Categorical { .. } => Err(ArcsError::AttributeKind {
                attribute: attr.name.clone(),
                expected: "a quantitative LHS attribute",
            }),
        }
    };
    let x_map = map_for(x_idx)?;
    let y_map = map_for(y_idx)?;

    let mut joint = vec![vec![0usize; nseg]; n_bins * n_bins];
    for t in dataset.iter() {
        let bx = x_map.bin_of_value(t.quant(x_idx));
        let by = y_map.bin_of_value(t.quant(y_idx));
        joint[by * n_bins + bx][t.cat(criterion_idx) as usize] += 1;
    }
    Ok(mutual_information(&joint))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arcs_data::agrawal::attr;
    use arcs_data::generator::{AgrawalGenerator, GeneratorConfig};
    use arcs_data::schema::{Attribute, Schema};
    use arcs_data::Value;

    #[test]
    fn informative_attribute_outranks_noise() {
        // class = 1 iff x > 5; y is pure noise.
        let schema = Schema::new(vec![
            Attribute::quantitative("x", 0.0, 10.0),
            Attribute::quantitative("y", 0.0, 10.0),
            Attribute::categorical("g", ["a", "b"]),
        ])
        .unwrap();
        let mut ds = Dataset::new(schema);
        for i in 0..200 {
            let x = (i % 10) as f64 + 0.5;
            // y cycles independently of x (and of the class).
            let y = ((i / 10) % 10) as f64 + 0.5;
            let g = u32::from(x > 5.0);
            ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(g)]).unwrap();
        }
        let ranked = rank_attributes(&ds, "g", 10).unwrap();
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].name, "x");
        assert!(ranked[0].mutual_information > ranked[1].mutual_information + 0.5);

        let (a, b) = select_pair(&ds, "g", 10).unwrap();
        assert_eq!(a, "x");
        assert_eq!(b, "y");
    }

    #[test]
    fn agrawal_f2_salary_ranks_first_and_age_salary_pair_dominates() {
        let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(5)).unwrap();
        let ds = gen.generate(5_000);
        let ranked = rank_attributes(&ds, "group", 10).unwrap();
        // Marginally, salary is F2's strongest single determinant. (Age's
        // *marginal* MI is near zero by construction — each age band simply
        // shifts the salary window — so the joint score is what identifies
        // the pair.)
        assert_eq!(ranked[0].name, "salary", "ranking: {ranked:?}");
        let age_salary =
            pair_mutual_information(&ds, "age", "salary", "group", 10).unwrap();
        let hyears_loan =
            pair_mutual_information(&ds, "hyears", "loan", "group", 10).unwrap();
        let salary_alone = ranked[0].mutual_information;
        assert!(age_salary > hyears_loan + 0.2, "{age_salary} vs {hyears_loan}");
        assert!(age_salary > salary_alone + 0.1, "{age_salary} vs {salary_alone}");
        let _ = attr::AGE;
    }

    #[test]
    fn pair_mi_beats_single_mi_for_joint_dependence() {
        // class = xor(x > 5, y > 5): each attribute alone is uninformative
        // but the pair determines the class.
        let schema = Schema::new(vec![
            Attribute::quantitative("x", 0.0, 10.0),
            Attribute::quantitative("y", 0.0, 10.0),
            Attribute::categorical("g", ["a", "b"]),
        ])
        .unwrap();
        let mut ds = Dataset::new(schema);
        for ix in 0..10 {
            for iy in 0..10 {
                let x = ix as f64 + 0.5;
                let y = iy as f64 + 0.5;
                let g = u32::from((x > 5.0) ^ (y > 5.0));
                ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(g)]).unwrap();
            }
        }
        let singles = rank_attributes(&ds, "g", 10).unwrap();
        assert!(singles[0].mutual_information < 0.1);
        let joint = pair_mutual_information(&ds, "x", "y", "g", 10).unwrap();
        assert!(joint > 0.9, "joint MI = {joint}");
    }

    #[test]
    fn joint_selection_recovers_the_f2_pair() {
        // MI estimates over a 10x10x2 joint histogram need a decent sample
        // to separate the true pair from estimation-bias noise.
        let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(8)).unwrap();
        let ds = gen.generate(20_000);
        let (a, b) = select_pair_joint(&ds, "group", 10, 6).unwrap();
        let mut pair = [a.as_str(), b.as_str()];
        pair.sort_unstable();
        assert_eq!(pair, ["age", "salary"], "selected ({a}, {b})");
    }

    #[test]
    fn joint_selection_solves_the_xor_case() {
        // Marginal selection is blind here; the joint score is not.
        let schema = Schema::new(vec![
            Attribute::quantitative("x", 0.0, 10.0),
            Attribute::quantitative("y", 0.0, 10.0),
            Attribute::quantitative("noise", 0.0, 10.0),
            Attribute::categorical("g", ["a", "b"]),
        ])
        .unwrap();
        let mut ds = Dataset::new(schema);
        for ix in 0..20 {
            for iy in 0..20 {
                let x = ix as f64 / 2.0;
                let y = iy as f64 / 2.0;
                let noise = ((ix * 13 + iy * 7) % 20) as f64 / 2.0;
                let g = u32::from((x > 5.0) ^ (y > 5.0));
                ds.push(vec![
                    Value::Quant(x),
                    Value::Quant(y),
                    Value::Quant(noise),
                    Value::Cat(g),
                ])
                .unwrap();
            }
        }
        let (a, b) = select_pair_joint(&ds, "g", 10, 3).unwrap();
        let mut pair = [a, b];
        pair.sort_unstable();
        assert_eq!(pair, ["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn errors_on_bad_inputs() {
        let schema = Schema::new(vec![
            Attribute::quantitative("x", 0.0, 1.0),
            Attribute::categorical("g", ["a"]),
        ])
        .unwrap();
        let empty = Dataset::new(schema.clone());
        assert!(rank_attributes(&empty, "g", 5).is_err());

        let mut ds = Dataset::new(schema);
        ds.push(vec![Value::Quant(0.5), Value::Cat(0)]).unwrap();
        assert!(rank_attributes(&ds, "missing", 5).is_err());
        assert!(rank_attributes(&ds, "x", 5).is_err()); // quantitative criterion
        assert!(select_pair(&ds, "g", 5).is_err()); // only one quant attribute
        assert!(pair_mutual_information(&ds, "x", "g", "g", 5).is_err());
    }
}
