//! # arcs-core
//!
//! Core of the ARCS reproduction (Lent, Swami, Widom — *Clustering
//! Association Rules*, ICDE 1997): binning, the `BinArray`, the one-pass
//! two-dimensional association rule engine, the BitOp geometric clustering
//! algorithm, grid smoothing, cluster pruning, the MDL quality measure,
//! the verifier, and the heuristic threshold optimizer — assembled into
//! the end-to-end pipeline of the paper's Figure 2.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anneal;
pub mod binarray;
pub mod binner;
pub mod binning;
pub mod bitop;
pub mod budget;
pub mod categorical;
pub mod cluster;
pub mod cover;
pub mod edges;
pub mod engine;
pub mod error;
pub mod exec;
pub mod factorial;
pub mod faults;
pub mod grid;
pub mod index;
pub mod jsonio;
pub mod mdl;
pub mod metrics;
pub mod multidim;
pub mod optimizer;
pub mod pipeline;
pub mod render;
pub mod repl;
pub mod request;
pub mod select;
pub mod serve;
pub mod session;
pub mod smooth;
pub mod sql;
pub mod verify;
pub mod wal;

pub use binarray::BinArray;
pub use binner::{BadTuplePolicy, Binner, BinningStrategy, CheckpointSpec, StreamReport};
pub use binning::BinMap;
pub use bitop::BitOpConfig;
pub use budget::{BinPlan, MIN_BINS};
pub use cluster::{ClusteredRule, Rect};
pub use engine::{
    mine_rules, mine_rules_indexed, mine_rules_reference, BinnedRule, Thresholds,
};
pub use error::ArcsError;
pub use exec::{ExecConfig, ExecPool, PoolStats, MAX_SHARD_RETRIES};
pub use grid::Grid;
pub use index::{DeltaMiner, GroupCell, OccupancyIndex};
pub use metrics::{
    Observer, PipelineCounters, PipelineReport, RecoveryStats, Stage, StageTimings,
};
pub use optimizer::{optimize, OptimizerConfig, SearchStats, ThresholdLattice};
pub use pipeline::{Arcs, ArcsConfig, Segmentation};
pub use repl::{ReplCursor, ReplMetrics, ShippedRecord};
pub use request::{AttrBinding, GroupRef, Request};
pub use serve::{
    AdmissionGate, ClusterSpec, QueryRequest, QueryResponse, QueryResult, ServeConfig, Server,
    ServerStats, Snapshot, SnapshotStore,
};
pub use session::{SegmentRequest, Session};
pub use wal::{CheckpointMeta, WalRecord, WalReplay, WalTail, WalWriter};
pub use mdl::{mdl_cost, MdlScore, MdlWeights};
pub use smooth::{smooth_reference, BorderMode, Kernel, SmoothConfig, SmoothStats};
pub use verify::ErrorCounts;
