//! The fault-tolerant concurrent serving core.
//!
//! Everything below is std-only and sits on the invariant the paper's
//! §3.2 establishes: once tuples are binned, re-mining at new thresholds
//! touches only the [`BinArray`]. That makes a multi-tenant interactive
//! segmentation service cheap to serve — *if* the serving layer survives
//! concurrency, overload, and faults. This module supplies that layer:
//!
//! * [`SnapshotStore`] — immutable, epoch-versioned `Arc<`[`Snapshot`]`>`
//!   state with copy-on-write swap. Streaming appends bin into a *delta*
//!   `BinArray` which [`SnapshotStore::append`] merges (via
//!   [`BinArray::merge`]) into a fresh array published under the next
//!   epoch. In-flight readers keep their `Arc` to the old snapshot, so a
//!   swap never blocks or tears a read; a fault mid-swap leaves the
//!   previous epoch intact.
//! * [`AdmissionGate`] — bounded in-flight slots plus a bounded wait
//!   queue. When both are full the request is shed *immediately* with a
//!   typed [`ArcsError::Overloaded`]; a queued request whose deadline
//!   expires fails with a typed [`ArcsError::DeadlineExceeded`]. Nothing
//!   ever stalls behind an unbounded queue.
//! * Per-request deadlines — checked at admission and between pipeline
//!   stages (mine, smooth/cluster), so a timed-out request returns its
//!   typed error promptly instead of running to completion.
//! * Panic isolation with bounded retry — the query body runs under
//!   `catch_unwind`; a panicking worker is retried up to
//!   [`ServeConfig::max_retries`] times with exponential backoff before
//!   surfacing [`ArcsError::WorkerPanicked`]. Deterministic (typed)
//!   errors are never retried.
//! * Per-request memory budgets — [`QueryRequest::memory_budget`] runs
//!   the resource governor's coarsening ladder
//!   ([`plan_bins`](crate::budget::plan_bins)) against the snapshot's
//!   grid and serves a degraded, coarser answer
//!   ([`BinArray::coarsened`]) instead of refusing service outright.
//! * [`ResultCache`] — an LRU keyed by `(epoch, group, thresholds,
//!   cluster config, coarsening)`. Repeated lattice points across users
//!   are free; because the epoch is part of the key, a snapshot swap can
//!   never serve a stale entry even if active invalidation is faulted.
//!
//! # Failpoints
//!
//! The serving paths are threaded with named failpoints (active under the
//! `failpoints` feature — see [`crate::faults`]): `serve.swap`,
//! `serve.swap-publish`, `serve.admission`, `serve.worker`,
//! `serve.cache-insert`, and `serve.cache-invalidate`. The chaos suite
//! (`tests/serve_chaos.rs`) replays schedules over them while concurrent
//! readers assert bit-identical results against a sequential oracle.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

use crate::binarray::BinArray;
use crate::bitop::{self, BitOpConfig};
use crate::budget::{plan_bins, BinPlan};
use crate::cluster::Rect;
use crate::engine::{self, BinnedRule, Thresholds};
use crate::error::{panic_message, ArcsError};
use crate::faults;
use crate::index::OccupancyIndex;
use crate::metrics::{PipelineCounters, PipelineReport};
use crate::smooth::{smooth, SmoothConfig};

/// Locks a mutex, tolerating poisoning: serving state is a set of
/// counters and maps that remain internally consistent even when a
/// holder panicked (every critical section is short and transactional).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// One immutable, epoch-stamped view of the binned data: the array, its
/// occupancy index (built once, shared by every reader of the epoch), and
/// the array checksum for torn-read auditing.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    array: Arc<BinArray>,
    index: Arc<OccupancyIndex>,
    checksum: u64,
}

impl Snapshot {
    fn build(epoch: u64, array: BinArray) -> Self {
        let checksum = array.checksum();
        let index = Arc::new(OccupancyIndex::build(&array));
        Snapshot {
            epoch,
            array: Arc::new(array),
            index,
            checksum,
        }
    }

    /// The snapshot's epoch (0 for the store's initial array, +1 per swap).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The immutable bin array of this epoch.
    pub fn array(&self) -> &Arc<BinArray> {
        &self.array
    }

    /// The occupancy index over [`array`](Snapshot::array), built once at
    /// publish time and valid forever (the array is immutable).
    pub fn index(&self) -> &OccupancyIndex {
        &self.index
    }

    /// Checksum of the array at publish time. Because the array is
    /// immutable, any later mismatch would prove a torn read; the chaos
    /// suite asserts it never happens.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }
}

/// Epoch-versioned snapshot store with copy-on-write swap.
///
/// Readers call [`current`](SnapshotStore::current) and keep the returned
/// `Arc` for the duration of their request — they are never blocked or
/// invalidated by a concurrent swap. Writers serialise on an internal
/// mutex, clone the current array, merge their delta, and publish the
/// result under the next epoch. A failure anywhere before publication
/// (merge error, injected fault, allocation failure) leaves the current
/// epoch untouched.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<Snapshot>>,
    /// Serialises writers; readers never take it.
    writer: Mutex<()>,
    swaps: AtomicU64,
}

impl SnapshotStore {
    /// Creates a store holding `array` as epoch 0.
    pub fn new(array: BinArray) -> Self {
        Self::with_epoch(array, 0)
    }

    /// Creates a store holding `array` as an explicit starting epoch —
    /// the recovery path: a daemon restoring a tenant from checkpoint +
    /// WAL replay must resume the epoch sequence where the crashed
    /// process left it, so recovered query results (which carry the
    /// epoch) stay bit-identical to an uninterrupted run.
    pub fn with_epoch(array: BinArray, epoch: u64) -> Self {
        SnapshotStore {
            current: RwLock::new(Arc::new(Snapshot::build(epoch, array))),
            writer: Mutex::new(()),
            swaps: AtomicU64::new(0),
        }
    }

    /// The current snapshot. Cheap (one `Arc` clone under a read lock
    /// held for nanoseconds); the returned snapshot stays valid for as
    /// long as the caller holds it, across any number of swaps.
    pub fn current(&self) -> Arc<Snapshot> {
        self.current
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Number of snapshot swaps published since construction.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Merges `delta` into a copy of the current array and publishes the
    /// result as the next epoch, returning the new snapshot. In-flight
    /// readers of older epochs are unaffected. On any error (dimension
    /// mismatch, counter overflow, injected fault) the store still holds
    /// the previous epoch — a failed swap is invisible to readers.
    pub fn append(&self, delta: &BinArray) -> Result<Arc<Snapshot>, ArcsError> {
        let _writer = lock(&self.writer);
        faults::check("serve.swap")?;
        let base = self.current();
        let mut merged = (*base.array).clone();
        merged.merge(delta)?;
        let next = Arc::new(Snapshot::build(base.epoch + 1, merged));
        // The last faultable point before publication: an injected error
        // here models a crash after the merge but before the swap — the
        // old epoch must remain served.
        faults::check("serve.swap-publish")?;
        *self
            .current
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = next.clone();
        self.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(next)
    }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    queued: usize,
}

/// A bounded-concurrency admission gate: at most `max_inflight` permits
/// out at once, at most `max_queued` callers waiting. A request that
/// finds both full is shed immediately with [`ArcsError::Overloaded`]; a
/// queued request whose deadline passes fails with
/// [`ArcsError::DeadlineExceeded`]. Built on `Mutex` + `Condvar` only.
#[derive(Debug)]
pub struct AdmissionGate {
    state: Mutex<GateState>,
    available: Condvar,
    max_inflight: usize,
    max_queued: usize,
}

/// An admission permit. Dropping it releases the in-flight slot and wakes
/// one queued waiter.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = lock(&self.gate.state);
        st.inflight = st.inflight.saturating_sub(1);
        drop(st);
        self.gate.available.notify_one();
    }
}

impl AdmissionGate {
    /// A gate with `max_inflight` concurrent permits (≥ 1) and room for
    /// `max_queued` waiting requests (0 = shed as soon as slots fill).
    pub fn new(max_inflight: usize, max_queued: usize) -> Result<Self, ArcsError> {
        if max_inflight == 0 {
            return Err(ArcsError::InvalidConfig(
                "admission gate needs at least one in-flight slot".into(),
            ));
        }
        Ok(AdmissionGate {
            state: Mutex::new(GateState::default()),
            available: Condvar::new(),
            max_inflight,
            max_queued,
        })
    }

    /// Requests admission, waiting in the bounded queue (up to `deadline`,
    /// when given) for a slot. Returns a [`Permit`] that must be held for
    /// the duration of the request.
    pub fn admit(&self, deadline: Option<Instant>) -> Result<Permit<'_>, ArcsError> {
        faults::check("serve.admission")?;
        let mut st = lock(&self.state);
        if st.inflight < self.max_inflight {
            st.inflight += 1;
            return Ok(Permit { gate: self });
        }
        if st.queued >= self.max_queued {
            return Err(ArcsError::Overloaded {
                inflight: st.inflight,
                queued: st.queued,
            });
        }
        st.queued += 1;
        loop {
            // Deadline first: a request admitted with an already-expired
            // deadline fails deterministically without ever sleeping.
            let remaining = match deadline {
                None => None,
                Some(d) => match d.checked_duration_since(Instant::now()) {
                    Some(r) if !r.is_zero() => Some(r),
                    _ => {
                        st.queued -= 1;
                        return Err(ArcsError::DeadlineExceeded {
                            stage: "serve.admission",
                        });
                    }
                },
            };
            st = match remaining {
                None => self
                    .available
                    .wait(st)
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
                Some(r) => {
                    self.available
                        .wait_timeout(st, r)
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .0
                }
            };
            if st.inflight < self.max_inflight {
                st.queued -= 1;
                st.inflight += 1;
                return Ok(Permit { gate: self });
            }
        }
    }

    /// Requests currently holding permits.
    pub fn inflight(&self) -> usize {
        lock(&self.state).inflight
    }

    /// Requests currently waiting in the queue.
    pub fn queued(&self) -> usize {
        lock(&self.state).queued
    }
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

/// Exact cache key of one query outcome. The epoch is part of the key, so
/// entries of superseded snapshots can never be returned for a current
/// request — active invalidation (on swap) only reclaims their memory.
/// Threshold floats are keyed by bit pattern; the cluster configuration by
/// its canonical encoding ([`ClusterSpec::cache_token`]) — the same bytes
/// the wire protocol carries, so cache identity and wire payloads cannot
/// drift. The token excludes the thread count: results are bit-identical
/// at any thread count, so two requests differing only in threads share
/// one entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    epoch: u64,
    gk: u32,
    support_bits: u64,
    confidence_bits: u64,
    /// [`ClusterSpec::cache_token`] of the request's cluster spec, or
    /// empty for mine-only queries. Exact string equality — no hashing
    /// collisions can alias two different configurations.
    cluster: String,
    coarsening_steps: u32,
}

impl CacheKey {
    fn new(epoch: u64, request: &QueryRequest, plan: &BinPlan) -> Self {
        CacheKey {
            epoch,
            gk: request.gk,
            support_bits: request.thresholds.min_support.to_bits(),
            confidence_bits: request.thresholds.min_confidence.to_bits(),
            cluster: request
                .cluster
                .as_ref()
                .map(ClusterSpec::cache_token)
                .unwrap_or_default(),
            coarsening_steps: plan.coarsening_steps,
        }
    }
}

#[derive(Debug)]
struct CacheEntry {
    value: Arc<QueryResult>,
    last_used: u64,
}

/// A small LRU over query results. Capacity 0 disables caching entirely.
/// Eviction scans for the least-recently-used entry — capacities are
/// bounded and small, so O(capacity) eviction beats the bookkeeping of an
/// intrusive list in a std-only build.
#[derive(Debug)]
struct ResultCache {
    map: HashMap<CacheKey, CacheEntry>,
    capacity: usize,
    tick: u64,
}

impl ResultCache {
    fn new(capacity: usize) -> Self {
        ResultCache {
            map: HashMap::new(),
            capacity,
            tick: 0,
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<Arc<QueryResult>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|entry| {
            entry.last_used = tick;
            entry.value.clone()
        })
    }

    fn insert(&mut self, key: CacheKey, value: Arc<QueryResult>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        let tick = self.tick;
        self.map.insert(key, CacheEntry { value, last_used: tick });
    }

    /// Drops every entry older than `epoch`, returning how many were
    /// reclaimed.
    fn invalidate_before(&mut self, epoch: u64) -> usize {
        let before = self.map.len();
        self.map.retain(|key, _| key.epoch >= epoch);
        before - self.map.len()
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

// ---------------------------------------------------------------------------
// Requests, responses, configuration
// ---------------------------------------------------------------------------

/// Smoothing plus clustering configuration for queries that want decoded
/// cluster rectangles, not just rules.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClusterSpec {
    /// Low-pass smoothing applied to the rule grid before clustering.
    pub smoothing: SmoothConfig,
    /// BitOp clustering configuration.
    pub bitop: BitOpConfig,
}

/// One serving request: re-mine (and optionally re-cluster) the current
/// snapshot for a criterion group at explicit thresholds, under an
/// optional deadline and memory budget.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Criterion group code to mine.
    pub gk: u32,
    /// Support/confidence thresholds.
    pub thresholds: Thresholds,
    /// When set, also smooth + cluster the rule grid.
    pub cluster: Option<ClusterSpec>,
    /// Per-request deadline, overriding [`ServeConfig::default_deadline`].
    pub deadline: Option<Duration>,
    /// Per-request memory budget in bytes: when the snapshot's grid
    /// exceeds it, the coarsening ladder serves a degraded (coarser)
    /// answer; a budget below even the coarsest useful grid refuses with
    /// [`ArcsError::BudgetExceeded`].
    pub memory_budget: Option<usize>,
}

impl QueryRequest {
    /// A mine-only request for group `gk` at `thresholds`.
    pub fn new(gk: u32, thresholds: Thresholds) -> Self {
        QueryRequest {
            gk,
            thresholds,
            cluster: None,
            deadline: None,
            memory_budget: None,
        }
    }

    /// Also smooth + cluster with `spec`.
    pub fn cluster(mut self, spec: ClusterSpec) -> Self {
        self.cluster = Some(spec);
        self
    }

    /// Sets the per-request deadline.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the per-request memory budget in bytes.
    pub fn memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget = Some(bytes);
        self
    }
}

/// The (cacheable, immutable) outcome of one query computation.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Epoch of the snapshot the result was computed against.
    pub epoch: u64,
    /// Rules mined at the request's thresholds.
    pub rules: Vec<BinnedRule>,
    /// Cluster rectangles, when the request asked for clustering.
    pub clusters: Option<Vec<Rect>>,
    /// Coarsening steps the per-request memory budget forced (0 = the
    /// full-resolution grid was served).
    pub coarsening_steps: u32,
}

impl QueryResult {
    /// `true` when the memory budget forced a coarser grid than the
    /// snapshot holds.
    pub fn degraded(&self) -> bool {
        self.coarsening_steps > 0
    }
}

/// A served response: the (possibly cached) result plus per-request
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The result, shared with the cache.
    pub result: Arc<QueryResult>,
    /// Whether the result came from the cache.
    pub cache_hit: bool,
    /// Panic-isolation retries this request needed (0 in healthy runs).
    pub retries: u32,
    /// Wall-clock time from arrival to response.
    pub elapsed: Duration,
}

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent requests allowed past the admission gate (≥ 1).
    pub max_inflight: usize,
    /// Requests allowed to wait for admission before shedding starts.
    pub max_queued: usize,
    /// Deadline applied to requests that set none (`None` = unbounded).
    pub default_deadline: Option<Duration>,
    /// Retries after an isolated worker panic before the request fails
    /// with [`ArcsError::WorkerPanicked`].
    pub max_retries: u32,
    /// Base backoff before the first retry; doubled per subsequent retry.
    /// `Duration::ZERO` disables backoff sleeping (useful in tests).
    pub retry_backoff: Duration,
    /// Result-cache capacity in entries (0 disables the cache).
    pub cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_inflight: crate::metrics::default_threads().max(2),
            max_queued: 64,
            default_deadline: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            cache_capacity: 256,
        }
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// Atomic tallies of the server's lifetime, readable without locking.
#[derive(Debug, Default)]
struct ServeCounters {
    admitted: AtomicU64,
    shed: AtomicU64,
    timed_out: AtomicU64,
    completed: AtomicU64,
    retries: AtomicU64,
    worker_panics: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rules_emitted: AtomicU64,
    cells_visited: AtomicU64,
    budget_coarsening_steps: AtomicU64,
}

/// A point-in-time view of the server's health and workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Current snapshot epoch.
    pub epoch: u64,
    /// Requests currently executing.
    pub inflight: usize,
    /// Requests currently queued for admission.
    pub queued: usize,
    /// Requests admitted so far.
    pub admitted: u64,
    /// Requests shed with [`ArcsError::Overloaded`].
    pub shed: u64,
    /// Requests failed with [`ArcsError::DeadlineExceeded`].
    pub timed_out: u64,
    /// Requests completed successfully (cache hits included).
    pub completed: u64,
    /// Panic-isolation retries across all requests.
    pub retries: u64,
    /// Worker panics caught by the isolation layer.
    pub worker_panics: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Entries currently held by the result cache.
    pub cache_len: usize,
    /// Snapshot swaps published.
    pub snapshot_swaps: u64,
}

impl ServerStats {
    /// Cache hits as a fraction of cache lookups (0 when none happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// The concurrent serving core: an immutable-snapshot store, an admission
/// gate, a result cache, and the per-request robustness envelope
/// (deadline, budget ladder, panic isolation). All methods take `&self`;
/// share a server across threads with `Arc<Server>`.
#[derive(Debug)]
pub struct Server {
    store: SnapshotStore,
    gate: AdmissionGate,
    cache: Mutex<ResultCache>,
    config: ServeConfig,
    counters: ServeCounters,
}

impl Server {
    /// Creates a server holding `array` as its epoch-0 snapshot.
    pub fn new(array: BinArray, config: ServeConfig) -> Result<Self, ArcsError> {
        Self::recovered(array, 0, config)
    }

    /// Creates a server holding `array` at an explicit starting epoch —
    /// used by durable recovery to resume the epoch sequence after a
    /// checkpoint + WAL replay (see [`SnapshotStore::with_epoch`]).
    pub fn recovered(array: BinArray, epoch: u64, config: ServeConfig) -> Result<Self, ArcsError> {
        let gate = AdmissionGate::new(config.max_inflight, config.max_queued)?;
        Ok(Server {
            store: SnapshotStore::with_epoch(array, epoch),
            gate,
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            config,
            counters: ServeCounters::default(),
        })
    }

    /// The snapshot store (for direct epoch inspection).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// The admission gate (for inspection and deterministic tests).
    pub fn gate(&self) -> &AdmissionGate {
        &self.gate
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The current snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.current()
    }

    /// Merges a delta bin array into a new copy-on-write snapshot and
    /// invalidates superseded cache entries. Returns the new epoch. On
    /// error the previous snapshot remains current and the cache is
    /// untouched.
    ///
    /// If the post-swap cache invalidation is faulted (failpoint
    /// `serve.cache-invalidate`), superseded entries are left behind:
    /// they are unreachable (the epoch is part of every cache key), so
    /// this degrades memory reclamation, never correctness.
    pub fn append(&self, delta: &BinArray) -> Result<u64, ArcsError> {
        let next = self.store.append(delta)?;
        if faults::check("serve.cache-invalidate").is_ok() {
            lock(&self.cache).invalidate_before(next.epoch);
        }
        Ok(next.epoch)
    }

    /// Serves a canonical [`Request`](crate::request::Request): resolves
    /// its group reference against `labels` (the criterion attribute's
    /// labels in code order), lowers it to a [`QueryRequest`], and runs
    /// [`query`](Server::query). This is the entry point the daemon and
    /// CLI share — one request shape across library, wire, and CLI.
    pub fn query_unified(
        &self,
        request: &crate::request::Request,
        labels: &[String],
    ) -> Result<QueryResponse, ArcsError> {
        self.query(&request.to_query_request(labels)?)
    }

    /// Serves one request end to end: admission → cache lookup →
    /// (mine [→ smooth → cluster]) under panic isolation → cache fill.
    /// Every failure mode is a typed [`ArcsError`]; panics never escape.
    pub fn query(&self, request: &QueryRequest) -> Result<QueryResponse, ArcsError> {
        let start = Instant::now();
        let deadline = request
            .deadline
            .or(self.config.default_deadline)
            .map(|budget| start + budget);

        let permit = match self.gate.admit(deadline) {
            Ok(permit) => permit,
            Err(err) => {
                match &err {
                    ArcsError::Overloaded { .. } => {
                        self.counters.shed.fetch_add(1, Ordering::Relaxed);
                    }
                    ArcsError::DeadlineExceeded { .. } => {
                        self.counters.timed_out.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                return Err(err);
            }
        };
        self.counters.admitted.fetch_add(1, Ordering::Relaxed);
        // Held (and released on every return path) for the request's
        // entire execution, including retries.
        let _permit = permit;

        let snapshot = self.store.current();
        let plan = plan_bins(
            snapshot.array().nx(),
            snapshot.array().ny(),
            snapshot.array().nseg(),
            request.memory_budget,
        )?;
        let key = CacheKey::new(snapshot.epoch(), request, &plan);
        if let Some(hit) = lock(&self.cache).get(&key) {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.counters.completed.fetch_add(1, Ordering::Relaxed);
            return Ok(QueryResponse {
                result: hit,
                cache_hit: true,
                retries: 0,
                elapsed: start.elapsed(),
            });
        }
        self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);

        let mut retries = 0u32;
        let (result, visited) = loop {
            self.check_deadline(deadline, "serve.execute")?;
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                Self::execute(&snapshot, request, &plan, deadline)
            }));
            match attempt {
                Ok(Ok(outcome)) => break outcome,
                Ok(Err(err)) => {
                    // Typed errors are deterministic: retrying cannot
                    // change the outcome, so surface them immediately.
                    if matches!(err, ArcsError::DeadlineExceeded { .. }) {
                        self.counters.timed_out.fetch_add(1, Ordering::Relaxed);
                    }
                    return Err(err);
                }
                Err(payload) => {
                    self.counters.worker_panics.fetch_add(1, Ordering::Relaxed);
                    if retries >= self.config.max_retries {
                        return Err(ArcsError::WorkerPanicked {
                            stage: "serving query",
                            message: panic_message(payload),
                        });
                    }
                    retries += 1;
                    self.counters.retries.fetch_add(1, Ordering::Relaxed);
                    self.backoff(retries, deadline)?;
                }
            }
        };

        self.counters
            .rules_emitted
            .fetch_add(result.rules.len() as u64, Ordering::Relaxed);
        self.counters
            .cells_visited
            .fetch_add(visited, Ordering::Relaxed);
        self.counters
            .budget_coarsening_steps
            .fetch_add(plan.coarsening_steps as u64, Ordering::Relaxed);

        let result = Arc::new(result);
        if faults::check("serve.cache-insert").is_ok() {
            lock(&self.cache).insert(key, result.clone());
        }
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        Ok(QueryResponse {
            result,
            cache_hit: false,
            retries,
            elapsed: start.elapsed(),
        })
    }

    /// The query body: coarsen under the budget plan if needed, mine via
    /// the occupancy index, optionally smooth + cluster. Runs inside
    /// `catch_unwind`; deadline-checked between stages.
    fn execute(
        snapshot: &Snapshot,
        request: &QueryRequest,
        plan: &BinPlan,
        deadline: Option<Instant>,
    ) -> Result<(QueryResult, u64), ArcsError> {
        faults::check("serve.worker")?;
        // The budget ladder: serve a coarser grid rather than refuse. The
        // coarsened array and its index are per-request scratch; repeated
        // budgeted queries hit the cache (coarsening is part of the key).
        let scratch: Option<(BinArray, OccupancyIndex)> = if plan.degraded() {
            let coarse = snapshot.array().coarsened(plan.nx, plan.ny)?;
            let index = OccupancyIndex::build(&coarse);
            Some((coarse, index))
        } else {
            None
        };
        let (array, index): (&BinArray, &OccupancyIndex) = match &scratch {
            Some((coarse, index)) => (coarse, index),
            None => (snapshot.array(), snapshot.index()),
        };

        check_deadline_at(deadline, "serve.mine")?;
        let (rules, visited) = engine::mine_rules_indexed(index, request.gk, request.thresholds);

        let clusters = match &request.cluster {
            None => None,
            Some(spec) => {
                check_deadline_at(deadline, "serve.cluster")?;
                let grid = engine::rule_grid(array, request.gk, request.thresholds)?;
                let smoothed = smooth(&grid, &spec.smoothing)?;
                let (rects, _stats) = bitop::cluster_with_stats(&smoothed, &spec.bitop)?;
                Some(rects)
            }
        };

        Ok((
            QueryResult {
                epoch: snapshot.epoch(),
                rules,
                clusters,
                coarsening_steps: plan.coarsening_steps,
            },
            visited,
        ))
    }

    fn check_deadline(
        &self,
        deadline: Option<Instant>,
        stage: &'static str,
    ) -> Result<(), ArcsError> {
        if let Err(err) = check_deadline_at(deadline, stage) {
            self.counters.timed_out.fetch_add(1, Ordering::Relaxed);
            return Err(err);
        }
        Ok(())
    }

    /// Sleeps the exponential backoff before retry `attempt` (1-based),
    /// clamped to the deadline: when the backoff cannot complete before
    /// the deadline, fail now with the typed error instead of sleeping
    /// past it.
    fn backoff(&self, attempt: u32, deadline: Option<Instant>) -> Result<(), ArcsError> {
        let base = self.config.retry_backoff;
        if base.is_zero() {
            return Ok(());
        }
        let factor = 1u32 << (attempt - 1).min(16);
        let pause = base.saturating_mul(factor);
        if let Some(d) = deadline {
            let remaining = d.saturating_duration_since(Instant::now());
            if pause >= remaining {
                self.counters.timed_out.fetch_add(1, Ordering::Relaxed);
                return Err(ArcsError::DeadlineExceeded {
                    stage: "serve.retry-backoff",
                });
            }
        }
        std::thread::sleep(pause);
        Ok(())
    }

    /// A point-in-time stats snapshot (gauges plus lifetime tallies).
    pub fn stats(&self) -> ServerStats {
        let c = &self.counters;
        ServerStats {
            epoch: self.store.current().epoch(),
            inflight: self.gate.inflight(),
            queued: self.gate.queued(),
            admitted: c.admitted.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            timed_out: c.timed_out.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            worker_panics: c.worker_panics.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            cache_len: lock(&self.cache).len(),
            snapshot_swaps: self.store.swaps(),
        }
    }

    /// The server's lifetime stats rendered through the pipeline's
    /// standard observability report (`--stats json`, CI schema).
    pub fn report(&self) -> PipelineReport {
        let s = self.stats();
        let c = &self.counters;
        let counters = PipelineCounters {
            tuples_binned: self.store.current().array().n_tuples(),
            rules_emitted: c.rules_emitted.load(Ordering::Relaxed),
            cells_visited: c.cells_visited.load(Ordering::Relaxed),
            worker_panics: s.worker_panics,
            budget_coarsening_steps: c.budget_coarsening_steps.load(Ordering::Relaxed),
            requests_admitted: s.admitted,
            requests_shed: s.shed,
            requests_timed_out: s.timed_out,
            request_retries: s.retries,
            cache_hits: s.cache_hits,
            cache_misses: s.cache_misses,
            snapshot_swaps: s.snapshot_swaps,
            ..PipelineCounters::default()
        };
        PipelineReport {
            counters,
            threads: self.config.max_inflight,
            ..PipelineReport::default()
        }
    }
}

fn check_deadline_at(deadline: Option<Instant>, stage: &'static str) -> Result<(), ArcsError> {
    match deadline {
        Some(d) if Instant::now() >= d => Err(ArcsError::DeadlineExceeded { stage }),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::mine_rules;

    /// 4x4 array, 2 groups — small enough that oracle mining is trivial.
    fn demo_array() -> BinArray {
        let mut ba = BinArray::new(4, 4, 2).unwrap();
        for _ in 0..40 {
            ba.add(0, 0, 0);
        }
        for _ in 0..10 {
            ba.add(0, 0, 1);
        }
        for _ in 0..45 {
            ba.add(1, 0, 0);
        }
        for _ in 0..5 {
            ba.add(1, 0, 1);
        }
        for _ in 0..5 {
            ba.add(2, 2, 0);
        }
        for _ in 0..95 {
            ba.add(2, 2, 1);
        }
        for _ in 0..10 {
            ba.add(3, 3, 0);
        }
        ba // N = 210
    }

    /// A delta landing new mass in a previously-empty cell.
    fn demo_delta() -> BinArray {
        let mut delta = BinArray::new(4, 4, 2).unwrap();
        for _ in 0..30 {
            delta.add(3, 0, 0);
        }
        delta
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            max_inflight: 2,
            max_queued: 2,
            retry_backoff: Duration::ZERO,
            ..ServeConfig::default()
        }
    }

    fn thresholds(s: f64, c: f64) -> Thresholds {
        Thresholds::new(s, c).unwrap()
    }

    #[test]
    fn snapshot_store_swaps_epochs_without_disturbing_readers() {
        let store = SnapshotStore::new(demo_array());
        let before = store.current();
        assert_eq!(before.epoch(), 0);

        let next = store.append(&demo_delta()).unwrap();
        assert_eq!(next.epoch(), 1);
        assert_eq!(store.swaps(), 1);
        assert_eq!(store.current().epoch(), 1);

        // The reader's old snapshot is untouched: same object, same
        // checksum, delta not visible.
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.array().checksum(), before.checksum());
        assert_eq!(before.array().cell_total(3, 0), 0);
        assert_eq!(next.array().cell_total(3, 0), 30);
        assert_eq!(next.array().n_tuples(), 240);
    }

    #[test]
    fn snapshot_store_rejects_mismatched_deltas_without_swapping() {
        let store = SnapshotStore::new(demo_array());
        let bad = BinArray::new(3, 3, 2).unwrap();
        assert!(store.append(&bad).is_err());
        assert_eq!(store.current().epoch(), 0);
        assert_eq!(store.swaps(), 0);
    }

    #[test]
    fn gate_sheds_when_slots_and_queue_are_full() {
        let gate = AdmissionGate::new(1, 0).unwrap();
        let held = gate.admit(None).unwrap();
        assert_eq!(gate.inflight(), 1);
        let err = gate.admit(None).unwrap_err();
        assert!(
            matches!(err, ArcsError::Overloaded { inflight: 1, queued: 0 }),
            "{err:?}"
        );
        drop(held);
        assert_eq!(gate.inflight(), 0);
        let reacquired = gate.admit(None).unwrap();
        drop(reacquired);
    }

    #[test]
    fn gate_times_out_queued_requests_with_expired_deadlines() {
        let gate = AdmissionGate::new(1, 4).unwrap();
        let held = gate.admit(None).unwrap();
        // The deadline is already expired when the request queues: the
        // gate must fail it deterministically, without sleeping.
        let err = gate.admit(Some(Instant::now())).unwrap_err();
        assert!(
            matches!(err, ArcsError::DeadlineExceeded { stage: "serve.admission" }),
            "{err:?}"
        );
        assert_eq!(gate.queued(), 0, "timed-out waiter must leave the queue");
        drop(held);
    }

    #[test]
    fn gate_requires_a_slot() {
        assert!(AdmissionGate::new(0, 4).is_err());
    }

    #[test]
    fn query_matches_sequential_mining() {
        let array = demo_array();
        let server = Server::new(array.clone(), test_config()).unwrap();
        for (s, c) in [(0.0, 0.0), (0.1, 0.5), (0.04, 0.0), (1.0, 1.0)] {
            let t = thresholds(s, c);
            let resp = server.query(&QueryRequest::new(0, t)).unwrap();
            assert_eq!(resp.result.rules, mine_rules(&array, 0, t), "({s}, {c})");
            assert_eq!(resp.result.epoch, 0);
            assert_eq!(resp.retries, 0);
            assert!(!resp.result.degraded());
        }
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let server = Server::new(demo_array(), test_config()).unwrap();
        let request = QueryRequest::new(0, thresholds(0.1, 0.5));
        let first = server.query(&request).unwrap();
        assert!(!first.cache_hit);
        let second = server.query(&request).unwrap();
        assert!(second.cache_hit);
        // The cached Arc is the same allocation, not a recomputation.
        assert!(Arc::ptr_eq(&first.result, &second.result));
        let stats = server.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn swap_invalidates_cache_and_changes_results() {
        let server = Server::new(demo_array(), test_config()).unwrap();
        let request = QueryRequest::new(0, thresholds(0.1, 0.5));
        let before = server.query(&request).unwrap();
        assert_eq!(server.stats().cache_len, 1);

        let epoch = server.append(&demo_delta()).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(server.stats().cache_len, 0, "swap must invalidate");

        let after = server.query(&request).unwrap();
        assert!(!after.cache_hit, "epoch is part of the cache key");
        assert_eq!(after.result.epoch, 1);
        // The appended mass shifts supports (N changed), so the result
        // genuinely reflects the new snapshot.
        let merged = {
            let mut m = demo_array();
            m.merge(&demo_delta()).unwrap();
            m
        };
        assert_eq!(after.result.rules, mine_rules(&merged, 0, request.thresholds));
        assert_ne!(before.result.rules, after.result.rules);
    }

    #[test]
    fn clustered_queries_return_rectangles() {
        let server = Server::new(demo_array(), test_config()).unwrap();
        let request = QueryRequest::new(0, thresholds(0.0, 0.5)).cluster(ClusterSpec {
            smoothing: SmoothConfig::disabled(),
            bitop: BitOpConfig::no_pruning(),
        });
        let resp = server.query(&request).unwrap();
        let clusters = resp.result.clusters.as_ref().unwrap();
        assert!(!clusters.is_empty());
        // Mine-only and clustered requests key separately.
        let mine_only = server.query(&QueryRequest::new(0, thresholds(0.0, 0.5))).unwrap();
        assert!(!mine_only.cache_hit);
        assert!(mine_only.result.clusters.is_none());
    }

    #[test]
    fn expired_deadlines_fail_typed_before_any_work() {
        let server = Server::new(demo_array(), test_config()).unwrap();
        let request = QueryRequest::new(0, thresholds(0.0, 0.0)).deadline(Duration::ZERO);
        let err = server.query(&request).unwrap_err();
        assert!(matches!(err, ArcsError::DeadlineExceeded { .. }), "{err:?}");
        let stats = server.stats();
        assert_eq!(stats.timed_out, 1);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.inflight, 0, "permit must be released");
    }

    #[test]
    fn server_sheds_queries_when_the_gate_is_full() {
        let config = ServeConfig { max_inflight: 1, max_queued: 0, ..test_config() };
        let server = Server::new(demo_array(), config).unwrap();
        // Deterministically occupy the only slot from the test thread.
        let held = server.gate().admit(None).unwrap();
        let err = server.query(&QueryRequest::new(0, thresholds(0.0, 0.0))).unwrap_err();
        assert!(matches!(err, ArcsError::Overloaded { .. }), "{err:?}");
        assert_eq!(server.stats().shed, 1);
        drop(held);
        // With the slot free the same query completes.
        assert!(server.query(&QueryRequest::new(0, thresholds(0.0, 0.0))).is_ok());
    }

    #[test]
    fn memory_budget_serves_a_degraded_coarser_answer() {
        // demo array: 4x4, 2 groups = 4*4*3*4 = 192 bytes. A 100-byte
        // budget forces halvings: (2,4)=96 bytes fits after one step.
        let server = Server::new(demo_array(), test_config()).unwrap();
        let request = QueryRequest::new(0, thresholds(0.0, 0.0)).memory_budget(100);
        let resp = server.query(&request).unwrap();
        assert!(resp.result.degraded());
        assert_eq!(resp.result.coarsening_steps, 1);
        // The degraded result matches sequential mining on the coarsened
        // array — the ladder changes resolution, never correctness.
        let coarse = demo_array().coarsened(2, 4).unwrap();
        assert_eq!(resp.result.rules, mine_rules(&coarse, 0, request.thresholds));

        // An impossible budget refuses admission with the typed error.
        let impossible = QueryRequest::new(0, thresholds(0.0, 0.0)).memory_budget(10);
        let err = server.query(&impossible).unwrap_err();
        assert!(matches!(err, ArcsError::BudgetExceeded { .. }), "{err:?}");

        // Budgeted and unbudgeted requests key separately in the cache.
        let full = server.query(&QueryRequest::new(0, thresholds(0.0, 0.0))).unwrap();
        assert!(!full.cache_hit);
        assert!(!full.result.degraded());
        // Re-issuing the budgeted request hits its own entry.
        let again = server.query(&request).unwrap();
        assert!(again.cache_hit);
        assert!(again.result.degraded());
    }

    #[test]
    fn lru_cache_evicts_the_oldest_entry() {
        let mut cache = ResultCache::new(2);
        let result = |epoch| {
            Arc::new(QueryResult {
                epoch,
                rules: Vec::new(),
                clusters: None,
                coarsening_steps: 0,
            })
        };
        let key = |support: u64| CacheKey {
            epoch: 0,
            gk: 0,
            support_bits: support,
            confidence_bits: 0,
            cluster: String::new(),
            coarsening_steps: 0,
        };
        cache.insert(key(1), result(0));
        cache.insert(key(2), result(0));
        assert!(cache.get(&key(1)).is_some()); // refresh 1 → 2 is oldest
        cache.insert(key(3), result(0));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(2)).is_none(), "oldest entry must be evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());

        // Capacity 0 disables caching.
        let mut disabled = ResultCache::new(0);
        disabled.insert(key(1), result(0));
        assert_eq!(disabled.len(), 0);

        // Invalidation drops only superseded epochs.
        let mut cache = ResultCache::new(8);
        cache.insert(key(1), result(0));
        cache.insert(CacheKey { epoch: 5, ..key(2) }, result(5));
        assert_eq!(cache.invalidate_before(5), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn report_surfaces_serving_counters() {
        let server = Server::new(demo_array(), test_config()).unwrap();
        let request = QueryRequest::new(0, thresholds(0.1, 0.5));
        server.query(&request).unwrap();
        server.query(&request).unwrap();
        server.append(&demo_delta()).unwrap();

        let report = server.report();
        let c = &report.counters;
        assert_eq!(c.requests_admitted, 2);
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.cache_misses, 1);
        assert_eq!(c.snapshot_swaps, 1);
        assert_eq!(c.tuples_binned, 240);
        assert!(c.rules_emitted > 0);
        let json = report.to_json();
        for key in [
            "\"requests_admitted\":2",
            "\"requests_shed\":0",
            "\"requests_timed_out\":0",
            "\"request_retries\":0",
            "\"cache_hits\":1",
            "\"cache_misses\":1",
            "\"snapshot_swaps\":1",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    /// Concurrency smoke: readers and a writer race through the public
    /// API; every completed response must be bit-identical to sequential
    /// mining on the exact snapshot epoch it was served from. Threads are
    /// joined unconditionally; no sleeps anywhere.
    #[test]
    fn concurrent_readers_see_consistent_epochs() {
        let server = Arc::new(Server::new(demo_array(), ServeConfig {
            max_inflight: 4,
            max_queued: 16,
            retry_backoff: Duration::ZERO,
            ..ServeConfig::default()
        }).unwrap());

        // Oracle arrays per epoch: epoch 0 plus 3 appended deltas.
        let mut oracles = vec![demo_array()];
        for _ in 0..3 {
            let mut next = oracles.last().unwrap().clone();
            next.merge(&demo_delta()).unwrap();
            oracles.push(next);
        }

        let barrier = Arc::new(std::sync::Barrier::new(5));
        let mut handles = Vec::new();
        for reader in 0..4 {
            let server = server.clone();
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let mut seen = Vec::new();
                for i in 0..20 {
                    let t = Thresholds::new(0.02 * ((i + reader) % 5) as f64, 0.0).unwrap();
                    let resp = server.query(&QueryRequest::new(0, t)).unwrap();
                    seen.push((resp.result.epoch, t, resp.result.rules.clone()));
                }
                seen
            }));
        }
        {
            let server = server.clone();
            let barrier = barrier.clone();
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..3 {
                    server.append(&demo_delta()).unwrap();
                }
                Vec::new()
            }));
        }
        for handle in handles {
            for (epoch, t, rules) in handle.join().unwrap() {
                let oracle = &oracles[epoch as usize];
                assert_eq!(rules, mine_rules(oracle, 0, t), "epoch {epoch}");
            }
        }
        assert_eq!(server.stats().snapshot_swaps, 3);
        assert_eq!(server.stats().epoch, 3);
    }
}
