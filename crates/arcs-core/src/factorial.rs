//! Factorial-design threshold search (paper §5).
//!
//! The paper suggests that *"the technique of factorial design by Fisher
//! \[6, 4\] can greatly reduce the number of experiments necessary when
//! searching for optimal solutions … applied in the heuristic optimizer to
//! reduce the number of runs required to find good values for minimum
//! support and minimum confidence."*
//!
//! Implementation: a 2² full factorial with a centre point (the classic
//! Box–Hunter–Hunter screening design) over the two factors *support
//! quantile* and *confidence quantile* of the Figure 10 lattice. Each
//! round evaluates the four corners and the centre of the current design
//! window, re-centres on the best point, and halves the window — steepest
//! descent guided by the factorial screen. A round costs 5 evaluations, so
//! a full search typically needs 20–30 evaluations versus the hill climb's
//! ~100.

use arcs_data::Tuple;

use crate::binarray::BinArray;
use crate::binner::Binner;
use crate::engine::Thresholds;
use crate::error::ArcsError;
use crate::optimizer::{evaluate, Evaluation, OptimizeResult, OptimizerConfig, SearchStats, ThresholdLattice};

/// Factorial-design search parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorialConfig {
    /// Component evaluation parameters (smoothing, BitOp, MDL weights,
    /// recall guard).
    pub optimizer: OptimizerConfig,
    /// Maximum design rounds (each round is five evaluations).
    pub max_rounds: usize,
    /// Stop when the design window's half-width falls below this quantile
    /// distance.
    pub min_half_width: f64,
}

impl Default for FactorialConfig {
    fn default() -> Self {
        FactorialConfig {
            optimizer: OptimizerConfig::default(),
            max_rounds: 8,
            min_half_width: 0.02,
        }
    }
}

impl FactorialConfig {
    fn validate(&self) -> Result<(), ArcsError> {
        if self.max_rounds == 0 {
            return Err(ArcsError::InvalidConfig("max_rounds must be > 0".into()));
        }
        if !(0.0 < self.min_half_width && self.min_half_width < 0.5) {
            return Err(ArcsError::InvalidConfig(
                "min_half_width must be in (0, 0.5)".into(),
            ));
        }
        Ok(())
    }
}

/// Maps `(support quantile, confidence quantile)` in `[0, 1]²` to concrete
/// thresholds over the lattice.
fn thresholds_at(lattice: &ThresholdLattice, sq: f64, cq: f64) -> Result<Thresholds, ArcsError> {
    let supports = lattice.supports();
    let si = ((sq * (supports.len() - 1) as f64).round() as usize).min(supports.len() - 1);
    let confs = lattice.confidences_for(si);
    let ci = ((cq * (confs.len() - 1) as f64).round() as usize).min(confs.len() - 1);
    Thresholds::new(
        (supports[si] - 1e-12).max(0.0),
        (confs[ci] - 1e-12).max(0.0),
    )
}

/// Runs the factorial-design search. Returns
/// [`ArcsError::NoSegmentation`] when the lattice is empty or no design
/// point produced any cluster.
pub fn factorial_search(
    array: &BinArray,
    gk: u32,
    binner: &Binner,
    sample: &[&Tuple],
    config: &FactorialConfig,
) -> Result<OptimizeResult, ArcsError> {
    config.validate()?;
    let lattice = ThresholdLattice::build(array, gk);
    if lattice.is_empty() {
        return Err(ArcsError::NoSegmentation);
    }
    let min_recall = config.optimizer.min_group_recall;
    let cost_of = |e: &Evaluation| -> f64 {
        if e.clusters.is_empty() || e.errors.recall() < min_recall {
            f64::INFINITY
        } else {
            e.score.cost
        }
    };

    let mut centre = (0.5f64, 0.5f64);
    let mut half_width = 0.5f64;
    let mut trace: Vec<Evaluation> = Vec::new();
    let mut best: Option<Evaluation> = None;
    let mut best_any: Option<Evaluation> = None;

    for _ in 0..config.max_rounds {
        // 2^2 corners + centre point.
        let design = [
            (centre.0 - half_width, centre.1 - half_width),
            (centre.0 - half_width, centre.1 + half_width),
            (centre.0 + half_width, centre.1 - half_width),
            (centre.0 + half_width, centre.1 + half_width),
            centre,
        ];
        let mut round_best: Option<((f64, f64), f64)> = None;
        for &(sq, cq) in &design {
            let sq = sq.clamp(0.0, 1.0);
            let cq = cq.clamp(0.0, 1.0);
            let thresholds = thresholds_at(&lattice, sq, cq)?;
            // Skip duplicate evaluations at identical thresholds.
            if trace.iter().any(|e| e.thresholds == thresholds) {
                continue;
            }
            let eval = evaluate(array, gk, binner, sample, thresholds, &config.optimizer)?;
            let cost = cost_of(&eval);
            trace.push(eval.clone());
            if !eval.clusters.is_empty()
                && best_any
                    .as_ref()
                    .is_none_or(|b| eval.score.cost < b.score.cost)
            {
                best_any = Some(eval.clone());
            }
            if cost.is_finite() && best.as_ref().is_none_or(|b| cost < b.score.cost) {
                best = Some(eval);
            }
            if round_best.is_none_or(|(_, c)| cost < c) {
                round_best = Some(((sq, cq), cost));
            }
        }
        if let Some(((sq, cq), _)) = round_best {
            centre = (sq, cq);
        }
        half_width /= 2.0;
        if half_width < config.min_half_width {
            break;
        }
    }

    match best.or(best_any) {
        Some(best) => Ok(OptimizeResult {
            best,
            trace,
            stats: SearchStats { occupied_cells: lattice.occupied_cells(), ..SearchStats::default() },
        }),
        None => Err(ArcsError::NoSegmentation),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use arcs_data::schema::{Attribute, Schema};
    use arcs_data::{Dataset, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::quantitative("x", 0.0, 10.0),
            Attribute::quantitative("y", 0.0, 10.0),
            Attribute::categorical("g", ["A", "other"]),
        ])
        .unwrap()
    }

    fn blocky_dataset() -> Dataset {
        let mut ds = Dataset::new(schema());
        for ix in 0..10 {
            for iy in 0..10 {
                let x = ix as f64 + 0.5;
                let y = iy as f64 + 0.5;
                let in_block = (2..5).contains(&ix) && (2..5).contains(&iy);
                let (n_a, n_other) = if in_block { (20, 2) } else { (0, 5) };
                for _ in 0..n_a {
                    ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(0)]).unwrap();
                }
                for _ in 0..n_other {
                    ds.push(vec![Value::Quant(x), Value::Quant(y), Value::Cat(1)]).unwrap();
                }
            }
        }
        ds
    }

    fn setup() -> (Dataset, Binner) {
        let ds = blocky_dataset();
        let b = Binner::equi_width(&schema(), "x", "y", "g", 10, 10).unwrap();
        (ds, b)
    }

    #[test]
    fn factorial_finds_the_block() {
        let (ds, b) = setup();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let sample: Vec<&Tuple> = ds.iter().collect();
        let config = FactorialConfig {
            optimizer: OptimizerConfig {
                bitop: crate::bitop::BitOpConfig::no_pruning(),
                ..OptimizerConfig::default()
            },
            ..FactorialConfig::default()
        };
        let result = factorial_search(&ba, 0, &b, &sample, &config).unwrap();
        assert_eq!(result.best.clusters.len(), 1);
        let rect = result.best.clusters[0];
        assert_eq!((rect.x0, rect.y0, rect.x1, rect.y1), (2, 2, 4, 4));
    }

    #[test]
    fn factorial_uses_fewer_evaluations_than_the_hill_climb() {
        let (ds, b) = setup();
        let ba = b.bin_rows(ds.iter()).unwrap();
        let sample: Vec<&Tuple> = ds.iter().collect();
        let opt = OptimizerConfig {
            bitop: crate::bitop::BitOpConfig::no_pruning(),
            ..OptimizerConfig::default()
        };
        let hill = optimize(&ba, 0, &b, &sample, &opt).unwrap();
        let factorial = factorial_search(
            &ba,
            0,
            &b,
            &sample,
            &FactorialConfig { optimizer: opt, ..FactorialConfig::default() },
        )
        .unwrap();
        assert!(factorial.trace.len() <= hill.trace.len());
        // Same optimum on this easy dataset.
        assert_eq!(factorial.best.clusters, hill.best.clusters);
    }

    #[test]
    fn factorial_validates_config() {
        let (ds, b) = setup();
        let ba = b.bin_rows(ds.iter()).unwrap();
        for bad in [
            FactorialConfig { max_rounds: 0, ..FactorialConfig::default() },
            FactorialConfig { min_half_width: 0.0, ..FactorialConfig::default() },
            FactorialConfig { min_half_width: 0.7, ..FactorialConfig::default() },
        ] {
            assert!(factorial_search(&ba, 0, &b, &[], &bad).is_err());
        }
    }

    #[test]
    fn factorial_errors_on_empty_array() {
        let (_, b) = setup();
        let ba = b.new_bin_array().unwrap();
        assert_eq!(
            factorial_search(&ba, 0, &b, &[], &FactorialConfig::default()).unwrap_err(),
            ArcsError::NoSegmentation
        );
    }
}
