//! The `BinArray` (paper §3.1): per-cell, per-group tuple counts.
//!
//! For each `(bin_x, bin_y)` pair the array maintains the number of tuples
//! having each possible RHS (criterion) attribute value, plus the total
//! count — size `nx * ny * (nseg + 1)`. It is the only state the mining
//! engine needs, so support/confidence thresholds can be changed and rules
//! re-mined *without re-reading the data* ("re-mining is nearly
//! instantaneous", §3.2).
//!
//! Layout: a flat `Vec<u32>` indexed `((y * nx) + x) * (nseg + 1) + slot`
//! where slots `0..nseg` are group counts and slot `nseg` is the cell
//! total. One cell's counts are contiguous, so the engine touches one cache
//! line per cell.

use std::io::{Read, Write};
use std::path::Path;

use crate::error::ArcsError;

/// Magic prefix of the snapshot format; the trailing byte is the format
/// version, bumped on any incompatible layout change.
const SNAPSHOT_MAGIC: [u8; 8] = *b"ARCSBA\x00\x01";

/// 64-bit FNV-1a, the checksum guarding snapshots against truncation and
/// bit rot. Not cryptographic — it detects corruption, not tampering.
pub(crate) fn fnv1a64(chunks: &[&[u8]]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &byte in *chunk {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

fn read_exact_or<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<(), ArcsError> {
    r.read_exact(buf).map_err(|e| ArcsError::Checkpoint {
        message: format!("truncated while reading {what}: {e}"),
    })
}

fn read_u64<R: Read>(r: &mut R, what: &str) -> Result<u64, ArcsError> {
    let mut buf = [0u8; 8];
    read_exact_or(r, &mut buf, what)?;
    Ok(u64::from_le_bytes(buf))
}

/// Per-cell, per-group tuple counts over a 2-D binned grid.
#[derive(Debug, Clone, PartialEq)]
pub struct BinArray {
    nx: usize,
    ny: usize,
    nseg: usize,
    counts: Vec<u32>,
    n_tuples: u64,
}

impl BinArray {
    /// Creates an empty `nx × ny` array for a criterion attribute with
    /// `nseg` groups.
    pub fn new(nx: usize, ny: usize, nseg: usize) -> Result<Self, ArcsError> {
        if nx == 0 || ny == 0 {
            return Err(ArcsError::InvalidConfig(format!(
                "bin array dimensions must be positive, got {nx} x {ny}"
            )));
        }
        if nseg == 0 {
            return Err(ArcsError::InvalidConfig(
                "criterion attribute must have at least one group".into(),
            ));
        }
        let cells = nseg
            .checked_add(1)
            .and_then(|slots| nx.checked_mul(ny)?.checked_mul(slots))
            .filter(|&c| c <= isize::MAX as usize / std::mem::size_of::<u32>())
            .ok_or(ArcsError::GridTooLarge { nx, ny, nseg })?;
        // Reserve through the fallible path so an allocator refusal comes
        // back as a typed error instead of an abort.
        let mut counts = Vec::new();
        counts.try_reserve_exact(cells).map_err(|_| ArcsError::AllocationFailed {
            what: format!("{cells} bin array counters"),
        })?;
        counts.resize(cells, 0);
        Ok(BinArray {
            nx,
            ny,
            nseg,
            counts,
            n_tuples: 0,
        })
    }

    /// Number of x bins.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of y bins.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of criterion groups tracked.
    pub fn nseg(&self) -> usize {
        self.nseg
    }

    /// Total number of tuples added.
    pub fn n_tuples(&self) -> u64 {
        self.n_tuples
    }

    #[inline]
    fn base(&self, x: usize, y: usize) -> usize {
        (y * self.nx + x) * (self.nseg + 1)
    }

    /// Records one tuple falling in cell `(x, y)` with criterion group `g`.
    #[inline]
    pub fn add(&mut self, x: usize, y: usize, g: u32) {
        debug_assert!(x < self.nx && y < self.ny, "cell ({x}, {y}) out of bounds");
        debug_assert!((g as usize) < self.nseg, "group {g} out of range");
        let base = self.base(x, y);
        self.counts[base + g as usize] += 1;
        self.counts[base + self.nseg] += 1;
        self.n_tuples += 1;
    }

    /// Records one tuple that belongs to *no tracked group* — it counts
    /// toward the cell total (the confidence denominator) only. This is
    /// the paper's §3.1 memory-premium mode: "we can set nseg = 1 and
    /// maintain tuple counts for only the one value of the segmentation
    /// criteria we are interested in".
    #[inline]
    pub fn add_background(&mut self, x: usize, y: usize) {
        debug_assert!(x < self.nx && y < self.ny, "cell ({x}, {y}) out of bounds");
        let base = self.base(x, y);
        self.counts[base + self.nseg] += 1;
        self.n_tuples += 1;
    }

    /// Checked variant of [`add`](Self::add) for untrusted coordinates.
    pub fn try_add(&mut self, x: usize, y: usize, g: u32) -> Result<(), ArcsError> {
        if x >= self.nx || y >= self.ny {
            return Err(ArcsError::OutOfBounds {
                what: format!("cell ({x}, {y}) in {}x{} bin array", self.nx, self.ny),
            });
        }
        if g as usize >= self.nseg {
            return Err(ArcsError::OutOfBounds {
                what: format!("group {g} with nseg {}", self.nseg),
            });
        }
        self.add(x, y, g);
        Ok(())
    }

    /// Count of tuples in cell `(x, y)` belonging to group `g`.
    #[inline]
    pub fn group_count(&self, x: usize, y: usize, g: u32) -> u32 {
        self.counts[self.base(x, y) + g as usize]
    }

    /// Total count of tuples in cell `(x, y)`.
    #[inline]
    pub fn cell_total(&self, x: usize, y: usize) -> u32 {
        self.counts[self.base(x, y) + self.nseg]
    }

    /// Support of the rule `X = x ∧ Y = y ⇒ G = g`: the fraction of all
    /// tuples falling in the cell with that group (paper §3.2:
    /// `|(i,j,Gk)| / N`).
    #[inline]
    pub fn support(&self, x: usize, y: usize, g: u32) -> f64 {
        if self.n_tuples == 0 {
            return 0.0;
        }
        self.group_count(x, y, g) as f64 / self.n_tuples as f64
    }

    /// Confidence of the rule `X = x ∧ Y = y ⇒ G = g`: the fraction of the
    /// cell's tuples with that group (paper §3.2: `|(i,j,Gk)| / |(i,j)|`).
    #[inline]
    pub fn confidence(&self, x: usize, y: usize, g: u32) -> f64 {
        let total = self.cell_total(x, y);
        if total == 0 {
            return 0.0;
        }
        self.group_count(x, y, g) as f64 / total as f64
    }

    /// Total tuples of group `g` across the whole array (the marginal
    /// `P(G = g) · N` used by interest measures).
    pub fn group_total(&self, g: u32) -> u64 {
        debug_assert!((g as usize) < self.nseg);
        let mut total = 0u64;
        for y in 0..self.ny {
            for x in 0..self.nx {
                total += self.group_count(x, y, g) as u64;
            }
        }
        total
    }

    /// Iterates over occupied cells (total > 0) as `(x, y)`.
    pub fn occupied_cells(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.ny).flat_map(move |y| {
            (0..self.nx).filter_map(move |x| (self.cell_total(x, y) > 0).then_some((x, y)))
        })
    }

    /// Adds every count of `other` into `self`. Dimensions must match.
    ///
    /// Counts are element-wise `u32` sums, so merging the per-shard
    /// arrays of a parallel binning run is commutative and associative:
    /// any merge order yields an array bit-identical to a sequential
    /// single-threaded pass over the same tuples. Overflowing a cell
    /// counter is reported rather than wrapped.
    pub fn merge(&mut self, other: &BinArray) -> Result<(), ArcsError> {
        if self.nx != other.nx || self.ny != other.ny || self.nseg != other.nseg {
            return Err(ArcsError::InvalidConfig(format!(
                "cannot merge {}x{}x{} bin array into {}x{}x{}",
                other.nx, other.ny, other.nseg, self.nx, self.ny, self.nseg
            )));
        }
        for (slot, &add) in self.counts.iter_mut().zip(&other.counts) {
            *slot = slot.checked_add(add).ok_or_else(|| {
                ArcsError::InvalidConfig("cell counter overflow while merging bin arrays".into())
            })?;
        }
        self.n_tuples += other.n_tuples;
        Ok(())
    }

    /// Returns a copy of the array downsampled to `new_nx × new_ny` bins:
    /// each source cell's counts are added into the target cell
    /// `(x · new_nx / nx, y · new_ny / ny)`, so column/row sums and the
    /// total tuple count are preserved exactly. This is the resource
    /// governor's per-request coarsening ladder applied *after* binning —
    /// a query under a memory budget trades grid resolution for footprint
    /// without re-reading any data.
    pub fn coarsened(&self, new_nx: usize, new_ny: usize) -> Result<BinArray, ArcsError> {
        if new_nx == 0 || new_ny == 0 || new_nx > self.nx || new_ny > self.ny {
            return Err(ArcsError::InvalidConfig(format!(
                "cannot coarsen a {}x{} bin array to {new_nx}x{new_ny}",
                self.nx, self.ny
            )));
        }
        let mut out = BinArray::new(new_nx, new_ny, self.nseg)?;
        let slots = self.nseg + 1;
        for y in 0..self.ny {
            let ty = y * new_ny / self.ny;
            for x in 0..self.nx {
                let tx = x * new_nx / self.nx;
                let src = self.base(x, y);
                let dst = out.base(tx, ty);
                for slot in 0..slots {
                    let sum = out.counts[dst + slot]
                        .checked_add(self.counts[src + slot])
                        .ok_or_else(|| {
                            ArcsError::InvalidConfig(
                                "cell counter overflow while coarsening a bin array".into(),
                            )
                        })?;
                    out.counts[dst + slot] = sum;
                }
            }
        }
        out.n_tuples = self.n_tuples;
        Ok(out)
    }

    /// FNV-1a checksum over the array's canonical serialised form
    /// (dimensions, tuple count, and every cell counter). Two arrays have
    /// equal checksums iff their snapshots are byte-identical — the
    /// determinism suite uses this to assert parallel ≡ sequential.
    pub fn checksum(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.memory_bytes() + 48);
        self.write_to(&mut bytes).expect("Vec write cannot fail");
        fnv1a64(&[&bytes])
    }

    /// Heap memory used by the count array, in bytes. The paper's
    /// constant-memory claim (§4.3) rests on this being independent of the
    /// number of tuples.
    pub fn memory_bytes(&self) -> usize {
        self.counts.len() * std::mem::size_of::<u32>()
    }

    /// Serialises the array into `writer` in the versioned snapshot
    /// format: an 8-byte magic+version header, the dimensions and tuple
    /// count as little-endian `u64`s, the raw counts as little-endian
    /// `u32`s, and a trailing FNV-1a checksum over everything before it.
    pub fn write_to<W: Write>(&self, writer: &mut W) -> Result<(), ArcsError> {
        let mut header = Vec::with_capacity(8 + 4 * 8);
        header.extend_from_slice(&SNAPSHOT_MAGIC);
        header.extend_from_slice(&(self.nx as u64).to_le_bytes());
        header.extend_from_slice(&(self.ny as u64).to_le_bytes());
        header.extend_from_slice(&(self.nseg as u64).to_le_bytes());
        header.extend_from_slice(&self.n_tuples.to_le_bytes());
        let mut payload = Vec::with_capacity(self.counts.len() * 4);
        for &count in &self.counts {
            payload.extend_from_slice(&count.to_le_bytes());
        }
        let checksum = fnv1a64(&[&header, &payload]);
        writer.write_all(&header)?;
        writer.write_all(&payload)?;
        writer.write_all(&checksum.to_le_bytes())?;
        Ok(())
    }

    /// Deserialises an array written by [`BinArray::write_to`],
    /// verifying the magic, format version, dimensions, and checksum.
    /// Corruption or version mismatch reports [`ArcsError::Checkpoint`].
    pub fn read_from<R: Read>(reader: &mut R) -> Result<Self, ArcsError> {
        let mut magic = [0u8; 8];
        read_exact_or(reader, &mut magic, "snapshot header")?;
        if magic[..7] != SNAPSHOT_MAGIC[..7] {
            return Err(ArcsError::Checkpoint {
                message: "not a BinArray snapshot (bad magic)".into(),
            });
        }
        if magic[7] != SNAPSHOT_MAGIC[7] {
            return Err(ArcsError::Checkpoint {
                message: format!(
                    "unsupported snapshot version {} (this build reads version {})",
                    magic[7], SNAPSHOT_MAGIC[7]
                ),
            });
        }
        let nx = read_u64(reader, "nx")? as usize;
        let ny = read_u64(reader, "ny")? as usize;
        let nseg = read_u64(reader, "nseg")? as usize;
        let n_tuples = read_u64(reader, "n_tuples")?;
        // Cap the allocation a header can request *before* trusting it —
        // the checksum is only verifiable after the payload is read, so a
        // corrupt header must not be able to demand terabytes first.
        const MAX_CELLS: u64 = 1 << 28;
        let cells = (nx as u64)
            .saturating_mul(ny as u64)
            .saturating_mul(nseg as u64 + 1);
        if cells > MAX_CELLS {
            return Err(ArcsError::Checkpoint {
                message: format!(
                    "snapshot header requests {cells} counters (cap {MAX_CELLS}); refusing"
                ),
            });
        }
        // Re-validate dimensions through the constructor so a corrupt
        // header cannot request an absurd allocation unchecked.
        let mut array = BinArray::new(nx, ny, nseg).map_err(|e| ArcsError::Checkpoint {
            message: format!("snapshot header holds invalid dimensions: {e}"),
        })?;
        array.n_tuples = n_tuples;
        let mut payload = vec![0u8; array.counts.len() * 4];
        read_exact_or(reader, &mut payload, "count payload")?;
        for (slot, chunk) in array.counts.iter_mut().zip(payload.chunks_exact(4)) {
            *slot = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        let stored = read_u64(reader, "checksum")?;
        let mut header = Vec::with_capacity(8 + 4 * 8);
        header.extend_from_slice(&magic);
        header.extend_from_slice(&(nx as u64).to_le_bytes());
        header.extend_from_slice(&(ny as u64).to_le_bytes());
        header.extend_from_slice(&(nseg as u64).to_le_bytes());
        header.extend_from_slice(&n_tuples.to_le_bytes());
        let computed = fnv1a64(&[&header, &payload]);
        if stored != computed {
            return Err(ArcsError::Checkpoint {
                message: format!(
                    "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                ),
            });
        }
        Ok(array)
    }

    /// Writes a snapshot to `path` atomically: the bytes land in a
    /// sibling temporary file first and replace `path` by rename, so a
    /// crash mid-write never leaves a half-written snapshot behind.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArcsError> {
        crate::faults::check("binarray.snapshot-write")?;
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        {
            let mut file = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            self.write_to(&mut file)?;
            file.flush()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a snapshot written by [`BinArray::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArcsError> {
        crate::faults::check("binarray.snapshot-read")?;
        let mut file = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(BinArray::new(0, 5, 2).is_err());
        assert!(BinArray::new(5, 0, 2).is_err());
        assert!(BinArray::new(5, 5, 0).is_err());
        // Checked sizing: overflow and unaddressable grids are typed
        // errors, not panics or wrapped allocations.
        for (nx, ny, nseg) in [
            (usize::MAX, 2, 2),
            (2, usize::MAX, 2),
            (2, 2, usize::MAX),
            (usize::MAX, usize::MAX, usize::MAX),
            (1 << 40, 1 << 30, 1),
        ] {
            let err = BinArray::new(nx, ny, nseg).unwrap_err();
            assert!(matches!(err, ArcsError::GridTooLarge { .. }), "{nx}x{ny}x{nseg}: {err:?}");
        }
        let ba = BinArray::new(3, 4, 2).unwrap();
        assert_eq!(ba.nx(), 3);
        assert_eq!(ba.ny(), 4);
        assert_eq!(ba.nseg(), 2);
        assert_eq!(ba.n_tuples(), 0);
        assert_eq!(ba.memory_bytes(), 3 * 4 * 3 * 4);
    }

    #[test]
    fn add_accumulates_counts() {
        let mut ba = BinArray::new(4, 4, 3).unwrap();
        ba.add(1, 2, 0);
        ba.add(1, 2, 0);
        ba.add(1, 2, 1);
        ba.add(3, 0, 2);
        assert_eq!(ba.group_count(1, 2, 0), 2);
        assert_eq!(ba.group_count(1, 2, 1), 1);
        assert_eq!(ba.group_count(1, 2, 2), 0);
        assert_eq!(ba.cell_total(1, 2), 3);
        assert_eq!(ba.cell_total(3, 0), 1);
        assert_eq!(ba.cell_total(0, 0), 0);
        assert_eq!(ba.n_tuples(), 4);
    }

    #[test]
    fn try_add_bounds_checks() {
        let mut ba = BinArray::new(2, 2, 2).unwrap();
        assert!(ba.try_add(0, 0, 0).is_ok());
        assert!(ba.try_add(2, 0, 0).is_err());
        assert!(ba.try_add(0, 2, 0).is_err());
        assert!(ba.try_add(0, 0, 2).is_err());
        assert_eq!(ba.n_tuples(), 1);
    }

    #[test]
    fn support_and_confidence() {
        let mut ba = BinArray::new(2, 2, 2).unwrap();
        // Cell (0,0): 3 tuples of group 0, 1 of group 1. Elsewhere: 6 more.
        for _ in 0..3 {
            ba.add(0, 0, 0);
        }
        ba.add(0, 0, 1);
        for _ in 0..6 {
            ba.add(1, 1, 1);
        }
        assert!((ba.support(0, 0, 0) - 0.3).abs() < 1e-12);
        assert!((ba.confidence(0, 0, 0) - 0.75).abs() < 1e-12);
        assert!((ba.confidence(0, 0, 1) - 0.25).abs() < 1e-12);
        assert_eq!(ba.support(1, 0, 0), 0.0);
        assert_eq!(ba.confidence(1, 0, 0), 0.0);
    }

    #[test]
    fn empty_array_ratios_are_zero() {
        let ba = BinArray::new(2, 2, 2).unwrap();
        assert_eq!(ba.support(0, 0, 0), 0.0);
        assert_eq!(ba.confidence(0, 0, 0), 0.0);
    }

    #[test]
    fn occupied_cells_iterates_only_nonzero() {
        let mut ba = BinArray::new(3, 3, 1).unwrap();
        ba.add(0, 0, 0);
        ba.add(2, 1, 0);
        ba.add(2, 1, 0);
        let cells: Vec<_> = ba.occupied_cells().collect();
        assert_eq!(cells, vec![(0, 0), (2, 1)]);
    }

    fn populated_array() -> BinArray {
        let mut ba = BinArray::new(7, 5, 3).unwrap();
        for i in 0..1_000u32 {
            ba.add((i % 7) as usize, (i % 5) as usize, i % 3);
        }
        for i in 0..37 {
            ba.add_background((i % 7) as usize, (i % 5) as usize);
        }
        ba
    }

    #[test]
    fn snapshot_roundtrip_is_bit_identical() {
        let ba = populated_array();
        let mut bytes = Vec::new();
        ba.write_to(&mut bytes).unwrap();
        let back = BinArray::read_from(&mut &bytes[..]).unwrap();
        assert_eq!(ba, back);
        // Re-serialising the loaded array reproduces the same bytes.
        let mut bytes2 = Vec::new();
        back.write_to(&mut bytes2).unwrap();
        assert_eq!(bytes, bytes2);
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let dir = std::env::temp_dir().join("arcs-binarray-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        let ba = populated_array();
        ba.save(&path).unwrap();
        let back = BinArray::load(&path).unwrap();
        assert_eq!(ba, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let ba = populated_array();
        let mut bytes = Vec::new();
        ba.write_to(&mut bytes).unwrap();

        // Flip one payload byte: checksum must catch it.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        let err = BinArray::read_from(&mut &corrupt[..]).unwrap_err();
        assert!(matches!(err, ArcsError::Checkpoint { .. }), "{err:?}");

        // Truncation.
        let err = BinArray::read_from(&mut &bytes[..bytes.len() - 9]).unwrap_err();
        assert!(matches!(err, ArcsError::Checkpoint { .. }));

        // Wrong magic.
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        let err = BinArray::read_from(&mut &bad_magic[..]).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");

        // Future format version.
        let mut future = bytes.clone();
        future[7] = 2;
        let err = BinArray::read_from(&mut &future[..]).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        // Absurd header dimensions are refused before allocation.
        let mut huge = bytes;
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = BinArray::read_from(&mut &huge[..]).unwrap_err();
        assert!(matches!(err, ArcsError::Checkpoint { .. }));
    }

    #[test]
    fn merge_is_equivalent_to_sequential_adds() {
        let mut whole = BinArray::new(4, 3, 2).unwrap();
        let mut left = BinArray::new(4, 3, 2).unwrap();
        let mut right = BinArray::new(4, 3, 2).unwrap();
        for i in 0..200u32 {
            let (x, y, g) = ((i % 4) as usize, (i % 3) as usize, i % 2);
            whole.add(x, y, g);
            if i < 80 {
                left.add(x, y, g);
            } else {
                right.add(x, y, g);
            }
        }
        whole.add_background(0, 0);
        left.add_background(0, 0);
        left.merge(&right).unwrap();
        assert_eq!(left, whole);
        assert_eq!(left.checksum(), whole.checksum());
    }

    #[test]
    fn merge_rejects_dimension_mismatch() {
        let mut a = BinArray::new(4, 3, 2).unwrap();
        let b = BinArray::new(4, 3, 3).unwrap();
        assert!(matches!(a.merge(&b), Err(ArcsError::InvalidConfig(_))));
        let c = BinArray::new(3, 4, 2).unwrap();
        assert!(matches!(a.merge(&c), Err(ArcsError::InvalidConfig(_))));
    }

    #[test]
    fn merge_reports_counter_overflow() {
        let mut a = BinArray::new(1, 1, 1).unwrap();
        let mut b = BinArray::new(1, 1, 1).unwrap();
        for _ in 0..3 {
            a.add(0, 0, 0);
            b.add(0, 0, 0);
        }
        // Force the cell total to the brink of overflow.
        a.counts[1] = u32::MAX - 1;
        assert!(matches!(a.merge(&b), Err(ArcsError::InvalidConfig(_))));
    }

    #[test]
    fn coarsened_preserves_totals_and_validates() {
        let ba = populated_array(); // 7 x 5, 3 groups, N = 1037
        let coarse = ba.coarsened(3, 2).unwrap();
        assert_eq!(coarse.nx(), 3);
        assert_eq!(coarse.ny(), 2);
        assert_eq!(coarse.nseg(), ba.nseg());
        assert_eq!(coarse.n_tuples(), ba.n_tuples());
        for g in 0..ba.nseg() as u32 {
            assert_eq!(coarse.group_total(g), ba.group_total(g), "group {g}");
        }
        let cell_sum = |a: &BinArray| -> u64 {
            (0..a.ny())
                .flat_map(|y| (0..a.nx()).map(move |x| (x, y)))
                .map(|(x, y)| a.cell_total(x, y) as u64)
                .sum()
        };
        assert_eq!(cell_sum(&coarse), cell_sum(&ba));

        // Identity coarsening is a plain copy.
        let same = ba.coarsened(7, 5).unwrap();
        assert_eq!(same, ba);

        // Upsampling and empty targets are refused.
        assert!(ba.coarsened(8, 5).is_err());
        assert!(ba.coarsened(7, 6).is_err());
        assert!(ba.coarsened(0, 5).is_err());
        assert!(ba.coarsened(7, 0).is_err());
    }

    #[test]
    fn checksum_distinguishes_different_contents() {
        let mut a = populated_array();
        let b = populated_array();
        assert_eq!(a.checksum(), b.checksum());
        a.add(0, 0, 0);
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn memory_independent_of_tuples() {
        let mut ba = BinArray::new(50, 50, 2).unwrap();
        let before = ba.memory_bytes();
        for i in 0..100_000u32 {
            ba.add((i % 50) as usize, (i as usize / 50) % 50, i % 2);
        }
        assert_eq!(ba.memory_bytes(), before);
        assert_eq!(ba.n_tuples(), 100_000);
    }
}
