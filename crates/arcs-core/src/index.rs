//! Output-sensitive re-mining: the occupancy index and the delta miner.
//!
//! The paper's §3.2 headline is that thresholds can change and rules be
//! re-mined "without touching the source data"; the §3.7 optimizer leans
//! on that by re-mining at many `(support, confidence)` lattice points.
//! A naive re-mine still scans all `nx · ny` bin-array cells per point,
//! although only the *occupied* cells can ever produce a rule. This
//! module makes the hot loop output-sensitive:
//!
//! * [`OccupancyIndex`] — built once per `BinArray`, a CSR-style list of
//!   the occupied cells plus, per criterion group, that group's cells
//!   sorted by support count and by confidence. Re-mining then iterates
//!   occupied cells only.
//! * [`DeltaMiner`] — an incremental re-miner holding the qualifying-cell
//!   grid for its current thresholds. Moving to new thresholds touches
//!   only the cells whose support count or confidence lies between the
//!   old and new cut — the cells that can possibly change qualification —
//!   so a Figure 10 threshold sweep pays per *crossing*, not per cell.
//!
//! ### Invalidation contract
//!
//! The index snapshots the array's per-cell counts; it is valid for as
//! long as the array is not mutated. [`Session`](crate::session::Session)
//! never modifies its array after construction, so a session-held index
//! lives for the session. Callers mutating an array (e.g. via
//! [`BinArray::merge`](crate::binarray::BinArray::merge)) must rebuild
//! the index; [`OccupancyIndex::matches`] is a cheap structural guard
//! (dimensions and tuple count) against gross mismatches, not a content
//! check.

// Public-API paths must fail with typed errors, never panic.
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]

use crate::binarray::BinArray;
use crate::engine::{min_support_count_for, Thresholds};
use crate::error::ArcsError;
use crate::grid::Grid;

/// One occupied cell of a criterion group, snapshotted from the array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupCell {
    /// x bin index.
    pub x: usize,
    /// y bin index.
    pub y: usize,
    /// Group tuple count in the cell (`> 0` by construction).
    pub count: u32,
    /// Total tuple count in the cell (all groups), `>= count`.
    pub total: u32,
    /// Cell confidence `count / total`, precomputed with the same `f64`
    /// expression the reference miner uses.
    pub confidence: f64,
}

/// Per-group slice of the index: the group's occupied cells in row-major
/// (mining emission) order, plus permutations sorted by support count and
/// by confidence for threshold-crossing range queries.
#[derive(Debug, Clone, PartialEq)]
struct GroupIndex {
    /// Cells with `count > 0`, row-major (y outer, x inner).
    cells: Vec<GroupCell>,
    /// Indices into `cells`, ascending by `count` (stable: row-major ties).
    by_count: Vec<u32>,
    /// Indices into `cells`, ascending by `confidence` (stable ties).
    by_conf: Vec<u32>,
    /// Total group tuples (the group's base-rate numerator).
    group_total: u64,
}

/// A one-time index of the occupied cells of a [`BinArray`] — see the
/// module docs for the contract. Build cost is one scan of the array plus
/// `O(m log m)` over the `m` occupied group cells; every subsequent
/// re-mine is proportional to occupied (or crossing) cells only.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyIndex {
    nx: usize,
    ny: usize,
    nseg: usize,
    n_tuples: u64,
    /// Occupied cells (any group), row-major.
    occupied: Vec<(usize, usize)>,
    groups: Vec<GroupIndex>,
}

impl OccupancyIndex {
    /// Builds the index with one row-major scan of `array`.
    pub fn build(array: &BinArray) -> Self {
        let nseg = array.nseg();
        let mut occupied = Vec::new();
        let mut groups: Vec<GroupIndex> = (0..nseg)
            .map(|_| GroupIndex {
                cells: Vec::new(),
                by_count: Vec::new(),
                by_conf: Vec::new(),
                group_total: 0,
            })
            .collect();
        for y in 0..array.ny() {
            for x in 0..array.nx() {
                let total = array.cell_total(x, y);
                if total == 0 {
                    continue;
                }
                occupied.push((x, y));
                for (g, group) in groups.iter_mut().enumerate() {
                    let count = array.group_count(x, y, g as u32);
                    if count == 0 {
                        continue;
                    }
                    group.group_total += count as u64;
                    group.cells.push(GroupCell {
                        x,
                        y,
                        count,
                        total,
                        confidence: count as f64 / total as f64,
                    });
                }
            }
        }
        for group in &mut groups {
            let mut by_count: Vec<u32> = (0..group.cells.len() as u32).collect();
            // Stable sorts keep ties in row-major order, so walks over the
            // permutations are deterministic.
            by_count.sort_by_key(|&i| group.cells[i as usize].count);
            let mut by_conf: Vec<u32> = (0..group.cells.len() as u32).collect();
            by_conf.sort_by(|&a, &b| {
                group.cells[a as usize]
                    .confidence
                    .total_cmp(&group.cells[b as usize].confidence)
            });
            group.by_count = by_count;
            group.by_conf = by_conf;
        }
        OccupancyIndex {
            nx: array.nx(),
            ny: array.ny(),
            nseg,
            n_tuples: array.n_tuples(),
            occupied,
            groups,
        }
    }

    /// Grid width the index was built for.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height the index was built for.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of criterion groups the index was built for.
    pub fn nseg(&self) -> usize {
        self.nseg
    }

    /// Tuple count of the array the index was built from.
    pub fn n_tuples(&self) -> u64 {
        self.n_tuples
    }

    /// Occupied cells (any group), row-major.
    pub fn occupied(&self) -> &[(usize, usize)] {
        &self.occupied
    }

    /// The occupied cells of group `gk` in row-major order, or an empty
    /// slice for an out-of-range group.
    pub fn group_cells(&self, gk: u32) -> &[GroupCell] {
        self.groups.get(gk as usize).map_or(&[], |g| &g.cells)
    }

    /// Total tuples of group `gk` (0 for an out-of-range group).
    pub fn group_total(&self, gk: u32) -> u64 {
        self.groups.get(gk as usize).map_or(0, |g| g.group_total)
    }

    /// Cheap structural staleness guard: whether `array` has the same
    /// shape and tuple count the index was built from. Does **not**
    /// detect in-place count edits at constant size — see the module-level
    /// invalidation contract.
    pub fn matches(&self, array: &BinArray) -> bool {
        self.nx == array.nx()
            && self.ny == array.ny()
            && self.nseg == array.nseg()
            && self.n_tuples == array.n_tuples()
    }

    fn group(&self, gk: u32) -> Option<&GroupIndex> {
        self.groups.get(gk as usize)
    }
}

/// An incremental re-miner for one criterion group: owns the qualifying
/// cell [`Grid`] at its current thresholds and updates it in place when
/// the thresholds move, touching only cells whose support count or
/// confidence lies between the old and new cuts.
///
/// The very first [`update`](DeltaMiner::update) fills the grid from the
/// index's by-count suffix (still output-sensitive: only cells at or
/// above the support cut are visited).
#[derive(Debug, Clone)]
pub struct DeltaMiner {
    gk: u32,
    grid: Grid,
    /// `(min_count, min_confidence)` the grid currently reflects.
    current: Option<(u64, f64)>,
}

impl DeltaMiner {
    /// Creates a miner for group `gk` with an empty grid sized to `index`.
    pub fn new(index: &OccupancyIndex, gk: u32) -> Result<Self, ArcsError> {
        Ok(DeltaMiner {
            gk,
            grid: Grid::new(index.nx, index.ny)?,
            current: None,
        })
    }

    /// The qualifying-cell grid at the thresholds of the last
    /// [`update`](DeltaMiner::update) (empty before the first).
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The group this miner mines.
    pub fn gk(&self) -> u32 {
        self.gk
    }

    /// Moves the grid to `thresholds`, returning
    /// `(cells_visited, cells_changed)`: how many indexed cells were
    /// examined and how many actually flipped qualification. The resulting
    /// grid is bit-identical to a from-scratch
    /// [`rule_grid`](crate::engine::rule_grid) at the same thresholds.
    pub fn update(&mut self, index: &OccupancyIndex, thresholds: Thresholds) -> (u64, u64) {
        debug_assert!(
            index.nx == self.grid.width() && index.ny == self.grid.height(),
            "delta miner used with a foreign index"
        );
        let new_count = min_support_count_for(index.n_tuples, thresholds.min_support);
        let new_conf = thresholds.min_confidence;
        let Some(group) = index.group(self.gk) else {
            // Out-of-range group: nothing can qualify.
            self.grid.reset();
            self.current = Some((new_count, new_conf));
            return (0, 0);
        };
        let mut visited = 0u64;
        let mut changed = 0u64;
        match self.current {
            None => {
                self.grid.reset();
                // First fill: the by-count suffix at or above the support
                // cut is exactly the support-qualifying cell set.
                let start = group.by_count.partition_point(|&i| {
                    (group.cells[i as usize].count as u64) < new_count
                });
                for &i in &group.by_count[start..] {
                    let cell = group.cells[i as usize];
                    visited += 1;
                    if cell.confidence >= new_conf {
                        self.grid.set(cell.x, cell.y);
                        changed += 1;
                    }
                }
            }
            Some((old_count, old_conf)) => {
                // Qualification is a conjunction of two monotone
                // predicates; a cell can flip only if its count lies in
                // [min, max) of the count cuts or its confidence lies in
                // [min, max) of the confidence cuts. Re-deriving the full
                // predicate for every touched cell keeps the update
                // idempotent (cells in both ranges are simply examined
                // twice).
                let (c_lo, c_hi) = (old_count.min(new_count), old_count.max(new_count));
                let start = group
                    .by_count
                    .partition_point(|&i| (group.cells[i as usize].count as u64) < c_lo);
                let end = group
                    .by_count
                    .partition_point(|&i| (group.cells[i as usize].count as u64) < c_hi);
                for &i in &group.by_count[start..end] {
                    visited += 1;
                    changed += self.requalify(group.cells[i as usize], new_count, new_conf);
                }
                let (f_lo, f_hi) = (old_conf.min(new_conf), old_conf.max(new_conf));
                let start = group
                    .by_conf
                    .partition_point(|&i| group.cells[i as usize].confidence < f_lo);
                let end = group
                    .by_conf
                    .partition_point(|&i| group.cells[i as usize].confidence < f_hi);
                for &i in &group.by_conf[start..end] {
                    visited += 1;
                    changed += self.requalify(group.cells[i as usize], new_count, new_conf);
                }
            }
        }
        self.current = Some((new_count, new_conf));
        (visited, changed)
    }

    /// Recomputes one cell's qualification from scratch and applies it,
    /// returning 1 when the stored bit flipped.
    fn requalify(&mut self, cell: GroupCell, min_count: u64, min_conf: f64) -> u64 {
        let qualifies = (cell.count as u64) >= min_count && cell.confidence >= min_conf;
        let was = self.grid.get(cell.x, cell.y);
        if qualifies == was {
            return 0;
        }
        if qualifies {
            self.grid.set(cell.x, cell.y);
        } else {
            self.grid.clear(cell.x, cell.y);
        }
        1
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::engine::rule_grid;

    /// 4x4 array, 2 groups (same shape as the engine's demo array).
    fn demo_array() -> BinArray {
        let mut ba = BinArray::new(4, 4, 2).unwrap();
        for _ in 0..40 {
            ba.add(0, 0, 0);
        }
        for _ in 0..10 {
            ba.add(0, 0, 1);
        }
        for _ in 0..45 {
            ba.add(1, 0, 0);
        }
        for _ in 0..5 {
            ba.add(1, 0, 1);
        }
        for _ in 0..5 {
            ba.add(2, 2, 0);
        }
        for _ in 0..95 {
            ba.add(2, 2, 1);
        }
        for _ in 0..10 {
            ba.add(3, 3, 0);
        }
        ba // N = 210
    }

    #[test]
    fn index_snapshots_occupied_cells() {
        let ba = demo_array();
        let index = OccupancyIndex::build(&ba);
        assert!(index.matches(&ba));
        assert_eq!(index.occupied(), &[(0, 0), (1, 0), (2, 2), (3, 3)]);
        let g0 = index.group_cells(0);
        assert_eq!(g0.len(), 4);
        assert_eq!(g0[0].count, 40);
        assert_eq!(g0[0].total, 50);
        assert_eq!(index.group_total(0), 100);
        assert_eq!(index.group_total(1), 110);
        // Group 1 occupies only three cells — (3,3) is pure group 0.
        assert_eq!(index.group_cells(1).len(), 3);
        // Out-of-range groups are empty, not a panic.
        assert!(index.group_cells(7).is_empty());
        assert_eq!(index.group_total(7), 0);
    }

    #[test]
    fn first_update_matches_rule_grid() {
        let ba = demo_array();
        let index = OccupancyIndex::build(&ba);
        for (s, c) in [(0.0, 0.0), (0.1, 0.5), (0.04, 0.0), (0.0, 0.9), (1.0, 1.0)] {
            let t = Thresholds::new(s, c).unwrap();
            let mut miner = DeltaMiner::new(&index, 0).unwrap();
            let (visited, _) = miner.update(&index, t);
            assert_eq!(miner.grid(), &rule_grid(&ba, 0, t).unwrap(), "({s}, {c})");
            assert!(visited <= 4, "visited {visited} of 4 occupied cells");
        }
    }

    #[test]
    fn delta_walk_stays_bit_identical_and_output_sensitive() {
        let ba = demo_array();
        let index = OccupancyIndex::build(&ba);
        let mut miner = DeltaMiner::new(&index, 0).unwrap();
        let walk = [
            (0.0, 0.0),
            (0.04, 0.0),
            (0.04, 0.9),
            (0.2, 0.9),
            (0.0, 0.0),
            (1.0, 1.0),
        ];
        for (s, c) in walk {
            let t = Thresholds::new(s, c).unwrap();
            let (visited, changed) = miner.update(&index, t);
            assert_eq!(miner.grid(), &rule_grid(&ba, 0, t).unwrap(), "({s}, {c})");
            assert!(changed <= visited);
        }
        // An unchanged threshold pair touches nothing at all.
        let t = Thresholds::new(1.0, 1.0).unwrap();
        assert_eq!(miner.update(&index, t), (0, 0));
    }

    #[test]
    fn empty_array_index_is_empty() {
        let ba = BinArray::new(3, 3, 2).unwrap();
        let index = OccupancyIndex::build(&ba);
        assert!(index.occupied().is_empty());
        let mut miner = DeltaMiner::new(&index, 0).unwrap();
        let t = Thresholds::new(0.0, 0.0).unwrap();
        assert_eq!(miner.update(&index, t), (0, 0));
        assert!(miner.grid().is_empty());
    }
}
