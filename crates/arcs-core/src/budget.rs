//! Resource governor: memory budgeting and graceful degradation.
//!
//! The paper's premise is a one-pass system whose memory footprint is the
//! `BinArray`, independent of the number of tuples (§4.3). That only
//! holds if the *grid itself* is admitted responsibly: `nx * ny *
//! (nseg + 1)` counters can silently dwarf a machine when bin counts or
//! group cardinality are data-driven. This module provides
//!
//! * checked sizing arithmetic ([`grid_bytes`]) that reports
//!   [`ArcsError::GridTooLarge`] instead of overflowing,
//! * an admission check ([`admit`]) against a configurable byte budget,
//!   and
//! * a degradation planner ([`plan_bins`]) that coarsens the requested
//!   grid — halving the larger axis, one step at a time — until it fits
//!   the budget, mirroring the pipeline's existing threshold degradation
//!   ladder: a coarser answer beats an OOM abort.
//!
//! The budget governs the dominant allocation (the `BinArray` counters);
//! scratch grids and per-worker shards are small multiples of it and are
//! covered by the same admission decision.

use crate::error::ArcsError;

/// Coarsest acceptable per-axis bin count: below 2 bins an axis can no
/// longer distinguish *any* structure, so the planner refuses to go
/// further and reports [`ArcsError::BudgetExceeded`] instead.
pub const MIN_BINS: usize = 2;

/// Bytes of counter storage a [`BinArray`](crate::BinArray) with the
/// given dimensions would allocate: `nx * ny * (nseg + 1)` cells of
/// `u32`. All arithmetic is checked; overflow reports
/// [`ArcsError::GridTooLarge`].
pub fn grid_bytes(nx: usize, ny: usize, nseg: usize) -> Result<usize, ArcsError> {
    let too_large = || ArcsError::GridTooLarge { nx, ny, nseg };
    nseg.checked_add(1)
        .and_then(|slots| nx.checked_mul(ny)?.checked_mul(slots))
        .and_then(|cells| cells.checked_mul(std::mem::size_of::<u32>()))
        .ok_or_else(too_large)
}

/// Admission check before a large allocation: `Ok` when `required_bytes`
/// fits in `budget_bytes` (or no budget is configured), otherwise
/// [`ArcsError::BudgetExceeded`].
pub fn admit(required_bytes: usize, budget_bytes: Option<usize>) -> Result<(), ArcsError> {
    match budget_bytes {
        Some(budget) if required_bytes > budget => Err(ArcsError::BudgetExceeded {
            required_bytes,
            budget_bytes: budget,
        }),
        _ => Ok(()),
    }
}

/// The outcome of planning a grid under a memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinPlan {
    /// Planned number of x bins (≤ the requested count).
    pub nx: usize,
    /// Planned number of y bins (≤ the requested count).
    pub ny: usize,
    /// How many halving steps were taken; `0` means the request was
    /// admitted as-is.
    pub coarsening_steps: u32,
}

impl BinPlan {
    /// `true` when the planner had to coarsen the requested grid.
    pub fn degraded(&self) -> bool {
        self.coarsening_steps > 0
    }
}

/// Plans bin counts for an `nx × ny` grid with `nseg` groups under an
/// optional memory budget.
///
/// With no budget the request is returned unchanged (sizing is still
/// checked, so an unrepresentable grid reports
/// [`ArcsError::GridTooLarge`]). With a budget, the larger axis is halved
/// — deterministically, ties going to x — until the counter storage fits,
/// with a floor of [`MIN_BINS`] per axis. If even the `MIN_BINS ×
/// MIN_BINS` grid exceeds the budget, the request is refused with
/// [`ArcsError::BudgetExceeded`]: no useful grid exists at that size.
pub fn plan_bins(
    nx: usize,
    ny: usize,
    nseg: usize,
    budget_bytes: Option<usize>,
) -> Result<BinPlan, ArcsError> {
    let Some(budget) = budget_bytes else {
        grid_bytes(nx, ny, nseg)?;
        return Ok(BinPlan { nx, ny, coarsening_steps: 0 });
    };
    let mut plan = BinPlan { nx, ny, coarsening_steps: 0 };
    loop {
        // An overflowing size certainly exceeds any usize budget: keep
        // coarsening rather than bailing out early.
        let fits = matches!(grid_bytes(plan.nx, plan.ny, nseg), Ok(bytes) if bytes <= budget);
        if fits {
            return Ok(plan);
        }
        if plan.nx <= MIN_BINS && plan.ny <= MIN_BINS {
            let required_bytes = grid_bytes(MIN_BINS, MIN_BINS, nseg)?;
            return Err(ArcsError::BudgetExceeded { required_bytes, budget_bytes: budget });
        }
        if plan.nx >= plan.ny {
            plan.nx = (plan.nx / 2).max(MIN_BINS);
        } else {
            plan.ny = (plan.ny / 2).max(MIN_BINS);
        }
        plan.coarsening_steps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_bytes_is_checked() {
        assert_eq!(grid_bytes(50, 50, 1).unwrap(), 50 * 50 * 2 * 4);
        let err = grid_bytes(usize::MAX, usize::MAX, 3).unwrap_err();
        assert!(matches!(err, ArcsError::GridTooLarge { .. }), "{err:?}");
        let err = grid_bytes(1, 1, usize::MAX).unwrap_err();
        assert!(matches!(err, ArcsError::GridTooLarge { .. }), "{err:?}");
    }

    #[test]
    fn admit_respects_budget() {
        assert!(admit(1024, None).is_ok());
        assert!(admit(1024, Some(1024)).is_ok());
        let err = admit(1025, Some(1024)).unwrap_err();
        assert!(
            matches!(err, ArcsError::BudgetExceeded { required_bytes: 1025, budget_bytes: 1024 }),
            "{err:?}"
        );
    }

    #[test]
    fn plan_without_budget_is_identity() {
        let plan = plan_bins(50, 50, 2, None).unwrap();
        assert_eq!(plan, BinPlan { nx: 50, ny: 50, coarsening_steps: 0 });
        assert!(!plan.degraded());
        assert!(plan_bins(usize::MAX, 2, 2, None).is_err());
    }

    #[test]
    fn plan_halves_larger_axis_until_fit() {
        // 50x50 with 1 group = 20_000 bytes; budget 6_000 forces halving.
        let plan = plan_bins(50, 50, 1, Some(6_000)).unwrap();
        assert!(plan.degraded());
        assert!(grid_bytes(plan.nx, plan.ny, 1).unwrap() <= 6_000);
        // Halving is deterministic: 50x50 -> 25x50 -> 25x25 (fits: 5000).
        assert_eq!((plan.nx, plan.ny), (25, 25));
        assert_eq!(plan.coarsening_steps, 2);
    }

    #[test]
    fn plan_is_deterministic_and_tie_breaks_to_x() {
        let a = plan_bins(64, 64, 3, Some(10_000)).unwrap();
        let b = plan_bins(64, 64, 3, Some(10_000)).unwrap();
        assert_eq!(a, b);
        // 8x8 with 1 group = 512 bytes; a 511-byte budget forces exactly
        // one halving, and the tie goes to the x axis.
        let one = plan_bins(8, 8, 1, Some(511)).unwrap();
        assert_eq!(one, BinPlan { nx: 4, ny: 8, coarsening_steps: 1 });
    }

    #[test]
    fn plan_refuses_impossible_budget() {
        let err = plan_bins(50, 50, 4, Some(8)).unwrap_err();
        match err {
            ArcsError::BudgetExceeded { required_bytes, budget_bytes } => {
                assert_eq!(required_bytes, grid_bytes(MIN_BINS, MIN_BINS, 4).unwrap());
                assert_eq!(budget_bytes, 8);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn plan_floors_at_min_bins() {
        // Budget admits exactly the 2x2 grid.
        let floor = grid_bytes(MIN_BINS, MIN_BINS, 1).unwrap();
        let plan = plan_bins(1000, 1000, 1, Some(floor)).unwrap();
        assert_eq!((plan.nx, plan.ny), (MIN_BINS, MIN_BINS));
        assert!(plan.coarsening_steps > 0);
    }
}
