//! Grid smoothing (paper §3.4, Figure 7).
//!
//! Mined-rule grids often contain jagged edges and small holes where no
//! association rule cleared the thresholds; these inhibit finding large,
//! complete clusters. ARCS applies an image-processing *low-pass filter*
//! before clustering: each cell is replaced by the (weighted) average of
//! its 3×3 neighbourhood and re-binarised against a threshold — filling
//! holes and removing isolated specks in one pass.
//!
//! The paper's §5 reports that using the association-rule *support values*
//! instead of binary cell values in the filter is promising;
//! [`smooth_support`] implements that variant.

use crate::error::ArcsError;
use crate::grid::Grid;

/// Convolution kernel for the low-pass filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Uniform 3×3 box filter (all nine weights equal).
    Box3,
    /// Centre-weighted 3×3 filter: centre weight 4, edge neighbours 2,
    /// corners 1 (a discrete Gaussian approximation). More conservative:
    /// set cells resist erosion and holes need stronger evidence to fill.
    Gaussian3,
}

impl Kernel {
    /// `(weights, total)`: row-major 3×3 weights and their sum.
    fn weights(&self) -> ([f64; 9], f64) {
        match self {
            Kernel::Box3 => ([1.0; 9], 9.0),
            Kernel::Gaussian3 => {
                let w = [1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0];
                (w, 16.0)
            }
        }
    }
}

/// Configuration of the smoothing pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothConfig {
    /// Convolution kernel.
    pub kernel: Kernel,
    /// Binarisation threshold as a fraction of the kernel's total weight:
    /// a cell is set in the output when its neighbourhood average reaches
    /// the threshold. `0.40` with [`Kernel::Box3`] fills interior holes
    /// (8/9 ≈ 0.89), removes isolated specks (1/9 ≈ 0.11), and preserves
    /// the corners of solid blocks (4/9 ≈ 0.44).
    pub threshold: f64,
    /// Number of filter passes (one is almost always enough).
    pub passes: usize,
}

impl Default for SmoothConfig {
    fn default() -> Self {
        SmoothConfig {
            kernel: Kernel::Box3,
            threshold: 0.40,
            passes: 1,
        }
    }
}

impl SmoothConfig {
    /// A disabled config (zero passes) — the grid passes through untouched.
    pub fn disabled() -> Self {
        SmoothConfig { passes: 0, ..SmoothConfig::default() }
    }

    fn validate(&self) -> Result<(), ArcsError> {
        if !(0.0..=1.0).contains(&self.threshold) {
            return Err(ArcsError::InvalidConfig(format!(
                "smoothing threshold {} outside [0, 1]",
                self.threshold
            )));
        }
        Ok(())
    }
}

/// Applies the low-pass filter to a binary grid and returns the smoothed
/// grid. Out-of-bounds neighbours count as unset, so the grid does not
/// bleed past its borders.
pub fn smooth(grid: &Grid, config: &SmoothConfig) -> Result<Grid, ArcsError> {
    config.validate()?;
    let mut current = grid.clone();
    for _ in 0..config.passes {
        current = smooth_once(&current, config)?;
    }
    Ok(current)
}

fn smooth_once(grid: &Grid, config: &SmoothConfig) -> Result<Grid, ArcsError> {
    crate::faults::check("smooth.pass")?;
    let (weights, total) = config.kernel.weights();
    let w = grid.width();
    let h = grid.height();
    let mut out = Grid::new(w, h)?;
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let nx = x as i64 + dx;
                    let ny = y as i64 + dy;
                    if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                        continue;
                    }
                    if grid.get(nx as usize, ny as usize) {
                        acc += weights[((dy + 1) * 3 + dx + 1) as usize];
                    }
                }
            }
            if acc / total >= config.threshold {
                out.set(x, y);
            }
        }
    }
    Ok(out)
}

/// Support-weighted smoothing (paper §5): convolves the per-cell *support
/// values* instead of binary occupancy, then binarises against
/// `binarize_threshold` expressed as a fraction of the maximum smoothed
/// support. `values` is row-major `width × height` (as produced by
/// [`support_grid`](crate::engine::support_grid)).
pub fn smooth_support(
    values: &[f64],
    width: usize,
    height: usize,
    config: &SmoothConfig,
    binarize_threshold: f64,
) -> Result<Grid, ArcsError> {
    config.validate()?;
    if values.len() != width * height {
        return Err(ArcsError::InvalidConfig(format!(
            "support grid length {} does not match {width} x {height}",
            values.len()
        )));
    }
    if !(0.0..=1.0).contains(&binarize_threshold) {
        return Err(ArcsError::InvalidConfig(format!(
            "binarize_threshold {binarize_threshold} outside [0, 1]"
        )));
    }
    let (weights, total) = config.kernel.weights();
    let mut current = values.to_vec();
    let mut next = vec![0.0; values.len()];
    for _ in 0..config.passes.max(1) {
        for y in 0..height {
            for x in 0..width {
                let mut acc = 0.0;
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let nx = x as i64 + dx;
                        let ny = y as i64 + dy;
                        if nx < 0 || ny < 0 || nx >= width as i64 || ny >= height as i64 {
                            continue;
                        }
                        acc += current[ny as usize * width + nx as usize]
                            * weights[((dy + 1) * 3 + dx + 1) as usize];
                    }
                }
                next[y * width + x] = acc / total;
            }
        }
        std::mem::swap(&mut current, &mut next);
    }
    let max = current.iter().cloned().fold(0.0f64, f64::max);
    let mut out = Grid::new(width, height)?;
    if max > 0.0 {
        let cut = binarize_threshold * max;
        for y in 0..height {
            for x in 0..width {
                if current[y * width + x] >= cut && current[y * width + x] > 0.0 {
                    out.set(x, y);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_interior_hole() {
        let grid = Grid::parse(
            "
            #####
            ##.##
            #####
            ",
        )
        .unwrap();
        let smoothed = smooth(&grid, &SmoothConfig::default()).unwrap();
        assert!(smoothed.get(2, 1), "interior hole should be filled");
    }

    #[test]
    fn removes_isolated_speck() {
        let grid = Grid::parse(
            "
            .....
            ..#..
            .....
            ",
        )
        .unwrap();
        let smoothed = smooth(&grid, &SmoothConfig::default()).unwrap();
        assert!(smoothed.is_empty(), "isolated speck should be removed");
    }

    #[test]
    fn preserves_solid_block_interior() {
        let grid = Grid::parse(
            "
            ......
            .####.
            .####.
            .####.
            ......
            ",
        )
        .unwrap();
        let smoothed = smooth(&grid, &SmoothConfig::default()).unwrap();
        // The interior 2x1 core must survive; Box3 at 0.45 keeps the full
        // block except possibly corners.
        assert!(smoothed.get(2, 2) && smoothed.get(3, 2));
        assert!(smoothed.count_ones() >= 8);
    }

    #[test]
    fn smooths_jagged_edge() {
        // A block with a one-cell notch on its edge gets squared off.
        let grid = Grid::parse(
            "
            ####
            ###.
            ####
            ####
            ",
        )
        .unwrap();
        let smoothed = smooth(&grid, &SmoothConfig::default()).unwrap();
        assert!(smoothed.get(3, 1), "edge notch should be filled");
    }

    #[test]
    fn disabled_config_is_identity() {
        let grid = Grid::parse(
            "
            #.#
            .#.
            ",
        )
        .unwrap();
        let smoothed = smooth(&grid, &SmoothConfig::disabled()).unwrap();
        assert_eq!(smoothed, grid);
    }

    #[test]
    fn gaussian_kernel_is_more_conservative() {
        // A 2-wide bar: the box filter may erode its ends; the Gaussian
        // kernel keeps every originally set cell whose centre weight alone
        // is 4/16 = 0.25 plus one neighbour reaches 0.375 < 0.45 only with
        // 2+ neighbours. Compare total survivorship.
        let grid = Grid::parse(
            "
            ####
            ####
            ",
        )
        .unwrap();
        let gauss = smooth(
            &grid,
            &SmoothConfig { kernel: Kernel::Gaussian3, ..SmoothConfig::default() },
        )
        .unwrap();
        assert_eq!(gauss.count_ones(), 8, "solid block survives Gaussian smoothing");
    }

    #[test]
    fn multiple_passes_converge() {
        let grid = Grid::parse(
            "
            #####
            ##.##
            #####
            ",
        )
        .unwrap();
        let once = smooth(&grid, &SmoothConfig { passes: 1, ..SmoothConfig::default() }).unwrap();
        let thrice = smooth(&grid, &SmoothConfig { passes: 3, ..SmoothConfig::default() }).unwrap();
        // The hole stays filled under repeated passes, and extra passes can
        // only erode from the borders inward (never re-create specks).
        assert!(once.get(2, 1));
        assert!(thrice.get(2, 1));
        assert!(thrice.count_ones() <= once.count_ones());
    }

    #[test]
    fn threshold_validates() {
        let grid = Grid::new(3, 3).unwrap();
        let bad = SmoothConfig { threshold: 1.5, ..SmoothConfig::default() };
        assert!(smooth(&grid, &bad).is_err());
    }

    #[test]
    fn support_smoothing_fills_low_support_hole() {
        // 3x3 of strong support with a zero centre: the hole fills because
        // its neighbours' support bleeds in.
        let width = 5;
        let height = 5;
        let mut values = vec![0.0; width * height];
        for y in 1..4 {
            for x in 1..4 {
                values[y * width + x] = 0.1;
            }
        }
        values[2 * width + 2] = 0.0;
        let grid = smooth_support(
            &values,
            width,
            height,
            &SmoothConfig::default(),
            0.5,
        )
        .unwrap();
        assert!(grid.get(2, 2), "zero-support hole should be filled");
        assert!(!grid.get(0, 0), "far corner stays clear");
    }

    #[test]
    fn support_smoothing_suppresses_weak_speck() {
        let width = 5;
        let height = 5;
        let mut values = vec![0.0; width * height];
        // Strong block left, weak speck right.
        for y in 0..3 {
            values[y * width] = 0.2;
            values[y * width + 1] = 0.2;
        }
        values[2 * width + 4] = 0.01;
        let grid =
            smooth_support(&values, width, height, &SmoothConfig::default(), 0.5).unwrap();
        assert!(!grid.get(4, 2), "weak speck should fall below the support cut");
        assert!(grid.get(0, 1) || grid.get(1, 1), "strong block survives");
    }

    #[test]
    fn support_smoothing_validates_inputs() {
        assert!(smooth_support(&[0.0; 5], 2, 2, &SmoothConfig::default(), 0.5).is_err());
        assert!(smooth_support(&[0.0; 4], 2, 2, &SmoothConfig::default(), 1.5).is_err());
    }

    #[test]
    fn support_smoothing_all_zero_is_empty() {
        let grid = smooth_support(&[0.0; 9], 3, 3, &SmoothConfig::default(), 0.5).unwrap();
        assert!(grid.is_empty());
    }
}
