//! Grid smoothing (paper §3.4, Figure 7).
//!
//! Mined-rule grids often contain jagged edges and small holes where no
//! association rule cleared the thresholds; these inhibit finding large,
//! complete clusters. ARCS applies an image-processing *low-pass filter*
//! before clustering: each cell is replaced by the (weighted) average of
//! its 3×3 neighbourhood and re-binarised against a threshold — filling
//! holes and removing isolated specks in one pass.
//!
//! [`smooth`] runs a **word-parallel** kernel: the 3×3 neighbourhood
//! counts of 64 cells are computed at once with bit-sliced carry-save
//! adds over the grid's packed `u64` row words (shifts within a row,
//! whole words from the rows above/below), and the binarisation becomes
//! a bit-plane comparison against a precomputed integer cut. The output
//! is bit-identical to the scalar [`smooth_reference`] oracle, which is
//! kept for property tests.
//!
//! The paper's §5 reports that using the association-rule *support values*
//! instead of binary cell values in the filter is promising;
//! [`smooth_support`] implements that variant.

use crate::error::ArcsError;
use crate::grid::Grid;

/// Convolution kernel for the low-pass filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Uniform 3×3 box filter (all nine weights equal).
    Box3,
    /// Centre-weighted 3×3 filter: centre weight 4, edge neighbours 2,
    /// corners 1 (a discrete Gaussian approximation). More conservative:
    /// set cells resist erosion and holes need stronger evidence to fill.
    Gaussian3,
}

impl Kernel {
    /// `(weights, total)`: row-major 3×3 weights and their sum.
    fn weights(&self) -> ([f64; 9], f64) {
        match self {
            Kernel::Box3 => ([1.0; 9], 9.0),
            Kernel::Gaussian3 => {
                let w = [1.0, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0];
                (w, 16.0)
            }
        }
    }

    /// Maximum integer accumulator value (all nine neighbours set).
    fn max_acc(&self) -> u32 {
        match self {
            Kernel::Box3 => 9,
            Kernel::Gaussian3 => 16,
        }
    }

    /// In-bounds weight of an *interior column* given which neighbour
    /// rows exist — the denominator [`BorderMode::InBounds`] uses for
    /// every cell except the first and last column of a row.
    fn interior_row_weight(&self, above: bool, below: bool) -> f64 {
        match self {
            Kernel::Box3 => 3.0 * (1.0 + f64::from(above) + f64::from(below)),
            Kernel::Gaussian3 => 8.0 + 4.0 * f64::from(above) + 4.0 * f64::from(below),
        }
    }
}

/// How the filter normalises cells whose 3×3 window sticks out of the
/// grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BorderMode {
    /// Divide by the full kernel weight everywhere (the paper's implicit
    /// choice, and the default). Out-of-bounds neighbours contribute
    /// nothing but still count in the denominator, so solid blocks flush
    /// against the grid edge erode there while identical interior blocks
    /// survive. Keeps the filter strictly non-expansive at the borders.
    #[default]
    FullKernel,
    /// Divide by the weight of the *in-bounds* part of the window, so a
    /// border cell is judged against the neighbours it actually has.
    /// Blocks flush against the edge keep their rim; the trade-off is
    /// that border specks also survive more easily (a lone corner cell
    /// sees a 2×2 window and can clear thresholds it would fail in the
    /// interior).
    InBounds,
}

/// Configuration of the smoothing pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothConfig {
    /// Convolution kernel.
    pub kernel: Kernel,
    /// Binarisation threshold as a fraction of the kernel's total weight:
    /// a cell is set in the output when its neighbourhood average reaches
    /// the threshold. `0.40` with [`Kernel::Box3`] fills interior holes
    /// (8/9 ≈ 0.89), removes isolated specks (1/9 ≈ 0.11), and preserves
    /// the corners of solid blocks (4/9 ≈ 0.44).
    pub threshold: f64,
    /// Number of filter passes (one is almost always enough).
    pub passes: usize,
    /// Border normalisation (see [`BorderMode`]).
    pub border: BorderMode,
}

impl Default for SmoothConfig {
    fn default() -> Self {
        SmoothConfig {
            kernel: Kernel::Box3,
            threshold: 0.40,
            passes: 1,
            border: BorderMode::FullKernel,
        }
    }
}

impl SmoothConfig {
    /// A disabled config (zero passes) — the grid passes through untouched.
    pub fn disabled() -> Self {
        SmoothConfig { passes: 0, ..SmoothConfig::default() }
    }

    fn validate(&self) -> Result<(), ArcsError> {
        if !(0.0..=1.0).contains(&self.threshold) {
            return Err(ArcsError::InvalidConfig(format!(
                "smoothing threshold {} outside [0, 1]",
                self.threshold
            )));
        }
        Ok(())
    }
}

/// Work counter of one [`smooth_with_stats`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SmoothStats {
    /// Packed 64-bit row words the kernel processed, summed over passes.
    pub words_processed: u64,
}

/// Applies the low-pass filter to a binary grid and returns the smoothed
/// grid. Out-of-bounds neighbours count as unset, so the grid does not
/// bleed past its borders.
pub fn smooth(grid: &Grid, config: &SmoothConfig) -> Result<Grid, ArcsError> {
    smooth_with_stats(grid, config).map(|(out, _)| out)
}

/// [`smooth`] plus its [`SmoothStats`] work counter.
pub fn smooth_with_stats(
    grid: &Grid,
    config: &SmoothConfig,
) -> Result<(Grid, SmoothStats), ArcsError> {
    config.validate()?;
    let mut stats = SmoothStats::default();
    if config.passes == 0 {
        return Ok((grid.clone(), stats));
    }
    let mut current = Grid::new(grid.width(), grid.height())?;
    stats.words_processed += smooth_once_words(grid, config, &mut current)?;
    if config.passes > 1 {
        // Ping-pong between two buffers: no per-pass allocation.
        let mut next = Grid::new(grid.width(), grid.height())?;
        for _ in 1..config.passes {
            stats.words_processed += smooth_once_words(&current, config, &mut next)?;
            std::mem::swap(&mut current, &mut next);
        }
    }
    Ok((current, stats))
}

/// The scalar per-cell oracle: the naive implementation the word-parallel
/// [`smooth`] is property-tested against (bit-identical output).
pub fn smooth_reference(grid: &Grid, config: &SmoothConfig) -> Result<Grid, ArcsError> {
    config.validate()?;
    let mut current = grid.clone();
    for _ in 0..config.passes {
        crate::faults::check("smooth.pass")?;
        let mut out = Grid::new(grid.width(), grid.height())?;
        for y in 0..grid.height() {
            for x in 0..grid.width() {
                if scalar_cell(&current, x, y, config) {
                    out.set(x, y);
                }
            }
        }
        current = out;
    }
    Ok(current)
}

/// Evaluates the filter predicate for one cell exactly as the original
/// scalar implementation did (same accumulation order, same `f64`
/// division) — shared by [`smooth_reference`] and the word kernel's
/// border-column fixup so the two paths cannot diverge.
fn scalar_cell(grid: &Grid, x: usize, y: usize, config: &SmoothConfig) -> bool {
    let (weights, total) = config.kernel.weights();
    let w = grid.width();
    let h = grid.height();
    let mut acc = 0.0;
    let mut in_bounds = 0.0;
    for dy in -1i64..=1 {
        for dx in -1i64..=1 {
            let nx = x as i64 + dx;
            let ny = y as i64 + dy;
            if nx < 0 || ny < 0 || nx >= w as i64 || ny >= h as i64 {
                continue;
            }
            let weight = weights[((dy + 1) * 3 + dx + 1) as usize];
            in_bounds += weight;
            if grid.get(nx as usize, ny as usize) {
                acc += weight;
            }
        }
    }
    let denom = match config.border {
        BorderMode::FullKernel => total,
        BorderMode::InBounds => in_bounds,
    };
    acc / denom >= config.threshold
}

/// One word-parallel filter pass from `grid` into `out` (same
/// dimensions, fully overwritten). Returns the number of row words
/// processed.
///
/// Per output word, the 3×3 neighbourhood count of all 64 cells is built
/// as bit-sliced binary planes with carry-save adders; the binarisation
/// `acc / denom >= threshold` becomes `acc >= k_min` where `k_min` is the
/// smallest integer passing the *same* `f64` comparison — so the output
/// is bit-identical to [`smooth_reference`]. Under
/// [`BorderMode::InBounds`] the first and last column of each row have a
/// smaller denominator than the row's interior; those (at most two cells
/// per row) are recomputed with the shared scalar predicate.
fn smooth_once_words(
    grid: &Grid,
    config: &SmoothConfig,
    out: &mut Grid,
) -> Result<u64, ArcsError> {
    crate::faults::check("smooth.pass")?;
    debug_assert!(out.width() == grid.width() && out.height() == grid.height());
    let width = grid.width();
    let height = grid.height();
    let words_per_row = grid.words_per_row();
    let (_, total) = config.kernel.weights();
    let max_acc = config.kernel.max_acc();
    let tail_mask = grid.tail_mask();
    let mut words = 0u64;
    for y in 0..height {
        let above = (y > 0).then(|| grid.row(y - 1));
        let cur = grid.row(y);
        let below = (y + 1 < height).then(|| grid.row(y + 1));
        let denom = match config.border {
            BorderMode::FullKernel => total,
            BorderMode::InBounds => {
                config.kernel.interior_row_weight(above.is_some(), below.is_some())
            }
        };
        let k_min = k_min_for(denom, config.threshold, max_acc);
        {
            let out_row = out.row_mut(y);
            for (wi, slot) in out_row.iter_mut().enumerate() {
                let planes = match config.kernel {
                    Kernel::Box3 => box3_planes(above, cur, below, wi),
                    Kernel::Gaussian3 => gauss3_planes(above, cur, below, wi),
                };
                let mut word = ge_const(&planes, k_min);
                if wi == words_per_row - 1 {
                    word &= tail_mask;
                }
                *slot = word;
                words += 1;
            }
        }
        if config.border == BorderMode::InBounds && width > 0 {
            // Column edges see a narrower window than the interior
            // denominator baked into `k_min`; recompute them exactly.
            // (For width <= 2 this covers the whole row.)
            for x in [0, width - 1] {
                if scalar_cell(grid, x, y, config) {
                    out.set(x, y);
                } else {
                    out.clear(x, y);
                }
            }
        }
    }
    Ok(words)
}

/// The smallest integer accumulator value that passes
/// `acc / denom >= threshold` under the exact `f64` comparison the scalar
/// oracle performs, or `max_acc + 1` when no reachable value passes.
fn k_min_for(denom: f64, threshold: f64, max_acc: u32) -> u32 {
    (0..=max_acc)
        .find(|&k| (f64::from(k)) / denom >= threshold)
        .unwrap_or(max_acc + 1)
}

/// Majority (carry) of three bit vectors.
#[inline]
fn maj(a: u64, b: u64, c: u64) -> u64 {
    (a & b) | (a & c) | (b & c)
}

/// The word at `wi` shifted toward its left and right neighbours, with
/// cross-word carry: returns `(left, centre, right)` where `left[i]`
/// holds bit `i - 1` of the row and `right[i]` holds bit `i + 1`.
#[inline]
fn hshift(row: &[u64], wi: usize) -> (u64, u64, u64) {
    let centre = row[wi];
    let left = (centre << 1) | if wi > 0 { row[wi - 1] >> 63 } else { 0 };
    let right = (centre >> 1) | row.get(wi + 1).map_or(0, |&next| next << 63);
    (left, centre, right)
}

/// Box3 bit planes for word `wi`: per-row horizontal triple sums (0..=3,
/// two planes via one full adder) are then summed across the three rows
/// with carry-save adders into four planes (0..=9). `planes[4]` is
/// always zero — kept so both kernels share the 5-plane comparator.
fn box3_planes(above: Option<&[u64]>, cur: &[u64], below: Option<&[u64]>, wi: usize) -> [u64; 5] {
    #[inline]
    fn hsum(row: Option<&[u64]>, wi: usize) -> (u64, u64) {
        row.map_or((0, 0), |r| {
            let (l, c, rt) = hshift(r, wi);
            (l ^ c ^ rt, maj(l, c, rt))
        })
    }
    let (a0, a1) = hsum(above, wi);
    let (c0, c1) = hsum(Some(cur), wi);
    let (b0, b1) = hsum(below, wi);
    // Sum three 2-bit numbers (a1a0 + c1c0 + b1b0) with carry-save adders.
    let s0 = a0 ^ c0 ^ b0;
    let carry0 = maj(a0, c0, b0);
    let t = a1 ^ c1 ^ b1;
    let carry1 = maj(a1, c1, b1);
    let s1 = t ^ carry0;
    let carry2 = t & carry0;
    [s0, s1, carry1 ^ carry2, carry1 & carry2, 0]
}

/// Gaussian3 bit planes for word `wi`: per-row weighted horizontal sum
/// `W = left + 2·centre + right` (0..=4, three planes), then
/// `acc = W_above + W_below + 2·W_centre` (0..=16, five planes).
fn gauss3_planes(
    above: Option<&[u64]>,
    cur: &[u64],
    below: Option<&[u64]>,
    wi: usize,
) -> [u64; 5] {
    #[inline]
    fn hsum(row: Option<&[u64]>, wi: usize) -> (u64, u64, u64) {
        row.map_or((0, 0, 0), |r| {
            let (l, c, rt) = hshift(r, wi);
            // l + rt is 0..=2 (planes u0, u1); adding 2*c touches only
            // the twos plane: w1 = u1 ^ c with carry u1 & c into w2.
            let u0 = l ^ rt;
            let u1 = l & rt;
            (u0, u1 ^ c, u1 & c)
        })
    }
    let (a0, a1, a2) = hsum(above, wi);
    let (m0, m1, m2) = hsum(Some(cur), wi);
    let (b0, b1, b2) = hsum(below, wi);
    // x = W_above + W_below (0..=8), ripple-carry over three planes.
    let x0 = a0 ^ b0;
    let mut carry = a0 & b0;
    let x1 = a1 ^ b1 ^ carry;
    carry = maj(a1, b1, carry);
    let x2 = a2 ^ b2 ^ carry;
    let x3 = maj(a2, b2, carry);
    // acc = x + 2·W_centre (0..=16): the doubled centre sum enters one
    // plane up, so plane 0 passes through.
    let y1 = x1 ^ m0;
    let mut carry2 = x1 & m0;
    let y2 = x2 ^ m1 ^ carry2;
    carry2 = maj(x2, m1, carry2);
    let y3 = x3 ^ m2 ^ carry2;
    let y4 = maj(x3, m2, carry2);
    [x0, y1, y2, y3, y4]
}

/// Lane-wise `acc >= k` over bit-sliced planes (plane `i` holds bit `i`
/// of each lane's accumulator): the classic MSB-to-LSB greater/equal
/// masks. `k` must fit in five bits.
fn ge_const(planes: &[u64; 5], k: u32) -> u64 {
    debug_assert!(k < 32);
    let mut gt = 0u64;
    let mut eq = !0u64;
    for i in (0..5).rev() {
        let plane = planes[i];
        if (k >> i) & 1 == 1 {
            eq &= plane;
        } else {
            gt |= eq & plane;
            eq &= !plane;
        }
    }
    gt | eq
}

/// Support-weighted smoothing (paper §5): convolves the per-cell *support
/// values* instead of binary occupancy, then binarises against
/// `binarize_threshold` expressed as a fraction of the maximum smoothed
/// support. `values` is row-major `width × height` (as produced by
/// [`support_grid`](crate::engine::support_grid)). Like [`smooth`], a
/// config with zero passes applies no filter — the raw support values go
/// straight to binarisation.
pub fn smooth_support(
    values: &[f64],
    width: usize,
    height: usize,
    config: &SmoothConfig,
    binarize_threshold: f64,
) -> Result<Grid, ArcsError> {
    config.validate()?;
    if values.len() != width * height {
        return Err(ArcsError::InvalidConfig(format!(
            "support grid length {} does not match {width} x {height}",
            values.len()
        )));
    }
    if !(0.0..=1.0).contains(&binarize_threshold) {
        return Err(ArcsError::InvalidConfig(format!(
            "binarize_threshold {binarize_threshold} outside [0, 1]"
        )));
    }
    let (weights, total) = config.kernel.weights();
    let mut current = values.to_vec();
    let mut next = vec![0.0; values.len()];
    for _ in 0..config.passes {
        for y in 0..height {
            for x in 0..width {
                let mut acc = 0.0;
                let mut in_bounds = 0.0;
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let nx = x as i64 + dx;
                        let ny = y as i64 + dy;
                        if nx < 0 || ny < 0 || nx >= width as i64 || ny >= height as i64 {
                            continue;
                        }
                        let weight = weights[((dy + 1) * 3 + dx + 1) as usize];
                        in_bounds += weight;
                        acc += current[ny as usize * width + nx as usize] * weight;
                    }
                }
                let denom = match config.border {
                    BorderMode::FullKernel => total,
                    BorderMode::InBounds => in_bounds,
                };
                next[y * width + x] = acc / denom;
            }
        }
        std::mem::swap(&mut current, &mut next);
    }
    let max = current.iter().cloned().fold(0.0f64, f64::max);
    let mut out = Grid::new(width, height)?;
    if max > 0.0 {
        let cut = binarize_threshold * max;
        for y in 0..height {
            for x in 0..width {
                if current[y * width + x] >= cut && current[y * width + x] > 0.0 {
                    out.set(x, y);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fills_interior_hole() {
        let grid = Grid::parse(
            "
            #####
            ##.##
            #####
            ",
        )
        .unwrap();
        let smoothed = smooth(&grid, &SmoothConfig::default()).unwrap();
        assert!(smoothed.get(2, 1), "interior hole should be filled");
    }

    #[test]
    fn removes_isolated_speck() {
        let grid = Grid::parse(
            "
            .....
            ..#..
            .....
            ",
        )
        .unwrap();
        let smoothed = smooth(&grid, &SmoothConfig::default()).unwrap();
        assert!(smoothed.is_empty(), "isolated speck should be removed");
    }

    #[test]
    fn preserves_solid_block_interior() {
        let grid = Grid::parse(
            "
            ......
            .####.
            .####.
            .####.
            ......
            ",
        )
        .unwrap();
        let smoothed = smooth(&grid, &SmoothConfig::default()).unwrap();
        // The interior 2x1 core must survive; Box3 at 0.45 keeps the full
        // block except possibly corners.
        assert!(smoothed.get(2, 2) && smoothed.get(3, 2));
        assert!(smoothed.count_ones() >= 8);
    }

    #[test]
    fn smooths_jagged_edge() {
        // A block with a one-cell notch on its edge gets squared off.
        let grid = Grid::parse(
            "
            ####
            ###.
            ####
            ####
            ",
        )
        .unwrap();
        let smoothed = smooth(&grid, &SmoothConfig::default()).unwrap();
        assert!(smoothed.get(3, 1), "edge notch should be filled");
    }

    #[test]
    fn disabled_config_is_identity() {
        let grid = Grid::parse(
            "
            #.#
            .#.
            ",
        )
        .unwrap();
        let smoothed = smooth(&grid, &SmoothConfig::disabled()).unwrap();
        assert_eq!(smoothed, grid);
    }

    #[test]
    fn gaussian_kernel_is_more_conservative() {
        // A 2-wide bar: the box filter may erode its ends; the Gaussian
        // kernel keeps every originally set cell whose centre weight alone
        // is 4/16 = 0.25 plus one neighbour reaches 0.375 < 0.45 only with
        // 2+ neighbours. Compare total survivorship.
        let grid = Grid::parse(
            "
            ####
            ####
            ",
        )
        .unwrap();
        let gauss = smooth(
            &grid,
            &SmoothConfig { kernel: Kernel::Gaussian3, ..SmoothConfig::default() },
        )
        .unwrap();
        assert_eq!(gauss.count_ones(), 8, "solid block survives Gaussian smoothing");
    }

    #[test]
    fn multiple_passes_converge() {
        let grid = Grid::parse(
            "
            #####
            ##.##
            #####
            ",
        )
        .unwrap();
        let once = smooth(&grid, &SmoothConfig { passes: 1, ..SmoothConfig::default() }).unwrap();
        let thrice = smooth(&grid, &SmoothConfig { passes: 3, ..SmoothConfig::default() }).unwrap();
        // The hole stays filled under repeated passes, and extra passes can
        // only erode from the borders inward (never re-create specks).
        assert!(once.get(2, 1));
        assert!(thrice.get(2, 1));
        assert!(thrice.count_ones() <= once.count_ones());
    }

    #[test]
    fn threshold_validates() {
        let grid = Grid::new(3, 3).unwrap();
        let bad = SmoothConfig { threshold: 1.5, ..SmoothConfig::default() };
        assert!(smooth(&grid, &bad).is_err());
        assert!(smooth_reference(&grid, &bad).is_err());
    }

    /// The word-parallel kernel against the scalar oracle on handcrafted
    /// shapes spanning word boundaries (the proptest suite fuzzes this
    /// further).
    #[test]
    fn word_kernel_matches_reference_across_word_boundaries() {
        let mut grid = Grid::new(130, 7).unwrap();
        // A block straddling the 64-bit boundary, a lone speck, a bar at
        // the right edge, and a corner cell.
        for y in 1..5 {
            for x in 60..70 {
                grid.set(x, y);
            }
        }
        grid.set(20, 3);
        for x in 125..130 {
            grid.set(x, 2);
        }
        grid.set(0, 0);
        for kernel in [Kernel::Box3, Kernel::Gaussian3] {
            for border in [BorderMode::FullKernel, BorderMode::InBounds] {
                for passes in [1, 2, 3] {
                    for threshold in [0.0, 0.11, 0.40, 0.45, 0.75, 1.0] {
                        let config = SmoothConfig { kernel, border, passes, threshold };
                        assert_eq!(
                            smooth(&grid, &config).unwrap(),
                            smooth_reference(&grid, &config).unwrap(),
                            "{config:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn word_kernel_handles_degenerate_shapes() {
        for (w, h) in [(1, 9), (9, 1), (1, 1), (64, 2), (65, 3)] {
            let mut grid = Grid::new(w, h).unwrap();
            for i in 0..(w * h) {
                if i % 3 != 1 {
                    grid.set(i % w, i / w);
                }
            }
            for border in [BorderMode::FullKernel, BorderMode::InBounds] {
                let config = SmoothConfig { border, ..SmoothConfig::default() };
                assert_eq!(
                    smooth(&grid, &config).unwrap(),
                    smooth_reference(&grid, &config).unwrap(),
                    "{w}x{h} {border:?}"
                );
            }
        }
    }

    /// The border-erosion trade-off (satellite bugfix): under the default
    /// full-kernel normalisation a solid block flush against the grid
    /// edge erodes at the border, while in-bounds normalisation keeps its
    /// rim.
    #[test]
    fn border_block_erodes_under_full_kernel_but_not_in_bounds() {
        let grid = Grid::parse(
            "
            ###.....
            ###.....
            ###.....
            ........
            ",
        )
        .unwrap();
        // Threshold 0.5: the block's (0,0) corner sees 4/9 under the full
        // kernel (erodes) but 4/4 of its in-bounds 2x2 window (survives).
        let config = SmoothConfig { threshold: 0.5, ..SmoothConfig::default() };
        let full = smooth(&grid, &config).unwrap();
        assert!(!full.get(0, 0), "full-kernel border corner must erode");
        let in_bounds =
            smooth(&grid, &SmoothConfig { border: BorderMode::InBounds, ..config }).unwrap();
        assert!(in_bounds.get(0, 0), "in-bounds border corner must survive");
        assert!(in_bounds.get(0, 1) && in_bounds.get(1, 0));
        // Default behaviour is unchanged: FullKernel is the default mode.
        assert_eq!(smooth(&grid, &config).unwrap(), full);
    }

    /// Satellite bugfix regression: `passes = 0` must be honoured by BOTH
    /// variants — the binary filter already no-ops, and the
    /// support-weighted variant must not sneak in a pass.
    #[test]
    fn zero_passes_disable_both_variants() {
        // Binary: identity (covered above too, kept here for the pair).
        let grid = Grid::parse("#.#\n.#.").unwrap();
        assert_eq!(smooth(&grid, &SmoothConfig::disabled()).unwrap(), grid);

        // Support-weighted: a zero-support hole surrounded by support
        // fills after one pass, but must stay empty with passes = 0 (the
        // raw values go straight to binarisation).
        let width = 5;
        let height = 5;
        let mut values = vec![0.0; width * height];
        for y in 1..4 {
            for x in 1..4 {
                values[y * width + x] = 0.1;
            }
        }
        values[2 * width + 2] = 0.0;
        let smoothed =
            smooth_support(&values, width, height, &SmoothConfig::default(), 0.5).unwrap();
        assert!(smoothed.get(2, 2), "one pass fills the hole");
        let raw =
            smooth_support(&values, width, height, &SmoothConfig::disabled(), 0.5).unwrap();
        assert!(!raw.get(2, 2), "zero passes must not smooth the support grid");
        assert!(raw.get(1, 1), "raw support cells still binarise");
    }

    #[test]
    fn support_smoothing_fills_low_support_hole() {
        // 3x3 of strong support with a zero centre: the hole fills because
        // its neighbours' support bleeds in.
        let width = 5;
        let height = 5;
        let mut values = vec![0.0; width * height];
        for y in 1..4 {
            for x in 1..4 {
                values[y * width + x] = 0.1;
            }
        }
        values[2 * width + 2] = 0.0;
        let grid = smooth_support(
            &values,
            width,
            height,
            &SmoothConfig::default(),
            0.5,
        )
        .unwrap();
        assert!(grid.get(2, 2), "zero-support hole should be filled");
        assert!(!grid.get(0, 0), "far corner stays clear");
    }

    #[test]
    fn support_smoothing_suppresses_weak_speck() {
        let width = 5;
        let height = 5;
        let mut values = vec![0.0; width * height];
        // Strong block left, weak speck right.
        for y in 0..3 {
            values[y * width] = 0.2;
            values[y * width + 1] = 0.2;
        }
        values[2 * width + 4] = 0.01;
        let grid =
            smooth_support(&values, width, height, &SmoothConfig::default(), 0.5).unwrap();
        assert!(!grid.get(4, 2), "weak speck should fall below the support cut");
        assert!(grid.get(0, 1) || grid.get(1, 1), "strong block survives");
    }

    #[test]
    fn support_smoothing_validates_inputs() {
        assert!(smooth_support(&[0.0; 5], 2, 2, &SmoothConfig::default(), 0.5).is_err());
        assert!(smooth_support(&[0.0; 4], 2, 2, &SmoothConfig::default(), 1.5).is_err());
    }

    #[test]
    fn support_smoothing_all_zero_is_empty() {
        let grid = smooth_support(&[0.0; 9], 3, 3, &SmoothConfig::default(), 0.5).unwrap();
        assert!(grid.is_empty());
    }

    #[test]
    fn stats_count_words_per_pass() {
        let grid = Grid::new(130, 4).unwrap(); // 3 words per row
        let config = SmoothConfig { passes: 2, ..SmoothConfig::default() };
        let (_, stats) = smooth_with_stats(&grid, &config).unwrap();
        assert_eq!(stats.words_processed, 2 * 4 * 3);
        let (_, none) = smooth_with_stats(&grid, &SmoothConfig::disabled()).unwrap();
        assert_eq!(none.words_processed, 0);
    }
}
