//! Criterion micro-benchmarks for the BitOp clustering algorithm: grid
//! size and density sweeps (the paper claims linear time in the output).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use arcs_core::bitop::{self, BitOpConfig};
use arcs_core::cover::connected_components;
use arcs_core::smooth::{smooth, SmoothConfig};
use arcs_core::{Grid, Rect};

/// A grid with `blocks x blocks` rectangular clusters laid out on a lattice.
fn blocky_grid(side: usize, blocks: usize) -> Grid {
    let mut grid = Grid::new(side, side).expect("valid dims");
    let cell = side / blocks;
    let block = (cell * 2) / 3;
    for by in 0..blocks {
        for bx in 0..blocks {
            let x0 = bx * cell;
            let y0 = by * cell;
            if block > 0 {
                grid.set_rect(Rect {
                    x0,
                    y0,
                    x1: (x0 + block - 1).min(side - 1),
                    y1: (y0 + block - 1).min(side - 1),
                });
            }
        }
    }
    grid
}

/// A noisy grid: deterministic pseudo-random cells at the given density.
fn noisy_grid(side: usize, density_pct: u64) -> Grid {
    let mut grid = Grid::new(side, side).expect("valid dims");
    let mut state = 0x9e3779b97f4a7c15u64;
    for y in 0..side {
        for x in 0..side {
            // splitmix64 step
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            if z % 100 < density_pct {
                grid.set(x, y);
            }
        }
    }
    grid
}

fn bench_bitop(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitop/cluster_blocky");
    group.sample_size(10);
    for side in [50usize, 100, 250, 500, 1000] {
        let grid = blocky_grid(side, 4);
        group.throughput(Throughput::Elements((side * side) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(side), &grid, |b, grid| {
            b.iter(|| bitop::cluster(grid, &BitOpConfig::default()).expect("clusters"));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("bitop/enumerate_noisy");
    for density in [5u64, 20, 50] {
        let grid = noisy_grid(200, density);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{density}pct")),
            &grid,
            |b, grid| {
                b.iter(|| bitop::enumerate_candidates(grid));
            },
        );
    }
    group.finish();

    // Parallel enumeration thread sweep (paper §5 parallelism claim).
    let mut group = c.benchmark_group("bitop/enumerate_parallel_1000");
    group.sample_size(10);
    let grid = blocky_grid(1000, 8);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| bitop::enumerate_candidates_parallel(&grid, threads));
            },
        );
    }
    group.finish();

    // The low-pass filter (applied once per optimizer evaluation).
    let mut group = c.benchmark_group("smooth/box3");
    group.sample_size(10);
    for side in [50usize, 200, 1000] {
        let grid = blocky_grid(side, 4);
        group.throughput(Throughput::Elements((side * side) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(side), &grid, |b, grid| {
            b.iter(|| smooth(grid, &SmoothConfig::default()).expect("smoothing succeeds"));
        });
    }
    group.finish();

    // The image-processing baseline, for cost comparison with BitOp.
    let mut group = c.benchmark_group("cover/connected_components");
    group.sample_size(10);
    for side in [50usize, 200, 1000] {
        let grid = blocky_grid(side, 4);
        group.throughput(Throughput::Elements((side * side) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(side), &grid, |b, grid| {
            b.iter(|| connected_components(grid));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bitop);
criterion_main!(benches);
