//! Criterion micro-benchmarks for the binner: tuples/second through the
//! single streaming pass (the dominant cost of ARCS at scale, Figure 15).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use arcs_core::Binner;
use arcs_data::agrawal;
use arcs_data::generator::{AgrawalGenerator, GeneratorConfig};
use arcs_data::Dataset;

fn dataset(n: usize) -> Dataset {
    let mut gen =
        AgrawalGenerator::new(GeneratorConfig::paper_defaults(1)).expect("valid config");
    gen.generate(n)
}

fn bench_binning(c: &mut Criterion) {
    let schema = agrawal::schema();
    let binner = Binner::equi_width(&schema, "age", "salary", "group", 50, 50)
        .expect("schema attributes exist");

    let mut group = c.benchmark_group("binning/bin_rows");
    group.sample_size(30);
    for n in [10_000usize, 100_000] {
        let ds = dataset(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ds, |b, ds| {
            b.iter(|| binner.bin_rows(ds.iter()).expect("binning succeeds"));
        });
    }
    group.finish();

    // Generation + binning fused (the Figure 15 streaming path).
    c.bench_function("binning/stream_100k", |b| {
        b.iter(|| {
            let gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(1))
                .expect("valid config");
            binner.bin_stream(gen.take(100_000)).expect("binning succeeds")
        });
    });
}

criterion_group!(benches, bench_binning);
criterion_main!(benches);
