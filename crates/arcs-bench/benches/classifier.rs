//! Criterion micro-benchmarks for the C4.5 baseline: training-time growth
//! with |D| (the super-linear cost behind the paper's Table 2 contrast).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use arcs_classifier::{DecisionTree, RuleSet, RulesConfig, SliqConfig, SliqTree, TreeConfig};
use arcs_data::generator::{AgrawalGenerator, GeneratorConfig};
use arcs_data::Dataset;

fn dataset(n: usize) -> Dataset {
    let mut gen =
        AgrawalGenerator::new(GeneratorConfig::paper_defaults(2)).expect("valid config");
    gen.generate(n)
}

fn bench_classifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("classifier/train");
    group.sample_size(10);
    for n in [2_000usize, 5_000, 10_000, 20_000] {
        let ds = dataset(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ds, |b, ds| {
            b.iter(|| {
                DecisionTree::train(ds, "group", TreeConfig::default()).expect("trains")
            });
        });
    }
    group.finish();

    c.bench_function("classifier/extract_rules_5k", |b| {
        let ds = dataset(5_000);
        let tree =
            DecisionTree::train(&ds, "group", TreeConfig::default()).expect("trains");
        b.iter(|| RuleSet::from_tree(&tree, &ds, RulesConfig::default()).expect("extracts"));
    });

    // SLIQ's pre-sorted breadth-first growth vs C4.5's per-node re-sorting
    // (the scalability contrast its paper — the ARCS paper's ref [13] —
    // claims).
    let mut group = c.benchmark_group("classifier/sliq_train");
    group.sample_size(10);
    for n in [2_000usize, 5_000, 10_000, 20_000] {
        let ds = dataset(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &ds, |b, ds| {
            b.iter(|| SliqTree::train(ds, "group", SliqConfig::default()).expect("trains"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classifier);
criterion_main!(benches);
