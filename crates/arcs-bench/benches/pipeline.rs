//! Criterion micro-benchmark for the full ARCS pipeline (bin → optimize →
//! decode) on the paper's workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use arcs_core::{Arcs, ArcsConfig, SegmentRequest};
use arcs_data::generator::{AgrawalGenerator, GeneratorConfig};
use arcs_data::Dataset;

fn dataset(n: usize, u: f64) -> Dataset {
    let config = GeneratorConfig {
        outlier_fraction: u,
        ..GeneratorConfig::paper_defaults(3)
    };
    let mut gen = AgrawalGenerator::new(config).expect("valid config");
    gen.generate(n)
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/segment");
    group.sample_size(10);
    for (n, u) in [(20_000usize, 0.0), (50_000, 0.0), (50_000, 0.10)] {
        let ds = dataset(n, u);
        let label = format!("{n}_u{:.0}", u * 100.0);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &ds, |b, ds| {
            let arcs = Arcs::new(ArcsConfig::default()).expect("valid config");
            b.iter(|| {
                arcs.open(ds, SegmentRequest::new("age", "salary", "group").group("A"))
                    .and_then(|mut s| s.segment())
                    .expect("segmentation succeeds")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
