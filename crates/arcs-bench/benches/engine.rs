//! Criterion micro-benchmarks for the association rule engine: the
//! "re-mining is nearly instantaneous" claim (§3.2) — mining off the
//! BinArray at different grid sizes, independent of |D|.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use arcs_core::engine::{mine_rules, rule_grid, Thresholds};
use arcs_core::optimizer::ThresholdLattice;
use arcs_core::BinArray;

fn filled_array(bins: usize) -> BinArray {
    let mut ba = BinArray::new(bins, bins, 2).expect("valid dims");
    // Deterministic occupancy: most cells hold a handful of tuples of each
    // group, a band holds many group-0 tuples.
    for y in 0..bins {
        for x in 0..bins {
            let group0 = if (bins / 4..bins / 2).contains(&y) { 20 } else { 2 };
            for _ in 0..group0 {
                ba.add(x, y, 0);
            }
            for _ in 0..5 {
                ba.add(x, y, 1);
            }
        }
    }
    ba
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/mine_rules");
    for bins in [50usize, 100, 200] {
        let ba = filled_array(bins);
        let t = Thresholds::new(0.0001, 0.5).expect("valid thresholds");
        group.bench_with_input(BenchmarkId::from_parameter(bins), &ba, |b, ba| {
            b.iter(|| mine_rules(ba, 0, t));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("engine/rule_grid");
    for bins in [50usize, 100, 200] {
        let ba = filled_array(bins);
        let t = Thresholds::new(0.0001, 0.5).expect("valid thresholds");
        group.bench_with_input(BenchmarkId::from_parameter(bins), &ba, |b, ba| {
            b.iter(|| rule_grid(ba, 0, t).expect("grid builds"));
        });
    }
    group.finish();

    c.bench_function("engine/threshold_lattice_50", |b| {
        let ba = filled_array(50);
        b.iter(|| ThresholdLattice::build(&ba, 0));
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
