//! PR 5 microbench: output-sensitive re-mining and word-parallel
//! smoothing against their naive references.
//!
//! Replays the Figure-10 optimizer access pattern — a snake walk over a
//! support × confidence lattice against one fixed `BinArray` — twice:
//! once with the full-scan `rule_grid_into` (every point pays `nx · ny`
//! cells) and once with `OccupancyIndex` + `DeltaMiner` (index build
//! *included* in the timed region; each point pays only the cells whose
//! qualification can change). A second section times the scalar smoothing
//! reference against the bit-sliced word kernel.
//!
//! ```sh
//! cargo run --release -p arcs-bench --bin remine_sweep -- \
//!     [--tuples 500000] [--quick] [--json FILE]
//! ```
//!
//! `--quick` shrinks the dataset and lattice for CI smoke runs. Both
//! variants are checked for bit-identical output before timing; a
//! divergence aborts the benchmark.

use std::time::Instant;

use arcs_bench::{arg_or, has_flag, Table};
use arcs_core::engine::{rule_grid, rule_grid_into};
use arcs_core::smooth::{smooth_reference, smooth_with_stats};
use arcs_core::{
    BinArray, Binner, DeltaMiner, Grid, OccupancyIndex, SmoothConfig, Thresholds,
};
use arcs_data::generator::{AgrawalGenerator, GeneratorConfig};

/// Snake walk over a support × confidence lattice: successive points
/// differ in one coordinate by one step, exactly like the optimizer's
/// neighbour moves.
fn lattice_walk(supports: usize, confidences: usize) -> Vec<Thresholds> {
    let mut walk = Vec::with_capacity(supports * confidences);
    for (i, si) in (0..supports).enumerate() {
        let s = 0.002 + 0.10 * si as f64 / supports as f64;
        let cs: Vec<f64> =
            (0..confidences).map(|ci| 0.05 + 0.9 * ci as f64 / confidences as f64).collect();
        let order: Vec<f64> =
            if i % 2 == 0 { cs } else { cs.into_iter().rev().collect() };
        for c in order {
            walk.push(Thresholds::new(s, c).expect("thresholds in range"));
        }
    }
    walk
}

struct SweepResult {
    name: &'static str,
    nx: usize,
    ny: usize,
    occupied: usize,
    points: usize,
    full_ms: f64,
    delta_ms: f64,
    cells_full: u64,
    cells_delta: u64,
}

/// Times one workload: full-scan re-mining vs index + delta walk.
fn sweep(name: &'static str, ba: &BinArray, walk: &[Thresholds], reps: usize) -> SweepResult {
    // Correctness gate first: the two variants must agree at every point.
    let probe_index = OccupancyIndex::build(ba);
    let mut probe = DeltaMiner::new(&probe_index, 0).expect("group 0 exists");
    for &t in walk {
        probe.update(&probe_index, t);
        assert_eq!(
            probe.grid(),
            &rule_grid(ba, 0, t).expect("grid dims valid"),
            "delta miner diverged from full scan at {t:?}"
        );
    }
    let occupied = ba.occupied_cells().count();

    let start = Instant::now();
    for _ in 0..reps {
        let mut grid = Grid::new(ba.nx(), ba.ny()).expect("grid dims valid");
        for &t in walk {
            rule_grid_into(ba, 0, t, &mut grid).expect("full scan mines");
        }
    }
    let full_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;
    let cells_full = (ba.nx() * ba.ny() * walk.len()) as u64;

    let mut cells_delta = 0u64;
    let start = Instant::now();
    for rep in 0..reps {
        // The index build is part of the cost being claimed — time it.
        let index = OccupancyIndex::build(ba);
        let mut delta = DeltaMiner::new(&index, 0).expect("group 0 exists");
        let mut touched = 0u64;
        for &t in walk {
            let (visited, _) = delta.update(&index, t);
            touched += visited;
        }
        if rep == 0 {
            cells_delta = touched;
        }
    }
    let delta_ms = start.elapsed().as_secs_f64() * 1e3 / reps as f64;

    SweepResult {
        name,
        nx: ba.nx(),
        ny: ba.ny(),
        occupied,
        points: walk.len(),
        full_ms,
        delta_ms,
        cells_full,
        cells_delta,
    }
}

/// A synthetic sparse array: `spots` occupied cells scattered over a
/// large grid — the regime where output sensitivity matters most.
fn sparse_array(nx: usize, ny: usize, spots: usize) -> BinArray {
    let mut ba = BinArray::new(nx, ny, 2).expect("dims valid");
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..spots {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let x = (state >> 33) as usize % nx;
        let y = (state >> 17) as usize % ny;
        for j in 0..(1 + i % 40) {
            ba.add(x, y, (j % 2) as u32);
        }
    }
    ba
}

fn main() {
    let quick = has_flag("--quick");
    let tuples: usize = arg_or("--tuples", if quick { 50_000 } else { 500_000 });
    let seed: u64 = arg_or("--seed", 42);
    let json_path: String = arg_or("--json", String::new());

    let (s_steps, c_steps, reps) = if quick { (4, 4, 3) } else { (10, 10, 20) };
    let walk = lattice_walk(s_steps, c_steps);

    println!("== remine_sweep: output-sensitive re-mining vs full scan ==\n");

    let mut gen =
        AgrawalGenerator::new(GeneratorConfig::paper_defaults(seed)).expect("valid config");
    let ds = gen.generate(tuples);
    let binner = Binner::equi_width(ds.schema(), "age", "salary", "group", 50, 50)
        .expect("schema has the Agrawal attributes");
    let agrawal = binner.bin_rows(ds.iter()).expect("binning succeeds");

    let sparse = sparse_array(200, 200, if quick { 60 } else { 120 });

    let sweeps = [
        sweep("agrawal-50x50", &agrawal, &walk, reps),
        sweep("sparse-200x200", &sparse, &walk, reps),
    ];

    let mut table = Table::new([
        "workload", "occupied", "points", "full ms", "indexed ms", "speedup",
        "cells full", "cells delta",
    ]);
    for r in &sweeps {
        table.row([
            r.name.to_string(),
            format!("{}/{}", r.occupied, r.nx * r.ny),
            r.points.to_string(),
            format!("{:.3}", r.full_ms),
            format!("{:.3}", r.delta_ms),
            format!("{:.2}x", r.full_ms / r.delta_ms),
            r.cells_full.to_string(),
            r.cells_delta.to_string(),
        ]);
    }
    println!("{}", table.render());

    // ---- smoothing: scalar reference vs word kernel --------------------
    let mid = Thresholds::new(0.01, 0.3).expect("in range");
    let rule_grid = rule_grid(&agrawal, 0, mid).expect("grid dims valid");
    let config = SmoothConfig { passes: 2, ..SmoothConfig::default() };
    let smooth_reps = if quick { 20 } else { 200 };

    let reference = smooth_reference(&rule_grid, &config).expect("reference smooths");
    let (word, stats) = smooth_with_stats(&rule_grid, &config).expect("word kernel smooths");
    assert_eq!(word, reference, "word kernel diverged from scalar reference");

    let start = Instant::now();
    for _ in 0..smooth_reps {
        smooth_reference(&rule_grid, &config).expect("reference smooths");
    }
    let scalar_ms = start.elapsed().as_secs_f64() * 1e3 / smooth_reps as f64;
    let start = Instant::now();
    for _ in 0..smooth_reps {
        smooth_with_stats(&rule_grid, &config).expect("word kernel smooths");
    }
    let word_ms = start.elapsed().as_secs_f64() * 1e3 / smooth_reps as f64;

    let mut stable = Table::new(["grid", "passes", "scalar ms", "word ms", "speedup", "words"]);
    stable.row([
        format!("{}x{}", rule_grid.width(), rule_grid.height()),
        config.passes.to_string(),
        format!("{scalar_ms:.4}"),
        format!("{word_ms:.4}"),
        format!("{:.2}x", scalar_ms / word_ms),
        stats.words_processed.to_string(),
    ]);
    println!("{}", stable.render());

    if !json_path.is_empty() {
        let cpus = std::thread::available_parallelism().map_or(0, usize::from);
        let sweep_json: Vec<String> = sweeps
            .iter()
            .map(|r| {
                format!(
                    "{{\"workload\":\"{}\",\"nx\":{},\"ny\":{},\"occupied\":{},\
                     \"points\":{},\"full_scan_ms\":{:.6},\"indexed_ms\":{:.6},\
                     \"speedup\":{:.3},\"cells_full\":{},\"cells_delta\":{}}}",
                    r.name, r.nx, r.ny, r.occupied, r.points, r.full_ms, r.delta_ms,
                    r.full_ms / r.delta_ms, r.cells_full, r.cells_delta
                )
            })
            .collect();
        let json = format!(
            "{{\"schema_version\":1,\"benchmark\":\"remine_sweep\",\
             \"cpus_available\":{cpus},\"tuples\":{tuples},\"reps\":{reps},\
             \"remine\":[{}],\
             \"smoothing\":{{\"width\":{},\"height\":{},\"passes\":{},\
             \"scalar_ms\":{scalar_ms:.6},\"word_ms\":{word_ms:.6},\
             \"speedup\":{:.3},\"smooth_words_processed\":{}}}}}",
            sweep_json.join(","),
            rule_grid.width(),
            rule_grid.height(),
            config.passes,
            scalar_ms / word_ms,
            stats.words_processed,
        );
        std::fs::write(&json_path, &json).expect("write --json file");
        println!("wrote {json_path}");
    }
}
