//! Paper Figure 15: scalability of ARCS — execution time vs number of
//! tuples, 100k to 10M, streaming with constant memory.
//!
//! The paper reports at-most-linear growth (better than linear per tuple:
//! 100k → 42 s, 10M → 420 s on its 120 MHz Pentium; absolute numbers here
//! differ, the *shape* is the claim). ARCS memory is the BinArray + bitmap
//! regardless of |D|.
//!
//! ```sh
//! cargo run --release -p arcs-bench --bin fig15_scaleup [-- --max 10000000 --csv]
//! ```

use std::time::Instant;

use arcs_bench::{arg_or, has_flag, Table, FIG15_SIZES};
use arcs_core::{Arcs, ArcsConfig};
use arcs_data::agrawal;
use arcs_data::generator::{AgrawalGenerator, GeneratorConfig};

fn main() {
    let max: usize = arg_or("--max", 10_000_000);
    let seed: u64 = arg_or("--seed", 42);
    let csv = has_flag("--csv");

    println!("== Figure 15: ARCS execution time vs |D| (streaming, one pass) ==\n");

    // A fixed verification sample, independent of the stream.
    let mut sample_gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(seed + 1))
        .expect("valid config");
    let sample = sample_gen.generate(2_000);
    let schema = agrawal::schema();
    let arcs = Arcs::new(ArcsConfig::default()).expect("valid config");

    let mut table = Table::new(["tuples", "total s", "bin+mine s/Mtuple", "rules"]);
    let mut first_rate: Option<f64> = None;
    for &n in FIG15_SIZES.iter().filter(|&&n| n <= max) {
        let gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(seed))
            .expect("valid config");
        let start = Instant::now();
        let seg = arcs
            .segment_stream(
                &schema,
                gen.take(n),
                "age",
                "salary",
                "group",
                "A",
                &sample,
            )
            .expect("segmentation succeeds");
        let elapsed = start.elapsed().as_secs_f64();
        let per_m = elapsed / (n as f64 / 1e6);
        first_rate.get_or_insert(per_m);
        table.row([
            n.to_string(),
            format!("{elapsed:.3}"),
            format!("{per_m:.3}"),
            seg.rules.len().to_string(),
        ]);
    }
    println!("{}", if csv { table.to_csv() } else { table.render() });
    println!(
        "paper shape to check: total time grows at most linearly in |D| \
         (per-tuple cost flat or falling as fixed costs amortize; the paper \
         saw 100x tuples -> 10x time thanks to larger I/O requests)."
    );
}
