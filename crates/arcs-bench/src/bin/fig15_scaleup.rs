//! Paper Figure 15: scalability of ARCS — execution time vs number of
//! tuples, 100k to 10M.
//!
//! The paper reports at-most-linear growth (better than linear per tuple:
//! 100k → 42 s, 10M → 420 s on its 120 MHz Pentium; absolute numbers here
//! differ, the *shape* is the claim). This harness pre-generates each
//! dataset outside the timed region and measures only the pipeline —
//! parallel binning, sampling, threshold search, decode — so thread
//! scaling is visible. (The constant-memory streaming mode of §4.3 is
//! still exercised by `Arcs::open_stream`; here the data is in memory so
//! generation cost cannot mask the pipeline.)
//!
//! ```sh
//! cargo run --release -p arcs-bench --bin fig15_scaleup -- \
//!     [--max 10000000] [--threads N] [--quick] [--csv] [--stats-json FILE]
//! ```
//!
//! `--quick` caps the sweep at 200k tuples (CI smoke mode). `--stats-json`
//! writes a machine-readable record of every run, including the pipeline's
//! per-stage timings and work counters.

use std::time::Instant;

use arcs_bench::{arg_or, has_flag, Table, FIG15_SIZES};
use arcs_core::metrics::default_threads;
use arcs_core::{Arcs, ArcsConfig, OptimizerConfig, SegmentRequest};
use arcs_data::generator::{AgrawalGenerator, GeneratorConfig};

fn main() {
    let max: usize = arg_or("--max", 10_000_000);
    let seed: u64 = arg_or("--seed", 42);
    let csv = has_flag("--csv");
    let quick = has_flag("--quick");
    let threads: usize = arg_or("--threads", default_threads());
    let stats_path: String = arg_or("--stats-json", String::new());

    let max = if quick { max.min(200_000) } else { max };

    println!(
        "== Figure 15: ARCS execution time vs |D| ({threads} thread{}) ==\n",
        if threads == 1 { "" } else { "s" }
    );

    let config = ArcsConfig {
        threads,
        optimizer: OptimizerConfig { threads, ..OptimizerConfig::default() },
        ..ArcsConfig::default()
    };
    let arcs = Arcs::new(config).expect("valid config");

    let mut table = Table::new(["tuples", "total s", "s/Mtuple", "bin ms", "search ms", "rules"]);
    let mut json_runs: Vec<String> = Vec::new();
    for &n in FIG15_SIZES.iter().filter(|&&n| n <= max) {
        // Generation happens outside the timed region.
        let mut gen = AgrawalGenerator::new(GeneratorConfig::paper_defaults(seed))
            .expect("valid config");
        let ds = gen.generate(n);

        let start = Instant::now();
        let mut session = arcs
            .open(&ds, SegmentRequest::new("age", "salary", "group").group("A"))
            .expect("open succeeds");
        let seg = session.segment().expect("segmentation succeeds");
        let elapsed = start.elapsed().as_secs_f64();

        let report = session.report();
        let per_m = elapsed / (n as f64 / 1e6);
        table.row([
            n.to_string(),
            format!("{elapsed:.3}"),
            format!("{per_m:.3}"),
            format!("{:.1}", report.timings.binning.as_secs_f64() * 1e3),
            format!("{:.1}", report.timings.search.as_secs_f64() * 1e3),
            seg.rules.len().to_string(),
        ]);
        json_runs.push(format!(
            "{{\"tuples\":{n},\"total_s\":{elapsed:.6},\"rules\":{},\"report\":{}}}",
            seg.rules.len(),
            report.to_json()
        ));
    }
    println!("{}", if csv { table.to_csv() } else { table.render() });
    println!(
        "paper shape to check: total time grows at most linearly in |D| \
         (per-tuple cost flat or falling as fixed costs amortize; the paper \
         saw 100x tuples -> 10x time thanks to larger I/O requests)."
    );

    if !stats_path.is_empty() {
        let json = format!(
            "{{\"schema_version\":1,\"threads\":{threads},\"runs\":[{}]}}",
            json_runs.join(",")
        );
        std::fs::write(&stats_path, &json).expect("write --stats-json file");
        println!("wrote stats to {stats_path}");
    }
}
