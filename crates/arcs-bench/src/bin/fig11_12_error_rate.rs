//! Paper Figures 11 & 12: error rate vs number of tuples, ARCS vs C4.5,
//! without (Fig 11) and with 10% outliers (Fig 12).
//!
//! The paper could not obtain C4.5 results past 100k tuples (virtual
//! memory depletion on its 32 MB machine); we reproduce the "missing bars"
//! with an explicit cap, adjustable via `--max-c45`.
//!
//! ```sh
//! cargo run --release -p arcs-bench --bin fig11_12_error_rate \
//!     [-- --max-c45 200000 --seed 42 --csv]
//! ```

use arcs_bench::{arg_or, has_flag, run_arcs, run_c45, workload, Table, FIG11_SIZES};
use arcs_core::ArcsConfig;

fn main() {
    let max_c45: usize = arg_or("--max-c45", 200_000);
    let seed: u64 = arg_or("--seed", 42);
    let csv = has_flag("--csv");

    for (fig, u) in [("Figure 11", 0.0), ("Figure 12", 0.10)] {
        println!("== {fig}: error rate (%) vs |D|, U = {:.0}% ==\n", u * 100.0);
        let mut table = Table::new([
            "tuples",
            "ARCS err%",
            "C4.5 err%",
            "C4.5RULES err%",
        ]);
        for &n in &FIG11_SIZES {
            let (train, test) = workload(n, u, seed);
            let arcs = run_arcs(&train, &test, ArcsConfig::default());
            let (c45_tree, c45_rules) = if n <= max_c45 {
                let c45 = run_c45(&train, &test);
                (
                    format!("{:.2}", c45.tree_error * 100.0),
                    format!("{:.2}", c45.rules_error * 100.0),
                )
            } else {
                // The paper's missing bars: C4.5 exceeded its memory budget.
                ("-".to_string(), "-".to_string())
            };
            table.row([
                n.to_string(),
                format!("{:.2}", arcs.test_error * 100.0),
                c45_tree,
                c45_rules,
            ]);
        }
        println!("{}", if csv { table.to_csv() } else { table.render() });
    }
    println!(
        "paper shape to check: with U = 0 C4.5 is slightly more accurate than \
         ARCS; with U = 10% ARCS matches or beats C4.5. Both sit near the \
         noise floor (boundary fuzz, plus the 10% outliers in Figure 12)."
    );
}
