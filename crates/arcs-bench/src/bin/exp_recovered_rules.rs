//! Paper §4.2 (qualitative result): ARCS recovers the three clustered
//! association rules corresponding to Function 2's disjuncts, both without
//! and with 10% outliers.
//!
//! ```sh
//! cargo run --release -p arcs-bench --bin exp_recovered_rules [-- --n 50000 --seed 42]
//! ```

use arcs_bench::{arg_or, run_arcs, workload};
use arcs_core::verify::region_error;
use arcs_core::{ArcsConfig, Binner};
use arcs_data::agrawal::f2_regions;

fn main() {
    let n: usize = arg_or("--n", 50_000);
    let seed: u64 = arg_or("--seed", 42);

    println!("== Paper §4.2: recovered clustered rules (|D| = {n}, Function 2) ==\n");
    println!("generating rules (Figure 8):");
    for r in f2_regions() {
        println!(
            "  {} <= age <= {}  AND  {} <= salary <= {}  =>  Group A",
            r.x_lo, r.x_hi, r.y_lo, r.y_hi
        );
    }

    for u in [0.0, 0.10] {
        let (train, test) = workload(n, u, seed);
        let run = run_arcs(&train, &test, ArcsConfig::default());
        println!("\n-- outliers U = {:.0}% --", u * 100.0);
        println!(
            "thresholds: support >= {:.4}, confidence >= {:.3}",
            run.segmentation.thresholds.min_support,
            run.segmentation.thresholds.min_confidence
        );
        println!("recovered rules ({}):", run.segmentation.rules.len());
        for rule in &run.segmentation.rules {
            println!(
                "  {rule}   (support {:.3}, confidence {:.2})",
                rule.support, rule.confidence
            );
        }
        // Exact region error vs the generating disjuncts (Figure 9 metric).
        let binner =
            Binner::equi_width(train.schema(), "age", "salary", "group", 50, 50).unwrap();
        let exact = region_error(
            &run.segmentation.clusters,
            &binner,
            &f2_regions(),
            (20.0, 80.0),
            (20_000.0, 150_000.0),
            400,
        )
        .unwrap();
        println!(
            "region error vs true disjuncts: FP area {:.2}%, FN area {:.2}%",
            100.0 * exact.false_positives as f64 / exact.n_examined as f64,
            100.0 * exact.false_negatives as f64 / exact.n_examined as f64,
        );
        println!("held-out test error: {:.2}%", run.test_error * 100.0);
        println!("elapsed: {:?}", run.elapsed);
    }

    println!(
        "\npaper reference (U = 10%, minsup 0.01, minconf 39%):\n  \
         20 <= Age <= 39  AND  48601 <= Salary <= 100600  => Grp A\n  \
         40 <= Age <= 59  AND  74601 <= Salary <= 124000  => Grp A\n  \
         60 <= Age <= 80  AND  25201 <= Salary <= 74600   => Grp A"
    );
}
